//! Crash recovery: checkpoint load + WAL tail replay.
//!
//! Recovery is idempotent and prefix-correct: the recovered state is
//! always exactly the committed epochs whose records (a) were covered by
//! the checkpoint or (b) survive complete and CRC-valid in the WAL — a
//! prefix of the per-table commit order, because the WAL was appended in
//! epoch order. Torn or corrupt tails are truncated on disk (so the next
//! append cannot interleave with garbage) and counted in the report,
//! never panicked on.

use std::path::Path;

use rdb_recycler::LineageEntry;
use rdb_storage::Catalog;

use crate::checkpoint::read_checkpoint;
use crate::segment::{list_segments, scan_segment};
use crate::WalError;

/// What recovery found and did. Returned to the engine, surfaced through
/// `rdb_stats()`.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Tables restored from the checkpoint image.
    pub checkpoint_tables: usize,
    /// Highest epoch in the checkpoint.
    pub checkpoint_epoch: u64,
    /// WAL records applied on top of the checkpoint.
    pub replayed_records: u64,
    /// WAL records skipped because the checkpoint already covered them.
    pub skipped_records: u64,
    /// Segments whose tail had to be truncated (torn/corrupt writes).
    pub truncated_segments: u64,
    /// Bytes of tail garbage discarded.
    pub truncated_bytes: u64,
    /// Persisted lineage entries, ready for recycler warm-up.
    pub lineage: Vec<LineageEntry>,
    /// Highest epoch recovered across all tables.
    pub max_epoch: u64,
}

/// Recover `dir` into `catalog`: load the checkpoint (if any), truncate
/// damaged tails, and replay the surviving WAL records in order. The
/// catalog must already contain every table the log mentions (schemas
/// are code, data is log) with its seed contents; recovered tables are
/// force-restored over the seed.
///
/// Runs before the engine serves anything — single-threaded, no
/// concurrent writers.
pub fn recover(dir: &Path, catalog: &Catalog) -> Result<RecoveryReport, WalError> {
    let mut report = RecoveryReport::default();
    std::fs::create_dir_all(dir)?;

    if let Some(ckpt) = read_checkpoint(dir)? {
        report.checkpoint_tables = ckpt.tables.len();
        report.checkpoint_epoch = ckpt.max_epoch();
        for t in &ckpt.tables {
            let vt = catalog.versioned(&t.name).ok_or_else(|| {
                WalError::Corrupt(format!(
                    "checkpoint references table '{}' missing from the catalog",
                    t.name
                ))
            })?;
            if vt.schema() != &t.schema {
                return Err(WalError::Corrupt(format!(
                    "checkpoint schema for '{}' does not match the catalog",
                    t.name
                )));
            }
            vt.restore(&t.rows, t.epoch)
                .map_err(|e| WalError::Corrupt(e.to_string()))?;
            report.max_epoch = report.max_epoch.max(t.epoch);
        }
        report.lineage = ckpt.lineage;
    }

    let mut halted = false;
    for (_, path) in list_segments(dir)? {
        if halted {
            // A defect in an earlier segment means everything after it is
            // past the torn point; records there would be a gap. Drop the
            // whole segment (this only happens with exotic damage — a
            // normal crash tears the *last* segment).
            let len = std::fs::metadata(&path)?.len();
            std::fs::remove_file(&path)?;
            report.truncated_segments += 1;
            report.truncated_bytes += len;
            continue;
        }
        // A short or wrong-magic header means the crash hit segment
        // creation itself (see `header_intact`), so the file provably
        // holds no acknowledged records: delete it outright.
        if !crate::segment::header_intact(&path)? {
            let len = std::fs::metadata(&path)?.len();
            std::fs::remove_file(&path)?;
            report.truncated_segments += 1;
            report.truncated_bytes += len;
            halted = true;
            continue;
        }
        let scan = scan_segment(&path)?;
        if scan.has_tail_garbage() {
            let f = std::fs::OpenOptions::new().write(true).open(&path)?;
            f.set_len(scan.clean_len)?;
            f.sync_data()?;
            report.truncated_segments += 1;
            report.truncated_bytes += scan.total_len - scan.clean_len;
            halted = true;
        }
        for rec in &scan.records {
            let vt = catalog.versioned(&rec.table).ok_or_else(|| {
                WalError::Corrupt(format!(
                    "log references table '{}' missing from the catalog",
                    rec.table
                ))
            })?;
            if vt.schema() != &rec.schema {
                return Err(WalError::Corrupt(format!(
                    "logged schema for '{}' does not match the catalog",
                    rec.table
                )));
            }
            let applied = vt
                .apply_logged(&rec.delta, rec.epoch)
                .map_err(|e| WalError::Corrupt(e.to_string()))?;
            if applied {
                report.replayed_records += 1;
            } else {
                report.skipped_records += 1;
            }
            report.max_epoch = report.max_epoch.max(rec.epoch);
        }
    }
    Ok(report)
}
