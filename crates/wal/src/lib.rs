//! Durability for the epoch-versioned storage layer: a write-ahead log of
//! table commits, base-table checkpoints with persisted recycler lineage,
//! and crash recovery that replays both.
//!
//! # On-disk format
//!
//! A data directory holds numbered **segment files** and at most one
//! **checkpoint**:
//!
//! ```text
//! data/
//!   wal-000001.seg      segment: "RDBWAL01" magic + seq, then frames
//!   wal-000002.seg
//!   checkpoint.bin      "RDBCKPT1" magic, one CRC-framed body
//! ```
//!
//! Every record in a segment is a **frame**:
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][payload: len bytes]
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload. A frame payload is one
//! [`CommitRecord`]: kind (append / delete / replace), table name, the
//! schema it committed under (so replay detects drift), the epoch it
//! produced, and the row data or deleted row positions. The checkpoint
//! body carries every base table (name, epoch, schema, rows) plus the
//! top-K benefit entries of the recycler cache as [`LineageEntry`]
//! lineage — plans and statistics, not result bytes.
//!
//! # Logging and recovery contract
//!
//! The WAL implements [`CommitHook`] and is installed on every
//! [`rdb_storage::VersionedTable`]: each epoch commit is appended (and,
//! policy permitting, fsynced) **before the version pointer swap**, under
//! the table's write lock — so per table, the log order is exactly the
//! epoch order, with no gaps. Recovery ([`recover`]) loads the
//! checkpoint, then replays every surviving segment in order, applying
//! records whose epoch exceeds the recovered table's. A torn or corrupt
//! tail — short frame, CRC mismatch, impossible length — is detected,
//! **cleanly truncated to the last complete record**, and reported; it is
//! never a panic. Recovered state is therefore always a prefix of the
//! committed epoch sequence.
//!
//! # Fsync policy trade-offs
//!
//! * [`FsyncPolicy::Always`] — fsync inside every commit. An
//!   acknowledged write is durable; a crash loses nothing acknowledged.
//!   Each commit pays a device flush, and readers of the committing
//!   table can block behind it for the duration of the swap-lock hold.
//! * [`FsyncPolicy::EveryN`] — fsync once per `n` appends. Bounded loss
//!   window (at most `n − 1` acknowledged commits), a fraction of the
//!   flush cost.
//! * [`FsyncPolicy::Off`] — never fsync explicitly; the OS page cache
//!   decides. Fastest, loses up to everything since the last writeback
//!   on power failure — but still torn-tail safe: whatever prefix did
//!   reach the disk recovers cleanly.
//!
//! # Read-only degradation
//!
//! Any WAL write or fsync failure **poisons** the log: the failing
//! commit is aborted (the in-memory version is *not* swapped, so memory
//! and log never disagree), and every later append fails fast with
//! [`WalError::Poisoned`]. The engine maps this to its structured
//! read-only error (SQLSTATE `25006` over the wire): reads — which never
//! touch the WAL — keep serving snapshots, writes are rejected until the
//! operator replaces the volume and restarts. Degradation is a mode, not
//! a crash.
//!
//! [`CommitRecord`]: rdb_storage::CommitRecord
//! [`CommitHook`]: rdb_storage::CommitHook
//! [`LineageEntry`]: rdb_recycler::LineageEntry

use std::fmt;
use std::time::Duration;

pub mod checkpoint;
pub mod codec;
pub mod fault;
pub mod frame;
pub mod recover;
pub mod segment;
pub mod wal;

pub use checkpoint::{read_checkpoint, write_checkpoint, Checkpoint, TableCheckpoint};
pub use fault::{IoFault, NoFault, ScriptedFault, WriteFault};
pub use recover::{recover, RecoveryReport};
pub use wal::Wal;

/// When the WAL flushes appended records to stable storage. See the
/// crate docs for the trade-offs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync inside every commit: zero acknowledged-write loss.
    Always,
    /// Fsync once per `n` appends: loss window of at most `n − 1`
    /// acknowledged commits.
    EveryN(u32),
    /// Never fsync explicitly; the OS decides when dirty pages land.
    Off,
}

/// Durability tuning knobs, consumed by `EngineBuilder::durability`.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Flush policy (default [`FsyncPolicy::Always`]).
    pub fsync: FsyncPolicy,
    /// Segment rotation threshold in bytes (default 8 MiB).
    pub segment_bytes: u64,
    /// Background checkpoint trigger: WAL bytes appended since the last
    /// checkpoint (default 4 MiB).
    pub checkpoint_threshold_bytes: u64,
    /// Whether the engine runs the background checkpointer (default on;
    /// manual `Engine::checkpoint` works either way).
    pub auto_checkpoint: bool,
    /// Background checkpointer poll interval (default 250 ms).
    pub checkpoint_poll: Duration,
    /// How many top-benefit recycler entries to checkpoint as lineage and
    /// re-execute on recovery (default 16).
    pub warm_top_k: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 8 << 20,
            checkpoint_threshold_bytes: 4 << 20,
            auto_checkpoint: true,
            checkpoint_poll: Duration::from_millis(250),
            warm_top_k: 16,
        }
    }
}

/// Errors from WAL append, checkpointing, and recovery.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// On-disk bytes that should be readable are not (bad magic, CRC
    /// mismatch mid-log, replay gap, undecodable payload).
    Corrupt(String),
    /// The log was poisoned by an earlier I/O failure; no further
    /// appends are accepted (the engine is read-only).
    Poisoned,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt(m) => write!(f, "wal corruption: {m}"),
            WalError::Poisoned => write!(
                f,
                "wal is poisoned by an earlier write failure; engine is read-only"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> WalError {
        WalError::Io(e)
    }
}
