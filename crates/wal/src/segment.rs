//! Segment files: naming, headers, and scanning.
//!
//! A segment starts with a 16-byte header — the magic `"RDBWAL01"` and
//! the segment's sequence number (`u64` LE) — followed by frames (see
//! [`crate::frame`]). Sequence numbers are strictly increasing across a
//! data directory; recovery replays segments in sequence order.

use std::io::Read;
use std::path::{Path, PathBuf};

use rdb_storage::CommitRecord;

use crate::frame::{scan_frames, TailDefect};
use crate::{codec, WalError};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"RDBWAL01";

/// Segment header length: magic + sequence number.
pub const SEGMENT_HEADER: u64 = 16;

/// File name of segment `seq`.
pub fn segment_file_name(seq: u64) -> String {
    format!("wal-{seq:06}.seg")
}

/// Parse a segment sequence number out of a file name.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    rest.parse().ok()
}

/// All segment files in `dir`, sorted by sequence number.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// The segment header bytes for sequence `seq`.
pub fn segment_header(seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER as usize);
    out.extend_from_slice(SEGMENT_MAGIC);
    out.extend_from_slice(&seq.to_le_bytes());
    out
}

/// Whether `path` begins with a complete, well-formed segment header.
/// A short or wrong-magic header means the segment's creation never
/// durably completed (the header is synced before any record append is
/// acknowledged), so the file provably holds no acknowledged records —
/// callers delete it rather than scanning.
pub fn header_intact(path: &Path) -> Result<bool, WalError> {
    let mut head = [0u8; SEGMENT_HEADER as usize];
    let mut f = std::fs::File::open(path)?;
    let mut filled = 0;
    while filled < head.len() {
        let n = f.read(&mut head[filled..])?;
        if n == 0 {
            return Ok(false); // short header
        }
        filled += n;
    }
    Ok(&head[..8] == SEGMENT_MAGIC)
}

/// One scanned segment: its decoded records and tail diagnosis.
#[derive(Debug)]
pub struct SegmentScan {
    /// Sequence number from the header.
    pub seq: u64,
    /// Every complete, CRC-valid record, in log order.
    pub records: Vec<CommitRecord>,
    /// Byte length of the valid prefix (header + good frames).
    pub clean_len: u64,
    /// Total file length on disk.
    pub total_len: u64,
    /// Tail defect, if the scan stopped before the end.
    pub defect: Option<TailDefect>,
}

impl SegmentScan {
    /// Whether the file carries garbage past the valid prefix.
    pub fn has_tail_garbage(&self) -> bool {
        self.defect.is_some() || self.clean_len < self.total_len
    }
}

/// Read and scan one segment file. Torn or corrupt tails are reported,
/// not fatal; a bad *header* is fatal (the file is not a segment).
pub fn scan_segment(path: &Path) -> Result<SegmentScan, WalError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    let total_len = bytes.len() as u64;
    if bytes.len() < SEGMENT_HEADER as usize || &bytes[..8] != SEGMENT_MAGIC {
        return Err(WalError::Corrupt(format!(
            "{} is not a WAL segment (bad or short header)",
            path.display()
        )));
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let body = &bytes[SEGMENT_HEADER as usize..];
    let scan = scan_frames(body);
    let mut records = Vec::with_capacity(scan.payloads.len());
    let mut clean_len = SEGMENT_HEADER;
    let mut defect = scan.defect;
    for &(off, len) in &scan.payloads {
        match codec::decode_record(&body[off..off + len]) {
            Ok(rec) => {
                records.push(rec);
                clean_len = SEGMENT_HEADER + (off + len) as u64;
            }
            // A frame whose CRC matches but whose payload does not decode
            // is treated like a corrupt tail: keep the prefix before it.
            Err(_) => {
                defect = Some(TailDefect::Corrupt);
                break;
            }
        }
    }
    Ok(SegmentScan {
        seq,
        records,
        clean_len,
        total_len,
        defect,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_roundtrip() {
        assert_eq!(segment_file_name(7), "wal-000007.seg");
        assert_eq!(parse_segment_name("wal-000007.seg"), Some(7));
        assert_eq!(parse_segment_name("wal-1000000.seg"), Some(1_000_000));
        assert_eq!(parse_segment_name("checkpoint.bin"), None);
        assert_eq!(parse_segment_name("wal-x.seg"), None);
    }
}
