//! Binary encoding of log records, plans, and lineage.
//!
//! Hand-rolled little-endian encoding — no serde in the dependency
//! closure — with a defensive [`Reader`]: every length is bounds-checked
//! and every tag validated, so a corrupted payload that survived the CRC
//! (or a truncated checkpoint) produces [`WalError::Corrupt`], never a
//! panic or an absurd allocation.
//!
//! Strings are `u32`-length-prefixed UTF-8; collections are
//! `u32`-count-prefixed; values, expressions, and plan nodes carry a
//! leading `u8` tag.

use rdb_expr::{AggFunc, ArithOp, CmpOp, Expr};
use rdb_plan::{JoinKind, Plan, SortKeyExpr};
use rdb_recycler::LineageEntry;
use rdb_storage::{CommitRecord, TableDelta};
use rdb_vector::{DataType, Schema, SortOrder, Value};

use crate::WalError;

fn corrupt(msg: impl Into<String>) -> WalError {
    WalError::Corrupt(msg.into())
}

// ---- writer ---------------------------------------------------------------

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---- reader ---------------------------------------------------------------

/// Bounds-checked cursor over a decoded payload.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        if self.buf.len() - self.pos < n {
            return Err(corrupt(format!(
                "payload underrun: wanted {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, WalError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i32(&mut self) -> Result<i32, WalError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, WalError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A collection count, sanity-bounded by the bytes actually left so a
    /// corrupt count cannot drive a huge allocation.
    pub(crate) fn count(&mut self) -> Result<usize, WalError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(corrupt(format!("count {n} exceeds remaining payload")));
        }
        Ok(n)
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        self.take(n)
    }

    pub(crate) fn str(&mut self) -> Result<String, WalError> {
        let n = self.count()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid UTF-8 string"))
    }
}

// ---- values and schemas ---------------------------------------------------

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
        DataType::Date => 4,
    }
}

fn dtype_from(tag: u8) -> Result<DataType, WalError> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        4 => DataType::Date,
        t => return Err(corrupt(format!("unknown dtype tag {t}"))),
    })
}

pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(out, 0),
        Value::Bool(b) => {
            put_u8(out, 1);
            put_u8(out, *b as u8);
        }
        Value::Int(i) => {
            put_u8(out, 2);
            put_i64(out, *i);
        }
        Value::Float(f) => {
            put_u8(out, 3);
            put_f64(out, *f);
        }
        Value::Str(s) => {
            put_u8(out, 4);
            put_str(out, s);
        }
        Value::Date(d) => {
            put_u8(out, 5);
            put_i32(out, *d);
        }
    }
}

pub(crate) fn read_value(r: &mut Reader) -> Result<Value, WalError> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.u8()? != 0),
        2 => Value::Int(r.i64()?),
        3 => Value::Float(r.f64()?),
        4 => Value::str(r.str()?),
        5 => Value::Date(r.i32()?),
        t => return Err(corrupt(format!("unknown value tag {t}"))),
    })
}

pub(crate) fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_u32(out, schema.len() as u32);
    for f in schema.fields() {
        put_str(out, &f.name);
        put_u8(out, dtype_tag(f.dtype));
    }
}

pub(crate) fn read_schema(r: &mut Reader) -> Result<Schema, WalError> {
    let n = r.count()?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let dt = dtype_from(r.u8()?)?;
        pairs.push((name, dt));
    }
    Ok(Schema::from_pairs(
        pairs.iter().map(|(n, t)| (n.as_str(), *t)),
    ))
}

fn put_rows(out: &mut Vec<u8>, rows: &[Vec<Value>]) {
    put_u32(out, rows.len() as u32);
    for row in rows {
        put_u32(out, row.len() as u32);
        for v in row {
            put_value(out, v);
        }
    }
}

fn read_rows(r: &mut Reader) -> Result<Vec<Vec<Value>>, WalError> {
    let n = r.count()?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let arity = r.count()?;
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(read_value(r)?);
        }
        rows.push(row);
    }
    Ok(rows)
}

// ---- commit records -------------------------------------------------------

/// Encode one commit record (a WAL frame payload).
pub fn encode_record(rec: &CommitRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    let kind = match &rec.delta {
        TableDelta::Append { .. } => 1u8,
        TableDelta::Delete { .. } => 2,
        TableDelta::Replace { .. } => 3,
    };
    put_u8(&mut out, kind);
    put_str(&mut out, &rec.table);
    put_u64(&mut out, rec.epoch);
    put_schema(&mut out, &rec.schema);
    match &rec.delta {
        TableDelta::Append { rows } | TableDelta::Replace { rows } => put_rows(&mut out, rows),
        TableDelta::Delete { deleted } => {
            put_u32(&mut out, deleted.len() as u32);
            for &i in deleted {
                put_u64(&mut out, i);
            }
        }
    }
    out
}

/// Decode one commit record from a frame payload.
pub fn decode_record(payload: &[u8]) -> Result<CommitRecord, WalError> {
    let mut r = Reader::new(payload);
    let kind = r.u8()?;
    let table = r.str()?;
    let epoch = r.u64()?;
    let schema = read_schema(&mut r)?;
    let delta = match kind {
        1 => TableDelta::Append {
            rows: read_rows(&mut r)?,
        },
        3 => TableDelta::Replace {
            rows: read_rows(&mut r)?,
        },
        2 => {
            let n = r.count()?;
            let mut deleted = Vec::with_capacity(n);
            for _ in 0..n {
                deleted.push(r.u64()?);
            }
            TableDelta::Delete { deleted }
        }
        t => return Err(corrupt(format!("unknown record kind {t}"))),
    };
    if !r.is_empty() {
        return Err(corrupt("trailing bytes after record"));
    }
    Ok(CommitRecord {
        table,
        schema,
        epoch,
        delta,
    })
}

// ---- expressions ----------------------------------------------------------

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_from(tag: u8) -> Result<CmpOp, WalError> {
    Ok(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => return Err(corrupt(format!("unknown cmp tag {t}"))),
    })
}

fn arith_tag(op: ArithOp) -> u8 {
    match op {
        ArithOp::Add => 0,
        ArithOp::Sub => 1,
        ArithOp::Mul => 2,
        ArithOp::Div => 3,
    }
}

fn arith_from(tag: u8) -> Result<ArithOp, WalError> {
    Ok(match tag {
        0 => ArithOp::Add,
        1 => ArithOp::Sub,
        2 => ArithOp::Mul,
        3 => ArithOp::Div,
        t => return Err(corrupt(format!("unknown arith tag {t}"))),
    })
}

fn put_exprs(out: &mut Vec<u8>, exprs: &[Expr]) {
    put_u32(out, exprs.len() as u32);
    for e in exprs {
        put_expr(out, e);
    }
}

fn read_exprs(r: &mut Reader) -> Result<Vec<Expr>, WalError> {
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_expr(r)?);
    }
    Ok(out)
}

pub(crate) fn put_expr(out: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Col(i) => {
            put_u8(out, 0);
            put_u32(out, *i as u32);
        }
        Expr::Named(n) => {
            put_u8(out, 1);
            put_str(out, n);
        }
        Expr::Param(n) => {
            put_u8(out, 2);
            put_str(out, n);
        }
        Expr::Lit(v) => {
            put_u8(out, 3);
            put_value(out, v);
        }
        Expr::Cmp(op, a, b) => {
            put_u8(out, 4);
            put_u8(out, cmp_tag(*op));
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::Arith(op, a, b) => {
            put_u8(out, 5);
            put_u8(out, arith_tag(*op));
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::And(parts) => {
            put_u8(out, 6);
            put_exprs(out, parts);
        }
        Expr::Or(parts) => {
            put_u8(out, 7);
            put_exprs(out, parts);
        }
        Expr::Not(inner) => {
            put_u8(out, 8);
            put_expr(out, inner);
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            put_u8(out, 9);
            put_expr(out, expr);
            put_str(out, pattern);
            put_u8(out, *negated as u8);
        }
        Expr::Substr { expr, start, len } => {
            put_u8(out, 10);
            put_expr(out, expr);
            put_u64(out, *start as u64);
            put_u64(out, *len as u64);
        }
        Expr::Year(inner) => {
            put_u8(out, 11);
            put_expr(out, inner);
        }
        Expr::Month(inner) => {
            put_u8(out, 12);
            put_expr(out, inner);
        }
        Expr::Case {
            branches,
            otherwise,
        } => {
            put_u8(out, 13);
            put_u32(out, branches.len() as u32);
            for (w, t) in branches {
                put_expr(out, w);
                put_expr(out, t);
            }
            put_expr(out, otherwise);
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            put_u8(out, 14);
            put_expr(out, expr);
            put_u32(out, list.len() as u32);
            for v in list {
                put_value(out, v);
            }
            put_u8(out, *negated as u8);
        }
        Expr::IsNull { expr, negated } => {
            put_u8(out, 15);
            put_expr(out, expr);
            put_u8(out, *negated as u8);
        }
    }
}

pub(crate) fn read_expr(r: &mut Reader) -> Result<Expr, WalError> {
    Ok(match r.u8()? {
        0 => Expr::Col(r.u32()? as usize),
        1 => Expr::Named(r.str()?),
        2 => Expr::Param(r.str()?),
        3 => Expr::Lit(read_value(r)?),
        4 => {
            let op = cmp_from(r.u8()?)?;
            Expr::Cmp(op, Box::new(read_expr(r)?), Box::new(read_expr(r)?))
        }
        5 => {
            let op = arith_from(r.u8()?)?;
            Expr::Arith(op, Box::new(read_expr(r)?), Box::new(read_expr(r)?))
        }
        6 => Expr::And(read_exprs(r)?),
        7 => Expr::Or(read_exprs(r)?),
        8 => Expr::Not(Box::new(read_expr(r)?)),
        9 => Expr::Like {
            expr: Box::new(read_expr(r)?),
            pattern: r.str()?,
            negated: r.u8()? != 0,
        },
        10 => Expr::Substr {
            expr: Box::new(read_expr(r)?),
            start: r.u64()? as usize,
            len: r.u64()? as usize,
        },
        11 => Expr::Year(Box::new(read_expr(r)?)),
        12 => Expr::Month(Box::new(read_expr(r)?)),
        13 => {
            let n = r.count()?;
            let mut branches = Vec::with_capacity(n);
            for _ in 0..n {
                let w = read_expr(r)?;
                let t = read_expr(r)?;
                branches.push((w, t));
            }
            Expr::Case {
                branches,
                otherwise: Box::new(read_expr(r)?),
            }
        }
        14 => {
            let expr = Box::new(read_expr(r)?);
            let n = r.count()?;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                list.push(read_value(r)?);
            }
            Expr::InList {
                expr,
                list,
                negated: r.u8()? != 0,
            }
        }
        15 => Expr::IsNull {
            expr: Box::new(read_expr(r)?),
            negated: r.u8()? != 0,
        },
        t => return Err(corrupt(format!("unknown expr tag {t}"))),
    })
}

// ---- plans ----------------------------------------------------------------

fn agg_tag(a: &AggFunc) -> (u8, Option<&Expr>) {
    match a {
        AggFunc::CountStar => (0, None),
        AggFunc::Count(e) => (1, Some(e)),
        AggFunc::Sum(e) => (2, Some(e)),
        AggFunc::Min(e) => (3, Some(e)),
        AggFunc::Max(e) => (4, Some(e)),
        AggFunc::Avg(e) => (5, Some(e)),
        AggFunc::CountDistinct(e) => (6, Some(e)),
    }
}

fn put_agg(out: &mut Vec<u8>, a: &AggFunc) {
    let (tag, expr) = agg_tag(a);
    put_u8(out, tag);
    if let Some(e) = expr {
        put_expr(out, e);
    }
}

fn read_agg(r: &mut Reader) -> Result<AggFunc, WalError> {
    Ok(match r.u8()? {
        0 => AggFunc::CountStar,
        1 => AggFunc::Count(read_expr(r)?),
        2 => AggFunc::Sum(read_expr(r)?),
        3 => AggFunc::Min(read_expr(r)?),
        4 => AggFunc::Max(read_expr(r)?),
        5 => AggFunc::Avg(read_expr(r)?),
        6 => AggFunc::CountDistinct(read_expr(r)?),
        t => return Err(corrupt(format!("unknown agg tag {t}"))),
    })
}

fn put_sort_keys(out: &mut Vec<u8>, keys: &[SortKeyExpr]) {
    put_u32(out, keys.len() as u32);
    for k in keys {
        put_expr(out, &k.expr);
        put_u8(out, matches!(k.order, SortOrder::Desc) as u8);
    }
}

fn read_sort_keys(r: &mut Reader) -> Result<Vec<SortKeyExpr>, WalError> {
    let n = r.count()?;
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        let expr = read_expr(r)?;
        let key = if r.u8()? != 0 {
            SortKeyExpr::desc(expr)
        } else {
            SortKeyExpr::asc(expr)
        };
        keys.push(key);
    }
    Ok(keys)
}

fn join_tag(k: JoinKind) -> u8 {
    match k {
        JoinKind::Inner => 0,
        JoinKind::LeftOuter => 1,
        JoinKind::Semi => 2,
        JoinKind::Anti => 3,
        JoinKind::Single => 4,
    }
}

fn join_from(tag: u8) -> Result<JoinKind, WalError> {
    Ok(match tag {
        0 => JoinKind::Inner,
        1 => JoinKind::LeftOuter,
        2 => JoinKind::Semi,
        3 => JoinKind::Anti,
        4 => JoinKind::Single,
        t => return Err(corrupt(format!("unknown join tag {t}"))),
    })
}

fn put_strs(out: &mut Vec<u8>, strs: &[String]) {
    put_u32(out, strs.len() as u32);
    for s in strs {
        put_str(out, s);
    }
}

fn read_strs(r: &mut Reader) -> Result<Vec<String>, WalError> {
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.str()?);
    }
    Ok(out)
}

/// Encode a bound plan. `Cached`/`Store` wrappers are recycler-session
/// artifacts and are rejected — lineage persists the *canonical* subtree.
pub fn encode_plan(plan: &Plan) -> Result<Vec<u8>, WalError> {
    let mut out = Vec::with_capacity(128);
    put_plan(&mut out, plan)?;
    Ok(out)
}

fn put_plan(out: &mut Vec<u8>, plan: &Plan) -> Result<(), WalError> {
    match plan {
        Plan::Scan { table, cols } => {
            put_u8(out, 1);
            put_str(out, table);
            put_strs(out, cols);
        }
        Plan::FnScan { name, args, schema } => {
            put_u8(out, 2);
            put_str(out, name);
            put_exprs(out, args);
            put_schema(out, schema);
        }
        Plan::Select { child, predicate } => {
            put_u8(out, 3);
            put_plan(out, child)?;
            put_expr(out, predicate);
        }
        Plan::Project {
            child,
            exprs,
            names,
        } => {
            put_u8(out, 4);
            put_plan(out, child)?;
            put_exprs(out, exprs);
            put_strs(out, names);
        }
        Plan::Aggregate {
            child,
            group_by,
            group_names,
            aggs,
            agg_names,
        } => {
            put_u8(out, 5);
            put_plan(out, child)?;
            put_exprs(out, group_by);
            put_strs(out, group_names);
            put_u32(out, aggs.len() as u32);
            for a in aggs {
                put_agg(out, a);
            }
            put_strs(out, agg_names);
        }
        Plan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
        } => {
            put_u8(out, 6);
            put_plan(out, left)?;
            put_plan(out, right)?;
            put_u8(out, join_tag(*kind));
            put_exprs(out, left_keys);
            put_exprs(out, right_keys);
        }
        Plan::TopN { child, keys, n } => {
            put_u8(out, 7);
            put_plan(out, child)?;
            put_sort_keys(out, keys);
            put_u64(out, *n as u64);
        }
        Plan::Sort { child, keys } => {
            put_u8(out, 8);
            put_plan(out, child)?;
            put_sort_keys(out, keys);
        }
        Plan::Limit { child, n } => {
            put_u8(out, 9);
            put_plan(out, child)?;
            put_u64(out, *n as u64);
        }
        Plan::UnionAll { children } => {
            put_u8(out, 10);
            put_u32(out, children.len() as u32);
            for c in children {
                put_plan(out, c)?;
            }
        }
        Plan::Cached { .. } | Plan::Store { .. } => {
            return Err(WalError::Corrupt(
                "recycler-internal plan node (Cached/Store) is not persistable".to_string(),
            ));
        }
    }
    Ok(())
}

/// Decode a plan previously written by [`encode_plan`].
pub fn decode_plan(payload: &[u8]) -> Result<Plan, WalError> {
    let mut r = Reader::new(payload);
    let plan = read_plan(&mut r)?;
    if !r.is_empty() {
        return Err(corrupt("trailing bytes after plan"));
    }
    Ok(plan)
}

fn read_plan(r: &mut Reader) -> Result<Plan, WalError> {
    Ok(match r.u8()? {
        1 => Plan::Scan {
            table: r.str()?,
            cols: read_strs(r)?,
        },
        2 => Plan::FnScan {
            name: r.str()?,
            args: read_exprs(r)?,
            schema: read_schema(r)?,
        },
        3 => Plan::Select {
            child: Box::new(read_plan(r)?),
            predicate: read_expr(r)?,
        },
        4 => Plan::Project {
            child: Box::new(read_plan(r)?),
            exprs: read_exprs(r)?,
            names: read_strs(r)?,
        },
        5 => {
            let child = Box::new(read_plan(r)?);
            let group_by = read_exprs(r)?;
            let group_names = read_strs(r)?;
            let n = r.count()?;
            let mut aggs = Vec::with_capacity(n);
            for _ in 0..n {
                aggs.push(read_agg(r)?);
            }
            Plan::Aggregate {
                child,
                group_by,
                group_names,
                aggs,
                agg_names: read_strs(r)?,
            }
        }
        6 => {
            let left = Box::new(read_plan(r)?);
            let right = Box::new(read_plan(r)?);
            let kind = join_from(r.u8()?)?;
            Plan::Join {
                left,
                right,
                kind,
                left_keys: read_exprs(r)?,
                right_keys: read_exprs(r)?,
            }
        }
        7 => Plan::TopN {
            child: Box::new(read_plan(r)?),
            keys: read_sort_keys(r)?,
            n: r.u64()? as usize,
        },
        8 => Plan::Sort {
            child: Box::new(read_plan(r)?),
            keys: read_sort_keys(r)?,
        },
        9 => Plan::Limit {
            child: Box::new(read_plan(r)?),
            n: r.u64()? as usize,
        },
        10 => {
            let n = r.count()?;
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                children.push(read_plan(r)?);
            }
            Plan::UnionAll { children }
        }
        t => return Err(corrupt(format!("unknown plan tag {t}"))),
    })
}

// ---- lineage --------------------------------------------------------------

/// Encode one lineage entry (plan + epoch vector + ranking statistics).
pub fn encode_lineage(entry: &LineageEntry) -> Result<Vec<u8>, WalError> {
    let mut out = Vec::with_capacity(160);
    put_plan(&mut out, &entry.plan)?;
    put_u32(&mut out, entry.epochs.len() as u32);
    for (t, e) in &entry.epochs {
        put_str(&mut out, t);
        put_u64(&mut out, *e);
    }
    put_f64(&mut out, entry.benefit);
    put_f64(&mut out, entry.heat);
    put_f64(&mut out, entry.cost_ns);
    put_f64(&mut out, entry.cost_work);
    put_u64(&mut out, entry.rows);
    put_u64(&mut out, entry.bytes);
    Ok(out)
}

pub(crate) fn read_lineage(r: &mut Reader) -> Result<LineageEntry, WalError> {
    let plan = read_plan(r)?;
    let n = r.count()?;
    let mut epochs = Vec::with_capacity(n);
    for _ in 0..n {
        let t = r.str()?;
        let e = r.u64()?;
        epochs.push((t, e));
    }
    Ok(LineageEntry {
        plan,
        epochs,
        benefit: r.f64()?,
        heat: r.f64()?,
        cost_ns: r.f64()?,
        cost_work: r.f64()?,
        rows: r.u64()?,
        bytes: r.u64()?,
    })
}

/// Decode one lineage entry written by [`encode_lineage`].
pub fn decode_lineage(payload: &[u8]) -> Result<LineageEntry, WalError> {
    let mut r = Reader::new(payload);
    let entry = read_lineage(&mut r)?;
    if !r.is_empty() {
        return Err(corrupt("trailing bytes after lineage entry"));
    }
    Ok(entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> Plan {
        let scan = Plan::Scan {
            table: "lineitem".to_string(),
            cols: vec!["l_qty".to_string(), "l_price".to_string()],
        };
        let filtered = scan.select(Expr::Cmp(
            CmpOp::Gt,
            Box::new(Expr::Col(0)),
            Box::new(Expr::Lit(Value::Int(10))),
        ));
        Plan::Aggregate {
            child: Box::new(filtered),
            group_by: vec![Expr::Col(0)],
            group_names: vec!["q".to_string()],
            aggs: vec![AggFunc::Sum(Expr::Col(1)), AggFunc::CountStar],
            agg_names: vec!["s".to_string(), "c".to_string()],
        }
    }

    #[test]
    fn record_roundtrip() {
        let schema = Schema::from_pairs([("x", DataType::Int), ("s", DataType::Str)]);
        for delta in [
            TableDelta::Append {
                rows: vec![
                    vec![Value::Int(1), Value::str("a")],
                    vec![Value::Int(2), Value::Null],
                ],
            },
            TableDelta::Delete {
                deleted: vec![0, 7, 9],
            },
            TableDelta::Replace { rows: vec![] },
        ] {
            let rec = CommitRecord {
                table: "t".to_string(),
                schema: schema.clone(),
                epoch: 42,
                delta,
            };
            let bytes = encode_record(&rec);
            assert_eq!(decode_record(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn value_roundtrip_all_types() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-5),
            Value::Float(2.5),
            Value::str("héllo"),
            Value::Date(19_000),
        ] {
            let mut out = Vec::new();
            put_value(&mut out, &v);
            assert_eq!(read_value(&mut Reader::new(&out)).unwrap(), v);
        }
    }

    #[test]
    fn plan_roundtrip() {
        let plan = sample_plan();
        let bytes = encode_plan(&plan).unwrap();
        assert_eq!(decode_plan(&bytes).unwrap(), plan);
    }

    #[test]
    fn join_topn_union_roundtrip() {
        let left = Plan::Scan {
            table: "a".to_string(),
            cols: vec!["k".to_string()],
        };
        let right = Plan::Scan {
            table: "b".to_string(),
            cols: vec!["k".to_string()],
        };
        let join = Plan::Join {
            left: Box::new(left.clone()),
            right: Box::new(right),
            kind: JoinKind::Semi,
            left_keys: vec![Expr::Col(0)],
            right_keys: vec![Expr::Col(0)],
        };
        let plan = Plan::UnionAll {
            children: vec![
                Plan::TopN {
                    child: Box::new(join),
                    keys: vec![SortKeyExpr::desc(Expr::Col(0))],
                    n: 7,
                },
                Plan::Limit {
                    child: Box::new(left),
                    n: 3,
                },
            ],
        };
        let bytes = encode_plan(&plan).unwrap();
        assert_eq!(decode_plan(&bytes).unwrap(), plan);
    }

    #[test]
    fn store_and_cached_are_rejected() {
        let plan = Plan::Cached {
            tag: 1,
            schema: Schema::from_pairs([("x", DataType::Int)]),
        };
        assert!(matches!(encode_plan(&plan), Err(WalError::Corrupt(_))));
    }

    #[test]
    fn lineage_roundtrip() {
        let entry = LineageEntry {
            plan: sample_plan(),
            epochs: vec![("lineitem".to_string(), 3)],
            benefit: 12.5,
            heat: 0.75,
            cost_ns: 1e6,
            cost_work: 5e4,
            rows: 100,
            bytes: 4096,
        };
        let bytes = encode_lineage(&entry).unwrap();
        let back = decode_lineage(&bytes).unwrap();
        assert_eq!(back.plan, entry.plan);
        assert_eq!(back.epochs, entry.epochs);
        assert_eq!(back.benefit, entry.benefit);
        assert_eq!(back.rows, entry.rows);
    }

    #[test]
    fn corrupt_payloads_error_cleanly() {
        let rec = CommitRecord {
            table: "t".to_string(),
            schema: Schema::from_pairs([("x", DataType::Int)]),
            epoch: 1,
            delta: TableDelta::Append {
                rows: vec![vec![Value::Int(1)]],
            },
        };
        let bytes = encode_record(&rec);
        // Every truncation of a valid payload must error, never panic.
        for cut in 0..bytes.len() {
            assert!(decode_record(&bytes[..cut]).is_err());
        }
        // A wild tag errors too.
        let mut bad = bytes.clone();
        bad[0] = 0xEE;
        assert!(decode_record(&bad).is_err());
    }
}
