//! Checkpoints: a durable snapshot of every base table plus the
//! recycler's top-K lineage.
//!
//! A checkpoint is one file, `checkpoint.bin`: the magic `"RDBCKPT1"`
//! followed by a single CRC frame around the whole body (tables, then
//! lineage entries). It is written to `checkpoint.tmp`, fsynced, and
//! atomically renamed over the previous checkpoint — a crash mid-write
//! leaves the old checkpoint intact, never a half-new one. After the
//! rename lands, WAL segments fully covered by the checkpointed epochs
//! are deletable (see [`crate::wal::Wal::prune`]).

use std::io::{Read, Write};
use std::path::Path;

use rdb_recycler::LineageEntry;
use rdb_vector::{Schema, Value};

use crate::codec::{
    self, put_schema, put_str, put_u32, put_u64, put_value, read_schema, read_value, Reader,
};
use crate::frame::{encode_frame, scan_frames};
use crate::WalError;

/// Magic bytes opening the checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"RDBCKPT1";

/// Checkpoint file name within a data directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";

/// One table's image inside a checkpoint.
#[derive(Debug, Clone)]
pub struct TableCheckpoint {
    /// Table name.
    pub name: String,
    /// Epoch the image reflects.
    pub epoch: u64,
    /// Schema at checkpoint time (replay validates against the live one).
    pub schema: Schema,
    /// Full contents, row-major.
    pub rows: Vec<Vec<Value>>,
}

/// A whole checkpoint: base tables plus persisted recycler lineage.
#[derive(Debug, Clone, Default)]
pub struct Checkpoint {
    /// Every base table's image.
    pub tables: Vec<TableCheckpoint>,
    /// Top-K benefit lineage entries (may be empty).
    pub lineage: Vec<LineageEntry>,
}

impl Checkpoint {
    /// Highest table epoch in the checkpoint.
    pub fn max_epoch(&self) -> u64 {
        self.tables.iter().map(|t| t.epoch).max().unwrap_or(0)
    }
}

/// Write `ckpt` durably into `dir` (tmp + fsync + atomic rename + dir
/// fsync). Lineage entries whose plans cannot be serialized are skipped —
/// warming is an optimization, not a correctness requirement.
pub fn write_checkpoint(dir: &Path, ckpt: &Checkpoint) -> Result<(), WalError> {
    let mut body = Vec::with_capacity(4096);
    put_u32(&mut body, ckpt.tables.len() as u32);
    for t in &ckpt.tables {
        put_str(&mut body, &t.name);
        put_u64(&mut body, t.epoch);
        put_schema(&mut body, &t.schema);
        put_u32(&mut body, t.rows.len() as u32);
        for row in &t.rows {
            put_u32(&mut body, row.len() as u32);
            for v in row {
                put_value(&mut body, v);
            }
        }
    }
    let encodable: Vec<Vec<u8>> = ckpt
        .lineage
        .iter()
        .filter_map(|e| codec::encode_lineage(e).ok())
        .collect();
    put_u32(&mut body, encodable.len() as u32);
    for bytes in &encodable {
        put_u32(&mut body, bytes.len() as u32);
        body.extend_from_slice(bytes);
    }

    let mut out = Vec::with_capacity(body.len() + 32);
    out.extend_from_slice(CHECKPOINT_MAGIC);
    out.extend_from_slice(&encode_frame(&body));

    let tmp = dir.join("checkpoint.tmp");
    let path = dir.join(CHECKPOINT_FILE);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, &path)?;
    // Make the rename itself durable.
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Read the checkpoint in `dir`, if one exists. A missing file is
/// `Ok(None)` (cold start); a damaged file is an error — the WAL may
/// have been pruned against it, so silently ignoring it could lose data.
pub fn read_checkpoint(dir: &Path) -> Result<Option<Checkpoint>, WalError> {
    let path = dir.join(CHECKPOINT_FILE);
    let mut bytes = Vec::new();
    match std::fs::File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(WalError::Io(e)),
    }
    if bytes.len() < CHECKPOINT_MAGIC.len() || &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(WalError::Corrupt(format!(
            "{} is not a checkpoint (bad magic)",
            path.display()
        )));
    }
    let scan = scan_frames(&bytes[8..]);
    let (off, len) = match (scan.payloads.first(), scan.defect) {
        (Some(&p), None) if scan.payloads.len() == 1 => p,
        _ => {
            return Err(WalError::Corrupt(format!(
                "{} body is damaged (CRC or framing)",
                path.display()
            )))
        }
    };
    let body = &bytes[8..][off..off + len];
    let mut r = Reader::new(body);
    let ntables = r.count()?;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let name = r.str()?;
        let epoch = r.u64()?;
        let schema = read_schema(&mut r)?;
        let nrows = r.count()?;
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let arity = r.count()?;
            let mut row = Vec::with_capacity(arity);
            for _ in 0..arity {
                row.push(read_value(&mut r)?);
            }
            rows.push(row);
        }
        tables.push(TableCheckpoint {
            name,
            epoch,
            schema,
            rows,
        });
    }
    let nlineage = r.count()?;
    let mut lineage = Vec::with_capacity(nlineage);
    for _ in 0..nlineage {
        let n = r.count()?;
        lineage.push(codec::decode_lineage(r.bytes(n)?)?);
    }
    Ok(Some(Checkpoint { tables, lineage }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_vector::DataType;

    fn sample() -> Checkpoint {
        Checkpoint {
            tables: vec![TableCheckpoint {
                name: "t".to_string(),
                epoch: 9,
                schema: Schema::from_pairs([("x", DataType::Int), ("s", DataType::Str)]),
                rows: vec![
                    vec![Value::Int(1), Value::str("one")],
                    vec![Value::Int(2), Value::Null],
                ],
            }],
            lineage: vec![],
        }
    }

    #[test]
    fn roundtrip_and_atomicity() {
        let dir = std::env::temp_dir().join(format!("rdb-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        assert!(read_checkpoint(&dir).unwrap().is_none(), "cold start");
        write_checkpoint(&dir, &sample()).unwrap();
        let back = read_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(back.tables.len(), 1);
        assert_eq!(back.tables[0].epoch, 9);
        assert_eq!(back.tables[0].rows[1][1], Value::Null);
        assert_eq!(back.max_epoch(), 9);

        // Overwrite is atomic: a second write replaces, no tmp remains.
        write_checkpoint(&dir, &sample()).unwrap();
        assert!(!dir.join("checkpoint.tmp").exists());

        // Damage is an error, not a panic or a silent cold start.
        let path = dir.join(CHECKPOINT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_checkpoint(&dir), Err(WalError::Corrupt(_))));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
