//! The WAL writer: segmented appends, fsync policy, poisoning, pruning.
//!
//! One [`Wal`] serves a whole data directory. It implements
//! [`CommitHook`], so installing it on a catalog (see
//! `Catalog::set_commit_hook`) makes every table commit durable before
//! it becomes visible. All writer state sits behind one mutex — commits
//! to *different* tables serialize on the log, which is what makes the
//! log a single total order consistent with every per-table epoch order.
//!
//! # Poisoning
//!
//! The first failed write or fsync permanently poisons the log: the
//! failing commit is aborted by the hook error (the in-memory swap never
//! happens), and every later append fails fast with
//! [`WalError::Poisoned`] without touching the file. This keeps memory
//! and disk consistent under a dying device and gives the engine a
//! stable signal for read-only mode.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rdb_storage::{CommitHook, CommitRecord, StorageError};

use crate::fault::{IoFault, WriteFault};
use crate::frame::encode_frame;
use crate::segment::{
    list_segments, scan_segment, segment_file_name, segment_header, SEGMENT_HEADER,
};
use crate::{DurabilityConfig, FsyncPolicy, WalError};

/// Live (not yet pruned) segment bookkeeping.
struct SegmentMeta {
    seq: u64,
    path: PathBuf,
    /// Bytes written (valid prefix on open; exact length while live).
    bytes: u64,
    /// Highest epoch logged per table in this segment — the pruning key:
    /// a segment is deletable once a checkpoint covers all of these.
    table_max: HashMap<String, u64>,
}

struct Writer {
    file: File,
    segments: Vec<SegmentMeta>,
}

impl Writer {
    fn current(&mut self) -> &mut SegmentMeta {
        self.segments.last_mut().expect("writer has a segment")
    }
}

/// The write-ahead log for one data directory. See the module docs.
pub struct Wal {
    dir: PathBuf,
    policy: FsyncPolicy,
    segment_bytes: u64,
    fault: Arc<dyn IoFault>,
    inner: Mutex<Writer>,
    poisoned: AtomicBool,
    /// Bytes across all live segments (headers included).
    bytes_total: AtomicU64,
    /// Bytes appended since the last checkpoint/prune.
    bytes_since_checkpoint: AtomicU64,
    /// Records appended over the WAL's lifetime in this process.
    records: AtomicU64,
    /// Appends since the last fsync (EveryN bookkeeping).
    unsynced: AtomicU64,
}

impl Wal {
    /// Open (or create) the WAL in `dir`, appending after the last
    /// complete record. A torn or corrupt tail on the newest segment is
    /// truncated here, before any new append can interleave with it.
    pub fn open(
        dir: &Path,
        config: &DurabilityConfig,
        fault: Arc<dyn IoFault>,
    ) -> Result<Arc<Wal>, WalError> {
        std::fs::create_dir_all(dir)?;
        let mut segments = Vec::new();
        for (seq, path) in list_segments(dir)? {
            // Crash mid-creation leaves a short or torn header and,
            // provably, no acknowledged records (the header syncs before
            // any append): discard the file rather than failing to open.
            if !crate::segment::header_intact(&path)? {
                std::fs::remove_file(&path)?;
                continue;
            }
            let scan = scan_segment(&path)?;
            if scan.has_tail_garbage() {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(scan.clean_len)?;
                f.sync_data()?;
            }
            let mut table_max = HashMap::new();
            for rec in &scan.records {
                let e = table_max.entry(rec.table.clone()).or_insert(0u64);
                *e = (*e).max(rec.epoch);
            }
            segments.push(SegmentMeta {
                seq,
                path,
                bytes: scan.clean_len,
                table_max,
            });
        }
        let file = match segments.last() {
            Some(meta) => OpenOptions::new().append(true).open(&meta.path)?,
            None => {
                let meta = new_segment(dir, 1)?;
                let file = OpenOptions::new().append(true).open(&meta.path)?;
                segments.push(meta);
                file
            }
        };
        let bytes_total: u64 = segments.iter().map(|s| s.bytes).sum();
        Ok(Arc::new(Wal {
            dir: dir.to_path_buf(),
            policy: config.fsync,
            segment_bytes: config.segment_bytes.max(SEGMENT_HEADER + 1),
            fault,
            inner: Mutex::new(Writer { file, segments }),
            poisoned: AtomicBool::new(false),
            bytes_total: AtomicU64::new(bytes_total),
            bytes_since_checkpoint: AtomicU64::new(0),
            records: AtomicU64::new(0),
            unsynced: AtomicU64::new(0),
        }))
    }

    /// Whether an earlier I/O failure has poisoned the log.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Bytes across all live segments.
    pub fn wal_bytes(&self) -> u64 {
        self.bytes_total.load(Ordering::Relaxed)
    }

    /// Bytes appended since the last checkpoint (the checkpoint trigger).
    pub fn bytes_since_checkpoint(&self) -> u64 {
        self.bytes_since_checkpoint.load(Ordering::Relaxed)
    }

    /// Records appended by this process.
    pub fn records_appended(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Append one commit record, honouring the fsync policy. Any failure
    /// poisons the log (see the module docs).
    pub fn append(&self, rec: &CommitRecord) -> Result<(), WalError> {
        if self.is_poisoned() {
            return Err(WalError::Poisoned);
        }
        let frame = encode_frame(&crate::codec::encode_record(rec));
        let mut w = self.inner.lock();
        // Rotate if the frame would overflow a non-empty segment.
        if w.current().bytes + frame.len() as u64 > self.segment_bytes
            && w.current().bytes > SEGMENT_HEADER
        {
            if let Err(e) = self.rotate_locked(&mut w) {
                self.poison();
                return Err(e);
            }
        }
        match self.fault.on_write(frame.len()) {
            WriteFault::Allow => {
                if let Err(e) = w.file.write_all(&frame) {
                    self.poison();
                    return Err(WalError::Io(e));
                }
            }
            WriteFault::Short { bytes } => {
                // The torn prefix lands on disk — recovery must cope.
                let _ = w.file.write_all(&frame[..bytes]);
                let _ = w.file.sync_data();
                self.poison();
                return Err(WalError::Io(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "injected torn write",
                )));
            }
            WriteFault::DiskFull => {
                self.poison();
                return Err(WalError::Io(std::io::Error::new(
                    std::io::ErrorKind::StorageFull,
                    "injected disk full",
                )));
            }
        }
        let sync_due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => {
                self.unsynced.fetch_add(1, Ordering::Relaxed) + 1 >= n.max(1) as u64
            }
            FsyncPolicy::Off => false,
        };
        if sync_due {
            if let Err(e) = self.sync_locked(&mut w) {
                self.poison();
                return Err(e);
            }
        }
        {
            let cur = w.current();
            cur.bytes += frame.len() as u64;
            let e = cur.table_max.entry(rec.table.clone()).or_insert(0);
            *e = (*e).max(rec.epoch);
        }
        self.bytes_total
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.bytes_since_checkpoint
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.records.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn sync_locked(&self, w: &mut Writer) -> Result<(), WalError> {
        if self.fault.on_fsync() {
            return Err(WalError::Io(std::io::Error::other(
                "injected fsync failure",
            )));
        }
        w.file.sync_data()?;
        self.unsynced.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Explicit flush to stable storage (used by tests and shutdown).
    pub fn sync(&self) -> Result<(), WalError> {
        if self.is_poisoned() {
            return Err(WalError::Poisoned);
        }
        let mut w = self.inner.lock();
        self.sync_locked(&mut w).inspect_err(|_| self.poison())
    }

    fn rotate_locked(&self, w: &mut Writer) -> Result<(), WalError> {
        let next_seq = w.current().seq + 1;
        // Durably finish the old segment before opening its successor.
        w.file.sync_data()?;
        let meta = new_segment(&self.dir, next_seq)?;
        w.file = OpenOptions::new().append(true).open(&meta.path)?;
        w.segments.push(meta);
        self.bytes_total
            .fetch_add(SEGMENT_HEADER, Ordering::Relaxed);
        Ok(())
    }

    /// After a checkpoint at `epochs` (table → checkpointed epoch) has
    /// landed durably: rotate to a fresh segment and delete every older
    /// segment fully covered by the checkpoint. A segment containing any
    /// record *newer* than the checkpoint survives — recovery skips the
    /// covered records individually.
    pub fn prune(&self, epochs: &HashMap<String, u64>) -> Result<u64, WalError> {
        if self.is_poisoned() {
            return Err(WalError::Poisoned);
        }
        let mut w = self.inner.lock();
        if w.current().bytes > SEGMENT_HEADER {
            if let Err(e) = self.rotate_locked(&mut w) {
                self.poison();
                return Err(e);
            }
        }
        let mut dropped = 0u64;
        let last = w.segments.len() - 1;
        let mut keep = Vec::with_capacity(w.segments.len());
        for (i, seg) in w.segments.drain(..).enumerate() {
            let covered = i < last
                && seg
                    .table_max
                    .iter()
                    .all(|(t, &e)| epochs.get(t).is_some_and(|&ck| ck >= e));
            if covered {
                std::fs::remove_file(&seg.path)?;
                dropped += seg.bytes;
                self.bytes_total.fetch_sub(seg.bytes, Ordering::Relaxed);
            } else {
                keep.push(seg);
            }
        }
        w.segments = keep;
        self.bytes_since_checkpoint.store(0, Ordering::Relaxed);
        Ok(dropped)
    }
}

fn new_segment(dir: &Path, seq: u64) -> Result<SegmentMeta, WalError> {
    let path = dir.join(segment_file_name(seq));
    let mut f = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)?;
    f.write_all(&segment_header(seq))?;
    f.sync_data()?;
    Ok(SegmentMeta {
        seq,
        path,
        bytes: SEGMENT_HEADER,
        table_max: HashMap::new(),
    })
}

impl CommitHook for Wal {
    fn before_commit(&self, record: &CommitRecord) -> Result<(), StorageError> {
        self.append(record)
            .map_err(|e| StorageError(format!("wal append failed: {e}")))
    }
}
