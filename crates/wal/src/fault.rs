//! Fault injection for the WAL writer.
//!
//! Every physical write and fsync the WAL performs is routed through an
//! [`IoFault`] first, so tests (and the crash harness) can simulate the
//! disk failing in the ways real disks fail: torn writes (a prefix of
//! the frame lands), short writes, fsync errors, and disk-full — all
//! without a real faulty device. Production uses [`NoFault`], which
//! compiles down to nothing.

use std::sync::atomic::{AtomicU64, Ordering};

/// What an injected fault does to one frame write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Write the full frame normally.
    Allow,
    /// Write only the first `bytes` of the frame, then fail the call —
    /// a torn/short write: the partial bytes *do* land on disk, so
    /// recovery must detect and truncate them.
    Short {
        /// Prefix length that reaches the disk.
        bytes: usize,
    },
    /// Write nothing and fail with `ENOSPC` (disk full).
    DiskFull,
}

/// Decides the fate of each WAL write and fsync. Threaded through the
/// writer; see the module docs.
pub trait IoFault: Send + Sync {
    /// Called before each frame write with the frame length.
    fn on_write(&self, len: usize) -> WriteFault {
        let _ = len;
        WriteFault::Allow
    }

    /// Called before each fsync; returning `true` fails the fsync.
    fn on_fsync(&self) -> bool {
        false
    }
}

/// The production fault layer: never fails anything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFault;

impl IoFault for NoFault {}

/// A scripted injector: fail the `i`-th write (0-based, counting every
/// frame write) and/or the `j`-th fsync, in a chosen mode. Earlier and
/// later operations succeed, which is exactly how a single media error
/// presents.
#[derive(Debug, Default)]
pub struct ScriptedFault {
    writes: AtomicU64,
    syncs: AtomicU64,
    /// Index of the write to fail, if any.
    pub fail_write_at: Option<u64>,
    /// If set, the failing write lands this many prefix bytes (torn
    /// write); if unset, it is a disk-full (nothing lands).
    pub torn_bytes: Option<usize>,
    /// Index of the fsync to fail, if any.
    pub fail_fsync_at: Option<u64>,
}

impl ScriptedFault {
    /// Fail the `n`-th write as disk-full.
    pub fn disk_full_at(n: u64) -> ScriptedFault {
        ScriptedFault {
            fail_write_at: Some(n),
            ..ScriptedFault::default()
        }
    }

    /// Fail the `n`-th write as a torn write landing `bytes` bytes.
    pub fn torn_at(n: u64, bytes: usize) -> ScriptedFault {
        ScriptedFault {
            fail_write_at: Some(n),
            torn_bytes: Some(bytes),
            ..ScriptedFault::default()
        }
    }

    /// Fail the `n`-th fsync.
    pub fn fsync_fail_at(n: u64) -> ScriptedFault {
        ScriptedFault {
            fail_fsync_at: Some(n),
            ..ScriptedFault::default()
        }
    }

    /// Writes observed so far.
    pub fn writes_seen(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Fsyncs observed so far.
    pub fn syncs_seen(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }
}

impl IoFault for ScriptedFault {
    fn on_write(&self, len: usize) -> WriteFault {
        let i = self.writes.fetch_add(1, Ordering::Relaxed);
        if Some(i) == self.fail_write_at {
            match self.torn_bytes {
                Some(bytes) => WriteFault::Short {
                    bytes: bytes.min(len.saturating_sub(1)),
                },
                None => WriteFault::DiskFull,
            }
        } else {
            WriteFault::Allow
        }
    }

    fn on_fsync(&self) -> bool {
        let i = self.syncs.fetch_add(1, Ordering::Relaxed);
        Some(i) == self.fail_fsync_at
    }
}
