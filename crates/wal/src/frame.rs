//! The length-prefixed, CRC-checked frame: `[len u32][crc32 u32][payload]`.
//!
//! Frames are the unit of torn-write detection. A scan walks frames from
//! the front and stops at the first one that is incomplete (length runs
//! past the buffer) or whose CRC does not match — everything before that
//! point is trusted, everything from it on is a tail to truncate.

/// Bytes of frame header (`len` + `crc32`).
pub const FRAME_HEADER: usize = 8;

/// Frames larger than this are treated as corruption rather than
/// allocated: a torn length field can otherwise claim gigabytes.
pub const MAX_FRAME_LEN: u32 = 256 << 20;

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// IEEE CRC-32 of `data` (the zlib/PNG polynomial).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Encode one frame around `payload`.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a frame scan stopped before the end of the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailDefect {
    /// The last frame's bytes run past the end (torn/short write).
    Truncated,
    /// A complete frame's CRC did not match (corrupted write).
    Corrupt,
}

/// Result of scanning a byte buffer for frames.
#[derive(Debug)]
pub struct FrameScan {
    /// `(offset, len)` of each valid frame's payload, in order.
    pub payloads: Vec<(usize, usize)>,
    /// Byte length of the valid prefix (end of the last good frame).
    pub clean_len: usize,
    /// Why the scan stopped early, if it did.
    pub defect: Option<TailDefect>,
}

/// Walk `bytes` front to back, collecting every complete CRC-valid frame
/// and stopping (without panicking) at the first defect.
pub fn scan_frames(bytes: &[u8]) -> FrameScan {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    let mut defect = None;
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_HEADER {
            defect = Some(TailDefect::Truncated);
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            defect = Some(TailDefect::Corrupt);
            break;
        }
        let len = len as usize;
        let start = pos + FRAME_HEADER;
        if bytes.len() - start < len {
            defect = Some(TailDefect::Truncated);
            break;
        }
        if crc32(&bytes[start..start + len]) != crc {
            defect = Some(TailDefect::Corrupt);
            break;
        }
        payloads.push((start, len));
        pos = start + len;
    }
    let clean_len = if defect.is_some() {
        payloads.last().map_or(0, |&(off, len)| off + len)
    } else {
        pos
    };
    FrameScan {
        payloads,
        clean_len,
        defect,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = encode_frame(b"alpha");
        buf.extend(encode_frame(b""));
        buf.extend(encode_frame(b"gamma!"));
        let scan = scan_frames(&buf);
        assert!(scan.defect.is_none());
        assert_eq!(scan.clean_len, buf.len());
        let got: Vec<&[u8]> = scan.payloads.iter().map(|&(o, l)| &buf[o..o + l]).collect();
        assert_eq!(got, vec![&b"alpha"[..], &b""[..], &b"gamma!"[..]]);
    }

    #[test]
    fn torn_tail_is_detected_not_fatal() {
        let mut buf = encode_frame(b"keep me");
        let keep = buf.len();
        let torn = encode_frame(b"torn write");
        buf.extend(&torn[..torn.len() - 3]);
        let scan = scan_frames(&buf);
        assert_eq!(scan.defect, Some(TailDefect::Truncated));
        assert_eq!(scan.clean_len, keep);
        assert_eq!(scan.payloads.len(), 1);
    }

    #[test]
    fn corrupt_crc_is_detected() {
        let mut buf = encode_frame(b"keep me");
        let keep = buf.len();
        let mut bad = encode_frame(b"bitrot victim");
        let flip = bad.len() - 1;
        bad[flip] ^= 0x40;
        buf.extend(&bad);
        let scan = scan_frames(&buf);
        assert_eq!(scan.defect, Some(TailDefect::Corrupt));
        assert_eq!(scan.clean_len, keep);
        assert_eq!(scan.payloads.len(), 1);
    }

    #[test]
    fn absurd_length_is_corruption_not_allocation() {
        let mut buf = encode_frame(b"ok");
        let keep = buf.len();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0xAB; 64]);
        let scan = scan_frames(&buf);
        assert_eq!(scan.defect, Some(TailDefect::Corrupt));
        assert_eq!(scan.clean_len, keep);
    }
}
