//! Allocation-free selection kernel: predicates compiled into per-batch
//! index loops.
//!
//! The old filter hot path materialized a physical-length `Vec<bool>` per
//! batch per predicate ([`crate::eval::eval_predicate`]) and, for every
//! comparison against a literal, broadcast the literal into a full column
//! first. This module replaces both costs:
//!
//! * [`CompiledPredicate::compile`] splits a predicate into its top-level
//!   conjuncts once, at operator-construction time. Conjuncts of the shape
//!   `col <op> literal` (either orientation) are classified as direct
//!   column/scalar comparisons; everything else stays a general expression
//!   evaluated through [`crate::eval::eval`].
//! * [`CompiledPredicate::select_into`] then evaluates the conjunction as
//!   one pass per conjunct over a caller-owned `Vec<u32>` of qualifying
//!   **physical** row indices: the first conjunct seeds the buffer with a
//!   branch-free write-and-advance loop (`out[k] = i; k += pass as usize`),
//!   later conjuncts refine it in place. No `Vec<bool>`, no literal
//!   broadcast, no allocation once the scratch buffer is warm.
//!
//! Splitting at top-level `AND` is exact at the filter boundary: a row
//! passes a Kleene conjunction collapsed with "NULL is not true" iff every
//! conjunct is *strictly* true for it, which is precisely the intersection
//! of the per-conjunct index sets. NULL literals, nested `OR`s, `CASE`s,
//! etc. all take the general path and keep their three-valued semantics.

use rdb_vector::column::{Column, ColumnSlice};
use rdb_vector::{Batch, DataType, Value};

use crate::eval::eval;
use crate::expr::{CmpOp, Expr};

/// A predicate pre-split into conjuncts with their evaluation strategy
/// chosen. Compile once per operator, reuse for every batch.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    conjuncts: Vec<Conjunct>,
}

#[derive(Debug, Clone)]
enum Conjunct {
    /// `column <op> literal` — evaluated as a direct typed loop, no
    /// intermediate columns.
    ColCmp { col: usize, op: CmpOp, lit: Value },
    /// Anything else — evaluated through the general expression walk,
    /// then folded into the index buffer (NULL collapses to false).
    General(Expr),
}

impl CompiledPredicate {
    /// Split `expr` at its top-level `AND` and classify each conjunct.
    pub fn compile(expr: &Expr) -> CompiledPredicate {
        let conjuncts = match expr {
            Expr::And(parts) => parts.iter().map(classify).collect(),
            other => vec![classify(other)],
        };
        CompiledPredicate { conjuncts }
    }

    /// Number of top-level conjuncts (diagnostics / EXPLAIN).
    pub fn conjunct_count(&self) -> usize {
        self.conjuncts.len()
    }

    /// Fill `out` with the qualifying physical row indices of `batch`,
    /// starting from the batch's own selection vector (or all physical
    /// rows when it has none). `out` is cleared first; reuse it across
    /// batches to stay allocation-free.
    pub fn select_into(&self, batch: &Batch, out: &mut Vec<u32>) {
        self.run(batch, out, false);
    }

    /// [`CompiledPredicate::select_into`] over **all** physical rows,
    /// ignoring any selection vector on the batch (the `eval_predicate`
    /// compatibility domain).
    pub fn select_physical_into(&self, batch: &Batch, out: &mut Vec<u32>) {
        self.run(batch, out, true);
    }

    /// Refine an existing physical-index list in place: keep only the
    /// indices satisfying every conjunct. Used by fused pipelines, where
    /// the live selection is chain state rather than a batch attribute.
    pub fn refine(&self, batch: &Batch, sel: &mut Vec<u32>) {
        for c in &self.conjuncts {
            if sel.is_empty() {
                return;
            }
            apply_conjunct(c, batch, sel, true, false);
        }
    }

    fn run(&self, batch: &Batch, out: &mut Vec<u32>, physical: bool) {
        out.clear();
        let mut seeded = false;
        for c in &self.conjuncts {
            apply_conjunct(c, batch, out, seeded, physical);
            seeded = true;
            if out.is_empty() {
                return;
            }
        }
        if !seeded {
            // An empty conjunction (`AND` of nothing) selects everything.
            seed_all(batch, out, physical);
        }
    }
}

fn classify(e: &Expr) -> Conjunct {
    if let Expr::Cmp(op, a, b) = e {
        match (&**a, &**b) {
            (Expr::Col(i), Expr::Lit(v)) if !v.is_null() => {
                return Conjunct::ColCmp {
                    col: *i,
                    op: *op,
                    lit: v.clone(),
                }
            }
            (Expr::Lit(v), Expr::Col(i)) if !v.is_null() => {
                return Conjunct::ColCmp {
                    col: *i,
                    op: flip(*op),
                    lit: v.clone(),
                }
            }
            _ => {}
        }
    }
    Conjunct::General(e.clone())
}

/// Mirror a comparison across its operands (`lit op col` → `col op' lit`).
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Seed/refine driver: one branch-free pass writing surviving indices.
///
/// When `seeded`, refines `out` in place; otherwise seeds it from the
/// batch's selection (or `0..physical_rows` when `physical` or no
/// selection is present).
fn drive<F: FnMut(usize) -> bool>(
    batch: &Batch,
    out: &mut Vec<u32>,
    seeded: bool,
    physical: bool,
    mut pass: F,
) {
    if seeded {
        let mut k = 0;
        for j in 0..out.len() {
            let p = out[j];
            out[k] = p;
            k += pass(p as usize) as usize;
        }
        out.truncate(k);
        return;
    }
    match batch.sel().filter(|_| !physical) {
        Some(sel) => {
            out.resize(sel.len(), 0);
            let mut k = 0;
            for &p in sel {
                out[k] = p;
                k += pass(p as usize) as usize;
            }
            out.truncate(k);
        }
        None => {
            let n = batch.physical_rows();
            out.resize(n, 0);
            let mut k = 0;
            for i in 0..n {
                out[k] = i as u32;
                k += pass(i) as usize;
            }
            out.truncate(k);
        }
    }
}

/// Seed `out` with every in-domain row (empty-conjunction case).
fn seed_all(batch: &Batch, out: &mut Vec<u32>, physical: bool) {
    match batch.sel().filter(|_| !physical) {
        Some(sel) => out.extend_from_slice(sel),
        None => out.extend(0..batch.physical_rows() as u32),
    }
}

fn apply_conjunct(c: &Conjunct, batch: &Batch, out: &mut Vec<u32>, seeded: bool, physical: bool) {
    match c {
        Conjunct::ColCmp { col, op, lit } => {
            let column = batch.column(*col);
            if !apply_colcmp(column, *op, lit, batch, out, seeded, physical) {
                // Rare typed combination with no direct loop: fall back to
                // the general evaluator for this conjunct only.
                let e = Expr::Cmp(
                    *op,
                    Box::new(Expr::Col(*col)),
                    Box::new(Expr::Lit(lit.clone())),
                );
                apply_general(&e, batch, out, seeded, physical);
            }
        }
        Conjunct::General(e) => apply_general(e, batch, out, seeded, physical),
    }
}

/// Direct typed column-vs-literal loop. Returns false when the type pair
/// has no fast path (caller falls back to general evaluation).
fn apply_colcmp(
    col: &Column,
    op: CmpOp,
    lit: &Value,
    batch: &Batch,
    out: &mut Vec<u32>,
    seeded: bool,
    physical: bool,
) -> bool {
    macro_rules! run {
        ($vals:expr, $pass:expr) => {{
            let vals = $vals;
            let pass = $pass;
            match col.validity() {
                None => drive(batch, out, seeded, physical, |i| pass(&vals[i])),
                Some(m) => drive(batch, out, seeded, physical, |i| m[i] && pass(&vals[i])),
            }
            true
        }};
    }
    match (col.values(), lit) {
        (ColumnSlice::Int(v), Value::Int(l)) => {
            let l = *l;
            match op {
                CmpOp::Eq => run!(v, move |x: &i64| *x == l),
                CmpOp::Ne => run!(v, move |x: &i64| *x != l),
                CmpOp::Lt => run!(v, move |x: &i64| *x < l),
                CmpOp::Le => run!(v, move |x: &i64| *x <= l),
                CmpOp::Gt => run!(v, move |x: &i64| *x > l),
                CmpOp::Ge => run!(v, move |x: &i64| *x >= l),
            }
        }
        (ColumnSlice::Float(v), Value::Float(l)) => {
            let l = *l;
            let test = cmp_test(op);
            run!(v, move |x: &f64| test(x.total_cmp(&l)))
        }
        (ColumnSlice::Int(v), Value::Float(l)) => {
            let l = *l;
            let test = cmp_test(op);
            run!(v, move |x: &i64| test((*x as f64).total_cmp(&l)))
        }
        (ColumnSlice::Float(v), Value::Int(l)) => {
            let l = *l as f64;
            let test = cmp_test(op);
            run!(v, move |x: &f64| test(x.total_cmp(&l)))
        }
        (ColumnSlice::Date(v), Value::Date(l)) => {
            let l = *l;
            let test = cmp_test(op);
            run!(v, move |x: &i32| test(x.cmp(&l)))
        }
        (ColumnSlice::Str(v), Value::Str(l)) => {
            let l = l.clone();
            let test = cmp_test(op);
            run!(v, move |x: &std::sync::Arc<str>| test(
                x.as_ref().cmp(l.as_ref())
            ))
        }
        (ColumnSlice::Bool(v), Value::Bool(l)) => {
            let l = *l;
            let test = cmp_test(op);
            run!(v, move |x: &bool| test(x.cmp(&l)))
        }
        _ => false,
    }
}

/// Ordering-based test for one comparison operator.
#[inline]
fn cmp_test(op: CmpOp) -> fn(std::cmp::Ordering) -> bool {
    use std::cmp::Ordering;
    match op {
        CmpOp::Eq => |o| o == Ordering::Equal,
        CmpOp::Ne => |o| o != Ordering::Equal,
        CmpOp::Lt => |o| o == Ordering::Less,
        CmpOp::Le => |o| o != Ordering::Greater,
        CmpOp::Gt => |o| o == Ordering::Greater,
        CmpOp::Ge => |o| o != Ordering::Less,
    }
}

/// General conjunct: evaluate as a boolean column, fold NULL to false.
fn apply_general(e: &Expr, batch: &Batch, out: &mut Vec<u32>, seeded: bool, physical: bool) {
    let c = eval(e, batch);
    assert_eq!(c.data_type(), DataType::Bool, "predicate must be boolean");
    let vals = c.as_bools();
    match c.validity() {
        None => drive(batch, out, seeded, physical, |i| vals[i]),
        Some(m) => drive(batch, out, seeded, physical, |i| vals[i] && m[i]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_predicate;
    use rdb_vector::column::ColumnBuilder;
    use std::sync::Arc;

    fn batch() -> Batch {
        let mut nb = ColumnBuilder::new(DataType::Int, 5);
        nb.push(Value::Int(10));
        nb.push_null();
        nb.push(Value::Int(30));
        nb.push(Value::Int(40));
        nb.push(Value::Int(50));
        Batch::new(vec![
            Column::from_ints(vec![1, 2, 3, 4, 5]),
            Column::from_floats(vec![0.5, 1.5, 2.5, 3.5, 4.5]),
            nb.finish(),
            Column::from_strs(["a", "b", "c", "d", "e"]),
        ])
    }

    fn select(expr: &Expr, b: &Batch) -> Vec<u32> {
        let mut out = Vec::new();
        CompiledPredicate::compile(expr).select_into(b, &mut out);
        out
    }

    #[test]
    fn single_colcmp_selects_indices() {
        let b = batch();
        assert_eq!(select(&Expr::col(0).gt(Expr::lit(3)), &b), vec![3, 4]);
        assert_eq!(select(&Expr::col(1).le(Expr::lit(1.5)), &b), vec![0, 1]);
        assert_eq!(
            select(&Expr::col(3).ge(Expr::lit(Value::str("d"))), &b),
            vec![3, 4]
        );
    }

    #[test]
    fn flipped_literal_orientation() {
        let b = batch();
        // 3 < col0  ≡  col0 > 3
        let e = Expr::Cmp(CmpOp::Lt, Box::new(Expr::lit(3)), Box::new(Expr::col(0)));
        assert_eq!(select(&e, &b), vec![3, 4]);
    }

    #[test]
    fn conjunction_intersects_branch_free() {
        let b = batch();
        let e = Expr::col(0)
            .gt(Expr::lit(1))
            .and(Expr::col(1).lt(Expr::lit(4.0)));
        let p = CompiledPredicate::compile(&e);
        assert_eq!(p.conjunct_count(), 2);
        let mut out = Vec::new();
        p.select_into(&b, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn null_rows_never_pass() {
        let b = batch();
        assert_eq!(select(&Expr::col(2).ge(Expr::lit(0)), &b), vec![0, 2, 3, 4]);
        // Mixed promotion against a float literal.
        assert_eq!(select(&Expr::col(2).gt(Expr::lit(25.0)), &b), vec![2, 3, 4]);
    }

    #[test]
    fn composes_with_existing_selection() {
        let b = batch().with_selection(Arc::new(vec![0, 2, 4]));
        assert_eq!(select(&Expr::col(0).gt(Expr::lit(1)), &b), vec![2, 4]);
        // The physical domain ignores the selection.
        let mut out = Vec::new();
        CompiledPredicate::compile(&Expr::col(0).gt(Expr::lit(1)))
            .select_physical_into(&b, &mut out);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn refine_narrows_chain_state() {
        let b = batch();
        let mut sel: Vec<u32> = vec![0, 1, 2, 3, 4];
        CompiledPredicate::compile(&Expr::col(0).gt(Expr::lit(2))).refine(&b, &mut sel);
        assert_eq!(sel, vec![2, 3, 4]);
        CompiledPredicate::compile(&Expr::col(1).lt(Expr::lit(4.0))).refine(&b, &mut sel);
        assert_eq!(sel, vec![2, 3]);
    }

    #[test]
    fn general_expressions_fall_back_and_agree() {
        let b = batch();
        // OR is not splittable: general path, same outcome as the mask.
        let e = Expr::col(0)
            .eq(Expr::lit(1))
            .or(Expr::col(0).eq(Expr::lit(5)));
        let mask = eval_predicate(&e, &b);
        let idx = select(&e, &b);
        let from_mask: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(i as u32))
            .collect();
        assert_eq!(idx, from_mask);
    }

    #[test]
    fn null_literal_comparison_selects_nothing() {
        let b = batch();
        let e = Expr::col(0).gt(Expr::lit(Value::Null));
        assert_eq!(select(&e, &b), Vec::<u32>::new());
    }
}
