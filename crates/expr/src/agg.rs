//! Aggregate function specifications.
//!
//! These are *plan parameters* — the executor crate implements the actual
//! accumulation. They live here so that both the plan crate (structural
//! matching in the recycler graph) and the executor can use them.

use std::fmt;

use rdb_vector::DataType;

use crate::expr::Expr;

/// An aggregate function over an argument expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `count(*)` — counts rows.
    CountStar,
    /// `count(expr)` — counts non-NULL values.
    Count(Expr),
    /// `sum(expr)`.
    Sum(Expr),
    /// `min(expr)`.
    Min(Expr),
    /// `max(expr)`.
    Max(Expr),
    /// `avg(expr)` = sum/count over non-NULL values.
    Avg(Expr),
    /// `count(distinct expr)`.
    CountDistinct(Expr),
}

impl AggFunc {
    /// The argument expression, if any.
    pub fn argument(&self) -> Option<&Expr> {
        match self {
            AggFunc::CountStar => None,
            AggFunc::Count(e)
            | AggFunc::Sum(e)
            | AggFunc::Min(e)
            | AggFunc::Max(e)
            | AggFunc::Avg(e)
            | AggFunc::CountDistinct(e) => Some(e),
        }
    }

    /// Rebuild with the argument transformed by `f`.
    pub fn map_argument(&self, f: &mut impl FnMut(&Expr) -> Expr) -> AggFunc {
        match self {
            AggFunc::CountStar => AggFunc::CountStar,
            AggFunc::Count(e) => AggFunc::Count(f(e)),
            AggFunc::Sum(e) => AggFunc::Sum(f(e)),
            AggFunc::Min(e) => AggFunc::Min(f(e)),
            AggFunc::Max(e) => AggFunc::Max(f(e)),
            AggFunc::Avg(e) => AggFunc::Avg(f(e)),
            AggFunc::CountDistinct(e) => AggFunc::CountDistinct(f(e)),
        }
    }

    /// Output type given the input column types.
    pub fn data_type(&self, input: &[DataType]) -> DataType {
        match self {
            AggFunc::CountStar | AggFunc::Count(_) | AggFunc::CountDistinct(_) => DataType::Int,
            AggFunc::Sum(e) => match e.data_type(input) {
                DataType::Int => DataType::Int,
                _ => DataType::Float,
            },
            AggFunc::Min(e) | AggFunc::Max(e) => e.data_type(input),
            AggFunc::Avg(_) => DataType::Float,
        }
    }

    /// Whether a re-aggregation of this function's partial results uses the
    /// same function (`sum` of `sum`s, `min` of `min`s). `count` re-aggregates
    /// via `sum`; `avg` and `count distinct` are not decomposable without
    /// auxiliary columns. Used by the proactive cube-caching rewrites (paper
    /// §IV-B: "standard aggregate calculation decomposition rules").
    pub fn reaggregate(&self, partial_col: usize) -> Option<AggFunc> {
        let arg = Expr::col(partial_col);
        match self {
            AggFunc::CountStar | AggFunc::Count(_) => Some(AggFunc::Sum(arg)),
            AggFunc::Sum(_) => Some(AggFunc::Sum(arg)),
            AggFunc::Min(_) => Some(AggFunc::Min(arg)),
            AggFunc::Max(_) => Some(AggFunc::Max(arg)),
            AggFunc::Avg(_) | AggFunc::CountDistinct(_) => None,
        }
    }

    /// Short name for display.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::CountStar => "count(*)",
            AggFunc::Count(_) => "count",
            AggFunc::Sum(_) => "sum",
            AggFunc::Min(_) => "min",
            AggFunc::Max(_) => "max",
            AggFunc::Avg(_) => "avg",
            AggFunc::CountDistinct(_) => "count_distinct",
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.argument() {
            None => write!(f, "{}", self.name()),
            Some(e) => write!(f, "{}({e})", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types() {
        let tys = [DataType::Int, DataType::Float];
        assert_eq!(AggFunc::CountStar.data_type(&tys), DataType::Int);
        assert_eq!(AggFunc::Sum(Expr::col(0)).data_type(&tys), DataType::Int);
        assert_eq!(AggFunc::Sum(Expr::col(1)).data_type(&tys), DataType::Float);
        assert_eq!(AggFunc::Avg(Expr::col(0)).data_type(&tys), DataType::Float);
        assert_eq!(AggFunc::Min(Expr::col(1)).data_type(&tys), DataType::Float);
    }

    #[test]
    fn reaggregation_rules() {
        assert_eq!(
            AggFunc::CountStar.reaggregate(2),
            Some(AggFunc::Sum(Expr::col(2)))
        );
        assert_eq!(
            AggFunc::Sum(Expr::col(0)).reaggregate(1),
            Some(AggFunc::Sum(Expr::col(1)))
        );
        assert_eq!(
            AggFunc::Min(Expr::col(0)).reaggregate(1),
            Some(AggFunc::Min(Expr::col(1)))
        );
        assert_eq!(AggFunc::Avg(Expr::col(0)).reaggregate(1), None);
        assert_eq!(AggFunc::CountDistinct(Expr::col(0)).reaggregate(1), None);
    }

    #[test]
    fn display() {
        assert_eq!(AggFunc::CountStar.to_string(), "count(*)");
        assert_eq!(AggFunc::Sum(Expr::col(3)).to_string(), "sum($3)");
    }

    #[test]
    fn structural_equality() {
        assert_eq!(AggFunc::Sum(Expr::col(1)), AggFunc::Sum(Expr::col(1)));
        assert_ne!(AggFunc::Sum(Expr::col(1)), AggFunc::Sum(Expr::col(2)));
        assert_ne!(AggFunc::Sum(Expr::col(1)), AggFunc::Avg(Expr::col(1)));
    }
}
