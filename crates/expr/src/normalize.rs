//! Expression canonicalization for recycler matching.
//!
//! The recycler matches subplans *structurally* (paper §III-A), so two
//! semantically identical predicates that differ only textually — `a AND b`
//! vs `b AND a`, `5 < x` vs `x > 5`, `1 + 1` vs `2` — fingerprint as
//! different subplans and recycle nothing. [`normalize_expr`] rewrites an
//! expression into a canonical form so that such variants converge:
//!
//! * **commutative ordering** — AND/OR operand lists are flattened,
//!   deduplicated, and sorted by a deterministic key;
//! * **constant folding** — arithmetic and comparisons over literals are
//!   evaluated (mirroring the engine's vectorized semantics exactly; cases
//!   where folding could change a result or a derived type are left alone);
//! * **comparison canonicalization** — a literal on the left moves right
//!   (`5 < x` → `x > 5`), and symmetric operators (`=`, `<>`) order their
//!   operands deterministically;
//! * **NOT pushdown** — `NOT (a < b)` → `a >= b`, `NOT (x IS NULL)` →
//!   `x IS NOT NULL`, double negation elimination. All rewrites are valid
//!   under Kleene three-valued logic (comparisons are NULL iff an operand
//!   is NULL, and flipping the operator preserves that).
//!
//! Every rewrite preserves semantics *including* NULL behaviour and the
//! derived output type; normalization is therefore safe to run on every
//! plan before fingerprinting, which is exactly what the session layer
//! does.

use rdb_vector::Value;

use crate::expr::{ArithOp, CmpOp, Expr};

/// Canonicalize an expression (see the module docs). Idempotent:
/// `normalize_expr(&normalize_expr(e)) == normalize_expr(e)`.
pub fn normalize_expr(e: &Expr) -> Expr {
    // Bottom-up: children first, then local rules.
    let e = e.map_children(&mut |c| normalize_expr(c));
    match e {
        Expr::Arith(op, a, b) => fold_arith(op, *a, *b),
        Expr::Cmp(op, a, b) => fold_cmp(op, *a, *b),
        Expr::And(items) => rebuild_junction(items, true),
        Expr::Or(items) => rebuild_junction(items, false),
        Expr::Not(inner) => push_not(*inner),
        other => other,
    }
}

/// Mirror image of a comparison operator under operand swap.
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Kleene negation of a comparison operator (`NOT (a < b)` ≡ `a >= b`:
/// both are NULL exactly when an operand is NULL).
fn negate(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
    }
}

/// A deterministic total sort key. Structurally equal expressions render
/// identically, so dedup-after-sort is exact; distinct expressions that
/// happen to render alike merely tie (the sort is stable).
fn sort_key(e: &Expr) -> String {
    e.to_string()
}

fn fold_arith(op: ArithOp, a: Expr, b: Expr) -> Expr {
    if let (Expr::Lit(x), Expr::Lit(y)) = (&a, &b) {
        if let Some(v) = const_arith(op, x, y) {
            return Expr::Lit(v);
        }
    }
    Expr::Arith(op, Box::new(a), Box::new(b))
}

/// Evaluate `x op y` over literals, mirroring `rdb_expr::eval`'s
/// column-at-a-time semantics. Returns `None` where folding is unsafe:
/// integer overflow, division (int/int division changes the derived
/// type, and division by zero changes NULL/∞ behaviour), or type
/// combinations the executor would reject.
fn const_arith(op: ArithOp, x: &Value, y: &Value) -> Option<Value> {
    use Value::*;
    if x.is_null() || y.is_null() {
        return Some(Null);
    }
    Some(match (x, y, op) {
        // Integer arithmetic stays integral (checked: never fold UB).
        (Int(l), Int(r), ArithOp::Add) => Int(l.checked_add(*r)?),
        (Int(l), Int(r), ArithOp::Sub) => Int(l.checked_sub(*r)?),
        (Int(l), Int(r), ArithOp::Mul) => Int(l.checked_mul(*r)?),
        (Int(_), Int(_), ArithOp::Div) => return None,
        // Date shifted by days.
        (Date(l), Int(r), ArithOp::Add) => Date(l + *r as i32),
        (Date(l), Int(r), ArithOp::Sub) => Date(l - *r as i32),
        (Int(l), Date(r), ArithOp::Add) => Date(*l as i32 + r),
        // Float-promoting combinations.
        (Int(_) | Float(_), Int(_) | Float(_), _) => {
            let (l, r) = (x.as_float()?, y.as_float()?);
            if op == ArithOp::Div && r == 0.0 {
                return None;
            }
            Float(match op {
                ArithOp::Add => l + r,
                ArithOp::Sub => l - r,
                ArithOp::Mul => l * r,
                ArithOp::Div => l / r,
            })
        }
        _ => return None,
    })
}

/// Whether an expression is a constant at execution time: a literal, or a
/// parameter placeholder (substituted with a literal before execution).
fn is_const(e: &Expr) -> bool {
    matches!(e, Expr::Lit(_) | Expr::Param(_))
}

fn fold_cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
    if let (Expr::Lit(x), Expr::Lit(y)) = (&a, &b) {
        if let Some(v) = const_cmp(op, x, y) {
            return Expr::Lit(v);
        }
    }
    // Constant on the left moves right: `5 < x` → `x > 5` (parameters
    // count as constants — `$hi > x` and `x < $hi` must converge).
    if is_const(&a) && !is_const(&b) {
        return Expr::Cmp(mirror(op), Box::new(b), Box::new(a));
    }
    // Symmetric operators order their operands deterministically.
    if matches!(op, CmpOp::Eq | CmpOp::Ne)
        && is_const(&a) == is_const(&b)
        && sort_key(&a) > sort_key(&b)
    {
        return Expr::Cmp(op, Box::new(b), Box::new(a));
    }
    Expr::Cmp(op, Box::new(a), Box::new(b))
}

/// Evaluate `x op y` over literals with the executor's comparison
/// semantics (ints exactly, floats by `total_cmp`, int/float promoted).
/// `None` for type combinations outside the executor's fast paths.
fn const_cmp(op: CmpOp, x: &Value, y: &Value) -> Option<Value> {
    use std::cmp::Ordering;
    if x.is_null() || y.is_null() {
        return Some(Value::Null);
    }
    let ord: Ordering = match (x, y) {
        (Value::Int(l), Value::Int(r)) => l.cmp(r),
        (Value::Date(l), Value::Date(r)) => l.cmp(r),
        (Value::Str(l), Value::Str(r)) => l.cmp(r),
        (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
            x.as_float()?.total_cmp(&y.as_float()?)
        }
        _ => return None,
    };
    let t = match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    };
    Some(Value::Bool(t))
}

/// Canonical AND/OR: flatten, drop neutral literals, absorb dominant
/// literals (`FALSE AND x` ≡ `FALSE` and `TRUE OR x` ≡ `TRUE` for every
/// `x` including NULL), dedup (idempotence holds in Kleene logic), sort.
fn rebuild_junction(items: Vec<Expr>, is_and: bool) -> Expr {
    let mut flat = Vec::with_capacity(items.len());
    for e in items {
        match e {
            Expr::And(inner) if is_and => flat.extend(inner),
            Expr::Or(inner) if !is_and => flat.extend(inner),
            other => flat.push(other),
        }
    }
    let neutral = is_and;
    let mut out: Vec<Expr> = Vec::with_capacity(flat.len());
    for e in flat {
        match e {
            Expr::Lit(Value::Bool(b)) if b == neutral => {} // drop neutral
            Expr::Lit(Value::Bool(b)) if b != neutral => {
                return Expr::Lit(Value::Bool(!neutral)); // dominant literal
            }
            other => out.push(other),
        }
    }
    out.sort_by_cached_key(sort_key);
    out.dedup();
    match out.len() {
        0 => Expr::Lit(Value::Bool(neutral)),
        1 => out.pop().unwrap(),
        _ => {
            if is_and {
                Expr::And(out)
            } else {
                Expr::Or(out)
            }
        }
    }
}

/// Push a NOT into its operand where the rewrite is exactly
/// NULL-preserving; otherwise keep the NOT node.
fn push_not(inner: Expr) -> Expr {
    match inner {
        Expr::Lit(Value::Bool(b)) => Expr::Lit(Value::Bool(!b)),
        Expr::Lit(Value::Null) => Expr::Lit(Value::Null),
        Expr::Not(e) => *e,
        // Comparisons are NULL iff an operand is NULL; the negated
        // operator has the same NULL set, so this is Kleene-exact.
        Expr::Cmp(op, a, b) => fold_cmp(negate(op), *a, *b),
        // IS [NOT] NULL is never NULL itself.
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr,
            negated: !negated,
        },
        other => Expr::Not(Box::new(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(e: Expr) -> Expr {
        normalize_expr(&e)
    }

    #[test]
    fn and_operands_sorted_and_deduped() {
        let a = Expr::col(0).gt(Expr::lit(5));
        let b = Expr::col(1).lt(Expr::lit(2.5));
        let ab = n(a.clone().and(b.clone()));
        let ba = n(b.clone().and(a.clone()));
        assert_eq!(ab, ba);
        let dup = n(Expr::and_all([a.clone(), b.clone(), a.clone()]));
        assert_eq!(dup, ab);
    }

    #[test]
    fn literal_moves_right() {
        // 5 < x  →  x > 5
        let e = n(Expr::lit(5).lt(Expr::col(0)));
        assert_eq!(e, Expr::col(0).gt(Expr::lit(5)));
        // x > 5 is already canonical.
        assert_eq!(
            n(Expr::col(0).gt(Expr::lit(5))),
            Expr::col(0).gt(Expr::lit(5))
        );
    }

    #[test]
    fn symmetric_ops_order_operands() {
        let e1 = n(Expr::col(1).eq(Expr::col(0)));
        let e2 = n(Expr::col(0).eq(Expr::col(1)));
        assert_eq!(e1, e2);
        // Lit stays on the right even though '5' sorts before '$0'.
        assert_eq!(
            n(Expr::col(0).eq(Expr::lit(5))),
            Expr::col(0).eq(Expr::lit(5))
        );
    }

    #[test]
    fn constants_fold() {
        assert_eq!(n(Expr::lit(2).add(Expr::lit(3))), Expr::lit(5));
        assert_eq!(n(Expr::lit(2.0).mul(Expr::lit(4.0))), Expr::lit(8.0));
        assert_eq!(n(Expr::lit(1).lt(Expr::lit(2))), Expr::lit(true));
        assert_eq!(
            n(Expr::lit(Value::Date(10)).add(Expr::lit(5))),
            Expr::lit(Value::Date(15))
        );
        // Int/int division would change the derived type: left alone.
        let d = Expr::lit(4).div(Expr::lit(2));
        assert_eq!(n(d.clone()), d);
        // Division by zero: left alone.
        let z = Expr::lit(4.0).div(Expr::lit(0.0));
        assert_eq!(n(z.clone()), z);
        // NULL propagates.
        assert_eq!(
            n(Expr::lit(Value::Null).add(Expr::lit(3))),
            Expr::lit(Value::Null)
        );
    }

    #[test]
    fn junction_absorption_kleene_safe() {
        let x = Expr::col(0).gt(Expr::lit(0));
        // FALSE AND x ≡ FALSE even when x is NULL.
        assert_eq!(n(Expr::lit(false).and(x.clone())), Expr::lit(false));
        // TRUE AND x ≡ x.
        assert_eq!(n(Expr::lit(true).and(x.clone())), n(x.clone()));
        // TRUE OR x ≡ TRUE.
        assert_eq!(n(Expr::lit(true).or(x.clone())), Expr::lit(true));
        // FALSE OR x ≡ x.
        assert_eq!(n(Expr::lit(false).or(x.clone())), n(x));
    }

    #[test]
    fn not_pushes_into_comparisons() {
        let e = n(Expr::col(0).lt(Expr::lit(5)).not());
        assert_eq!(e, Expr::col(0).ge(Expr::lit(5)));
        let e = n(Expr::col(0).is_null().not());
        assert_eq!(e, Expr::col(0).is_not_null());
        let e = n(Expr::col(0).lt(Expr::lit(5)).not().not());
        assert_eq!(e, Expr::col(0).lt(Expr::lit(5)));
        // LIKE under NOT is left alone (pattern semantics stay visible).
        let like = Expr::col(0).like("a%").not();
        assert_eq!(n(like.clone()), like);
    }

    #[test]
    fn idempotent() {
        let exprs = [
            Expr::lit(3)
                .lt(Expr::col(2))
                .and(Expr::col(1).eq(Expr::col(0))),
            Expr::lit(1).add(Expr::lit(2)).mul(Expr::col(0)),
            Expr::col(0).lt(Expr::lit(5)).not(),
            Expr::or_all([
                Expr::col(2).gt(Expr::lit(1)),
                Expr::col(0).lt(Expr::lit(3)),
                Expr::lit(false),
            ]),
        ];
        for e in exprs {
            let once = normalize_expr(&e);
            assert_eq!(normalize_expr(&once), once, "not idempotent: {e}");
        }
    }

    #[test]
    fn nested_and_or_canonical_across_variants() {
        // (a AND b) AND c  vs  c AND (b AND a)
        let a = Expr::col(0).gt(Expr::lit(1));
        let b = Expr::col(1).le(Expr::lit(2));
        let c = Expr::col(2).ne(Expr::lit(3));
        let v1 = n(a.clone().and(b.clone()).and(c.clone()));
        let v2 = n(c.and(b.and(a)));
        assert_eq!(v1, v2);
    }
}
