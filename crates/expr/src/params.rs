//! Named parameter sets for prepared statements.
//!
//! A query template contains [`crate::Expr::Param`] placeholders; executing
//! it supplies a [`Params`] set binding every placeholder name to a
//! [`Value`]. Parameter sets are small (TPC-H patterns have at most a
//! handful of substitution parameters), so an ordered `Vec` beats a hash
//! map and keeps iteration deterministic.

use std::fmt;

use rdb_vector::Value;

/// A set of named parameter bindings, built fluently:
///
/// ```
/// use rdb_expr::Params;
/// let p = Params::new().set("limit", 10i64).set("region", "north");
/// assert_eq!(p.len(), 2);
/// assert!(p.get("limit").is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    values: Vec<(String, Value)>,
}

impl Params {
    /// Empty parameter set.
    pub fn new() -> Params {
        Params::default()
    }

    /// Empty parameter set (alias communicating "this query has no
    /// parameters" at call sites).
    pub fn none() -> Params {
        Params::default()
    }

    /// Bind `name` to `value`, replacing any previous binding of the same
    /// name. Consumes and returns `self` for chaining.
    pub fn set(mut self, name: impl Into<String>, value: impl Into<Value>) -> Params {
        let name = name.into();
        let value = value.into();
        match self.values.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => self.values.push((name, value)),
        }
        self
    }

    /// Look up a binding.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Bound names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.values.iter().map(|(n, _)| n.as_str())
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no parameters are bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, v)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}: {v}")?;
        }
        write!(f, "}}")
    }
}

impl<N: Into<String>, V: Into<Value>> FromIterator<(N, V)> for Params {
    fn from_iter<I: IntoIterator<Item = (N, V)>>(iter: I) -> Params {
        iter.into_iter()
            .fold(Params::new(), |p, (n, v)| p.set(n, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let p = Params::new().set("a", 1i64).set("b", 2.5).set("c", "x");
        assert_eq!(p.get("a"), Some(&Value::Int(1)));
        assert_eq!(p.get("b"), Some(&Value::Float(2.5)));
        assert_eq!(p.get("c"), Some(&Value::str("x")));
        assert_eq!(p.get("missing"), None);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn set_replaces_existing() {
        let p = Params::new().set("a", 1i64).set("a", 2i64);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get("a"), Some(&Value::Int(2)));
    }

    #[test]
    fn none_is_empty_and_displays() {
        assert!(Params::none().is_empty());
        let p = Params::new().set("x", 7i64);
        assert_eq!(p.to_string(), "{x: 7}");
    }

    #[test]
    fn from_iterator_collects() {
        let p: Params = [("a", 1i64), ("b", 2i64)].into_iter().collect();
        assert_eq!(p.names().collect::<Vec<_>>(), vec!["a", "b"]);
    }
}
