//! SQL `LIKE` pattern matching.
//!
//! Supports `%` (any run of characters, including empty) and `_` (exactly one
//! character). Matching is byte-oriented (the TPC-H and SkyServer workloads
//! are ASCII) and uses the classic two-pointer greedy algorithm with
//! backtracking on the most recent `%`, which is O(n·m) worst case but linear
//! on the pattern shapes that appear in practice (`prefix%`, `%infix%`,
//! `%w1%w2%`).

/// Does `text` match SQL LIKE `pattern`?
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t = text.as_bytes();
    let p = pattern.as_bytes();
    let (mut ti, mut pi) = (0usize, 0usize);
    // Position to resume from when backtracking to the last `%`.
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, text idx)
    while ti < t.len() {
        if pi < p.len() && (p[pi] == b'_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == b'%' {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last `%` consume one more character.
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    // Remaining pattern must be all `%`.
    while pi < p.len() && p[pi] == b'%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::like_match;

    #[test]
    fn exact_match() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(!like_match("abc", "ab"));
        assert!(!like_match("ab", "abc"));
    }

    #[test]
    fn underscore_single_char() {
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("ac", "a_c"));
        assert!(like_match("abc", "___"));
        assert!(!like_match("abcd", "___"));
    }

    #[test]
    fn percent_prefix_suffix_infix() {
        assert!(like_match("PROMO BRUSHED STEEL", "PROMO%"));
        assert!(!like_match("STANDARD STEEL", "PROMO%"));
        assert!(like_match("large polished copper", "%copper%"));
        assert!(like_match("copper", "%copper%"));
        assert!(like_match("x-copper-y", "%copper%"));
        assert!(!like_match("coppe", "%copper%"));
        assert!(like_match("MEDIUM POLISHED", "%POLISHED"));
    }

    #[test]
    fn multi_wildcard_words() {
        // The Q13 / Q16 / SkyServer shapes: '%w1%w2%'.
        assert!(like_match(
            "xx special yy requests zz",
            "%special%requests%"
        ));
        assert!(!like_match(
            "xx requests yy special zz",
            "%special%requests%"
        ));
        assert!(like_match("specialrequests", "%special%requests%"));
        assert!(like_match(
            "Customer say Complaints loud",
            "%Customer%Complaints%"
        ));
    }

    #[test]
    fn empty_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(like_match("", "%%"));
        assert!(!like_match("", "_"));
        assert!(!like_match("a", ""));
    }

    #[test]
    fn percent_backtracking() {
        // Requires revisiting the last `%` several times.
        assert!(like_match("aaab", "%ab"));
        assert!(like_match("abababab", "%ab%ab"));
        assert!(!like_match("ababa", "%ab%ab%b"));
        assert!(like_match("mississippi", "%iss%ippi"));
    }

    #[test]
    fn mixed_wildcards() {
        assert!(like_match("STEEL BRUSHED", "STEEL_BRUSHED"));
        assert!(like_match("abcde", "a%_e"));
        assert!(!like_match("ae", "a%_e")); // `_` needs one char after `%`
    }
}
