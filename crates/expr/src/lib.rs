//! Vectorized expression AST and evaluation for recycler-db.
//!
//! Expressions are the parameters of plan operators (selection predicates,
//! projection lists, aggregate arguments, join keys). They matter to the
//! recycler in two ways:
//!
//! 1. **Exact matching** (paper §III-A): two plan nodes match only if their
//!    parameters are equal, so [`Expr`] implements structural `Eq`/`Hash`.
//! 2. **Subsumption** (paper §IV-A): a cached selection can answer a new,
//!    stricter selection. [`ranges`] extracts conjunctive per-column range
//!    constraints from predicates and decides implication.
//!
//! Evaluation ([`eval`]) is column-at-a-time over [`rdb_vector::Batch`]es
//! with SQL NULL semantics (three-valued logic collapses to "NULL is not
//! true" at filter boundaries).

pub mod agg;
pub mod error;
pub mod eval;
pub mod expr;
pub mod like;
pub mod normalize;
pub mod params;
pub mod ranges;
pub mod sel;

pub use agg::AggFunc;
pub use error::ExprError;
pub use eval::{eval, eval_predicate, eval_selection, Selection};
pub use expr::{ArithOp, CmpOp, Expr};
pub use normalize::normalize_expr;
pub use params::Params;
pub use ranges::{analyze_conjunction, implies, Interval};
pub use sel::CompiledPredicate;
