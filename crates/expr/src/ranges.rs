//! Conjunctive range analysis for tuple subsumption (paper §IV-A).
//!
//! A cached selection result `σ_q(R)` can answer a new selection `σ_p(R)`
//! when `p ⇒ q` (every row satisfying `p` also satisfies `q`); the new
//! result is then derived by evaluating `σ_p` over the cached rows instead
//! of over `R`. This module decides implication for the decidable fragment
//! that covers the workloads: conjunctions of single-column range and
//! equality/membership constraints.
//!
//! Anything outside the fragment (ORs, LIKE, CASE, multi-column terms)
//! makes [`analyze_conjunction`] return `None`, and subsumption falls back
//! to a conservative syntactic check.

use std::collections::BTreeMap;

use rdb_vector::Value;

use crate::expr::{CmpOp, Expr};

/// A per-column interval constraint with optional inclusive bounds and an
/// optional membership list (from `IN`/`=`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Interval {
    /// Lower bound and whether it is inclusive.
    pub lo: Option<(Value, bool)>,
    /// Upper bound and whether it is inclusive.
    pub hi: Option<(Value, bool)>,
    /// If set, the value must additionally be a member of this list.
    pub members: Option<Vec<Value>>,
}

impl Interval {
    /// The unconstrained interval.
    pub fn unconstrained() -> Interval {
        Interval::default()
    }

    /// Tighten with a lower bound.
    fn add_lo(&mut self, v: Value, inclusive: bool) {
        let replace = match &self.lo {
            None => true,
            Some((cur, cur_inc)) => match v.cmp(cur) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => *cur_inc && !inclusive,
                std::cmp::Ordering::Less => false,
            },
        };
        if replace {
            self.lo = Some((v, inclusive));
        }
    }

    /// Tighten with an upper bound.
    fn add_hi(&mut self, v: Value, inclusive: bool) {
        let replace = match &self.hi {
            None => true,
            Some((cur, cur_inc)) => match v.cmp(cur) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => *cur_inc && !inclusive,
                std::cmp::Ordering::Greater => false,
            },
        };
        if replace {
            self.hi = Some((v, inclusive));
        }
    }

    /// Tighten with a membership list (intersecting any existing one).
    fn add_members(&mut self, vs: Vec<Value>) {
        self.members = Some(match self.members.take() {
            None => vs,
            Some(old) => old.into_iter().filter(|v| vs.contains(v)).collect(),
        });
    }

    /// Whether every value satisfying `self` also satisfies `other`.
    pub fn implies(&self, other: &Interval) -> bool {
        // Lower bound of other must be no tighter than ours.
        let lo_ok = match (&other.lo, &self.lo) {
            (None, _) => true,
            (Some(_), None) => self.members_imply_lo(other),
            (Some((ov, oi)), Some((sv, si))) => match sv.cmp(ov) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => *oi || !*si,
                std::cmp::Ordering::Less => self.members_imply_lo(other),
            },
        };
        let hi_ok = match (&other.hi, &self.hi) {
            (None, _) => true,
            (Some(_), None) => self.members_imply_hi(other),
            (Some((ov, oi)), Some((sv, si))) => match sv.cmp(ov) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => *oi || !*si,
                std::cmp::Ordering::Greater => self.members_imply_hi(other),
            },
        };
        let members_ok = match (&other.members, &self.members) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(om), Some(sm)) => sm.iter().all(|v| om.contains(v)),
        };
        lo_ok && hi_ok && members_ok
    }

    fn members_imply_lo(&self, other: &Interval) -> bool {
        match (&self.members, &other.lo) {
            (Some(sm), Some((ov, oi))) => sm.iter().all(|v| match v.cmp(ov) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => *oi,
                std::cmp::Ordering::Less => false,
            }),
            _ => false,
        }
    }

    fn members_imply_hi(&self, other: &Interval) -> bool {
        match (&self.members, &other.hi) {
            (Some(sm), Some((ov, oi))) => sm.iter().all(|v| match v.cmp(ov) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => *oi,
                std::cmp::Ordering::Greater => false,
            }),
            _ => false,
        }
    }
}

/// The constraint target of one conjunct: a plain column or `year(column)`.
///
/// `year()` appears as a group/selection key in the binning rewrites, so the
/// analysis treats `year(col)` as a distinct constrained dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RangeKey {
    /// Constraint on column `i`.
    Col(usize),
    /// Constraint on `year(column i)`.
    YearOf(usize),
}

/// Extract per-column interval constraints from a conjunctive predicate.
///
/// Returns `None` if any conjunct is outside the decidable fragment. A
/// constant `true` yields an empty map (implied by everything).
pub fn analyze_conjunction(expr: &Expr) -> Option<BTreeMap<RangeKey, Interval>> {
    let mut out = BTreeMap::new();
    if collect(expr, &mut out) {
        Some(out)
    } else {
        None
    }
}

fn collect(expr: &Expr, out: &mut BTreeMap<RangeKey, Interval>) -> bool {
    match expr {
        Expr::And(parts) => parts.iter().all(|p| collect(p, out)),
        Expr::Lit(Value::Bool(true)) => true,
        Expr::Cmp(op, a, b) => {
            // Accept `key op literal` and `literal op key`.
            if let (Some(key), Expr::Lit(v)) = (range_key(a), b.as_ref()) {
                apply_cmp(out.entry(key).or_default(), *op, v.clone());
                true
            } else if let (Expr::Lit(v), Some(key)) = (a.as_ref(), range_key(b)) {
                apply_cmp(out.entry(key).or_default(), flip(*op), v.clone());
                true
            } else {
                false
            }
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } => {
            if let Some(key) = range_key(expr) {
                out.entry(key).or_default().add_members(list.clone());
                true
            } else {
                false
            }
        }
        _ => false,
    }
}

fn range_key(e: &Expr) -> Option<RangeKey> {
    match e {
        Expr::Col(i) => Some(RangeKey::Col(*i)),
        Expr::Year(inner) => match inner.as_ref() {
            Expr::Col(i) => Some(RangeKey::YearOf(*i)),
            _ => None,
        },
        _ => None,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

fn apply_cmp(iv: &mut Interval, op: CmpOp, v: Value) {
    match op {
        CmpOp::Eq => {
            iv.add_lo(v.clone(), true);
            iv.add_hi(v.clone(), true);
            iv.add_members(vec![v]);
        }
        CmpOp::Lt => iv.add_hi(v, false),
        CmpOp::Le => iv.add_hi(v, true),
        CmpOp::Gt => iv.add_lo(v, false),
        CmpOp::Ge => iv.add_lo(v, true),
        // `<>` does not constrain a range usefully; treat as unconstrained
        // (sound: it can only make the predicate *more* selective, and we
        // only ever use analysis results on the *implying* side after an
        // exact structural check fails — see `implies`).
        CmpOp::Ne => {}
    }
}

/// Does predicate `p` imply predicate `q` (within the decidable fragment)?
///
/// Conservative: returns `false` when either predicate cannot be analyzed.
/// Note `Ne` conjuncts are dropped from both sides; dropping from `q` would
/// be unsound, so predicates containing `<>` are rejected entirely.
pub fn implies(p: &Expr, q: &Expr) -> bool {
    if contains_ne(p) || contains_ne(q) {
        return false;
    }
    let (Some(cp), Some(cq)) = (analyze_conjunction(p), analyze_conjunction(q)) else {
        return false;
    };
    // Every constraint in q must be implied by p's constraint on that key.
    cq.iter()
        .all(|(key, qiv)| cp.get(key).is_some_and(|piv| piv.implies(qiv)))
}

fn contains_ne(e: &Expr) -> bool {
    if let Expr::Cmp(CmpOp::Ne, _, _) = e {
        return true;
    }
    e.children().iter().any(|c| contains_ne(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c0() -> Expr {
        Expr::col(0)
    }

    #[test]
    fn tighter_range_implies_looser() {
        let p = c0().ge(Expr::lit(5)).and(c0().le(Expr::lit(10)));
        let q = c0().ge(Expr::lit(0)).and(c0().le(Expr::lit(20)));
        assert!(implies(&p, &q));
        assert!(!implies(&q, &p));
    }

    #[test]
    fn equal_bounds_inclusivity() {
        let p = c0().gt(Expr::lit(5));
        let q = c0().ge(Expr::lit(5));
        assert!(implies(&p, &q), "x>5 implies x>=5");
        assert!(!implies(&q, &p), "x>=5 does not imply x>5");
        assert!(implies(&p, &p));
        assert!(implies(&q, &q));
    }

    #[test]
    fn equality_implies_range() {
        let p = c0().eq(Expr::lit(7));
        let q = c0().ge(Expr::lit(5)).and(c0().le(Expr::lit(10)));
        assert!(implies(&p, &q));
        assert!(!implies(&q, &p));
    }

    #[test]
    fn membership_subset() {
        let p = c0().in_list([Value::Int(1), Value::Int(2)]);
        let q = c0().in_list([Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert!(implies(&p, &q));
        assert!(!implies(&q, &p));
    }

    #[test]
    fn membership_implies_range() {
        let p = c0().in_list([Value::Int(3), Value::Int(4)]);
        let q = c0().ge(Expr::lit(1)).and(c0().le(Expr::lit(5)));
        assert!(implies(&p, &q));
    }

    #[test]
    fn unconstrained_is_implied() {
        let p = c0().eq(Expr::lit(1));
        let q = Expr::lit(true);
        assert!(implies(&p, &q), "anything implies TRUE");
        assert!(!implies(&q, &p));
    }

    #[test]
    fn different_columns_do_not_mix() {
        let p = c0().eq(Expr::lit(1));
        let q = Expr::col(1).eq(Expr::lit(1));
        assert!(!implies(&p, &q));
        // Constraining extra columns is fine on the implying side.
        let p2 = c0().eq(Expr::lit(1)).and(Expr::col(1).eq(Expr::lit(1)));
        assert!(implies(&p2, &q));
    }

    #[test]
    fn year_constraints() {
        let p = Expr::col(2).year().eq(Expr::lit(1995));
        let q = Expr::col(2).year().ge(Expr::lit(1994));
        assert!(implies(&p, &q));
        // year(col) and col are different keys.
        let r = Expr::col(2).ge(Expr::lit(1994));
        assert!(!implies(&p, &r));
    }

    #[test]
    fn non_analyzable_is_conservative() {
        let p = Expr::col(3).like("a%");
        let q = Expr::lit(true);
        // LIKE is outside the fragment; implies(p, TRUE) falls back to the
        // analyzable side: TRUE analyzes to empty map, so p must analyze too.
        assert!(!implies(&p, &q) || implies(&p, &q)); // just must not panic
        let r = c0().ge(Expr::lit(0));
        assert!(!implies(&p, &r));
    }

    #[test]
    fn ne_rejected_everywhere() {
        let p = c0().ne(Expr::lit(5)).and(c0().ge(Expr::lit(0)));
        let q = c0().ge(Expr::lit(0));
        // Sound would be true, but `<>` pushes us out of the fragment.
        assert!(!implies(&p, &q));
        assert!(!implies(&q, &p));
    }

    #[test]
    fn literal_on_left_side() {
        // `5 <= x` is `x >= 5`.
        let p = Expr::lit(5).le(c0());
        let q = c0().ge(Expr::lit(0));
        assert!(implies(&p, &q));
    }

    #[test]
    fn interval_implies_direct() {
        let mut a = Interval::unconstrained();
        a.add_lo(Value::Int(5), true);
        a.add_hi(Value::Int(6), true);
        let mut b = Interval::unconstrained();
        b.add_lo(Value::Int(5), true);
        assert!(a.implies(&b));
        assert!(!b.implies(&a));
        assert!(Interval::unconstrained().implies(&Interval::unconstrained()));
    }
}
