//! Column-at-a-time expression evaluation.
//!
//! [`eval`] produces one output column per expression per input batch. NULL
//! handling follows SQL: comparisons and arithmetic are NULL if any operand
//! is NULL; `AND`/`OR` use Kleene three-valued logic; [`eval_predicate`]
//! collapses NULL to `false` (the filter boundary rule).
//!
//! Evaluation works at the batch's **physical** row level: output columns
//! have `batch.physical_rows()` rows, aligned with the input columns, and
//! any selection vector on the batch simply rides along (the vectorized
//! convention — computing over unselected rows is cheaper than gathering).
//! [`eval_selection`] is the filter entry point: it folds the predicate
//! result into the batch's existing selection with all-true / all-false
//! fast paths, so moderately selective filters never gather (the filter
//! operator still chooses to compact when very few rows survive).
//!
//! The common numeric/date cases run over raw slices; rarer type
//! combinations fall back to a per-row dispatch via [`rdb_vector::row::cmp_cell`].

use std::borrow::Cow;
use std::cmp::Ordering;

use rdb_vector::column::{Column, ColumnBuilder, ColumnData, ColumnSlice};
use rdb_vector::row::cmp_cell;
use rdb_vector::types::{month_of_date, year_of_date};
use rdb_vector::{Batch, DataType, Value};

use crate::expr::{ArithOp, CmpOp, Expr};
use crate::like::like_match;

/// Evaluate `expr` over `batch`, producing a column of
/// `batch.physical_rows()` rows aligned with the batch's columns.
///
/// `expr` must be canonical (no [`Expr::Named`]); bind it first.
pub fn eval(expr: &Expr, batch: &Batch) -> Column {
    let rows = batch.physical_rows();
    match expr {
        Expr::Col(i) => batch.column(*i).clone(),
        Expr::Named(n) => panic!("cannot evaluate unbound column '{n}'"),
        Expr::Param(n) => panic!("cannot evaluate unsubstituted parameter '{n}'"),
        Expr::Lit(v) => broadcast(v, rows),
        Expr::Cmp(op, a, b) => cmp_columns(*op, &eval(a, batch), &eval(b, batch)),
        Expr::Arith(op, a, b) => arith_columns(*op, &eval(a, batch), &eval(b, batch)),
        Expr::And(parts) => kleene(parts, batch, true),
        Expr::Or(parts) => kleene(parts, batch, false),
        Expr::Not(e) => {
            // Freshly computed predicate columns are uniquely owned, so the
            // negation happens in place (copy-on-write otherwise).
            eval(e, batch).map_bools(|b| !b)
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let c = eval(expr, batch);
            let vals: Vec<bool> = c
                .as_strs()
                .iter()
                .map(|s| like_match(s, pattern) != *negated)
                .collect();
            rebuild_bool(vals, &c)
        }
        Expr::Substr { expr, start, len } => {
            let c = eval(expr, batch);
            let vals: Vec<std::sync::Arc<str>> = c
                .as_strs()
                .iter()
                .map(|s| {
                    let bytes = s.as_bytes();
                    let from = (*start - 1).min(bytes.len());
                    let to = (from + *len).min(bytes.len());
                    std::sync::Arc::from(&s[from..to])
                })
                .collect();
            carry_validity(ColumnData::strs(vals), &c)
        }
        Expr::Year(e) => {
            let c = eval(e, batch);
            let vals: Vec<i64> = c
                .as_dates()
                .iter()
                .map(|&d| year_of_date(d) as i64)
                .collect();
            carry_validity(ColumnData::ints(vals), &c)
        }
        Expr::Month(e) => {
            let c = eval(e, batch);
            let vals: Vec<i64> = c
                .as_dates()
                .iter()
                .map(|&d| month_of_date(d) as i64)
                .collect();
            carry_validity(ColumnData::ints(vals), &c)
        }
        Expr::Case {
            branches,
            otherwise,
        } => eval_case(branches, otherwise, batch),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let c = eval(expr, batch);
            let mut vals = Vec::with_capacity(rows);
            for i in 0..rows {
                let v = c.get(i);
                vals.push(!v.is_null() && (list.contains(&v) != *negated));
            }
            rebuild_bool(vals, &c)
        }
        Expr::IsNull { expr, negated } => {
            let c = eval(expr, batch);
            let vals: Vec<bool> = (0..rows).map(|i| c.is_valid(i) == *negated).collect();
            Column::from_bools(vals)
        }
    }
}

/// Evaluate a boolean predicate and collapse NULL to `false`. The mask is
/// **physical**-length (aligned with the batch's columns, ignoring any
/// selection vector); filters should prefer [`eval_selection`].
///
/// Compatibility shim over the selection kernel
/// ([`crate::sel::CompiledPredicate`]): the kernel computes qualifying
/// indices directly; this scatters them back into a boolean mask for
/// callers that want one (DML delete, tests). Hot paths should compile
/// the predicate once and keep index buffers instead.
pub fn eval_predicate(expr: &Expr, batch: &Batch) -> Vec<bool> {
    let mut idx = Vec::new();
    crate::sel::CompiledPredicate::compile(expr).select_physical_into(batch, &mut idx);
    let mut mask = vec![false; batch.physical_rows()];
    for &i in &idx {
        mask[i as usize] = true;
    }
    mask
}

/// Result of evaluating a predicate as a selection (see [`eval_selection`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// Every (already selected) row qualifies — pass the batch through
    /// untouched.
    All,
    /// No row qualifies — drop the batch.
    Empty,
    /// The qualifying **physical** row indices, already composed with the
    /// batch's existing selection; attach with `Batch::with_selection`.
    Rows(Vec<u32>),
}

/// Evaluate a boolean predicate over `batch` and fold it into the batch's
/// selection, without gathering any data.
///
/// NULL collapses to `false` (the filter boundary rule). The all-true and
/// all-false outcomes are reported as [`Selection::All`] / [`Selection::Empty`]
/// so filters can skip even the selection-vector allocation on the common
/// "everything passes" and "nothing passes" batches.
pub fn eval_selection(expr: &Expr, batch: &Batch) -> Selection {
    let mut rows = Vec::new();
    crate::sel::CompiledPredicate::compile(expr).select_into(batch, &mut rows);
    if rows.is_empty() {
        // Checked before the all-rows case: a zero-logical-row batch must
        // classify as Empty so filters keep dropping empty batches.
        Selection::Empty
    } else if rows.len() == batch.rows() {
        Selection::All
    } else {
        Selection::Rows(rows)
    }
}

fn broadcast(v: &Value, rows: usize) -> Column {
    match v {
        Value::Null => {
            let mut b = ColumnBuilder::new(DataType::Int, rows);
            for _ in 0..rows {
                b.push_null();
            }
            b.finish()
        }
        Value::Bool(x) => Column::from_bools(vec![*x; rows]),
        Value::Int(x) => Column::from_ints(vec![*x; rows]),
        Value::Float(x) => Column::from_floats(vec![*x; rows]),
        Value::Str(s) => Column::new(ColumnData::strs(vec![s.clone(); rows])),
        Value::Date(d) => Column::from_dates(vec![*d; rows]),
    }
}

/// Combine validity of two inputs: output row valid iff both inputs valid.
fn merged_validity(a: &Column, b: &Column) -> Option<Vec<bool>> {
    match (a.validity(), b.validity()) {
        (None, None) => None,
        (Some(m), None) | (None, Some(m)) => Some(m.to_vec()),
        (Some(ma), Some(mb)) => Some(ma.iter().zip(mb).map(|(&x, &y)| x && y).collect()),
    }
}

fn rebuild_bool(vals: Vec<bool>, source: &Column) -> Column {
    match source.validity() {
        None => Column::from_bools(vals),
        Some(m) => Column::with_validity(ColumnData::bools(vals), m.to_vec()),
    }
}

fn carry_validity(data: ColumnData, source: &Column) -> Column {
    match source.validity() {
        None => Column::new(data),
        Some(m) => Column::with_validity(data, m.to_vec()),
    }
}

fn cmp_columns(op: CmpOp, a: &Column, b: &Column) -> Column {
    let rows = a.len();
    assert_eq!(rows, b.len());
    let test = |ord: Ordering| match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    };
    // Fast paths over raw slices for the hot type combinations.
    let vals: Vec<bool> = match (a.values(), b.values()) {
        (ColumnSlice::Int(x), ColumnSlice::Int(y)) => {
            x.iter().zip(y).map(|(l, r)| test(l.cmp(r))).collect()
        }
        (ColumnSlice::Float(x), ColumnSlice::Float(y)) => {
            x.iter().zip(y).map(|(l, r)| test(l.total_cmp(r))).collect()
        }
        (ColumnSlice::Date(x), ColumnSlice::Date(y)) => {
            x.iter().zip(y).map(|(l, r)| test(l.cmp(r))).collect()
        }
        (ColumnSlice::Int(x), ColumnSlice::Float(y)) => x
            .iter()
            .zip(y)
            .map(|(l, r)| test((*l as f64).total_cmp(r)))
            .collect(),
        (ColumnSlice::Float(x), ColumnSlice::Int(y)) => x
            .iter()
            .zip(y)
            .map(|(l, r)| test(l.total_cmp(&(*r as f64))))
            .collect(),
        (ColumnSlice::Str(x), ColumnSlice::Str(y)) => {
            x.iter().zip(y).map(|(l, r)| test(l.cmp(r))).collect()
        }
        _ => (0..rows).map(|i| test(cmp_cell(a, i, b, i))).collect(),
    };
    match merged_validity(a, b) {
        None => Column::from_bools(vals),
        Some(m) => Column::with_validity(ColumnData::bools(vals), m),
    }
}

fn arith_columns(op: ArithOp, a: &Column, b: &Column) -> Column {
    let rows = a.len();
    assert_eq!(rows, b.len());
    let data = match (a.values(), b.values()) {
        // Integer arithmetic stays integral except division.
        (ColumnSlice::Int(x), ColumnSlice::Int(y)) => match op {
            ArithOp::Add => ColumnData::ints(x.iter().zip(y).map(|(l, r)| l + r).collect()),
            ArithOp::Sub => ColumnData::ints(x.iter().zip(y).map(|(l, r)| l - r).collect()),
            ArithOp::Mul => ColumnData::ints(x.iter().zip(y).map(|(l, r)| l * r).collect()),
            ArithOp::Div => ColumnData::floats(
                x.iter()
                    .zip(y)
                    .map(|(l, r)| *l as f64 / *r as f64)
                    .collect(),
            ),
        },
        // Date shifted by days.
        (ColumnSlice::Date(x), ColumnSlice::Int(y)) => match op {
            ArithOp::Add => {
                ColumnData::dates(x.iter().zip(y).map(|(l, r)| l + *r as i32).collect())
            }
            ArithOp::Sub => {
                ColumnData::dates(x.iter().zip(y).map(|(l, r)| l - *r as i32).collect())
            }
            _ => panic!("unsupported date arithmetic {op:?}"),
        },
        (ColumnSlice::Int(x), ColumnSlice::Date(y)) if op == ArithOp::Add => {
            ColumnData::dates(x.iter().zip(y).map(|(l, r)| *l as i32 + r).collect())
        }
        // Everything else promotes to float.
        _ => {
            let xf = to_f64(a);
            let yf = to_f64(b);
            let f = |l: f64, r: f64| match op {
                ArithOp::Add => l + r,
                ArithOp::Sub => l - r,
                ArithOp::Mul => l * r,
                ArithOp::Div => l / r,
            };
            ColumnData::floats(xf.iter().zip(yf.iter()).map(|(&l, &r)| f(l, r)).collect())
        }
    };
    match merged_validity(a, b) {
        None => Column::new(data),
        Some(m) => Column::with_validity(data, m),
    }
}

/// Borrow-or-promote a numeric column as `f64`s: float columns are
/// **borrowed** (no copy); int columns are converted once.
fn to_f64(c: &Column) -> Cow<'_, [f64]> {
    match c.values() {
        ColumnSlice::Int(v) => Cow::Owned(v.iter().map(|&x| x as f64).collect()),
        ColumnSlice::Float(v) => Cow::Borrowed(v),
        other => panic!("cannot coerce {} to float", other.data_type()),
    }
}

/// Kleene AND (`and = true`) / OR (`and = false`) over the operand columns.
fn kleene(parts: &[Expr], batch: &Batch, and: bool) -> Column {
    let rows = batch.physical_rows();
    let cols: Vec<Column> = parts.iter().map(|p| eval(p, batch)).collect();
    let mut vals = vec![and; rows]; // identity element
    let mut nulls = vec![false; rows];
    for c in &cols {
        let cv = c.as_bools();
        for i in 0..rows {
            let valid = c.is_valid(i);
            if and {
                if valid && !cv[i] {
                    vals[i] = false;
                    nulls[i] = false;
                } else if !valid && vals[i] {
                    nulls[i] = true;
                }
            } else if valid && cv[i] {
                vals[i] = true;
                nulls[i] = false;
            } else if !valid && !vals[i] {
                nulls[i] = true;
            }
        }
    }
    // In AND, a row that saw a `false` is decided regardless of NULLs; the
    // loop above already clears the null flag on decision. Symmetrically for
    // OR with `true`.
    if nulls.iter().any(|&n| n) {
        let validity: Vec<bool> = nulls.iter().map(|&n| !n).collect();
        Column::with_validity(ColumnData::bools(vals), validity)
    } else {
        Column::from_bools(vals)
    }
}

fn eval_case(branches: &[(Expr, Expr)], otherwise: &Expr, batch: &Batch) -> Column {
    let rows = batch.physical_rows();
    // Branch conditions are read straight off their evaluated columns
    // (NULL collapses to "not taken"), no intermediate masks.
    let conds: Vec<Column> = branches
        .iter()
        .map(|(c, _)| {
            let col = eval(c, batch);
            assert_eq!(
                col.data_type(),
                DataType::Bool,
                "CASE condition must be boolean"
            );
            col
        })
        .collect();
    let cond_vals: Vec<&[bool]> = conds.iter().map(|c| c.as_bools()).collect();
    let vals: Vec<Column> = branches.iter().map(|(_, v)| eval(v, batch)).collect();
    let other = eval(otherwise, batch);
    let dtype = vals.first().map_or(other.data_type(), |c| c.data_type());
    let mut b = ColumnBuilder::new(dtype, rows);
    // `i` indexes three parallel column sets; a range loop is the clear
    // shape here.
    #[allow(clippy::needless_range_loop)]
    'rows: for i in 0..rows {
        for (k, cond) in conds.iter().enumerate() {
            if cond_vals[k][i] && cond.is_valid(i) {
                b.push(vals[k].get(i));
                continue 'rows;
            }
        }
        b.push(other.get(i));
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_vector::types::date_from_ymd;

    fn batch() -> Batch {
        Batch::new(vec![
            Column::from_ints(vec![1, 2, 3, 4]),
            Column::from_floats(vec![0.5, 1.5, 2.5, 3.5]),
            Column::from_dates(vec![
                date_from_ymd(1995, 1, 15),
                date_from_ymd(1995, 6, 1),
                date_from_ymd(1996, 2, 2),
                date_from_ymd(1997, 12, 31),
            ]),
            Column::from_strs(["PROMO STEEL", "SMALL BRASS", "PROMO TIN", "ECO COPPER"]),
        ])
    }

    #[test]
    fn column_and_literal() {
        let b = batch();
        assert_eq!(eval(&Expr::col(0), &b).as_ints(), &[1, 2, 3, 4]);
        assert_eq!(eval(&Expr::lit(7), &b).as_ints(), &[7, 7, 7, 7]);
    }

    #[test]
    fn comparisons() {
        let b = batch();
        let e = Expr::col(0).le(Expr::lit(2));
        assert_eq!(eval_predicate(&e, &b), vec![true, true, false, false]);
        let e = Expr::col(1).gt(Expr::lit(1.5));
        assert_eq!(eval_predicate(&e, &b), vec![false, false, true, true]);
        // int vs float promotion
        let e = Expr::col(0).eq(Expr::lit(2.0));
        assert_eq!(eval_predicate(&e, &b), vec![false, true, false, false]);
    }

    #[test]
    fn arithmetic() {
        let b = batch();
        let e = Expr::col(0).mul(Expr::lit(10));
        assert_eq!(eval(&e, &b).as_ints(), &[10, 20, 30, 40]);
        let e = Expr::col(0).add(Expr::col(1));
        assert_eq!(eval(&e, &b).as_floats(), &[1.5, 3.5, 5.5, 7.5]);
        let e = Expr::col(0).div(Expr::lit(2));
        assert_eq!(eval(&e, &b).as_floats(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn date_arithmetic_and_extraction() {
        let b = batch();
        let e = Expr::col(2).add(Expr::lit(1));
        assert_eq!(eval(&e, &b).as_dates()[0], date_from_ymd(1995, 1, 16));
        let e = Expr::col(2).year();
        assert_eq!(eval(&e, &b).as_ints(), &[1995, 1995, 1996, 1997]);
        let e = Expr::col(2).month();
        assert_eq!(eval(&e, &b).as_ints(), &[1, 6, 2, 12]);
    }

    #[test]
    fn boolean_logic() {
        let b = batch();
        let e = Expr::col(0)
            .gt(Expr::lit(1))
            .and(Expr::col(0).lt(Expr::lit(4)));
        assert_eq!(eval_predicate(&e, &b), vec![false, true, true, false]);
        let e = Expr::col(0)
            .eq(Expr::lit(1))
            .or(Expr::col(0).eq(Expr::lit(4)));
        assert_eq!(eval_predicate(&e, &b), vec![true, false, false, true]);
        let e = Expr::col(0).gt(Expr::lit(2)).not();
        assert_eq!(eval_predicate(&e, &b), vec![true, true, false, false]);
    }

    #[test]
    fn like_and_substr() {
        let b = batch();
        let e = Expr::col(3).like("PROMO%");
        assert_eq!(eval_predicate(&e, &b), vec![true, false, true, false]);
        let e = Expr::col(3).not_like("%STEEL");
        assert_eq!(eval_predicate(&e, &b), vec![false, true, true, true]);
        let e = Expr::col(3).substr(1, 5);
        assert_eq!(
            eval(&e, &b).to_values(),
            vec![
                Value::str("PROMO"),
                Value::str("SMALL"),
                Value::str("PROMO"),
                Value::str("ECO C")
            ]
        );
    }

    #[test]
    fn substr_clamps_out_of_range() {
        let b = Batch::new(vec![Column::from_strs(["ab"])]);
        let e = Expr::col(0).substr(2, 10);
        assert_eq!(eval(&e, &b).to_values(), vec![Value::str("b")]);
        let e = Expr::col(0).substr(5, 2);
        assert_eq!(eval(&e, &b).to_values(), vec![Value::str("")]);
    }

    #[test]
    fn in_list() {
        let b = batch();
        let e = Expr::col(0).in_list([Value::Int(1), Value::Int(3)]);
        assert_eq!(eval_predicate(&e, &b), vec![true, false, true, false]);
        let e = Expr::col(3).not_in_list([Value::str("PROMO STEEL")]);
        assert_eq!(eval_predicate(&e, &b), vec![false, true, true, true]);
    }

    #[test]
    fn case_expression() {
        let b = batch();
        let e = Expr::case(
            vec![
                (Expr::col(0).le(Expr::lit(1)), Expr::lit(100)),
                (Expr::col(0).le(Expr::lit(3)), Expr::lit(200)),
            ],
            Expr::lit(0),
        );
        assert_eq!(eval(&e, &b).as_ints(), &[100, 200, 200, 0]);
    }

    #[test]
    fn selection_fast_paths() {
        let b = batch();
        assert_eq!(
            eval_selection(&Expr::col(0).ge(Expr::lit(0)), &b),
            Selection::All
        );
        assert_eq!(
            eval_selection(&Expr::col(0).gt(Expr::lit(100)), &b),
            Selection::Empty
        );
        assert_eq!(
            eval_selection(&Expr::col(0).gt(Expr::lit(2)), &b),
            Selection::Rows(vec![2, 3])
        );
        // A zero-row batch classifies as Empty, not All: filters rely on
        // this to keep dropping empty batches.
        let empty = Batch::new(vec![Column::from_ints(vec![])]);
        assert_eq!(
            eval_selection(&Expr::col(0).ge(Expr::lit(0)), &empty),
            Selection::Empty
        );
        // Composes with an existing selection (physical indices out).
        let sel = batch().with_selection(std::sync::Arc::new(vec![0, 2, 3]));
        assert_eq!(
            eval_selection(&Expr::col(0).gt(Expr::lit(1)), &sel),
            Selection::Rows(vec![2, 3])
        );
    }

    #[test]
    fn null_propagation_in_cmp() {
        let mut cb = ColumnBuilder::new(DataType::Int, 3);
        cb.push(Value::Int(1));
        cb.push_null();
        cb.push(Value::Int(3));
        let b = Batch::new(vec![cb.finish()]);
        let e = Expr::col(0).gt(Expr::lit(0));
        let c = eval(&e, &b);
        assert_eq!(c.null_count(), 1);
        // NULL collapses to false at the predicate boundary.
        assert_eq!(eval_predicate(&e, &b), vec![true, false, true]);
    }

    #[test]
    fn kleene_and_with_null() {
        // NULL AND false = false; NULL AND true = NULL.
        let mut cb = ColumnBuilder::new(DataType::Int, 2);
        cb.push_null();
        cb.push_null();
        let b = Batch::new(vec![cb.finish(), Column::from_ints(vec![0, 1])]);
        let e = Expr::col(0)
            .gt(Expr::lit(0))
            .and(Expr::col(1).eq(Expr::lit(1)));
        let c = eval(&e, &b);
        assert!(c.is_valid(0), "NULL AND false is false, not NULL");
        assert_eq!(c.get(0), Value::Bool(false));
        assert!(!c.is_valid(1), "NULL AND true stays NULL");
    }

    #[test]
    fn kleene_or_with_null() {
        // NULL OR true = true; NULL OR false = NULL.
        let mut cb = ColumnBuilder::new(DataType::Int, 2);
        cb.push_null();
        cb.push_null();
        let b = Batch::new(vec![cb.finish(), Column::from_ints(vec![1, 0])]);
        let e = Expr::col(0)
            .gt(Expr::lit(0))
            .or(Expr::col(1).eq(Expr::lit(1)));
        let c = eval(&e, &b);
        assert_eq!(c.get(0), Value::Bool(true));
        assert!(!c.is_valid(1));
    }

    #[test]
    fn is_null_checks() {
        let mut cb = ColumnBuilder::new(DataType::Int, 2);
        cb.push_null();
        cb.push(Value::Int(1));
        let b = Batch::new(vec![cb.finish()]);
        assert_eq!(
            eval_predicate(&Expr::col(0).is_null(), &b),
            vec![true, false]
        );
        assert_eq!(
            eval_predicate(&Expr::col(0).is_not_null(), &b),
            vec![false, true]
        );
    }

    #[test]
    fn in_list_with_null_is_false() {
        let mut cb = ColumnBuilder::new(DataType::Int, 1);
        cb.push_null();
        let b = Batch::new(vec![cb.finish()]);
        let e = Expr::col(0).in_list([Value::Int(1)]);
        assert_eq!(eval_predicate(&e, &b), vec![false]);
    }
}
