//! Structured expression-level errors.
//!
//! Binding and parameter substitution fail for a small, closed set of
//! reasons; representing them as variants (rather than pre-rendered
//! strings) lets the plan layer and the SQL frontend attach their own
//! context — spans, operator labels — without re-parsing messages.

use std::fmt;

/// An error from expression binding or parameter substitution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// A named column reference did not resolve against the input schema.
    UnknownColumn {
        /// The unresolved column name.
        column: String,
        /// Rendering of the schema it was resolved against.
        schema: String,
    },
    /// A parameter placeholder had no binding at substitution time.
    UnboundParameter {
        /// The parameter name.
        name: String,
    },
}

impl ExprError {
    /// The offending identifier (column or parameter name).
    pub fn name(&self) -> &str {
        match self {
            ExprError::UnknownColumn { column, .. } => column,
            ExprError::UnboundParameter { name } => name,
        }
    }
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownColumn { column, schema } => {
                write!(f, "unknown column '{column}' in schema {schema}")
            }
            ExprError::UnboundParameter { name } => {
                write!(f, "no value bound for parameter '{name}'")
            }
        }
    }
}

impl std::error::Error for ExprError {}
