//! The expression AST.
//!
//! Column references come in two forms: [`Expr::Named`] (by name, used when
//! building plans by hand) and [`Expr::Col`] (positional, the canonical form
//! the recycler matches on). A plan-level bind pass converts every `Named`
//! into `Col` against the operator's input schema; canonical plans contain no
//! `Named` nodes.

use std::fmt;

use rdb_vector::{DataType, Schema, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// SQL token for display.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithOp {
    /// SQL token for display.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// A scalar expression over the rows of one input batch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Positional reference into the input schema (canonical form).
    Col(usize),
    /// Named reference, resolved to [`Expr::Col`] by the bind pass.
    Named(String),
    /// Named parameter placeholder of a prepared statement, replaced by a
    /// literal via [`Expr::substitute_params`] before execution. Placeholders
    /// survive the bind pass, so a prepared template is bound once and
    /// substituted per execution.
    Param(String),
    /// Literal scalar.
    Lit(Value),
    /// Comparison; NULL if either side is NULL.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic; ints stay ints, any float operand promotes to float;
    /// `Date ± Int` shifts by days.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Conjunction (Kleene three-valued).
    And(Vec<Expr>),
    /// Disjunction (Kleene three-valued).
    Or(Vec<Expr>),
    /// Negation (NULL stays NULL).
    Not(Box<Expr>),
    /// SQL `LIKE` / `NOT LIKE` with `%` and `_` wildcards.
    Like {
        /// String input.
        expr: Box<Expr>,
        /// Pattern with `%` (any run) and `_` (any single char).
        pattern: String,
        /// `NOT LIKE` when true.
        negated: bool,
    },
    /// `substring(expr from start for len)`, 1-based `start`.
    Substr {
        /// String input.
        expr: Box<Expr>,
        /// 1-based start offset (in bytes; workloads are ASCII).
        start: usize,
        /// Length in bytes.
        len: usize,
    },
    /// `extract(year from date)` as Int.
    Year(Box<Expr>),
    /// `extract(month from date)` as Int.
    Month(Box<Expr>),
    /// `CASE WHEN c1 THEN v1 [WHEN ...] ELSE e END`; first match wins.
    Case {
        /// `(condition, value)` branches in order.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` value.
        otherwise: Box<Expr>,
    },
    /// `expr [NOT] IN (v1, v2, ...)` over a literal list.
    InList {
        /// Probe expression.
        expr: Box<Expr>,
        /// Literal membership list.
        list: Vec<Value>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `expr IS NULL` / `IS NOT NULL` (never NULL itself).
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
}

impl Expr {
    // ---- constructors ---------------------------------------------------

    /// Positional column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Named column reference.
    pub fn name(n: impl Into<String>) -> Expr {
        Expr::Named(n.into())
    }

    /// Named parameter placeholder (prepared-statement slot).
    pub fn param(n: impl Into<String>) -> Expr {
        Expr::Param(n.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(other))
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(other))
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(other))
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(other))
    }

    /// `self / other`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(self), Box::new(other))
    }

    /// N-ary AND (flattens nested ANDs).
    pub fn and_all(exprs: impl IntoIterator<Item = Expr>) -> Expr {
        let mut flat = Vec::new();
        for e in exprs {
            match e {
                Expr::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Expr::lit(true),
            1 => flat.pop().unwrap(),
            _ => Expr::And(flat),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::and_all([self, other])
    }

    /// N-ary OR.
    pub fn or_all(exprs: impl IntoIterator<Item = Expr>) -> Expr {
        let mut flat = Vec::new();
        for e in exprs {
            match e {
                Expr::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Expr::lit(false),
            1 => flat.pop().unwrap(),
            _ => Expr::Or(flat),
        }
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::or_all([self, other])
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self LIKE pattern`.
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: pattern.into(),
            negated: false,
        }
    }

    /// `self NOT LIKE pattern`.
    pub fn not_like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: pattern.into(),
            negated: true,
        }
    }

    /// `substring(self from start for len)` (1-based).
    pub fn substr(self, start: usize, len: usize) -> Expr {
        Expr::Substr {
            expr: Box::new(self),
            start,
            len,
        }
    }

    /// `extract(year from self)`.
    pub fn year(self) -> Expr {
        Expr::Year(Box::new(self))
    }

    /// `extract(month from self)`.
    pub fn month(self) -> Expr {
        Expr::Month(Box::new(self))
    }

    /// `self BETWEEN lo AND hi` (inclusive), expanded to a conjunction so
    /// range analysis sees plain comparisons.
    pub fn between(self, lo: impl Into<Value>, hi: impl Into<Value>) -> Expr {
        let lo = Expr::Lit(lo.into());
        let hi = Expr::Lit(hi.into());
        self.clone().ge(lo).and(self.le(hi))
    }

    /// `self IN (list)`.
    pub fn in_list(self, list: impl IntoIterator<Item = Value>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list: list.into_iter().collect(),
            negated: false,
        }
    }

    /// `self NOT IN (list)`.
    pub fn not_in_list(self, list: impl IntoIterator<Item = Value>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list: list.into_iter().collect(),
            negated: true,
        }
    }

    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull {
            expr: Box::new(self),
            negated: false,
        }
    }

    /// `self IS NOT NULL`.
    pub fn is_not_null(self) -> Expr {
        Expr::IsNull {
            expr: Box::new(self),
            negated: true,
        }
    }

    /// `CASE WHEN ... END` with an explicit ELSE.
    pub fn case(branches: Vec<(Expr, Expr)>, otherwise: Expr) -> Expr {
        Expr::Case {
            branches,
            otherwise: Box::new(otherwise),
        }
    }

    // ---- traversal ------------------------------------------------------

    /// Visit every child expression.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Col(_) | Expr::Named(_) | Expr::Param(_) | Expr::Lit(_) => vec![],
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => vec![a, b],
            Expr::And(v) | Expr::Or(v) => v.iter().collect(),
            Expr::Not(e)
            | Expr::Like { expr: e, .. }
            | Expr::Substr { expr: e, .. }
            | Expr::Year(e)
            | Expr::Month(e)
            | Expr::InList { expr: e, .. }
            | Expr::IsNull { expr: e, .. } => vec![e],
            Expr::Case {
                branches,
                otherwise,
            } => {
                let mut out: Vec<&Expr> = Vec::with_capacity(branches.len() * 2 + 1);
                for (c, v) in branches {
                    out.push(c);
                    out.push(v);
                }
                out.push(otherwise);
                out
            }
        }
    }

    /// Rebuild this node with children transformed by `f` (bottom-up map).
    pub fn map_children(&self, f: &mut impl FnMut(&Expr) -> Expr) -> Expr {
        match self {
            Expr::Col(_) | Expr::Named(_) | Expr::Param(_) | Expr::Lit(_) => self.clone(),
            Expr::Cmp(op, a, b) => Expr::Cmp(*op, Box::new(f(a)), Box::new(f(b))),
            Expr::Arith(op, a, b) => Expr::Arith(*op, Box::new(f(a)), Box::new(f(b))),
            Expr::And(v) => Expr::And(v.iter().map(&mut *f).collect()),
            Expr::Or(v) => Expr::Or(v.iter().map(&mut *f).collect()),
            Expr::Not(e) => Expr::Not(Box::new(f(e))),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(f(expr)),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::Substr { expr, start, len } => Expr::Substr {
                expr: Box::new(f(expr)),
                start: *start,
                len: *len,
            },
            Expr::Year(e) => Expr::Year(Box::new(f(e))),
            Expr::Month(e) => Expr::Month(Box::new(f(e))),
            Expr::Case {
                branches,
                otherwise,
            } => Expr::Case {
                branches: branches.iter().map(|(c, v)| (f(c), f(v))).collect(),
                otherwise: Box::new(f(otherwise)),
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(f(expr)),
                list: list.clone(),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(f(expr)),
                negated: *negated,
            },
        }
    }

    /// Resolve every [`Expr::Named`] against `schema`, producing a canonical
    /// positional expression. Returns a structured error naming any missing
    /// column.
    pub fn bind(&self, schema: &Schema) -> Result<Expr, crate::ExprError> {
        match self {
            Expr::Named(n) => {
                schema
                    .index_of(n)
                    .map(Expr::Col)
                    .ok_or_else(|| crate::ExprError::UnknownColumn {
                        column: n.clone(),
                        schema: schema.to_string(),
                    })
            }
            _ => {
                let mut err = None;
                let out = self.map_children(&mut |c| match c.bind(schema) {
                    Ok(e) => e,
                    Err(e) => {
                        err.get_or_insert(e);
                        c.clone()
                    }
                });
                match err {
                    Some(e) => Err(e),
                    None => Ok(out),
                }
            }
        }
    }

    /// Remap positional references: `Col(i)` becomes `Col(map[i])`.
    /// Used when substituting a cached result whose column order differs.
    pub fn remap_cols(&self, map: &[usize]) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(map[*i]),
            _ => self.map_children(&mut |c| c.remap_cols(map)),
        }
    }

    /// Collect the set of input column positions this expression reads.
    pub fn columns_used(&self, out: &mut Vec<usize>) {
        if let Expr::Col(i) = self {
            if !out.contains(i) {
                out.push(*i);
            }
        }
        for c in self.children() {
            c.columns_used(out);
        }
    }

    /// Whether the expression contains any unresolved [`Expr::Named`].
    pub fn has_named(&self) -> bool {
        matches!(self, Expr::Named(_)) || self.children().iter().any(|c| c.has_named())
    }

    /// Whether the expression contains any [`Expr::Param`] placeholder.
    pub fn has_params(&self) -> bool {
        matches!(self, Expr::Param(_)) || self.children().iter().any(|c| c.has_params())
    }

    /// Collect the names of all parameter placeholders (deduplicated, in
    /// first-occurrence order).
    pub fn param_names(&self, out: &mut Vec<String>) {
        if let Expr::Param(n) = self {
            if !out.iter().any(|x| x == n) {
                out.push(n.clone());
            }
        }
        for c in self.children() {
            c.param_names(out);
        }
    }

    /// Replace every [`Expr::Param`] with the literal bound to its name.
    /// Returns a structured error naming the first unbound parameter.
    pub fn substitute_params(&self, params: &crate::Params) -> Result<Expr, crate::ExprError> {
        match self {
            Expr::Param(n) => params
                .get(n)
                .map(|v| Expr::Lit(v.clone()))
                .ok_or_else(|| crate::ExprError::UnboundParameter { name: n.clone() }),
            _ => {
                let mut err = None;
                let out = self.map_children(&mut |c| match c.substitute_params(params) {
                    Ok(e) => e,
                    Err(e) => {
                        err.get_or_insert(e);
                        c.clone()
                    }
                });
                match err {
                    Some(e) => Err(e),
                    None => Ok(out),
                }
            }
        }
    }

    /// Result type given the input column types. Panics on ill-typed
    /// expressions (plans are type-checked when bound).
    pub fn data_type(&self, input: &[DataType]) -> DataType {
        match self {
            Expr::Col(i) => input[*i],
            Expr::Named(n) => panic!("unbound column '{n}' has no type"),
            Expr::Param(n) => panic!(
                "parameter '{n}' has no type; substitute parameters before deriving a schema"
            ),
            Expr::Lit(v) => v.data_type().unwrap_or(DataType::Int),
            Expr::Cmp(..)
            | Expr::And(_)
            | Expr::Or(_)
            | Expr::Not(_)
            | Expr::Like { .. }
            | Expr::InList { .. }
            | Expr::IsNull { .. } => DataType::Bool,
            Expr::Arith(_, a, b) => {
                let (ta, tb) = (a.data_type(input), b.data_type(input));
                match (ta, tb) {
                    (DataType::Date, DataType::Int) | (DataType::Int, DataType::Date) => {
                        DataType::Date
                    }
                    (DataType::Int, DataType::Int) => DataType::Int,
                    _ => DataType::Float,
                }
            }
            Expr::Substr { .. } => DataType::Str,
            Expr::Year(_) | Expr::Month(_) => DataType::Int,
            Expr::Case {
                branches,
                otherwise,
            } => branches
                .first()
                .map(|(_, v)| v.data_type(input))
                .unwrap_or_else(|| otherwise.data_type(input)),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "${i}"),
            Expr::Named(n) => write!(f, "{n}"),
            Expr::Param(n) => write!(f, ":{n}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cmp(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Arith(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::And(v) => {
                write!(f, "(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Or(v) => {
                write!(f, "(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                write!(
                    f,
                    "({expr} {}LIKE '{pattern}')",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::Substr { expr, start, len } => {
                write!(f, "substr({expr}, {start}, {len})")
            }
            Expr::Year(e) => write!(f, "year({e})"),
            Expr::Month(e) => write!(f, "month({e})"),
            Expr::Case {
                branches,
                otherwise,
            } => {
                write!(f, "CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                write!(f, " ELSE {otherwise} END")
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "))")
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs([
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("d", DataType::Date),
            ("s", DataType::Str),
        ])
    }

    #[test]
    fn bind_resolves_names() {
        let e = Expr::name("a").lt(Expr::name("b"));
        let bound = e.bind(&schema()).unwrap();
        assert_eq!(bound, Expr::col(0).lt(Expr::col(1)));
        assert!(!bound.has_named());
    }

    #[test]
    fn bind_reports_missing_column() {
        let e = Expr::name("zz").lt(Expr::lit(1));
        let err = e.bind(&schema()).unwrap_err();
        assert_eq!(err.name(), "zz");
        assert!(err.to_string().contains("zz"), "{err}");
    }

    #[test]
    fn structural_equality_for_matching() {
        let a = Expr::col(0)
            .lt(Expr::lit(5))
            .and(Expr::col(1).ge(Expr::lit(1.5)));
        let b = Expr::col(0)
            .lt(Expr::lit(5))
            .and(Expr::col(1).ge(Expr::lit(1.5)));
        let c = Expr::col(0)
            .lt(Expr::lit(6))
            .and(Expr::col(1).ge(Expr::lit(1.5)));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn and_flattens() {
        let e = Expr::lit(true)
            .and(Expr::lit(false))
            .and(Expr::col(0).eq(Expr::lit(1)));
        match e {
            Expr::And(v) => assert_eq!(v.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn and_all_identity() {
        assert_eq!(Expr::and_all([]), Expr::lit(true));
        assert_eq!(Expr::and_all([Expr::col(1)]), Expr::col(1));
        assert_eq!(Expr::or_all([]), Expr::lit(false));
    }

    #[test]
    fn between_expands_to_range() {
        let e = Expr::col(0).between(1i64, 5i64);
        assert_eq!(
            e,
            Expr::col(0)
                .ge(Expr::lit(1))
                .and(Expr::col(0).le(Expr::lit(5)))
        );
    }

    #[test]
    fn types_infer() {
        let tys = [
            DataType::Int,
            DataType::Float,
            DataType::Date,
            DataType::Str,
        ];
        assert_eq!(
            Expr::col(0).add(Expr::col(0)).data_type(&tys),
            DataType::Int
        );
        assert_eq!(
            Expr::col(0).add(Expr::col(1)).data_type(&tys),
            DataType::Float
        );
        assert_eq!(
            Expr::col(2).add(Expr::lit(3)).data_type(&tys),
            DataType::Date
        );
        assert_eq!(Expr::col(2).year().data_type(&tys), DataType::Int);
        assert_eq!(Expr::col(3).substr(1, 2).data_type(&tys), DataType::Str);
        assert_eq!(
            Expr::col(0).lt(Expr::lit(1)).data_type(&tys),
            DataType::Bool
        );
    }

    #[test]
    fn columns_used_collects() {
        let e = Expr::col(2)
            .year()
            .eq(Expr::lit(1995))
            .and(Expr::col(0).lt(Expr::col(2)));
        let mut used = Vec::new();
        e.columns_used(&mut used);
        used.sort_unstable();
        assert_eq!(used, vec![0, 2]);
    }

    #[test]
    fn remap_cols_rewrites_positions() {
        let e = Expr::col(0).add(Expr::col(2));
        let r = e.remap_cols(&[5, 6, 7]);
        assert_eq!(r, Expr::col(5).add(Expr::col(7)));
    }

    #[test]
    fn display_renders_sql_like_text() {
        let e = Expr::name("x")
            .le(Expr::lit(3))
            .and(Expr::name("s").like("a%"));
        assert_eq!(e.to_string(), "((x <= 3) AND (s LIKE 'a%'))");
    }

    #[test]
    fn case_children_traversal() {
        let e = Expr::case(
            vec![(Expr::col(0).eq(Expr::lit(1)), Expr::lit(10))],
            Expr::lit(0),
        );
        assert_eq!(e.children().len(), 3);
    }
}
