//! Execution batches: equal-length column sets with optional selection
//! vectors.
//!
//! A [`Batch`] is a horizontal chunk of a result. Its columns always have
//! the same *physical* length; an optional **selection vector** (`sel`)
//! narrows the batch to a subset of those rows without moving any data —
//! the standard vectorized answer to filtering (a filter emits the same
//! shared columns plus a list of qualifying row indices instead of
//! gathering survivors into fresh columns).
//!
//! Terminology used throughout the executor:
//!
//! * **physical** rows/indices — positions in the columns themselves
//!   (`0..physical_rows()`); expression evaluation works at this level and
//!   produces physical-length columns.
//! * **logical** rows — the rows the batch represents (`rows()`): all
//!   physical rows when there is no selection, else `sel.len()` rows in
//!   selection order.
//!
//! Row-level accessors ([`Batch::row`], [`Batch::take`], [`Batch::slice`],
//! [`Batch::filter`]) are logical. Operators that walk rows use
//! [`Batch::sel`]/[`Batch::physical_rows`] to iterate physical positions
//! directly. [`Batch::compact`] materializes the selection (a gather) and
//! is only called at pipeline breakers, store boundaries, and the public
//! stream edge — everywhere else batches flow zero-copy.

use std::sync::Arc;

use crate::column::Column;
use crate::value::Value;
use crate::{morsel_bounds, morsel_count};

/// A horizontal chunk of a result: equal-length columns plus an optional
/// selection vector.
///
/// Batches do not carry a schema; operators know their output schema
/// statically and batches are positional. `Batch::clone` is O(width) `Arc`
/// refcount bumps — no row data is copied.
#[derive(Debug, Clone)]
pub struct Batch {
    columns: Vec<Column>,
    /// Physical length of every column.
    physical: usize,
    /// Selected physical row indices, ascending; `None` = all rows.
    sel: Option<Arc<Vec<u32>>>,
    /// Logical row count (`sel.len()` when a selection is present).
    rows: usize,
}

impl Batch {
    /// Build a batch from columns; all columns must have identical length.
    pub fn new(columns: Vec<Column>) -> Self {
        let physical = columns.first().map_or(0, |c| c.len());
        for c in &columns {
            assert_eq!(c.len(), physical, "batch column length mismatch");
        }
        Batch {
            columns,
            physical,
            sel: None,
            rows: physical,
        }
    }

    /// An empty batch with zero columns and zero rows (used by operators
    /// producing a single aggregate row from empty input edge cases).
    pub fn empty() -> Self {
        Batch {
            columns: Vec::new(),
            physical: 0,
            sel: None,
            rows: 0,
        }
    }

    /// Attach a selection vector of **physical** row indices, replacing any
    /// existing selection (callers compose selections before attaching —
    /// see `rdb_expr::eval_selection`). Zero-copy: the columns are shared.
    pub fn with_selection(mut self, sel: Arc<Vec<u32>>) -> Self {
        debug_assert!(
            sel.iter().all(|&i| (i as usize) < self.physical),
            "selection index out of bounds"
        );
        self.rows = sel.len();
        self.sel = Some(sel);
        self
    }

    /// The selection vector, if this batch is narrowed to a subset of its
    /// physical rows.
    #[inline]
    pub fn sel(&self) -> Option<&[u32]> {
        self.sel.as_ref().map(|s| &s[..])
    }

    /// Shared handle to the selection vector (for carrying it onto a
    /// derived batch with the same physical row space, e.g. a projection).
    pub fn sel_arc(&self) -> Option<Arc<Vec<u32>>> {
        self.sel.clone()
    }

    /// Number of logical rows (what downstream operators see).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of physical rows in each column.
    #[inline]
    pub fn physical_rows(&self) -> usize {
        self.physical
    }

    /// Whether the batch has zero logical rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The physical columns, in schema order. Index these with physical
    /// row positions (see module docs).
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Physical column at position `i`.
    #[inline]
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Consume into the column vector. Panics if a selection is still
    /// attached — compact first; dropping a selection silently would
    /// resurrect filtered-out rows.
    pub fn into_columns(self) -> Vec<Column> {
        assert!(
            self.sel.is_none(),
            "into_columns on a selected batch; call compact() first"
        );
        self.columns
    }

    /// Physical row index of logical row `i`.
    #[inline]
    pub fn to_physical(&self, i: usize) -> usize {
        match &self.sel {
            Some(sel) => sel[i] as usize,
            None => i,
        }
    }

    /// Call `f` with the physical index of every selected row, in order.
    #[inline]
    pub fn for_each_selected(&self, mut f: impl FnMut(usize)) {
        match &self.sel {
            Some(sel) => {
                for &p in sel.iter() {
                    f(p as usize);
                }
            }
            None => {
                for p in 0..self.physical {
                    f(p);
                }
            }
        }
    }

    /// Materialize the selection: gather selected rows into fresh,
    /// unselected columns. Without a selection this is a zero-copy clone.
    pub fn compact(&self) -> Batch {
        match &self.sel {
            None => self.clone(),
            Some(sel) => Batch::new(self.columns.iter().map(|c| c.take(sel)).collect()),
        }
    }

    /// Gather logical rows by index across all columns (`indices` are
    /// logical positions; the result carries no selection).
    pub fn take(&self, indices: &[u32]) -> Batch {
        match &self.sel {
            None => self.take_physical(indices),
            Some(sel) => {
                let phys: Vec<u32> = indices.iter().map(|&i| sel[i as usize]).collect();
                self.take_physical(&phys)
            }
        }
    }

    /// Gather **physical** rows by index, ignoring any selection. The
    /// operator-internal gather primitive (joins and aggregates compute
    /// physical indices directly).
    pub fn take_physical(&self, indices: &[u32]) -> Batch {
        Batch::new(self.columns.iter().map(|c| c.take(indices)).collect())
    }

    /// Keep logical rows where `mask` is true, across all columns.
    pub fn filter(&self, mask: &[bool]) -> Batch {
        assert_eq!(mask.len(), self.rows, "filter mask length mismatch");
        let indices: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i as u32))
            .collect();
        self.take(&indices)
    }

    /// Contiguous sub-range of logical rows. Zero-copy for unselected
    /// batches (column windows); selected batches share columns and carry
    /// the corresponding slice of the selection.
    pub fn slice(&self, offset: usize, len: usize) -> Batch {
        match &self.sel {
            None => Batch::new(self.columns.iter().map(|c| c.slice(offset, len)).collect()),
            Some(sel) => {
                let sub: Vec<u32> = sel[offset..offset + len].to_vec();
                Batch {
                    columns: self.columns.clone(),
                    physical: self.physical,
                    sel: Some(Arc::new(sub)),
                    rows: len,
                }
            }
        }
    }

    /// Concatenate batches of identical width and column types, compacting
    /// any selections. A single unselected input is returned as a zero-copy
    /// shared clone.
    pub fn concat(batches: &[Batch]) -> Batch {
        assert!(!batches.is_empty(), "concat of zero batches");
        if batches.len() == 1 {
            return batches[0].compact();
        }
        let compacted: Vec<Batch> = batches.iter().map(|b| b.compact()).collect();
        let width = compacted[0].width();
        let mut cols = Vec::with_capacity(width);
        for i in 0..width {
            let parts: Vec<&Column> = compacted.iter().map(|b| b.column(i)).collect();
            cols.push(Column::concat(&parts));
        }
        Batch::new(cols)
    }

    /// Concatenate batches, producing a zero-row batch that preserves the
    /// schema's width (one empty column per field) when there are none —
    /// the materialization helper for result collection points.
    pub fn concat_or_empty(schema: &crate::schema::Schema, batches: &[Batch]) -> Batch {
        if batches.is_empty() {
            Batch::new(
                schema
                    .fields()
                    .iter()
                    .map(|f| crate::column::ColumnBuilder::new(f.dtype, 0).finish())
                    .collect(),
            )
        } else {
            Batch::concat(batches)
        }
    }

    /// The `idx`-th [`crate::BATCH_CAPACITY`]-sized morsel of this batch:
    /// a zero-copy window, the unit of work-stealing under morsel-driven
    /// parallel execution and of re-chunking on cache replay. Morsel
    /// boundaries are a pure function of row count, so every execution of
    /// the same data — serial or any DOP — sees identical batch edges.
    pub fn morsel(&self, idx: usize) -> Batch {
        let (offset, len) = morsel_bounds(self.rows, idx);
        self.slice(offset, len)
    }

    /// Number of morsels covering this batch (see [`Batch::morsel`]).
    pub fn morsel_count(&self) -> usize {
        morsel_count(self.rows)
    }

    /// Extract one **physical** row as scalar values.
    pub fn physical_row(&self, p: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(p)).collect()
    }

    /// Extract one logical row as scalar values (test/display helper).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.physical_row(self.to_physical(i))
    }

    /// All logical rows as scalar value vectors (test helper).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// Approximate in-memory footprint in bytes. For a selected batch this
    /// scales the shared columns' span by the selectivity — an estimate
    /// (exact accounting happens on compacted batches at store
    /// boundaries).
    pub fn size_bytes(&self) -> usize {
        let span: usize = self.columns.iter().map(|c| c.size_bytes()).sum();
        match &self.sel {
            None => span,
            Some(_) if self.physical == 0 => 0,
            Some(_) => span * self.rows / self.physical,
        }
    }
}

/// Logical equality: same width and the same logical rows (selection and
/// windowing resolved), NULL-aware.
impl PartialEq for Batch {
    fn eq(&self, other: &Self) -> bool {
        self.width() == other.width()
            && self.rows == other.rows
            && self.to_rows() == other.to_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Batch {
        Batch::new(vec![
            Column::from_ints(vec![1, 2, 3]),
            Column::from_strs(["a", "b", "c"]),
        ])
    }

    #[test]
    fn dimensions() {
        let b = batch();
        assert_eq!(b.rows(), 3);
        assert_eq!(b.width(), 2);
        assert!(!b.is_empty());
        assert!(Batch::empty().is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unequal_columns_rejected() {
        Batch::new(vec![
            Column::from_ints(vec![1]),
            Column::from_ints(vec![1, 2]),
        ]);
    }

    #[test]
    fn take_and_filter() {
        let b = batch();
        let t = b.take(&[2, 0]);
        assert_eq!(t.row(0), vec![Value::Int(3), Value::str("c")]);
        let f = b.filter(&[false, true, false]);
        assert_eq!(f.rows(), 1);
        assert_eq!(f.row(0), vec![Value::Int(2), Value::str("b")]);
    }

    #[test]
    fn slice_and_concat() {
        let b = batch();
        let s1 = b.slice(0, 1);
        let s2 = b.slice(1, 2);
        let c = Batch::concat(&[s1, s2]);
        assert_eq!(c.to_rows(), b.to_rows());
    }

    #[test]
    fn clone_and_slice_share_column_storage() {
        let b = batch();
        let cl = b.clone();
        assert!(b.column(0).shares_storage(cl.column(0)));
        let s = b.slice(1, 2);
        assert!(b.column(1).shares_storage(s.column(1)));
        assert_eq!(s.row(0), vec![Value::Int(2), Value::str("b")]);
    }

    #[test]
    fn selection_narrows_without_moving_data() {
        let b = batch().with_selection(Arc::new(vec![0, 2]));
        assert_eq!(b.rows(), 2);
        assert_eq!(b.physical_rows(), 3);
        assert_eq!(b.row(1), vec![Value::Int(3), Value::str("c")]);
        assert_eq!(b.to_physical(1), 2);
        let mut seen = Vec::new();
        b.for_each_selected(|p| seen.push(p));
        assert_eq!(seen, vec![0, 2]);
        // Columns are untouched (still 3 physical rows, shared).
        assert_eq!(b.column(0).as_ints(), &[1, 2, 3]);
    }

    #[test]
    fn compact_materializes_selection() {
        let src = batch();
        let b = src.clone().with_selection(Arc::new(vec![2, 0]));
        let c = b.compact();
        assert!(c.sel().is_none());
        assert_eq!(c.rows(), 2);
        assert_eq!(c.column(0).as_ints(), &[3, 1]);
        assert!(!c.column(0).shares_storage(src.column(0)));
        // Compacting an unselected batch is zero-copy.
        let cc = src.compact();
        assert!(cc.column(0).shares_storage(src.column(0)));
    }

    #[test]
    fn logical_take_filter_slice_respect_selection() {
        let b = batch().with_selection(Arc::new(vec![0, 2]));
        let t = b.take(&[1]);
        assert_eq!(t.to_rows(), vec![vec![Value::Int(3), Value::str("c")]]);
        let f = b.filter(&[true, false]);
        assert_eq!(f.to_rows(), vec![vec![Value::Int(1), Value::str("a")]]);
        let s = b.slice(1, 1);
        assert_eq!(s.rows(), 1);
        assert_eq!(s.row(0), vec![Value::Int(3), Value::str("c")]);
        // Sliced selection still shares the columns.
        assert!(s.column(0).shares_storage(b.column(0)));
    }

    #[test]
    fn concat_compacts_selected_batches() {
        let a = batch().with_selection(Arc::new(vec![1]));
        let b = batch();
        let c = Batch::concat(&[a, b]);
        assert_eq!(c.rows(), 4);
        assert_eq!(c.column(0).as_ints(), &[2, 1, 2, 3]);
        assert!(c.sel().is_none());
    }

    #[test]
    fn single_batch_concat_is_zero_copy() {
        let b = batch();
        let c = Batch::concat(std::slice::from_ref(&b));
        assert!(c.column(0).shares_storage(b.column(0)));
    }

    #[test]
    #[should_panic(expected = "compact")]
    fn into_columns_rejects_selected_batch() {
        let _ = batch().with_selection(Arc::new(vec![0])).into_columns();
    }

    #[test]
    fn logical_equality() {
        let a = batch().with_selection(Arc::new(vec![1]));
        let b = batch().slice(1, 1);
        assert_eq!(a, b);
        assert_ne!(a, batch());
    }

    #[test]
    fn size_accounting() {
        let b = batch();
        assert_eq!(
            b.size_bytes(),
            b.column(0).size_bytes() + b.column(1).size_bytes()
        );
        // Selected batches report a selectivity-scaled estimate.
        let sel = b.clone().with_selection(Arc::new(vec![0]));
        assert!(sel.size_bytes() < b.size_bytes());
    }
}
