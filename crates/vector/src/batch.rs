//! Execution batches: equal-length column sets.

use crate::column::Column;
use crate::value::Value;

/// A horizontal chunk of a result: a set of equal-length columns.
///
/// Batches do not carry a schema; operators know their output schema
/// statically and batches are positional. This keeps the per-batch overhead
/// minimal on the vector-at-a-time hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    columns: Vec<Column>,
    rows: usize,
}

impl Batch {
    /// Build a batch from columns; all columns must have identical length.
    pub fn new(columns: Vec<Column>) -> Self {
        let rows = columns.first().map_or(0, |c| c.len());
        for c in &columns {
            assert_eq!(c.len(), rows, "batch column length mismatch");
        }
        Batch { columns, rows }
    }

    /// An empty batch with zero columns and zero rows (used by operators
    /// producing a single aggregate row from empty input edge cases).
    pub fn empty() -> Self {
        Batch {
            columns: Vec::new(),
            rows: 0,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the batch has zero rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Consume into the column vector.
    pub fn into_columns(self) -> Vec<Column> {
        self.columns
    }

    /// Gather rows by index across all columns.
    pub fn take(&self, indices: &[u32]) -> Batch {
        Batch::new(self.columns.iter().map(|c| c.take(indices)).collect())
    }

    /// Keep rows where `mask` is true, across all columns.
    pub fn filter(&self, mask: &[bool]) -> Batch {
        assert_eq!(mask.len(), self.rows, "filter mask length mismatch");
        let indices: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i as u32))
            .collect();
        self.take(&indices)
    }

    /// Contiguous sub-range of rows.
    pub fn slice(&self, offset: usize, len: usize) -> Batch {
        Batch::new(self.columns.iter().map(|c| c.slice(offset, len)).collect())
    }

    /// Concatenate batches of identical width and column types.
    pub fn concat(batches: &[Batch]) -> Batch {
        assert!(!batches.is_empty(), "concat of zero batches");
        let width = batches[0].width();
        let mut cols = Vec::with_capacity(width);
        for i in 0..width {
            let parts: Vec<&Column> = batches.iter().map(|b| b.column(i)).collect();
            cols.push(Column::concat(&parts));
        }
        Batch::new(cols)
    }

    /// Concatenate batches, producing a zero-row batch that preserves the
    /// schema's width (one empty column per field) when there are none —
    /// the materialization helper for result collection points.
    pub fn concat_or_empty(schema: &crate::schema::Schema, batches: &[Batch]) -> Batch {
        if batches.is_empty() {
            Batch::new(
                schema
                    .fields()
                    .iter()
                    .map(|f| crate::column::ColumnBuilder::new(f.dtype, 0).finish())
                    .collect(),
            )
        } else {
            Batch::concat(batches)
        }
    }

    /// Extract one row as scalar values (test/display helper).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// All rows as scalar value vectors (test helper).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Batch {
        Batch::new(vec![
            Column::from_ints(vec![1, 2, 3]),
            Column::from_strs(["a", "b", "c"]),
        ])
    }

    #[test]
    fn dimensions() {
        let b = batch();
        assert_eq!(b.rows(), 3);
        assert_eq!(b.width(), 2);
        assert!(!b.is_empty());
        assert!(Batch::empty().is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unequal_columns_rejected() {
        Batch::new(vec![
            Column::from_ints(vec![1]),
            Column::from_ints(vec![1, 2]),
        ]);
    }

    #[test]
    fn take_and_filter() {
        let b = batch();
        let t = b.take(&[2, 0]);
        assert_eq!(t.row(0), vec![Value::Int(3), Value::str("c")]);
        let f = b.filter(&[false, true, false]);
        assert_eq!(f.rows(), 1);
        assert_eq!(f.row(0), vec![Value::Int(2), Value::str("b")]);
    }

    #[test]
    fn slice_and_concat() {
        let b = batch();
        let s1 = b.slice(0, 1);
        let s2 = b.slice(1, 2);
        let c = Batch::concat(&[s1, s2]);
        assert_eq!(c.to_rows(), b.to_rows());
    }

    #[test]
    fn size_accounting() {
        let b = batch();
        assert_eq!(
            b.size_bytes(),
            b.column(0).size_bytes() + b.column(1).size_bytes()
        );
    }
}
