//! Named, typed column metadata.

use std::fmt;
use std::sync::Arc;

use crate::types::DataType;

/// One column's name and type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Column name as visible to plan builders.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of fields describing a batch or table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Schema from a list of fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, DataType)>) -> Self {
        Schema {
            fields: pairs.into_iter().map(|(n, t)| Field::new(n, t)).collect(),
        }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Position of the column named `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Type of the column named `name`, if present.
    pub fn type_of(&self, name: &str) -> Option<DataType> {
        self.index_of(name).map(|i| self.fields[i].dtype)
    }

    /// All column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// A new schema containing the named columns in the given order.
    /// Returns `None` if any name is missing.
    pub fn project(&self, names: &[&str]) -> Option<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            fields.push(self.fields[self.index_of(n)?].clone());
        }
        Some(Schema { fields })
    }

    /// Concatenate two schemas (join output: left columns then right).
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(right.fields.iter().cloned());
        Schema { fields }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", fld.name, fld.dtype)?;
        }
        write!(f, ")")
    }
}

/// Shared schema handle used across operators.
pub type SchemaRef = Arc<Schema>;

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Schema {
        Schema::from_pairs([
            ("a", DataType::Int),
            ("b", DataType::Str),
            ("c", DataType::Float),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let sch = s();
        assert_eq!(sch.index_of("b"), Some(1));
        assert_eq!(sch.index_of("zz"), None);
        assert_eq!(sch.type_of("c"), Some(DataType::Float));
        assert_eq!(sch.len(), 3);
    }

    #[test]
    fn project_reorders() {
        let sch = s();
        let p = sch.project(&["c", "a"]).unwrap();
        assert_eq!(p.names(), vec!["c", "a"]);
        assert!(sch.project(&["missing"]).is_none());
    }

    #[test]
    fn join_concatenates() {
        let l = Schema::from_pairs([("x", DataType::Int)]);
        let r = Schema::from_pairs([("y", DataType::Date)]);
        let j = l.join(&r);
        assert_eq!(j.names(), vec!["x", "y"]);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            Schema::from_pairs([("a", DataType::Int)]).to_string(),
            "(a: int)"
        );
    }
}
