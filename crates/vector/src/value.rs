//! Scalar values.
//!
//! [`Value`] is the boxed scalar used for literals in expressions, plan
//! parameters, and row extraction in tests. The hot execution path operates
//! on [`crate::Column`] vectors and never materialises per-row `Value`s.
//!
//! `Value` implements `Eq`, `Ord`, and `Hash` with a *total* order so it can
//! serve as a key in the recycler graph's parameter matching: floats are
//! compared by their IEEE-754 bit pattern (after normalising `-0.0` to
//! `0.0`), and `Null` sorts before everything else.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::types::{format_date, DataType};

/// A single scalar value, possibly `Null`.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL (untyped).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string. `Arc<str>` makes cloning between batches cheap.
    Str(Arc<str>),
    /// Days since 1970-01-01.
    Date(i32),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The type of this value; `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Whether this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract as bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract as i64, if integral.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract as f64, promoting ints.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extract as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract as date days, if a date.
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Discriminant used for cross-type total ordering and hashing.
    fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Date(_) => 5,
        }
    }

    /// Canonical float bits: normalises -0.0 to 0.0 so `Eq`/`Hash` agree.
    fn float_bits(v: f64) -> u64 {
        if v == 0.0 {
            0f64.to_bits()
        } else {
            v.to_bits()
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => Value::float_bits(*a) == Value::float_bits(*b),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            // Numeric cross-type comparison (int literal vs float column).
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.tag());
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(v) => v.hash(state),
            Value::Float(v) => Value::float_bits(*v).hash(state),
            Value::Str(s) => s.hash(state),
            Value::Date(d) => d.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "date '{}'", format_date(*d)),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_and_hash_agree_for_floats() {
        let a = Value::Float(0.0);
        let b = Value::Float(-0.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        let nan1 = Value::Float(f64::NAN);
        let nan2 = Value::Float(f64::NAN);
        assert_eq!(nan1, nan2); // bitwise equal NaNs compare equal
    }

    #[test]
    fn total_order_is_consistent() {
        let vals = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Int(7),
            Value::Float(1.5),
            Value::str("abc"),
            Value::Date(100),
        ];
        for a in &vals {
            assert_eq!(a.cmp(a), Ordering::Equal);
            for b in &vals {
                assert_eq!(a.cmp(b), b.cmp(a).reverse());
            }
        }
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(2).cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).cmp(&Value::Int(2)), Ordering::Greater);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_float(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Date(3).as_date(), Some(3));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::str("ab").to_string(), "'ab'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Date(0).to_string(), "date '1970-01-01'");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(1.25), Value::Float(1.25));
    }
}
