//! Typed column vectors with optional validity masks.
//!
//! A [`Column`] is the unit of vectorized processing: a contiguous, typed
//! array of values plus an optional boolean validity mask (absent mask means
//! "all rows valid"). Operators transform whole columns at a time; per-row
//! [`Value`] extraction exists for tests, key encoding, and result display.

use std::sync::Arc;

use crate::types::DataType;
use crate::value::Value;

/// The typed storage of a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Booleans (filter results, flags).
    Bool(Vec<bool>),
    /// 64-bit integers (keys, quantities, counts).
    Int(Vec<i64>),
    /// 64-bit floats (prices, rates).
    Float(Vec<f64>),
    /// UTF-8 strings; `Arc<str>` so gathers and copies are cheap.
    Str(Vec<Arc<str>>),
    /// Dates as days since 1970-01-01.
    Date(Vec<i32>),
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Date(v) => v.len(),
        }
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The data type of this storage.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
            ColumnData::Date(_) => DataType::Date,
        }
    }
}

/// A typed column with an optional validity mask.
///
/// `validity == None` means every row is valid; otherwise `validity[i]`
/// indicates whether row `i` holds a real value (`false` = SQL NULL). The
/// payload slot of an invalid row contains an arbitrary default and must not
/// be interpreted.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    validity: Option<Vec<bool>>,
}

impl Column {
    /// Wrap storage with no NULLs.
    pub fn new(data: ColumnData) -> Self {
        Column {
            data,
            validity: None,
        }
    }

    /// Wrap storage with a validity mask. The mask is dropped if it is all
    /// `true`, keeping the "no mask = all valid" invariant canonical.
    pub fn with_validity(data: ColumnData, validity: Vec<bool>) -> Self {
        assert_eq!(data.len(), validity.len(), "validity length mismatch");
        if validity.iter().all(|&v| v) {
            Column {
                data,
                validity: None,
            }
        } else {
            Column {
                data,
                validity: Some(validity),
            }
        }
    }

    /// Column of `i64` values, no NULLs.
    pub fn from_ints(v: Vec<i64>) -> Self {
        Column::new(ColumnData::Int(v))
    }

    /// Column of `f64` values, no NULLs.
    pub fn from_floats(v: Vec<f64>) -> Self {
        Column::new(ColumnData::Float(v))
    }

    /// Column of booleans, no NULLs.
    pub fn from_bools(v: Vec<bool>) -> Self {
        Column::new(ColumnData::Bool(v))
    }

    /// Column of strings, no NULLs.
    pub fn from_strs<S: AsRef<str>>(v: impl IntoIterator<Item = S>) -> Self {
        Column::new(ColumnData::Str(
            v.into_iter().map(|s| Arc::from(s.as_ref())).collect(),
        ))
    }

    /// Column of dates (days since epoch), no NULLs.
    pub fn from_dates(v: Vec<i32>) -> Self {
        Column::new(ColumnData::Date(v))
    }

    /// Build a column of the given type from scalar values (may contain
    /// `Value::Null`). Panics on a type mismatch.
    pub fn from_values(dtype: DataType, values: &[Value]) -> Self {
        let mut b = ColumnBuilder::new(dtype, values.len());
        for v in values {
            b.push(v.clone());
        }
        b.finish()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The data type.
    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// Borrow the typed storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Borrow the validity mask if one is present.
    pub fn validity(&self) -> Option<&[bool]> {
        self.validity.as_deref()
    }

    /// Whether row `i` is valid (not NULL).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|m| m[i])
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.validity
            .as_ref()
            .map_or(0, |m| m.iter().filter(|&&v| !v).count())
    }

    /// Extract row `i` as a scalar [`Value`] (NULL-aware). For tests and
    /// display paths only; not used in the vectorized hot loop.
    pub fn get(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Date(v) => Value::Date(v[i]),
        }
    }

    /// Gather rows by index: `out[k] = self[indices[k]]`.
    pub fn take(&self, indices: &[u32]) -> Column {
        let data = match &self.data {
            ColumnData::Bool(v) => {
                ColumnData::Bool(indices.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float(v) => {
                ColumnData::Float(indices.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Str(v) => {
                ColumnData::Str(indices.iter().map(|&i| v[i as usize].clone()).collect())
            }
            ColumnData::Date(v) => {
                ColumnData::Date(indices.iter().map(|&i| v[i as usize]).collect())
            }
        };
        match &self.validity {
            None => Column::new(data),
            Some(m) => {
                Column::with_validity(data, indices.iter().map(|&i| m[i as usize]).collect())
            }
        }
    }

    /// Keep only rows where `mask[i]` is true. `mask.len()` must equal
    /// `self.len()`.
    pub fn filter(&self, mask: &[bool]) -> Column {
        assert_eq!(mask.len(), self.len(), "filter mask length mismatch");
        let indices: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i as u32))
            .collect();
        self.take(&indices)
    }

    /// Contiguous sub-range `[offset, offset+len)` as a new column.
    pub fn slice(&self, offset: usize, len: usize) -> Column {
        fn sl<T: Clone>(v: &[T], o: usize, l: usize) -> Vec<T> {
            v[o..o + l].to_vec()
        }
        let data = match &self.data {
            ColumnData::Bool(v) => ColumnData::Bool(sl(v, offset, len)),
            ColumnData::Int(v) => ColumnData::Int(sl(v, offset, len)),
            ColumnData::Float(v) => ColumnData::Float(sl(v, offset, len)),
            ColumnData::Str(v) => ColumnData::Str(sl(v, offset, len)),
            ColumnData::Date(v) => ColumnData::Date(sl(v, offset, len)),
        };
        match &self.validity {
            None => Column::new(data),
            Some(m) => Column::with_validity(data, sl(m, offset, len)),
        }
    }

    /// Concatenate columns of identical type into one. Panics if `cols` is
    /// empty or types differ.
    pub fn concat(cols: &[&Column]) -> Column {
        assert!(!cols.is_empty(), "concat of zero columns");
        let dtype = cols[0].data_type();
        let total: usize = cols.iter().map(|c| c.len()).sum();
        let mut b = ColumnBuilder::new(dtype, total);
        for c in cols {
            assert_eq!(c.data_type(), dtype, "concat type mismatch");
            b.append_column(c);
        }
        b.finish()
    }

    /// Approximate in-memory footprint in bytes (used for recycler cache
    /// accounting: fixed-width payload + string heap + validity mask).
    pub fn size_bytes(&self) -> usize {
        let payload = match &self.data {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Str(v) => v.iter().map(|s| 16 + s.len()).sum(),
            ColumnData::Date(v) => v.len() * 4,
        };
        payload + self.validity.as_ref().map_or(0, |m| m.len())
    }

    /// Borrow as `&[i64]`, panicking if not an int column with no NULLs
    /// consulted. (NULL payload slots hold defaults; callers that accept
    /// NULLs must check the mask separately.)
    pub fn as_ints(&self) -> &[i64] {
        match &self.data {
            ColumnData::Int(v) => v,
            other => panic!("expected int column, got {}", other.data_type()),
        }
    }

    /// Borrow as `&[f64]`.
    pub fn as_floats(&self) -> &[f64] {
        match &self.data {
            ColumnData::Float(v) => v,
            other => panic!("expected float column, got {}", other.data_type()),
        }
    }

    /// Borrow as `&[bool]`.
    pub fn as_bools(&self) -> &[bool] {
        match &self.data {
            ColumnData::Bool(v) => v,
            other => panic!("expected bool column, got {}", other.data_type()),
        }
    }

    /// Borrow as `&[Arc<str>]`.
    pub fn as_strs(&self) -> &[Arc<str>] {
        match &self.data {
            ColumnData::Str(v) => v,
            other => panic!("expected str column, got {}", other.data_type()),
        }
    }

    /// Borrow as `&[i32]` date days.
    pub fn as_dates(&self) -> &[i32] {
        match &self.data {
            ColumnData::Date(v) => v,
            other => panic!("expected date column, got {}", other.data_type()),
        }
    }

    /// All rows as scalar values (test/display helper).
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

/// Incremental builder for a [`Column`] of a fixed type.
#[derive(Debug)]
pub struct ColumnBuilder {
    dtype: DataType,
    bools: Vec<bool>,
    ints: Vec<i64>,
    floats: Vec<f64>,
    strs: Vec<Arc<str>>,
    dates: Vec<i32>,
    validity: Vec<bool>,
    has_null: bool,
}

impl ColumnBuilder {
    /// New builder for `dtype`, reserving `capacity` rows.
    pub fn new(dtype: DataType, capacity: usize) -> Self {
        let mut b = ColumnBuilder {
            dtype,
            bools: Vec::new(),
            ints: Vec::new(),
            floats: Vec::new(),
            strs: Vec::new(),
            dates: Vec::new(),
            validity: Vec::with_capacity(capacity),
            has_null: false,
        };
        match dtype {
            DataType::Bool => b.bools.reserve(capacity),
            DataType::Int => b.ints.reserve(capacity),
            DataType::Float => b.floats.reserve(capacity),
            DataType::Str => b.strs.reserve(capacity),
            DataType::Date => b.dates.reserve(capacity),
        }
        b
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// Whether no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Append one scalar. `Value::Null` appends a NULL; floats accept int
    /// values (promoted). Panics on other type mismatches.
    pub fn push(&mut self, v: Value) {
        if v.is_null() {
            self.push_null();
            return;
        }
        self.validity.push(true);
        match (self.dtype, v) {
            (DataType::Bool, Value::Bool(x)) => self.bools.push(x),
            (DataType::Int, Value::Int(x)) => self.ints.push(x),
            (DataType::Float, Value::Float(x)) => self.floats.push(x),
            (DataType::Float, Value::Int(x)) => self.floats.push(x as f64),
            (DataType::Str, Value::Str(x)) => self.strs.push(x),
            (DataType::Date, Value::Date(x)) => self.dates.push(x),
            (dt, v) => panic!("type mismatch pushing {v:?} into {dt} builder"),
        }
    }

    /// Append a NULL row.
    pub fn push_null(&mut self) {
        self.has_null = true;
        self.validity.push(false);
        match self.dtype {
            DataType::Bool => self.bools.push(false),
            DataType::Int => self.ints.push(0),
            DataType::Float => self.floats.push(0.0),
            DataType::Str => self.strs.push(Arc::from("")),
            DataType::Date => self.dates.push(0),
        }
    }

    /// Append every row of `col` (must have the same type).
    pub fn append_column(&mut self, col: &Column) {
        assert_eq!(col.data_type(), self.dtype, "append type mismatch");
        match (&mut self.dtype, col.data()) {
            (DataType::Bool, ColumnData::Bool(v)) => self.bools.extend_from_slice(v),
            (DataType::Int, ColumnData::Int(v)) => self.ints.extend_from_slice(v),
            (DataType::Float, ColumnData::Float(v)) => self.floats.extend_from_slice(v),
            (DataType::Str, ColumnData::Str(v)) => self.strs.extend_from_slice(v),
            (DataType::Date, ColumnData::Date(v)) => self.dates.extend_from_slice(v),
            _ => unreachable!(),
        }
        match col.validity() {
            None => self.validity.extend(std::iter::repeat_n(true, col.len())),
            Some(m) => {
                self.has_null = true;
                self.validity.extend_from_slice(m);
            }
        }
    }

    /// Finish into a [`Column`].
    pub fn finish(self) -> Column {
        let data = match self.dtype {
            DataType::Bool => ColumnData::Bool(self.bools),
            DataType::Int => ColumnData::Int(self.ints),
            DataType::Float => ColumnData::Float(self.floats),
            DataType::Str => ColumnData::Str(self.strs),
            DataType::Date => ColumnData::Date(self.dates),
        };
        if self.has_null {
            Column::with_validity(data, self.validity)
        } else {
            Column::new(data)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_get() {
        let c = Column::from_ints(vec![1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1), Value::Int(2));
        assert_eq!(c.data_type(), DataType::Int);
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn builder_with_nulls() {
        let mut b = ColumnBuilder::new(DataType::Float, 4);
        b.push(Value::Float(1.5));
        b.push_null();
        b.push(Value::Int(2)); // int promoted into float builder
        let c = b.finish();
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(0), Value::Float(1.5));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Float(2.0));
    }

    #[test]
    fn all_valid_mask_is_dropped() {
        let c = Column::with_validity(ColumnData::Int(vec![1, 2]), vec![true, true]);
        assert!(c.validity().is_none());
    }

    #[test]
    fn take_gathers_values_and_validity() {
        let mut b = ColumnBuilder::new(DataType::Str, 3);
        b.push(Value::str("a"));
        b.push_null();
        b.push(Value::str("c"));
        let c = b.finish();
        let t = c.take(&[2, 0, 1, 2]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(0), Value::str("c"));
        assert_eq!(t.get(1), Value::str("a"));
        assert_eq!(t.get(2), Value::Null);
        assert_eq!(t.get(3), Value::str("c"));
    }

    #[test]
    fn filter_keeps_masked_rows() {
        let c = Column::from_ints(vec![10, 20, 30, 40]);
        let f = c.filter(&[true, false, false, true]);
        assert_eq!(f.to_values(), vec![Value::Int(10), Value::Int(40)]);
    }

    #[test]
    fn slice_extracts_range() {
        let c = Column::from_dates(vec![1, 2, 3, 4, 5]);
        let s = c.slice(1, 3);
        assert_eq!(s.as_dates(), &[2, 3, 4]);
    }

    #[test]
    fn concat_joins_columns() {
        let a = Column::from_ints(vec![1, 2]);
        let b = Column::from_ints(vec![3]);
        let c = Column::concat(&[&a, &b]);
        assert_eq!(c.as_ints(), &[1, 2, 3]);
    }

    #[test]
    fn concat_preserves_nulls() {
        let a = Column::from_ints(vec![1]);
        let mut bb = ColumnBuilder::new(DataType::Int, 1);
        bb.push_null();
        let b = bb.finish();
        let c = Column::concat(&[&a, &b]);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(1), Value::Null);
    }

    #[test]
    fn size_bytes_accounts_for_strings() {
        let c = Column::from_strs(["ab", "cdef"]);
        // 2 * 16 bytes Arc overhead + 2 + 4 payload
        assert_eq!(c.size_bytes(), 38);
        let i = Column::from_ints(vec![0; 10]);
        assert_eq!(i.size_bytes(), 80);
    }

    #[test]
    fn from_values_roundtrip() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        let c = Column::from_values(DataType::Int, &vals);
        assert_eq!(c.to_values(), vals);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn builder_rejects_wrong_type() {
        let mut b = ColumnBuilder::new(DataType::Int, 1);
        b.push(Value::str("oops"));
    }

    #[test]
    fn bool_column_access() {
        let c = Column::from_bools(vec![true, false]);
        assert_eq!(c.as_bools(), &[true, false]);
        assert_eq!(c.get(1), Value::Bool(false));
    }
}
