//! Typed column vectors with Arc-shared storage and optional validity masks.
//!
//! A [`Column`] is the unit of vectorized processing: a typed array of
//! values plus an optional boolean validity mask (absent mask means "all
//! rows valid"). Storage is reference-counted and immutable once built:
//!
//! * `Column::clone` is an `Arc` refcount bump — **no data is copied**;
//! * [`Column::slice`] is O(1): it shares the same storage and narrows the
//!   `(offset, len)` window;
//! * [`ColumnBuilder::finish`] always produces **unique** storage, so the
//!   build side of the data path never pays copy-on-write;
//! * the rare in-place mutation (e.g. boolean negation over a freshly
//!   computed mask) goes through [`Column::map_bools`], which uses
//!   `Arc::make_mut` copy-on-write: it mutates in place when the column
//!   holds the only reference and copies the window otherwise.
//!
//! Operators transform whole columns at a time; per-row [`Value`] extraction
//! exists for tests, key encoding, and result display.

use std::sync::Arc;

use crate::types::DataType;
use crate::value::Value;

/// The typed, reference-counted storage of a column.
///
/// Cloning any variant bumps a refcount; the payload vector itself is
/// shared. A [`Column`] views a contiguous window of this storage, so
/// indices here are *storage* positions — use the column's accessors
/// ([`Column::values`], `Column::as_*`) for window-relative access.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Booleans (filter results, flags).
    Bool(Arc<Vec<bool>>),
    /// 64-bit integers (keys, quantities, counts).
    Int(Arc<Vec<i64>>),
    /// 64-bit floats (prices, rates).
    Float(Arc<Vec<f64>>),
    /// UTF-8 strings; `Arc<str>` so gathers and copies are cheap.
    Str(Arc<Vec<Arc<str>>>),
    /// Dates as days since 1970-01-01.
    Date(Arc<Vec<i32>>),
}

impl ColumnData {
    /// Wrap a boolean vector (single allocation, no copy).
    pub fn bools(v: Vec<bool>) -> Self {
        ColumnData::Bool(Arc::new(v))
    }

    /// Wrap an integer vector.
    pub fn ints(v: Vec<i64>) -> Self {
        ColumnData::Int(Arc::new(v))
    }

    /// Wrap a float vector.
    pub fn floats(v: Vec<f64>) -> Self {
        ColumnData::Float(Arc::new(v))
    }

    /// Wrap a string vector.
    pub fn strs(v: Vec<Arc<str>>) -> Self {
        ColumnData::Str(Arc::new(v))
    }

    /// Wrap a date vector.
    pub fn dates(v: Vec<i32>) -> Self {
        ColumnData::Date(Arc::new(v))
    }

    /// Number of rows in the underlying storage (not the viewing window).
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Date(v) => v.len(),
        }
    }

    /// Whether the storage has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The data type of this storage.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
            ColumnData::Date(_) => DataType::Date,
        }
    }

    /// Whether `self` and `other` share the same storage allocation
    /// (`Arc::ptr_eq` identity — the zero-copy test hook).
    pub fn ptr_eq(&self, other: &ColumnData) -> bool {
        match (self, other) {
            (ColumnData::Bool(a), ColumnData::Bool(b)) => Arc::ptr_eq(a, b),
            (ColumnData::Int(a), ColumnData::Int(b)) => Arc::ptr_eq(a, b),
            (ColumnData::Float(a), ColumnData::Float(b)) => Arc::ptr_eq(a, b),
            (ColumnData::Str(a), ColumnData::Str(b)) => Arc::ptr_eq(a, b),
            (ColumnData::Date(a), ColumnData::Date(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// A borrowed, window-relative view of a column's payload.
///
/// This is what operators match on for type dispatch; the slices cover
/// exactly the column's `(offset, len)` window, so `slice[i]` is row `i`
/// of the column.
#[derive(Debug, Clone, Copy)]
pub enum ColumnSlice<'a> {
    /// Booleans.
    Bool(&'a [bool]),
    /// 64-bit integers.
    Int(&'a [i64]),
    /// 64-bit floats.
    Float(&'a [f64]),
    /// Strings.
    Str(&'a [Arc<str>]),
    /// Dates as days since epoch.
    Date(&'a [i32]),
}

impl ColumnSlice<'_> {
    /// The data type of the viewed payload.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnSlice::Bool(_) => DataType::Bool,
            ColumnSlice::Int(_) => DataType::Int,
            ColumnSlice::Float(_) => DataType::Float,
            ColumnSlice::Str(_) => DataType::Str,
            ColumnSlice::Date(_) => DataType::Date,
        }
    }
}

/// A typed column: a window over shared storage plus an optional validity
/// mask.
///
/// `validity == None` means every row is valid; otherwise `validity[i]`
/// (window-relative) indicates whether row `i` holds a real value
/// (`false` = SQL NULL). The payload slot of an invalid row contains an
/// arbitrary default and must not be interpreted.
///
/// Cloning and slicing share storage; see the module docs for the full
/// ownership model.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    /// Validity mask over the *full* storage (window applied on access).
    validity: Option<Arc<Vec<bool>>>,
    /// First storage row of the window.
    offset: usize,
    /// Window length in rows.
    len: usize,
}

impl Column {
    /// Wrap storage with no NULLs, viewing its full length.
    pub fn new(data: ColumnData) -> Self {
        let len = data.len();
        Column {
            data,
            validity: None,
            offset: 0,
            len,
        }
    }

    /// Wrap storage with a validity mask. The mask is dropped if it is all
    /// `true`, keeping the "no mask = all valid" invariant canonical.
    pub fn with_validity(data: ColumnData, validity: Vec<bool>) -> Self {
        assert_eq!(data.len(), validity.len(), "validity length mismatch");
        let len = data.len();
        if validity.iter().all(|&v| v) {
            Column {
                data,
                validity: None,
                offset: 0,
                len,
            }
        } else {
            Column {
                data,
                validity: Some(Arc::new(validity)),
                offset: 0,
                len,
            }
        }
    }

    /// Column of `i64` values, no NULLs.
    pub fn from_ints(v: Vec<i64>) -> Self {
        Column::new(ColumnData::ints(v))
    }

    /// Column of `f64` values, no NULLs.
    pub fn from_floats(v: Vec<f64>) -> Self {
        Column::new(ColumnData::floats(v))
    }

    /// Column of booleans, no NULLs.
    pub fn from_bools(v: Vec<bool>) -> Self {
        Column::new(ColumnData::bools(v))
    }

    /// Column of strings, no NULLs.
    pub fn from_strs<S: AsRef<str>>(v: impl IntoIterator<Item = S>) -> Self {
        Column::new(ColumnData::strs(
            v.into_iter().map(|s| Arc::from(s.as_ref())).collect(),
        ))
    }

    /// Column of dates (days since epoch), no NULLs.
    pub fn from_dates(v: Vec<i32>) -> Self {
        Column::new(ColumnData::dates(v))
    }

    /// Build a column of the given type from scalar values (may contain
    /// `Value::Null`). Panics on a type mismatch.
    pub fn from_values(dtype: DataType, values: &[Value]) -> Self {
        let mut b = ColumnBuilder::new(dtype, values.len());
        for v in values {
            b.push(v.clone());
        }
        b.finish()
    }

    /// Number of rows in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The data type.
    #[inline]
    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// Borrow the payload of the window as a typed slice view.
    #[inline]
    pub fn values(&self) -> ColumnSlice<'_> {
        let (o, l) = (self.offset, self.len);
        match &self.data {
            ColumnData::Bool(v) => ColumnSlice::Bool(&v[o..o + l]),
            ColumnData::Int(v) => ColumnSlice::Int(&v[o..o + l]),
            ColumnData::Float(v) => ColumnSlice::Float(&v[o..o + l]),
            ColumnData::Str(v) => ColumnSlice::Str(&v[o..o + l]),
            ColumnData::Date(v) => ColumnSlice::Date(&v[o..o + l]),
        }
    }

    /// Borrow the shared storage (full length, ignoring the window). For
    /// storage-identity checks and advanced zero-copy plumbing; row access
    /// should go through [`Column::values`] or the `as_*` accessors.
    pub fn storage(&self) -> &ColumnData {
        &self.data
    }

    /// Whether `self` and `other` share the same payload allocation
    /// (regardless of their windows). The zero-copy assertion hook.
    pub fn shares_storage(&self, other: &Column) -> bool {
        self.data.ptr_eq(&other.data)
    }

    /// Borrow the validity mask over the window if one is present.
    ///
    /// Note: a window of a wider mask may be all-`true`; callers that only
    /// need per-row checks should prefer [`Column::is_valid`].
    #[inline]
    pub fn validity(&self) -> Option<&[bool]> {
        self.validity
            .as_ref()
            .map(|m| &m[self.offset..self.offset + self.len])
    }

    /// Whether row `i` (window-relative) is valid (not NULL).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.validity.as_ref().is_none_or(|m| m[self.offset + i])
    }

    /// Number of NULL rows in the window.
    pub fn null_count(&self) -> usize {
        self.validity()
            .map_or(0, |m| m.iter().filter(|&&v| !v).count())
    }

    /// Extract row `i` as a scalar [`Value`] (NULL-aware). For tests and
    /// display paths only; not used in the vectorized hot loop.
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match self.values() {
            ColumnSlice::Bool(v) => Value::Bool(v[i]),
            ColumnSlice::Int(v) => Value::Int(v[i]),
            ColumnSlice::Float(v) => Value::Float(v[i]),
            ColumnSlice::Str(v) => Value::Str(v[i].clone()),
            ColumnSlice::Date(v) => Value::Date(v[i]),
        }
    }

    /// Gather rows by window-relative index: `out[k] = self[indices[k]]`.
    /// Produces unique (unshared) storage.
    pub fn take(&self, indices: &[u32]) -> Column {
        let data = match self.values() {
            ColumnSlice::Bool(v) => {
                ColumnData::bools(indices.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnSlice::Int(v) => {
                ColumnData::ints(indices.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnSlice::Float(v) => {
                ColumnData::floats(indices.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnSlice::Str(v) => {
                ColumnData::strs(indices.iter().map(|&i| v[i as usize].clone()).collect())
            }
            ColumnSlice::Date(v) => {
                ColumnData::dates(indices.iter().map(|&i| v[i as usize]).collect())
            }
        };
        match self.validity() {
            None => Column::new(data),
            Some(m) => {
                Column::with_validity(data, indices.iter().map(|&i| m[i as usize]).collect())
            }
        }
    }

    /// Keep only rows where `mask[i]` is true. `mask.len()` must equal
    /// `self.len()`.
    pub fn filter(&self, mask: &[bool]) -> Column {
        assert_eq!(mask.len(), self.len(), "filter mask length mismatch");
        let indices: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i as u32))
            .collect();
        self.take(&indices)
    }

    /// Contiguous sub-range `[offset, offset+len)` of the window as a new
    /// column. **O(1)**: the result shares storage with `self`.
    pub fn slice(&self, offset: usize, len: usize) -> Column {
        assert!(
            offset + len <= self.len,
            "slice [{offset}, {offset}+{len}) out of bounds for column of {} rows",
            self.len
        );
        Column {
            data: self.data.clone(),
            validity: self.validity.clone(),
            offset: self.offset + offset,
            len,
        }
    }

    /// Concatenate columns of identical type into one. Panics if `cols` is
    /// empty or types differ. A single input is returned as a zero-copy
    /// shared clone.
    pub fn concat(cols: &[&Column]) -> Column {
        assert!(!cols.is_empty(), "concat of zero columns");
        if cols.len() == 1 {
            return cols[0].clone();
        }
        let dtype = cols[0].data_type();
        let total: usize = cols.iter().map(|c| c.len()).sum();
        let mut b = ColumnBuilder::new(dtype, total);
        for c in cols {
            assert_eq!(c.data_type(), dtype, "concat type mismatch");
            b.append_column(c);
        }
        b.finish()
    }

    /// Approximate in-memory footprint of the window in bytes (used for
    /// recycler cache accounting: fixed-width payload + string heap +
    /// validity mask). Shared windows report their own span, not the whole
    /// underlying allocation.
    pub fn size_bytes(&self) -> usize {
        let payload = match self.values() {
            ColumnSlice::Bool(v) => v.len(),
            ColumnSlice::Int(v) => v.len() * 8,
            ColumnSlice::Float(v) => v.len() * 8,
            ColumnSlice::Str(v) => v.iter().map(|s| 16 + s.len()).sum(),
            ColumnSlice::Date(v) => v.len() * 4,
        };
        payload + self.validity.as_ref().map_or(0, |_| self.len)
    }

    /// Borrow as `&[i64]`, panicking if not an int column. (NULL payload
    /// slots hold defaults; callers that accept NULLs must check the mask
    /// separately.)
    #[inline]
    pub fn as_ints(&self) -> &[i64] {
        match self.values() {
            ColumnSlice::Int(v) => v,
            other => panic!("expected int column, got {}", other.data_type()),
        }
    }

    /// Borrow as `&[f64]`.
    #[inline]
    pub fn as_floats(&self) -> &[f64] {
        match self.values() {
            ColumnSlice::Float(v) => v,
            other => panic!("expected float column, got {}", other.data_type()),
        }
    }

    /// Borrow as `&[bool]`.
    #[inline]
    pub fn as_bools(&self) -> &[bool] {
        match self.values() {
            ColumnSlice::Bool(v) => v,
            other => panic!("expected bool column, got {}", other.data_type()),
        }
    }

    /// Borrow as `&[Arc<str>]`.
    #[inline]
    pub fn as_strs(&self) -> &[Arc<str>] {
        match self.values() {
            ColumnSlice::Str(v) => v,
            other => panic!("expected str column, got {}", other.data_type()),
        }
    }

    /// Borrow as `&[i32]` date days.
    #[inline]
    pub fn as_dates(&self) -> &[i32] {
        match self.values() {
            ColumnSlice::Date(v) => v,
            other => panic!("expected date column, got {}", other.data_type()),
        }
    }

    /// Apply `f` to every boolean in the window, keeping the validity mask.
    ///
    /// Copy-on-write: when this column holds the only reference to its
    /// storage and views it fully, the transform happens **in place**
    /// (`Arc::make_mut`, no allocation); otherwise the window is copied
    /// once. Panics if the column is not boolean.
    pub fn map_bools(mut self, f: impl Fn(bool) -> bool) -> Column {
        match &mut self.data {
            ColumnData::Bool(storage) => {
                if self.offset == 0 && self.len == storage.len() && Arc::get_mut(storage).is_some()
                {
                    for b in Arc::make_mut(storage).iter_mut() {
                        *b = f(*b);
                    }
                    self
                } else {
                    let vals: Vec<bool> = storage[self.offset..self.offset + self.len]
                        .iter()
                        .map(|&b| f(b))
                        .collect();
                    let validity = self
                        .validity
                        .as_ref()
                        .map(|m| m[self.offset..self.offset + self.len].to_vec());
                    match validity {
                        None => Column::from_bools(vals),
                        Some(m) => Column::with_validity(ColumnData::bools(vals), m),
                    }
                }
            }
            other => panic!("expected bool column, got {}", other.data_type()),
        }
    }

    /// All rows as scalar values (test/display helper).
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

/// Logical equality: same type, same window length, same payload and
/// validity per row. Two columns viewing different windows of different
/// storage compare equal when their windows hold the same rows.
impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let payload_eq = match (self.values(), other.values()) {
            (ColumnSlice::Bool(a), ColumnSlice::Bool(b)) => a == b,
            (ColumnSlice::Int(a), ColumnSlice::Int(b)) => a == b,
            (ColumnSlice::Float(a), ColumnSlice::Float(b)) => a == b,
            (ColumnSlice::Str(a), ColumnSlice::Str(b)) => a == b,
            (ColumnSlice::Date(a), ColumnSlice::Date(b)) => a == b,
            _ => false,
        };
        payload_eq && (0..self.len).all(|i| self.is_valid(i) == other.is_valid(i))
    }
}

/// Incremental builder for a [`Column`] of a fixed type.
///
/// `finish` always yields **unique** storage: nothing shares the produced
/// Arc until the column is cloned or sliced, so builders are the safe place
/// to create data that later flows through the zero-copy path.
#[derive(Debug)]
pub struct ColumnBuilder {
    dtype: DataType,
    bools: Vec<bool>,
    ints: Vec<i64>,
    floats: Vec<f64>,
    strs: Vec<Arc<str>>,
    dates: Vec<i32>,
    validity: Vec<bool>,
    has_null: bool,
}

impl ColumnBuilder {
    /// New builder for `dtype`, reserving `capacity` rows.
    pub fn new(dtype: DataType, capacity: usize) -> Self {
        let mut b = ColumnBuilder {
            dtype,
            bools: Vec::new(),
            ints: Vec::new(),
            floats: Vec::new(),
            strs: Vec::new(),
            dates: Vec::new(),
            validity: Vec::with_capacity(capacity),
            has_null: false,
        };
        match dtype {
            DataType::Bool => b.bools.reserve(capacity),
            DataType::Int => b.ints.reserve(capacity),
            DataType::Float => b.floats.reserve(capacity),
            DataType::Str => b.strs.reserve(capacity),
            DataType::Date => b.dates.reserve(capacity),
        }
        b
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// Whether no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Append one scalar. `Value::Null` appends a NULL; floats accept int
    /// values (promoted). Panics on other type mismatches.
    pub fn push(&mut self, v: Value) {
        if v.is_null() {
            self.push_null();
            return;
        }
        self.validity.push(true);
        match (self.dtype, v) {
            (DataType::Bool, Value::Bool(x)) => self.bools.push(x),
            (DataType::Int, Value::Int(x)) => self.ints.push(x),
            (DataType::Float, Value::Float(x)) => self.floats.push(x),
            (DataType::Float, Value::Int(x)) => self.floats.push(x as f64),
            (DataType::Str, Value::Str(x)) => self.strs.push(x),
            (DataType::Date, Value::Date(x)) => self.dates.push(x),
            (dt, v) => panic!("type mismatch pushing {v:?} into {dt} builder"),
        }
    }

    /// Append a NULL row.
    pub fn push_null(&mut self) {
        self.has_null = true;
        self.validity.push(false);
        match self.dtype {
            DataType::Bool => self.bools.push(false),
            DataType::Int => self.ints.push(0),
            DataType::Float => self.floats.push(0.0),
            DataType::Str => self.strs.push(Arc::from("")),
            DataType::Date => self.dates.push(0),
        }
    }

    /// Append every row of `col`'s window (must have the same type).
    pub fn append_column(&mut self, col: &Column) {
        assert_eq!(col.data_type(), self.dtype, "append type mismatch");
        match col.values() {
            ColumnSlice::Bool(v) => self.bools.extend_from_slice(v),
            ColumnSlice::Int(v) => self.ints.extend_from_slice(v),
            ColumnSlice::Float(v) => self.floats.extend_from_slice(v),
            ColumnSlice::Str(v) => self.strs.extend_from_slice(v),
            ColumnSlice::Date(v) => self.dates.extend_from_slice(v),
        }
        match col.validity() {
            None => self.validity.extend(std::iter::repeat_n(true, col.len())),
            Some(m) => {
                // A window of a wider mask can be all-true; track honestly
                // so `finish` keeps the canonical no-mask form.
                if m.iter().any(|&v| !v) {
                    self.has_null = true;
                }
                self.validity.extend_from_slice(m);
            }
        }
    }

    /// Finish into a [`Column`] with unique storage.
    pub fn finish(self) -> Column {
        let data = match self.dtype {
            DataType::Bool => ColumnData::bools(self.bools),
            DataType::Int => ColumnData::ints(self.ints),
            DataType::Float => ColumnData::floats(self.floats),
            DataType::Str => ColumnData::strs(self.strs),
            DataType::Date => ColumnData::dates(self.dates),
        };
        if self.has_null {
            Column::with_validity(data, self.validity)
        } else {
            Column::new(data)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_get() {
        let c = Column::from_ints(vec![1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1), Value::Int(2));
        assert_eq!(c.data_type(), DataType::Int);
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn builder_with_nulls() {
        let mut b = ColumnBuilder::new(DataType::Float, 4);
        b.push(Value::Float(1.5));
        b.push_null();
        b.push(Value::Int(2)); // int promoted into float builder
        let c = b.finish();
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(0), Value::Float(1.5));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Float(2.0));
    }

    #[test]
    fn all_valid_mask_is_dropped() {
        let c = Column::with_validity(ColumnData::ints(vec![1, 2]), vec![true, true]);
        assert!(c.validity().is_none());
    }

    #[test]
    fn take_gathers_values_and_validity() {
        let mut b = ColumnBuilder::new(DataType::Str, 3);
        b.push(Value::str("a"));
        b.push_null();
        b.push(Value::str("c"));
        let c = b.finish();
        let t = c.take(&[2, 0, 1, 2]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(0), Value::str("c"));
        assert_eq!(t.get(1), Value::str("a"));
        assert_eq!(t.get(2), Value::Null);
        assert_eq!(t.get(3), Value::str("c"));
    }

    #[test]
    fn filter_keeps_masked_rows() {
        let c = Column::from_ints(vec![10, 20, 30, 40]);
        let f = c.filter(&[true, false, false, true]);
        assert_eq!(f.to_values(), vec![Value::Int(10), Value::Int(40)]);
    }

    #[test]
    fn slice_extracts_range() {
        let c = Column::from_dates(vec![1, 2, 3, 4, 5]);
        let s = c.slice(1, 3);
        assert_eq!(s.as_dates(), &[2, 3, 4]);
    }

    #[test]
    fn clone_and_slice_share_storage() {
        let c = Column::from_ints(vec![1, 2, 3, 4]);
        let cl = c.clone();
        assert!(c.shares_storage(&cl), "clone must not copy payload");
        let s = c.slice(1, 2);
        assert!(c.shares_storage(&s), "slice must not copy payload");
        assert_eq!(s.as_ints(), &[2, 3]);
        // Nested slices stay shared and window-correct.
        let s2 = s.slice(1, 1);
        assert!(s2.shares_storage(&c));
        assert_eq!(s2.as_ints(), &[3]);
        // Gathers produce fresh storage.
        let t = c.take(&[0]);
        assert!(!t.shares_storage(&c));
    }

    #[test]
    fn sliced_validity_is_window_relative() {
        let mut b = ColumnBuilder::new(DataType::Int, 4);
        b.push(Value::Int(1));
        b.push_null();
        b.push(Value::Int(3));
        b.push(Value::Int(4));
        let c = b.finish();
        let s = c.slice(1, 2);
        assert_eq!(s.null_count(), 1);
        assert!(!s.is_valid(0));
        assert!(s.is_valid(1));
        assert_eq!(s.get(0), Value::Null);
        assert_eq!(s.get(1), Value::Int(3));
        // An all-valid window of a masked column behaves as fully valid.
        let tail = c.slice(2, 2);
        assert_eq!(tail.null_count(), 0);
        assert_eq!(tail.to_values(), vec![Value::Int(3), Value::Int(4)]);
    }

    #[test]
    fn logical_equality_ignores_windowing() {
        let a = Column::from_ints(vec![9, 1, 2, 9]).slice(1, 2);
        let b = Column::from_ints(vec![1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, Column::from_ints(vec![1, 3]));
    }

    #[test]
    fn map_bools_cow() {
        // Unique storage: mutated in place (storage pointer survives).
        let c = Column::from_bools(vec![true, false]);
        let flipped = c.map_bools(|b| !b);
        assert_eq!(flipped.as_bools(), &[false, true]);
        // Shared storage: copy-on-write leaves the original intact.
        let c = Column::from_bools(vec![true, false]);
        let keep = c.clone();
        let flipped = c.map_bools(|b| !b);
        assert_eq!(flipped.as_bools(), &[false, true]);
        assert_eq!(keep.as_bools(), &[true, false]);
        assert!(!flipped.shares_storage(&keep));
    }

    #[test]
    fn concat_joins_columns() {
        let a = Column::from_ints(vec![1, 2]);
        let b = Column::from_ints(vec![3]);
        let c = Column::concat(&[&a, &b]);
        assert_eq!(c.as_ints(), &[1, 2, 3]);
        // Single-input concat is zero-copy.
        let one = Column::concat(&[&a]);
        assert!(one.shares_storage(&a));
    }

    #[test]
    fn concat_preserves_nulls() {
        let a = Column::from_ints(vec![1]);
        let mut bb = ColumnBuilder::new(DataType::Int, 1);
        bb.push_null();
        let b = bb.finish();
        let c = Column::concat(&[&a, &b]);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(1), Value::Null);
    }

    #[test]
    fn size_bytes_accounts_for_strings() {
        let c = Column::from_strs(["ab", "cdef"]);
        // 2 * 16 bytes Arc overhead + 2 + 4 payload
        assert_eq!(c.size_bytes(), 38);
        let i = Column::from_ints(vec![0; 10]);
        assert_eq!(i.size_bytes(), 80);
        // A slice accounts only for its window.
        assert_eq!(i.slice(0, 5).size_bytes(), 40);
    }

    #[test]
    fn from_values_roundtrip() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        let c = Column::from_values(DataType::Int, &vals);
        assert_eq!(c.to_values(), vals);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn builder_rejects_wrong_type() {
        let mut b = ColumnBuilder::new(DataType::Int, 1);
        b.push(Value::str("oops"));
    }

    #[test]
    fn bool_column_access() {
        let c = Column::from_bools(vec![true, false]);
        assert_eq!(c.as_bools(), &[true, false]);
        assert_eq!(c.get(1), Value::Bool(false));
    }

    #[test]
    fn append_all_valid_window_of_masked_column_stays_unmasked() {
        let mut b = ColumnBuilder::new(DataType::Int, 3);
        b.push_null();
        b.push(Value::Int(1));
        b.push(Value::Int(2));
        let c = b.finish();
        let valid_tail = c.slice(1, 2);
        let mut out = ColumnBuilder::new(DataType::Int, 2);
        out.append_column(&valid_tail);
        let r = out.finish();
        assert!(r.validity().is_none(), "all-valid append keeps no mask");
        assert_eq!(r.as_ints(), &[1, 2]);
    }
}
