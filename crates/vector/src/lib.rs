//! Columnar vector data model for the recycler-db engine.
//!
//! This crate is the lowest layer of the workspace: it defines the data
//! representation that flows through the pipelined executor in
//! vector-at-a-time fashion (the execution paradigm of Vectorwise, the system
//! the recycling paper integrates with).
//!
//! * [`DataType`] / [`Value`] — the scalar type system (bool, int, float,
//!   string, date) with an explicit `Null`.
//! * [`Column`] — a typed column of values with an optional validity mask.
//! * [`Batch`] — a horizontal slice of a result: a set of equal-length
//!   columns, at most [`BATCH_CAPACITY`] rows.
//! * [`Schema`] / [`Field`] — named, typed column metadata.
//! * [`row`] — row-wise helpers: composite key encoding for hash
//!   joins/aggregations and multi-column comparators for sort/top-N.

pub mod batch;
pub mod column;
pub mod row;
pub mod schema;
pub mod types;
pub mod value;

pub use batch::Batch;
pub use column::{Column, ColumnBuilder, ColumnData};
pub use row::{encode_row_key, RowCmp, SortOrder};
pub use schema::{Field, Schema};
pub use types::{date_from_ymd, ymd_from_date, DataType};
pub use value::Value;

/// Maximum number of rows in one execution batch.
///
/// Vectorwise-style engines use vector sizes around 1K so that a full set of
/// operator-local vectors fits in the CPU cache.
pub const BATCH_CAPACITY: usize = 1024;
