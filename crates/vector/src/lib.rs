//! Columnar vector data model for the recycler-db engine.
//!
//! This crate is the lowest layer of the workspace: it defines the data
//! representation that flows through the pipelined executor in
//! vector-at-a-time fashion (the execution paradigm of Vectorwise, the system
//! the recycling paper integrates with).
//!
//! * [`DataType`] / [`Value`] — the scalar type system (bool, int, float,
//!   string, date) with an explicit `Null`.
//! * [`Column`] — a typed column of values with an optional validity mask.
//! * [`Batch`] — a horizontal slice of a result: a set of equal-length
//!   columns, at most [`BATCH_CAPACITY`] rows.
//! * [`Schema`] / [`Field`] — named, typed column metadata.
//! * [`row`] — row-wise helpers: composite key encoding for hash
//!   joins/aggregations and multi-column comparators for sort/top-N.
//! * [`hash`] — vectorized per-row hashing over key column sets (the
//!   allocation-free fast path hash joins use instead of byte encoding).
//!
//! # Ownership model: shared columns, selection vectors, explicit copies
//!
//! The hot data path is **zero-copy**. Column payloads live in
//! reference-counted storage (`Arc`), and the cheap operations are exactly
//! the ones the pipelined recycler leans on:
//!
//! * `Column::clone` / `Batch::clone` — refcount bumps. The recycler's
//!   store tee and cache-hit replay hand out shared batches; a cache hit
//!   costs O(batches), not O(rows).
//! * [`Column::slice`] / `Batch::slice` — O(1) windows over the same
//!   storage. Table scans slice base columns instead of rebuilding them.
//! * Filters attach a **selection vector** (`Batch::with_selection`): the
//!   list of qualifying physical row indices rides along with the shared
//!   columns and downstream operators iterate it directly.
//!
//! Copies happen at three explicit points only:
//!
//! * [`ColumnBuilder`] output — builders always produce *unique* storage,
//!   so freshly computed results never pay copy-on-write;
//! * gathers (`take`/`compact`) at pipeline breakers (sort, aggregation
//!   build, join build side), at store/materialization boundaries, and at
//!   the public stream edge, where positional results must be dense;
//! * genuine mutation, which goes through copy-on-write
//!   (`Arc::make_mut`, e.g. [`Column::map_bools`]) and degrades to a
//!   window copy only when the storage is shared.
//!
//! Operators that merely reorder, tee, or replay data must **not** call
//! `compact`; operators that hand positional data to code indexing
//! `0..rows()` into raw column slices must.
//!
//! [`BATCH_CAPACITY`] (1024 rows) is the scan/re-chunk granule: big enough
//! to amortize per-batch dispatch, small enough that one batch's worth of
//! operator-local vectors stays cache-resident. Raising it trades cache
//! locality for fewer pulls; with zero-copy slicing the re-chunk cost
//! itself is negligible either way.

pub mod batch;
pub mod column;
pub mod hash;
pub mod row;
pub mod schema;
pub mod types;
pub mod value;

pub use batch::Batch;
pub use column::{Column, ColumnBuilder, ColumnData, ColumnSlice};
pub use hash::{hash_columns, key_rows_eq};
pub use row::{encode_row_key, RowCmp, SortOrder};
pub use schema::{Field, Schema};
pub use types::{date_from_ymd, format_date, ymd_from_date, DataType};
pub use value::Value;

/// Maximum number of rows in one execution batch.
///
/// Vectorwise-style engines use vector sizes around 1K so that a full set of
/// operator-local vectors fits in the CPU cache.
pub const BATCH_CAPACITY: usize = 1024;

/// Number of [`BATCH_CAPACITY`]-sized morsels covering `rows` rows — the
/// scheduling granule of morsel-driven parallel scans. Deterministic by
/// construction: the morsel grid depends only on the row count, never on
/// the degree of parallelism, so batch boundaries (and everything built on
/// them, like a store tee's published result) are identical at any DOP.
pub const fn morsel_count(rows: usize) -> usize {
    rows.div_ceil(BATCH_CAPACITY)
}

/// `(offset, len)` of morsel `idx` over `rows` rows (`idx` must be in
/// `0..morsel_count(rows)`).
pub fn morsel_bounds(rows: usize, idx: usize) -> (usize, usize) {
    let offset = idx * BATCH_CAPACITY;
    assert!(offset < rows, "morsel {idx} out of range for {rows} rows");
    (offset, BATCH_CAPACITY.min(rows - offset))
}
