//! Row-wise helpers: composite key encoding and multi-column comparison.
//!
//! Hash joins and hash aggregation need a hashable, equatable composite key
//! per row; sort and top-N need a total order over rows. Both are implemented
//! here over column sets, so the executor crates stay free of per-type
//! dispatch in their own code.

use std::cmp::Ordering;

use crate::column::{Column, ColumnSlice};

/// Sort direction for one key column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortOrder {
    /// Ascending, NULLs first.
    Asc,
    /// Descending, NULLs last.
    Desc,
}

impl SortOrder {
    /// Apply the direction to an ascending ordering.
    #[inline]
    pub fn apply(self, ord: Ordering) -> Ordering {
        match self {
            SortOrder::Asc => ord,
            SortOrder::Desc => ord.reverse(),
        }
    }
}

/// Append a type-tagged, NULL-aware encoding of row `row` of `cols` to
/// `buf`. Two rows receive identical encodings iff they are equal under SQL
/// `IS NOT DISTINCT FROM` semantics (NULL == NULL for grouping purposes),
/// which is what hash aggregation requires. For joins, callers should first
/// drop NULL-keyed rows (SQL equality never matches NULLs).
pub fn encode_row_key(cols: &[&Column], row: usize, buf: &mut Vec<u8>) {
    for col in cols {
        if !col.is_valid(row) {
            buf.push(0); // null tag
            continue;
        }
        match col.values() {
            ColumnSlice::Bool(v) => {
                buf.push(1);
                buf.push(v[row] as u8);
            }
            ColumnSlice::Int(v) => {
                buf.push(2);
                buf.extend_from_slice(&v[row].to_le_bytes());
            }
            ColumnSlice::Float(v) => {
                buf.push(3);
                // Normalise -0.0 so equal floats encode equally.
                let f = if v[row] == 0.0 { 0.0 } else { v[row] };
                buf.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            ColumnSlice::Str(v) => {
                buf.push(4);
                let s = v[row].as_bytes();
                buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                buf.extend_from_slice(s);
            }
            ColumnSlice::Date(v) => {
                buf.push(5);
                buf.extend_from_slice(&v[row].to_le_bytes());
            }
        }
    }
}

/// Whether any key column is NULL at `row` (joins skip such rows).
pub fn row_has_null_key(cols: &[&Column], row: usize) -> bool {
    cols.iter().any(|c| !c.is_valid(row))
}

/// Multi-column row comparator for sort and top-N.
///
/// Compares row `i` of one column set with row `j` of another (they may be
/// the same set) under per-key sort directions. NULLs order first under
/// `Asc` (and therefore last under `Desc`).
pub struct RowCmp<'a> {
    left: &'a [&'a Column],
    right: &'a [&'a Column],
    orders: &'a [SortOrder],
}

impl<'a> RowCmp<'a> {
    /// Comparator between two column sets (pass the same set twice to
    /// compare rows within one batch).
    pub fn new(left: &'a [&'a Column], right: &'a [&'a Column], orders: &'a [SortOrder]) -> Self {
        assert_eq!(left.len(), right.len());
        assert_eq!(left.len(), orders.len());
        RowCmp {
            left,
            right,
            orders,
        }
    }

    /// Compare row `i` on the left with row `j` on the right.
    pub fn cmp(&self, i: usize, j: usize) -> Ordering {
        for (k, order) in self.orders.iter().enumerate() {
            let ord = cmp_cell(self.left[k], i, self.right[k], j);
            let ord = order.apply(ord);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }
}

/// Compare a single cell of `a` at `i` with a cell of `b` at `j`
/// (ascending, NULLs first). Panics if the column types differ.
pub fn cmp_cell(a: &Column, i: usize, b: &Column, j: usize) -> Ordering {
    match (a.is_valid(i), b.is_valid(j)) {
        (false, false) => return Ordering::Equal,
        (false, true) => return Ordering::Less,
        (true, false) => return Ordering::Greater,
        (true, true) => {}
    }
    match (a.values(), b.values()) {
        (ColumnSlice::Bool(x), ColumnSlice::Bool(y)) => x[i].cmp(&y[j]),
        (ColumnSlice::Int(x), ColumnSlice::Int(y)) => x[i].cmp(&y[j]),
        (ColumnSlice::Float(x), ColumnSlice::Float(y)) => x[i].total_cmp(&y[j]),
        (ColumnSlice::Str(x), ColumnSlice::Str(y)) => x[i].cmp(&y[j]),
        (ColumnSlice::Date(x), ColumnSlice::Date(y)) => x[i].cmp(&y[j]),
        (ColumnSlice::Int(x), ColumnSlice::Float(y)) => (x[i] as f64).total_cmp(&y[j]),
        (ColumnSlice::Float(x), ColumnSlice::Int(y)) => x[i].total_cmp(&(y[j] as f64)),
        (a, b) => panic!("cannot compare {} with {}", a.data_type(), b.data_type()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::types::DataType;
    use crate::value::Value;

    #[test]
    fn key_encoding_distinguishes_rows() {
        let a = Column::from_ints(vec![1, 1, 2]);
        let b = Column::from_strs(["x", "y", "x"]);
        let cols = [&a, &b];
        let mut k0 = Vec::new();
        let mut k1 = Vec::new();
        let mut k2 = Vec::new();
        encode_row_key(&cols, 0, &mut k0);
        encode_row_key(&cols, 1, &mut k1);
        encode_row_key(&cols, 2, &mut k2);
        assert_ne!(k0, k1);
        assert_ne!(k0, k2);
        assert_ne!(k1, k2);
    }

    #[test]
    fn key_encoding_equal_rows_equal() {
        let a = Column::from_ints(vec![5, 5]);
        let cols = [&a];
        let mut k0 = Vec::new();
        let mut k1 = Vec::new();
        encode_row_key(&cols, 0, &mut k0);
        encode_row_key(&cols, 1, &mut k1);
        assert_eq!(k0, k1);
    }

    #[test]
    fn key_encoding_no_string_confusion() {
        // ("ab","c") must differ from ("a","bc") — length prefixes ensure it.
        let a1 = Column::from_strs(["ab"]);
        let b1 = Column::from_strs(["c"]);
        let a2 = Column::from_strs(["a"]);
        let b2 = Column::from_strs(["bc"]);
        let mut k1 = Vec::new();
        let mut k2 = Vec::new();
        encode_row_key(&[&a1, &b1], 0, &mut k1);
        encode_row_key(&[&a2, &b2], 0, &mut k2);
        assert_ne!(k1, k2);
    }

    #[test]
    fn nulls_group_together_but_differ_from_values() {
        let mut b = ColumnBuilder::new(DataType::Int, 3);
        b.push_null();
        b.push_null();
        b.push(Value::Int(0));
        let c = b.finish();
        let cols = [&c];
        let mut k0 = Vec::new();
        let mut k1 = Vec::new();
        let mut k2 = Vec::new();
        encode_row_key(&cols, 0, &mut k0);
        encode_row_key(&cols, 1, &mut k1);
        encode_row_key(&cols, 2, &mut k2);
        assert_eq!(k0, k1);
        assert_ne!(k0, k2);
        assert!(row_has_null_key(&cols, 0));
        assert!(!row_has_null_key(&cols, 2));
    }

    #[test]
    fn row_cmp_multi_key() {
        let a = Column::from_ints(vec![1, 1, 2]);
        let b = Column::from_floats(vec![9.0, 3.0, 1.0]);
        let cols: Vec<&Column> = vec![&a, &b];
        let orders = [SortOrder::Asc, SortOrder::Desc];
        let cmp = RowCmp::new(&cols, &cols, &orders);
        // (1, 9.0) vs (1, 3.0): first key ties, second desc => 9.0 first
        assert_eq!(cmp.cmp(0, 1), Ordering::Less);
        // (1, ..) vs (2, ..)
        assert_eq!(cmp.cmp(1, 2), Ordering::Less);
        assert_eq!(cmp.cmp(2, 0), Ordering::Greater);
        assert_eq!(cmp.cmp(0, 0), Ordering::Equal);
    }

    #[test]
    fn cmp_cell_nulls_first() {
        let mut b = ColumnBuilder::new(DataType::Int, 2);
        b.push_null();
        b.push(Value::Int(1));
        let c = b.finish();
        assert_eq!(cmp_cell(&c, 0, &c, 1), Ordering::Less);
        assert_eq!(cmp_cell(&c, 1, &c, 0), Ordering::Greater);
        assert_eq!(cmp_cell(&c, 0, &c, 0), Ordering::Equal);
    }

    #[test]
    fn cmp_cell_numeric_promotion() {
        let i = Column::from_ints(vec![2]);
        let f = Column::from_floats(vec![2.5]);
        assert_eq!(cmp_cell(&i, 0, &f, 0), Ordering::Less);
    }
}
