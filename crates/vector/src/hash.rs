//! Vectorized row hashing over key column sets.
//!
//! Hash joins used to hash probe keys row-at-a-time by byte-encoding each
//! row ([`crate::row::encode_row_key`]) into a scratch buffer and hashing
//! the bytes — one allocation-touching, type-dispatching call per row.
//! [`hash_columns`] replaces that on the hot path: one pass **per column**
//! (the type `match` runs once per batch, not once per row), folding each
//! column's contribution into a per-row `u64` accumulator with an
//! FxHash-style mix.
//!
//! The contract mirrors the byte encoding exactly: two rows whose
//! `encode_row_key` encodings are equal hash identically, and the hash
//! discriminates everything the encoding does —
//!
//! * per-cell type tags keep `Int(2)` apart from `Float(2.0)` and
//!   `Bool(true)` apart from `Int(1)`;
//! * `-0.0` normalizes to `0.0` before hashing, like the encoder;
//! * NULL folds in its own tag (and nothing else), so NULL keys group
//!   with each other and never silently with real values;
//! * strings mix their length before their bytes, so `("ab","c")` and
//!   `("a","bc")` stay distinct across multi-column keys.
//!
//! Hashes are *candidates*, not proofs: collision-safe callers confirm
//! with [`key_rows_eq`], the positional equality predicate matching the
//! encoder's equality (SQL `IS NOT DISTINCT FROM`: NULL == NULL, and
//! values of different column types are never equal).

use crate::column::{Column, ColumnSlice};

/// Per-row hash seed (FNV-1a offset basis; any fixed constant works).
const SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Mix multiplier borrowed from FxHash — cheap and well-distributed for
/// word-at-a-time folding.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

// Per-cell type tags, numerically identical to the tag bytes of
// `encode_row_key` (the correspondence is cosmetic — any distinct
// constants would do — but it keeps the two schemes easy to audit
// side by side).
const TAG_NULL: u64 = 0;
const TAG_BOOL: u64 = 1;
const TAG_INT: u64 = 2;
const TAG_FLOAT: u64 = 3;
const TAG_STR: u64 = 4;
const TAG_DATE: u64 = 5;

/// Fold one word into the accumulator.
#[inline(always)]
fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(K)
}

/// Compute one hash per physical row of `cols` (all columns must have at
/// least `rows` rows), writing into `hashes`. The buffer is cleared and
/// resized — reuse it across batches to keep the loop allocation-free.
pub fn hash_columns(cols: &[&Column], rows: usize, hashes: &mut Vec<u64>) {
    hashes.clear();
    hashes.resize(rows, SEED);
    for col in cols {
        hash_column(col, hashes);
    }
}

/// Fold one column's window into the per-row accumulators (one typed loop
/// per batch; the valid/NULL branch only exists when a mask is present).
fn hash_column(col: &Column, hashes: &mut [u64]) {
    let n = hashes.len();
    debug_assert!(col.len() >= n, "column shorter than hash buffer");
    macro_rules! fold {
        ($vals:expr, $tag:expr, $conv:expr) => {{
            let vals = $vals;
            match col.validity() {
                None => {
                    for (h, v) in hashes.iter_mut().zip(&vals[..n]) {
                        *h = mix(mix(*h, $tag), $conv(v));
                    }
                }
                Some(mask) => {
                    for ((h, v), valid) in hashes.iter_mut().zip(&vals[..n]).zip(&mask[..n]) {
                        *h = if *valid {
                            mix(mix(*h, $tag), $conv(v))
                        } else {
                            mix(*h, TAG_NULL)
                        };
                    }
                }
            }
        }};
    }
    match col.values() {
        ColumnSlice::Bool(v) => fold!(v, TAG_BOOL, |x: &bool| *x as u64),
        ColumnSlice::Int(v) => fold!(v, TAG_INT, |x: &i64| *x as u64),
        ColumnSlice::Float(v) => fold!(v, TAG_FLOAT, |x: &f64| norm_float(*x).to_bits()),
        ColumnSlice::Date(v) => fold!(v, TAG_DATE, |x: &i32| *x as u64),
        ColumnSlice::Str(v) => {
            // Strings cannot fold a fixed-width word; hash length + bytes
            // per row (still one type dispatch per batch).
            match col.validity() {
                None => {
                    for (h, s) in hashes.iter_mut().zip(&v[..n]) {
                        *h = hash_str(*h, s);
                    }
                }
                Some(mask) => {
                    for ((h, s), valid) in hashes.iter_mut().zip(&v[..n]).zip(&mask[..n]) {
                        *h = if *valid {
                            hash_str(*h, s)
                        } else {
                            mix(*h, TAG_NULL)
                        };
                    }
                }
            }
        }
    }
}

/// `-0.0` hashes as `0.0`, mirroring the encoder's normalization.
#[inline(always)]
fn norm_float(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else {
        v
    }
}

/// Fold a string cell: tag, length, then the bytes eight at a time.
#[inline]
fn hash_str(h: u64, s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut h = mix(mix(h, TAG_STR), bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = mix(h, u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = mix(h, u64::from_le_bytes(buf));
    }
    h
}

/// Positional row-key equality across two column sets, matching
/// `encode_row_key` byte equality: NULL equals NULL (`IS NOT DISTINCT
/// FROM`), `-0.0 == 0.0`, and cells of different column types are never
/// equal. Used to confirm hash-bucket candidates.
pub fn key_rows_eq(a: &[&Column], i: usize, b: &[&Column], j: usize) -> bool {
    debug_assert_eq!(a.len(), b.len(), "key column arity mismatch");
    a.iter()
        .zip(b.iter())
        .all(|(ca, cb)| key_cell_eq(ca, i, cb, j))
}

/// One cell of [`key_rows_eq`].
#[inline]
fn key_cell_eq(a: &Column, i: usize, b: &Column, j: usize) -> bool {
    match (a.is_valid(i), b.is_valid(j)) {
        (false, false) => return true,
        (true, true) => {}
        _ => return false,
    }
    match (a.values(), b.values()) {
        (ColumnSlice::Bool(x), ColumnSlice::Bool(y)) => x[i] == y[j],
        (ColumnSlice::Int(x), ColumnSlice::Int(y)) => x[i] == y[j],
        (ColumnSlice::Float(x), ColumnSlice::Float(y)) => {
            norm_float(x[i]).to_bits() == norm_float(y[j]).to_bits()
        }
        (ColumnSlice::Str(x), ColumnSlice::Str(y)) => x[i] == y[j],
        (ColumnSlice::Date(x), ColumnSlice::Date(y)) => x[i] == y[j],
        // Different column types never compare equal under the byte
        // encoding (distinct tags), so neither do they here.
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::row::encode_row_key;
    use crate::types::DataType;
    use crate::value::Value;

    fn hash_one(cols: &[&Column], row: usize) -> u64 {
        let n = cols[0].len();
        let mut hs = Vec::new();
        hash_columns(cols, n, &mut hs);
        hs[row]
    }

    #[test]
    fn equal_rows_hash_equal() {
        let a = Column::from_ints(vec![5, 7, 5]);
        let b = Column::from_strs(["x", "y", "x"]);
        let cols = [&a, &b];
        assert_eq!(hash_one(&cols, 0), hash_one(&cols, 2));
        assert_ne!(hash_one(&cols, 0), hash_one(&cols, 1));
    }

    #[test]
    fn encoding_equality_implies_hash_equality() {
        // Sweep pairs across types; wherever the byte encodings agree the
        // hashes must agree (the inverse is collision territory and not
        // asserted).
        let mut ib = ColumnBuilder::new(DataType::Int, 4);
        ib.push(Value::Int(1));
        ib.push_null();
        ib.push(Value::Int(1));
        ib.push_null();
        let ints = ib.finish();
        let floats = Column::from_floats(vec![0.0, -0.0, 1.5, 2.5]);
        let cols = [&ints, &floats];
        let mut hs = Vec::new();
        hash_columns(&cols, 4, &mut hs);
        for i in 0..4 {
            for j in 0..4 {
                let (mut ki, mut kj) = (Vec::new(), Vec::new());
                encode_row_key(&cols, i, &mut ki);
                encode_row_key(&cols, j, &mut kj);
                if ki == kj {
                    assert_eq!(hs[i], hs[j], "rows {i},{j} encode equal");
                    assert!(key_rows_eq(&cols, i, &cols, j));
                } else {
                    assert!(!key_rows_eq(&cols, i, &cols, j));
                }
            }
        }
    }

    #[test]
    fn type_tags_keep_int_and_float_apart() {
        let i = Column::from_ints(vec![2]);
        let f = Column::from_floats(vec![2.0]);
        assert_ne!(hash_one(&[&i], 0), hash_one(&[&f], 0));
        assert!(!key_rows_eq(&[&i], 0, &[&f], 0));
        let b = Column::from_bools(vec![true]);
        let one = Column::from_ints(vec![1]);
        assert_ne!(hash_one(&[&b], 0), hash_one(&[&one], 0));
    }

    #[test]
    fn negative_zero_normalizes() {
        let f = Column::from_floats(vec![0.0, -0.0]);
        assert_eq!(hash_one(&[&f], 0), hash_one(&[&f], 1));
        assert!(key_rows_eq(&[&f], 0, &[&f], 1));
    }

    #[test]
    fn string_boundaries_do_not_smear() {
        let a1 = Column::from_strs(["ab"]);
        let b1 = Column::from_strs(["c"]);
        let a2 = Column::from_strs(["a"]);
        let b2 = Column::from_strs(["bc"]);
        assert_ne!(hash_one(&[&a1, &b1], 0), hash_one(&[&a2, &b2], 0));
        // Long strings exercise the chunked tail path.
        let long = Column::from_strs(["abcdefghijklmnop", "abcdefghijklmnoq"]);
        assert_ne!(hash_one(&[&long], 0), hash_one(&[&long], 1));
    }

    #[test]
    fn nulls_group_with_nulls_only() {
        let mut b = ColumnBuilder::new(DataType::Int, 3);
        b.push_null();
        b.push_null();
        b.push(Value::Int(0));
        let c = b.finish();
        let cols = [&c];
        assert_eq!(hash_one(&cols, 0), hash_one(&cols, 1));
        assert_ne!(hash_one(&cols, 0), hash_one(&cols, 2));
        assert!(key_rows_eq(&cols, 0, &cols, 1));
        assert!(!key_rows_eq(&cols, 0, &cols, 2));
    }

    #[test]
    fn hashes_respect_column_windows() {
        let wide = Column::from_ints(vec![9, 1, 2, 9]);
        let window = wide.slice(1, 2);
        let plain = Column::from_ints(vec![1, 2]);
        let mut hw = Vec::new();
        let mut hp = Vec::new();
        hash_columns(&[&window], 2, &mut hw);
        hash_columns(&[&plain], 2, &mut hp);
        assert_eq!(hw, hp);
    }
}
