//! Scalar data types and calendar date helpers.
//!
//! Dates are stored as `i32` days since the Unix epoch (1970-01-01), which is
//! the common columnar encoding (Arrow's `Date32`). The helpers here convert
//! between that representation and `(year, month, day)` triples using the
//! civil-calendar algorithms of Howard Hinnant; they are exact over the whole
//! `i32` range and allocation-free.

use std::fmt;

/// The scalar type of a [`crate::Column`] or [`crate::Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Str,
    /// Calendar date: days since 1970-01-01.
    Date,
}

impl DataType {
    /// Short lowercase name, used in plan displays and error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Date => "date",
        }
    }

    /// Whether the type is numeric (int or float).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Fixed-width in-memory footprint of one value of this type, in bytes.
    ///
    /// For strings this returns the pointer-side footprint only; the heap
    /// payload is accounted for separately by [`crate::Column::size_bytes`].
    pub fn fixed_width(self) -> usize {
        match self {
            DataType::Bool => 1,
            DataType::Int => 8,
            DataType::Float => 8,
            DataType::Str => 16,
            DataType::Date => 4,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Convert a `(year, month, day)` civil date to days since 1970-01-01.
///
/// `month` is 1-based (1..=12), `day` is 1-based. Invalid days (e.g. Feb 30)
/// are accepted and normalised arithmetically, mirroring the permissiveness
/// of the underlying algorithm; workload generators only produce valid dates.
pub fn date_from_ymd(year: i32, month: u32, day: u32) -> i32 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let m = month as i64;
    let d = day as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146097 + doe - 719468) as i32
}

/// Convert days since 1970-01-01 back to a `(year, month, day)` triple.
pub fn ymd_from_date(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// Extract the calendar year of a date stored as days since epoch.
pub fn year_of_date(days: i32) -> i32 {
    ymd_from_date(days).0
}

/// Extract the calendar month (1..=12) of a date stored as days since epoch.
pub fn month_of_date(days: i32) -> u32 {
    ymd_from_date(days).1
}

/// Format a day-count date as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = ymd_from_date(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Add `months` calendar months to a date, clamping the day-of-month to the
/// target month's length (SQL `date + interval 'n' month` semantics).
pub fn add_months(days: i32, months: i32) -> i32 {
    let (y, m, d) = ymd_from_date(days);
    let total = y * 12 + (m as i32 - 1) + months;
    let ny = total.div_euclid(12);
    let nm = total.rem_euclid(12) as u32 + 1;
    let max_day = days_in_month(ny, nm);
    date_from_ymd(ny, nm, d.min(max_day))
}

/// Number of days in the given month of the given year.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 30,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(date_from_ymd(1970, 1, 1), 0);
        assert_eq!(ymd_from_date(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates_roundtrip() {
        // A few fixed points checked against an external calendar.
        assert_eq!(date_from_ymd(1998, 3, 1), 10286);
        assert_eq!(date_from_ymd(1992, 1, 1), 8035);
        assert_eq!(date_from_ymd(2000, 2, 29), 11016);
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1969, 12, 31),
            (1992, 2, 29),
            (1998, 12, 31),
            (2026, 6, 10),
            (1900, 3, 1),
            (2100, 2, 28),
        ] {
            let days = date_from_ymd(y, m, d);
            assert_eq!(ymd_from_date(days), (y, m, d), "roundtrip {y}-{m}-{d}");
        }
    }

    #[test]
    fn sequential_days_are_sequential() {
        let start = date_from_ymd(1991, 12, 25);
        for prev in start..start + 4000 {
            let (y, m, d) = ymd_from_date(prev + 1);
            assert_eq!(date_from_ymd(y, m, d), prev + 1);
        }
    }

    #[test]
    fn year_month_extraction() {
        let d = date_from_ymd(1995, 9, 17);
        assert_eq!(year_of_date(d), 1995);
        assert_eq!(month_of_date(d), 9);
    }

    #[test]
    fn add_months_clamps_day() {
        let jan31 = date_from_ymd(1993, 1, 31);
        assert_eq!(ymd_from_date(add_months(jan31, 1)), (1993, 2, 28));
        let mar1 = date_from_ymd(1993, 3, 1);
        assert_eq!(ymd_from_date(add_months(mar1, 3)), (1993, 6, 1));
        assert_eq!(ymd_from_date(add_months(mar1, -3)), (1992, 12, 1));
        assert_eq!(ymd_from_date(add_months(mar1, 12)), (1994, 3, 1));
    }

    #[test]
    fn format_date_pads() {
        assert_eq!(format_date(date_from_ymd(1995, 3, 5)), "1995-03-05");
    }

    #[test]
    fn leap_years() {
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
        assert_eq!(days_in_month(1996, 2), 29);
        assert_eq!(days_in_month(1995, 2), 28);
    }

    #[test]
    fn type_names_and_widths() {
        assert_eq!(DataType::Int.name(), "int");
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert_eq!(DataType::Date.fixed_width(), 4);
    }
}
