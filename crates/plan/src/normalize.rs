//! Plan normalization: the canonical form every plan passes through
//! before fingerprinting.
//!
//! The recycler matches work by plan structure (paper §III), so every
//! caller that assembles a [`Plan`] is a chance to miss the cache: `a AND
//! b` vs `b AND a`, a redundant identity projection, or a filter written
//! above a join instead of below it all fingerprint as distinct subplans
//! and recycle nothing. [`normalize`] is the single lowering point where
//! equivalent plans converge — the session layer runs it on *every*
//! prepared statement (SQL-text and builder-built alike), so textual and
//! structural variants of the same query land on the same recycler-graph
//! nodes.
//!
//! Rules (each exactly semantics-preserving, including NULL behaviour,
//! output schema, and output column names):
//!
//! * every operator's expressions are canonicalized with
//!   [`rdb_expr::normalize_expr`] (commutative AND/OR ordering, constant
//!   folding, comparison canonicalization);
//! * adjacent selections merge into one conjunction;
//! * a selection whose predicate folded to `TRUE` disappears;
//! * selections sink below joins: conjuncts that reference only one side
//!   move into that side (left side of any join; right side of inner
//!   joins), so `σ(A ⋈ B)` and `σ(A) ⋈ B` converge;
//! * equi-join key pairs sort deterministically (`a.x = b.y AND a.u =
//!   b.v` is a conjunction — pair order is irrelevant);
//! * identity projections (`π_{$0,…,$n-1}` preserving the input names)
//!   disappear, and stacked projections compose into one.
//!
//! Store/Cached wrappers never appear here: normalization runs before the
//! recycler rewrite. The pass is idempotent and runs each node to a local
//! fixpoint, so the result is stable under re-normalization.

use rdb_expr::{normalize_expr, Expr};
use rdb_storage::Catalog;

use crate::node::{JoinKind, Plan, SortKeyExpr};

/// Upper bound on local rewrite iterations per node; rules strictly
/// shrink or reorder, so this is never reached in practice.
const MAX_LOCAL_PASSES: usize = 16;

/// Normalize a bound plan into canonical form (see the module docs).
///
/// `catalog` supplies schemas where a rule needs operator arity (join
/// splits, identity-projection checks); a plan whose schema cannot be
/// derived (unknown table, parameters in typed positions) skips those
/// rules rather than failing — normalization never errors.
pub fn normalize(plan: &Plan, catalog: &Catalog) -> Plan {
    // Bottom-up: children first.
    let children: Vec<Plan> = plan
        .children()
        .iter()
        .map(|c| normalize(c, catalog))
        .collect();
    let mut node = normalize_local_exprs(&plan.with_children(children));
    for _ in 0..MAX_LOCAL_PASSES {
        let next = apply_local_rules(&node, catalog);
        if next == node {
            break;
        }
        node = next;
    }
    node
}

/// Canonicalize every expression held directly by this node.
fn normalize_local_exprs(plan: &Plan) -> Plan {
    match plan {
        Plan::Scan { .. } | Plan::Cached { .. } | Plan::Limit { .. } | Plan::UnionAll { .. } => {
            plan.clone()
        }
        Plan::FnScan { name, args, schema } => Plan::FnScan {
            name: name.clone(),
            args: args.iter().map(normalize_expr).collect(),
            schema: schema.clone(),
        },
        Plan::Select { child, predicate } => Plan::Select {
            child: child.clone(),
            predicate: normalize_expr(predicate),
        },
        Plan::Project {
            child,
            exprs,
            names,
        } => Plan::Project {
            child: child.clone(),
            exprs: exprs.iter().map(normalize_expr).collect(),
            names: names.clone(),
        },
        Plan::Aggregate {
            child,
            group_by,
            group_names,
            aggs,
            agg_names,
        } => Plan::Aggregate {
            child: child.clone(),
            group_by: group_by.iter().map(normalize_expr).collect(),
            group_names: group_names.clone(),
            aggs: aggs
                .iter()
                .map(|a| a.map_argument(&mut |e| normalize_expr(e)))
                .collect(),
            agg_names: agg_names.clone(),
        },
        Plan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
        } => {
            // An equi-join is a conjunction of per-pair equalities, so the
            // pair order is semantically irrelevant; sort pairs for a
            // canonical order (the executor keys on pair positions, so the
            // two sides must be permuted together).
            let mut pairs: Vec<(Expr, Expr)> = left_keys
                .iter()
                .map(normalize_expr)
                .zip(right_keys.iter().map(normalize_expr))
                .collect();
            pairs.sort_by_cached_key(|(l, r)| (l.to_string(), r.to_string()));
            let (lk, rk) = pairs.into_iter().unzip();
            Plan::Join {
                left: left.clone(),
                right: right.clone(),
                kind: *kind,
                left_keys: lk,
                right_keys: rk,
            }
        }
        Plan::TopN { child, keys, n } => Plan::TopN {
            child: child.clone(),
            keys: normalize_keys(keys),
            n: *n,
        },
        Plan::Sort { child, keys } => Plan::Sort {
            child: child.clone(),
            keys: normalize_keys(keys),
        },
        Plan::Store { .. } => plan.clone(),
    }
}

fn normalize_keys(keys: &[SortKeyExpr]) -> Vec<SortKeyExpr> {
    keys.iter()
        .map(|k| SortKeyExpr {
            expr: normalize_expr(&k.expr),
            order: k.order,
        })
        .collect()
}

/// One round of structural rewrites at this node.
fn apply_local_rules(plan: &Plan, catalog: &Catalog) -> Plan {
    match plan {
        Plan::Select { child, predicate } => {
            // σ_TRUE(x) → x.
            if *predicate == Expr::lit(true) {
                return (**child).clone();
            }
            match &**child {
                // σ_p(σ_q(x)) → σ_{p ∧ q}(x).
                Plan::Select {
                    child: inner,
                    predicate: q,
                } => Plan::Select {
                    child: inner.clone(),
                    predicate: normalize_expr(&predicate.clone().and(q.clone())),
                },
                // σ over a join: sink single-sided conjuncts.
                Plan::Join { .. } => push_below_join(predicate, child, catalog),
                _ => plan.clone(),
            }
        }
        Plan::Project {
            child,
            exprs,
            names,
        } => {
            // π ∘ π composes.
            if let Plan::Project {
                child: inner_child,
                exprs: inner_exprs,
                ..
            } = &**child
            {
                let composed: Vec<Expr> = exprs
                    .iter()
                    .map(|e| normalize_expr(&subst_cols(e, inner_exprs)))
                    .collect();
                return Plan::Project {
                    child: inner_child.clone(),
                    exprs: composed,
                    names: names.clone(),
                };
            }
            // Identity projection (same positions, same names) vanishes.
            let identity_positions = exprs.iter().enumerate().all(|(i, e)| *e == Expr::Col(i));
            if identity_positions {
                if let Ok(child_schema) = schema_of(child, catalog) {
                    if child_schema.len() == exprs.len()
                        && child_schema.names()
                            == names.iter().map(|s| s.as_str()).collect::<Vec<_>>()
                    {
                        return (**child).clone();
                    }
                }
            }
            plan.clone()
        }
        _ => plan.clone(),
    }
}

/// Schema derivation that cannot panic on parameterized templates: typed
/// positions containing parameters are reported as an error instead.
fn schema_of(plan: &Plan, catalog: &Catalog) -> Result<rdb_vector::Schema, ()> {
    if plan.param_in_typed_position().is_some() {
        return Err(());
    }
    plan.schema(catalog).map_err(|_| ())
}

/// Replace `Col(i)` with `exprs[i]` (projection composition).
fn subst_cols(e: &Expr, exprs: &[Expr]) -> Expr {
    match e {
        Expr::Col(i) => exprs[*i].clone(),
        _ => e.map_children(&mut |c| subst_cols(c, exprs)),
    }
}

/// Sink the conjuncts of `predicate` below `join` where safe:
///
/// * conjuncts reading only left columns move into the left input — valid
///   for inner, left-outer (they would reject the same left rows before
///   or after padding), semi, and anti joins;
/// * conjuncts reading only right columns move into the right input —
///   valid for inner joins only (for left-outer they must filter matches,
///   not input rows; for semi/anti the predicate cannot reference the
///   right side at all);
/// * everything else stays above the join.
fn push_below_join(predicate: &Expr, join: &Plan, catalog: &Catalog) -> Plan {
    let Plan::Join {
        left,
        right,
        kind,
        left_keys,
        right_keys,
    } = join
    else {
        unreachable!("caller matched a join");
    };
    if *kind == JoinKind::Single {
        // The broadcast side must produce exactly one row; filtering it
        // could change that invariant's failure mode. Leave alone.
        return Plan::Select {
            child: Box::new(join.clone()),
            predicate: predicate.clone(),
        };
    }
    let Ok(left_schema) = schema_of(left, catalog) else {
        return Plan::Select {
            child: Box::new(join.clone()),
            predicate: predicate.clone(),
        };
    };
    let lw = left_schema.len();
    let conjuncts: Vec<Expr> = match predicate {
        Expr::And(items) => items.clone(),
        other => vec![other.clone()],
    };
    let mut to_left = Vec::new();
    let mut to_right = Vec::new();
    let mut residual = Vec::new();
    for c in conjuncts {
        let mut cols = Vec::new();
        c.columns_used(&mut cols);
        if cols.iter().all(|&i| i < lw) {
            to_left.push(c);
        } else if cols.iter().all(|&i| i >= lw) && *kind == JoinKind::Inner {
            to_right.push(c.remap_cols(&shift_map(lw, plan_width(right, catalog))));
        } else {
            residual.push(c);
        }
    }
    if to_left.is_empty() && to_right.is_empty() {
        return Plan::Select {
            child: Box::new(join.clone()),
            predicate: predicate.clone(),
        };
    }
    let wrap = |child: &Plan, mut preds: Vec<Expr>| -> Plan {
        if preds.is_empty() {
            return child.clone();
        }
        // Merge into an existing selection rather than stacking a second
        // one — stacked selects would differ from the equivalent
        // single-select plan and break idempotency.
        let inner = match child {
            Plan::Select {
                child: inner,
                predicate,
            } => {
                preds.push(predicate.clone());
                inner.as_ref().clone()
            }
            other => other.clone(),
        };
        Plan::Select {
            child: Box::new(inner),
            predicate: normalize_expr(&Expr::and_all(preds)),
        }
    };
    let new_join = Plan::Join {
        left: Box::new(wrap(left, to_left)),
        right: Box::new(wrap(right, to_right)),
        kind: *kind,
        left_keys: left_keys.clone(),
        right_keys: right_keys.clone(),
    };
    if residual.is_empty() {
        new_join
    } else {
        Plan::Select {
            child: Box::new(new_join),
            predicate: normalize_expr(&Expr::and_all(residual)),
        }
    }
}

/// Column remap translating join-output positions `lw..lw+rw` into
/// right-input positions `0..rw` (positions below `lw` are never used by
/// the conjuncts this is applied to).
fn shift_map(lw: usize, rw: usize) -> Vec<usize> {
    (0..lw + rw).map(|i| i.saturating_sub(lw)).collect()
}

fn plan_width(plan: &Plan, catalog: &Catalog) -> usize {
    schema_of(plan, catalog).map(|s| s.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::scan;
    use crate::fingerprint::structural_hash;
    use rdb_expr::AggFunc;
    use rdb_storage::TableBuilder;
    use rdb_vector::{DataType, Schema, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs([
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("c", DataType::Int),
        ]);
        let mut t = TableBuilder::new("t", schema, 1);
        t.push_row(vec![Value::Int(1), Value::Float(2.0), Value::Int(3)]);
        cat.register(t.finish()).unwrap();
        let schema = Schema::from_pairs([("x", DataType::Int), ("y", DataType::Str)]);
        let mut u = TableBuilder::new("u", schema, 1);
        u.push_row(vec![Value::Int(1), Value::str("s")]);
        cat.register(u.finish()).unwrap();
        cat
    }

    fn norm(p: Plan) -> Plan {
        let cat = catalog();
        let bound = p.bind(&cat).unwrap();
        normalize(&bound, &cat)
    }

    #[test]
    fn reordered_conjuncts_converge() {
        let p1 = scan("t", &["a", "b"]).select(
            Expr::name("a")
                .gt(Expr::lit(1))
                .and(Expr::name("b").lt(Expr::lit(2.0))),
        );
        let p2 = scan("t", &["a", "b"]).select(
            Expr::name("b")
                .lt(Expr::lit(2.0))
                .and(Expr::name("a").gt(Expr::lit(1))),
        );
        assert_eq!(norm(p1), norm(p2));
    }

    #[test]
    fn flipped_comparisons_converge() {
        let p1 = scan("t", &["a"]).select(Expr::lit(5).lt(Expr::name("a")));
        let p2 = scan("t", &["a"]).select(Expr::name("a").gt(Expr::lit(5)));
        assert_eq!(norm(p1.clone()), norm(p2.clone()));
        assert_eq!(structural_hash(&norm(p1)), structural_hash(&norm(p2)));
    }

    #[test]
    fn adjacent_selects_merge() {
        let stacked = scan("t", &["a", "b"])
            .select(Expr::name("a").gt(Expr::lit(1)))
            .select(Expr::name("b").lt(Expr::lit(2.0)));
        let single = scan("t", &["a", "b"]).select(
            Expr::name("a")
                .gt(Expr::lit(1))
                .and(Expr::name("b").lt(Expr::lit(2.0))),
        );
        assert_eq!(norm(stacked), norm(single));
    }

    #[test]
    fn true_select_vanishes() {
        let p = scan("t", &["a"]).select(Expr::lit(1).lt(Expr::lit(2)));
        assert_eq!(norm(p), scan("t", &["a"]));
    }

    #[test]
    fn select_sinks_below_inner_join() {
        // σ over join with single-sided conjuncts ≡ pre-filtered join.
        let above = scan("t", &["a", "b"])
            .inner_join(
                scan("u", &["x", "y"]),
                vec![Expr::name("a")],
                vec![Expr::name("x")],
            )
            .select(
                Expr::name("a")
                    .gt(Expr::lit(1))
                    .and(Expr::name("y").eq(Expr::lit(Value::str("s")))),
            );
        let below = scan("t", &["a", "b"])
            .select(Expr::name("a").gt(Expr::lit(1)))
            .inner_join(
                scan("u", &["x", "y"]).select(Expr::name("y").eq(Expr::lit(Value::str("s")))),
                vec![Expr::name("a")],
                vec![Expr::name("x")],
            );
        assert_eq!(norm(above), norm(below));
    }

    #[test]
    fn cross_side_conjunct_stays_above() {
        let p = scan("t", &["a"])
            .inner_join(
                scan("u", &["x"]),
                vec![Expr::name("a")],
                vec![Expr::name("x")],
            )
            .select(Expr::col(0).lt(Expr::col(1)));
        let n = norm(p);
        assert!(
            matches!(&n, Plan::Select { child, .. } if matches!(**child, Plan::Join { .. })),
            "cross-side predicate must stay above the join:\n{n}"
        );
    }

    #[test]
    fn left_outer_pushes_left_only() {
        let p = scan("t", &["a"])
            .join(
                scan("u", &["x", "y"]),
                JoinKind::LeftOuter,
                vec![Expr::name("a")],
                vec![Expr::name("x")],
            )
            .select(
                Expr::name("a")
                    .gt(Expr::lit(0))
                    .and(Expr::name("y").eq(Expr::lit(Value::str("s")))),
            );
        let n = norm(p);
        // The right-side conjunct must remain above the join.
        match &n {
            Plan::Select { child, predicate } => {
                assert!(matches!(**child, Plan::Join { .. }));
                assert!(predicate.to_string().contains('='), "{predicate}");
            }
            other => panic!("expected residual select, got:\n{other}"),
        }
    }

    #[test]
    fn identity_projection_vanishes() {
        let p =
            scan("t", &["a", "b"]).project(vec![(Expr::name("a"), "a"), (Expr::name("b"), "b")]);
        assert_eq!(norm(p), scan("t", &["a", "b"]));
        // Renaming projections survive (names are client-visible).
        let renamed =
            scan("t", &["a", "b"]).project(vec![(Expr::name("a"), "z"), (Expr::name("b"), "b")]);
        assert!(matches!(norm(renamed), Plan::Project { .. }));
    }

    #[test]
    fn stacked_projections_compose() {
        let stacked = scan("t", &["a", "b"])
            .project(vec![
                (Expr::name("a").add(Expr::name("a")), "s"),
                (Expr::name("b"), "b"),
            ])
            .project(vec![(Expr::col(0).add(Expr::col(0)), "d")]);
        let flat = scan("t", &["a", "b"]).project(vec![(
            Expr::name("a")
                .add(Expr::name("a"))
                .add(Expr::name("a").add(Expr::name("a"))),
            "d",
        )]);
        assert_eq!(norm(stacked), norm(flat));
    }

    #[test]
    fn join_key_pairs_sort_together() {
        let p1 = scan("t", &["a", "c"]).inner_join(
            scan("u", &["x"]),
            vec![Expr::name("a"), Expr::name("c")],
            vec![Expr::name("x"), Expr::name("x")],
        );
        let p2 = scan("t", &["a", "c"]).inner_join(
            scan("u", &["x"]),
            vec![Expr::name("c"), Expr::name("a")],
            vec![Expr::name("x"), Expr::name("x")],
        );
        assert_eq!(norm(p1), norm(p2));
    }

    #[test]
    fn pushdown_merges_into_existing_select() {
        // Regression: a conjunct pushed below the join must merge into the
        // child's existing selection, not stack a second Select — the two
        // spellings below are equivalent and must share one canonical form.
        let above = scan("t", &["a"])
            .select(Expr::name("a").lt(Expr::lit(5)))
            .inner_join(
                scan("u", &["x"]),
                vec![Expr::name("a")],
                vec![Expr::name("x")],
            )
            .select(Expr::col(0).gt(Expr::lit(1)));
        let below = scan("t", &["a"])
            .select(
                Expr::name("a")
                    .lt(Expr::lit(5))
                    .and(Expr::name("a").gt(Expr::lit(1))),
            )
            .inner_join(
                scan("u", &["x"]),
                vec![Expr::name("a")],
                vec![Expr::name("x")],
            );
        let cat = catalog();
        let na = normalize(&above.bind(&cat).unwrap(), &cat);
        let nb = normalize(&below.bind(&cat).unwrap(), &cat);
        assert_eq!(na, nb, "above:\n{na}\nbelow:\n{nb}");
        assert_eq!(structural_hash(&na), structural_hash(&nb));
        assert_eq!(normalize(&na, &cat), na, "must be idempotent");
    }

    #[test]
    fn normalization_is_idempotent() {
        let cat = catalog();
        let plans = [
            scan("t", &["a", "b"])
                .select(Expr::lit(3).lt(Expr::name("a")))
                .aggregate(
                    vec![(Expr::name("a"), "a")],
                    vec![(AggFunc::Sum(Expr::name("b")), "sb")],
                ),
            scan("t", &["a"])
                .inner_join(
                    scan("u", &["x"]),
                    vec![Expr::name("a")],
                    vec![Expr::name("x")],
                )
                .select(Expr::name("a").gt(Expr::lit(1)))
                .limit(3),
        ];
        for p in plans {
            let bound = p.bind(&cat).unwrap();
            let once = normalize(&bound, &cat);
            assert_eq!(normalize(&once, &cat), once, "not idempotent:\n{once}");
        }
    }

    #[test]
    fn templates_with_params_normalize() {
        let cat = catalog();
        let p = scan("t", &["a", "b"])
            .select(
                Expr::param("hi")
                    .gt(Expr::name("a"))
                    .and(Expr::name("b").lt(Expr::param("lo"))),
            )
            .bind(&cat)
            .unwrap();
        let n = normalize(&p, &cat);
        assert!(n.has_params());
        // Param comparison flipped into canonical column-left form.
        match &n {
            Plan::Select { predicate, .. } => {
                assert!(predicate.to_string().contains("($0 < :hi)"), "{predicate}");
            }
            other => panic!("unexpected {other}"),
        }
    }
}
