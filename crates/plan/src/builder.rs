//! Free-function plan constructors.

use rdb_expr::Expr;
use rdb_vector::{Schema, Value};

use crate::node::Plan;

/// Scan `table`, projecting `cols` in order.
pub fn scan(table: &str, cols: &[&str]) -> Plan {
    Plan::Scan {
        table: table.to_string(),
        cols: cols.iter().map(|s| s.to_string()).collect(),
    }
}

/// Table-function scan with literal arguments and a declared output schema.
pub fn fn_scan(name: &str, args: Vec<Value>, schema: Schema) -> Plan {
    fn_scan_exprs(name, args.into_iter().map(Expr::Lit).collect(), schema)
}

/// Table-function scan whose arguments are expressions — literals or
/// [`Expr::Param`] placeholders of a prepared template.
pub fn fn_scan_exprs(name: &str, args: Vec<Expr>, schema: Schema) -> Plan {
    Plan::FnScan {
        name: name.to_string(),
        args,
        schema,
    }
}

/// Bag union of the given subplans (schemas must agree).
pub fn union_all(children: Vec<Plan>) -> Plan {
    Plan::UnionAll { children }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_vector::DataType;

    #[test]
    fn constructors() {
        let s = scan("t", &["a", "b"]);
        match &s {
            Plan::Scan { table, cols } => {
                assert_eq!(table, "t");
                assert_eq!(cols, &vec!["a".to_string(), "b".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
        let f = fn_scan(
            "f",
            vec![Value::Int(1)],
            Schema::from_pairs([("x", DataType::Int)]),
        );
        assert_eq!(f.children().len(), 0);
        let u = union_all(vec![s.clone(), s]);
        assert_eq!(u.children().len(), 2);
    }
}
