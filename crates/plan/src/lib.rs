//! Logical query plans ("query trees").
//!
//! The recycler operates on *optimized query trees* (paper §II): each query
//! is a single tree of relational operators with concrete parameters. This
//! crate defines that tree ([`Plan`]), the bind pass that canonicalizes
//! named column references into positional ones, and the structural
//! fingerprints the recycler graph uses for fast matching:
//!
//! * [`Plan::local_hash`] — the paper's *hash-key*: a hash of the operator
//!   type and its parameters (excluding user-assigned output names, which
//!   are handled by name mappings, §III-B);
//! * [`Plan::signature`] — the paper's *signature*: a 64-bit column bitmask
//!   used to quickly eliminate candidates that do not provide the needed
//!   columns. We derive it from the set of base-table columns the subtree
//!   reads, which is invariant under output renaming.
//!
//! Plans also carry two recycler-inserted operator kinds that never enter
//! the recycler graph: [`Plan::Cached`] (read a materialized result) and
//! [`Plan::Store`] (tee the flow into the cache), mirroring the paper's
//! `store` operator and cached-result substitution.

pub mod builder;
pub mod fingerprint;
pub mod node;
pub mod normalize;

pub use builder::{fn_scan, fn_scan_exprs, scan, union_all};
pub use fingerprint::{
    fx_hash, kind_tag, local_eq, local_hash, signature, structural_eq, structural_hash,
    structural_hash_at, FxHasher,
};
pub use node::{JoinKind, Plan, PlanError, PlanErrorKind, SortKeyExpr, StoreMode};
pub use normalize::normalize;
