//! Structural fingerprints for recycler-graph matching.
//!
//! The paper's matcher (§III-A) attaches two quantities to every node:
//!
//! * a **hash-key** derived from characteristics that must exactly match
//!   (operator type and parameters) — [`local_hash`] here, with the twist
//!   that user-assigned output names are *excluded*: the paper handles
//!   renaming via name mappings, so `π_{x+1 as a}` and `π_{x+1 as b}` must
//!   land in the same hash bucket and compare equal structurally;
//! * a **signature**: an integer mask in which each column switches on one
//!   bit, used to quickly eliminate candidates that do not provide all
//!   needed columns — [`signature`] here, computed over the *base-table
//!   columns the subtree reads* so that it is invariant under renaming.
//!
//! Equality ([`local_eq`] / [`structural_eq`]) compares parameters exactly;
//! hash collisions therefore never cause false matches, only wasted probes.

use std::hash::{Hash, Hasher};

use crate::node::Plan;

/// A minimal Fx-style hasher (multiply-xor): low quality but very fast,
/// which is what the matching hot path wants; collisions only cost an extra
/// exact comparison.
#[derive(Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(SEED);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// Hash any `Hash` value with [`FxHasher`].
pub fn fx_hash<T: Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

/// Operator-kind discriminant (part of the hash-key).
pub fn kind_tag(plan: &Plan) -> u8 {
    match plan {
        Plan::Scan { .. } => 1,
        Plan::FnScan { .. } => 2,
        Plan::Select { .. } => 3,
        Plan::Project { .. } => 4,
        Plan::Aggregate { .. } => 5,
        Plan::Join { .. } => 6,
        Plan::TopN { .. } => 7,
        Plan::Sort { .. } => 8,
        Plan::Limit { .. } => 9,
        Plan::UnionAll { .. } => 10,
        Plan::Cached { .. } => 11,
        Plan::Store { .. } => 12,
    }
}

/// The node's hash-key: operator type plus local parameters, excluding
/// user-assigned output names and excluding children.
pub fn local_hash(plan: &Plan) -> u64 {
    let mut h = FxHasher::default();
    h.write_u8(kind_tag(plan));
    match plan {
        Plan::Scan { table, cols } => {
            table.hash(&mut h);
            cols.hash(&mut h);
        }
        Plan::FnScan { name, args, schema } => {
            name.hash(&mut h);
            args.hash(&mut h);
            schema.len().hash(&mut h);
        }
        Plan::Select { predicate, .. } => predicate.hash(&mut h),
        Plan::Project { exprs, .. } => exprs.hash(&mut h),
        Plan::Aggregate { group_by, aggs, .. } => {
            group_by.hash(&mut h);
            aggs.hash(&mut h);
        }
        Plan::Join {
            kind,
            left_keys,
            right_keys,
            ..
        } => {
            kind.hash(&mut h);
            left_keys.hash(&mut h);
            right_keys.hash(&mut h);
        }
        Plan::TopN { keys, n, .. } => {
            keys.hash(&mut h);
            n.hash(&mut h);
        }
        Plan::Sort { keys, .. } => keys.hash(&mut h),
        Plan::Limit { n, .. } => n.hash(&mut h),
        Plan::UnionAll { children } => children.len().hash(&mut h),
        Plan::Cached { tag, .. } | Plan::Store { tag, .. } => tag.hash(&mut h),
    }
    h.finish()
}

/// Exact comparison of operator type and local parameters, excluding
/// user-assigned output names and children.
pub fn local_eq(a: &Plan, b: &Plan) -> bool {
    match (a, b) {
        (
            Plan::Scan {
                table: t1,
                cols: c1,
            },
            Plan::Scan {
                table: t2,
                cols: c2,
            },
        ) => t1 == t2 && c1 == c2,
        (
            Plan::FnScan {
                name: n1,
                args: a1,
                schema: s1,
            },
            Plan::FnScan {
                name: n2,
                args: a2,
                schema: s2,
            },
        ) => n1 == n2 && a1 == a2 && s1.len() == s2.len(),
        (Plan::Select { predicate: p1, .. }, Plan::Select { predicate: p2, .. }) => p1 == p2,
        (Plan::Project { exprs: e1, .. }, Plan::Project { exprs: e2, .. }) => e1 == e2,
        (
            Plan::Aggregate {
                group_by: g1,
                aggs: a1,
                ..
            },
            Plan::Aggregate {
                group_by: g2,
                aggs: a2,
                ..
            },
        ) => g1 == g2 && a1 == a2,
        (
            Plan::Join {
                kind: k1,
                left_keys: l1,
                right_keys: r1,
                ..
            },
            Plan::Join {
                kind: k2,
                left_keys: l2,
                right_keys: r2,
                ..
            },
        ) => k1 == k2 && l1 == l2 && r1 == r2,
        (
            Plan::TopN {
                keys: k1, n: n1, ..
            },
            Plan::TopN {
                keys: k2, n: n2, ..
            },
        ) => k1 == k2 && n1 == n2,
        (Plan::Sort { keys: k1, .. }, Plan::Sort { keys: k2, .. }) => k1 == k2,
        (Plan::Limit { n: n1, .. }, Plan::Limit { n: n2, .. }) => n1 == n2,
        (Plan::UnionAll { children: c1 }, Plan::UnionAll { children: c2 }) => c1.len() == c2.len(),
        (Plan::Cached { tag: t1, .. }, Plan::Cached { tag: t2, .. }) => t1 == t2,
        _ => false,
    }
}

/// Structural equality of whole subtrees (local params + recursive
/// children), ignoring user-assigned output names throughout.
pub fn structural_eq(a: &Plan, b: &Plan) -> bool {
    if !local_eq(a, b) {
        return false;
    }
    let ca = a.children();
    let cb = b.children();
    ca.len() == cb.len() && ca.iter().zip(cb).all(|(x, y)| structural_eq(x, y))
}

/// Hash of the whole subtree consistent with [`structural_eq`].
pub fn structural_hash(plan: &Plan) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(local_hash(plan));
    for c in plan.children() {
        h.write_u64(structural_hash(c));
    }
    h.finish()
}

/// Version-aware fingerprint: [`structural_hash`] with each base-table
/// scan additionally mixing in that table's epoch (as supplied by
/// `epoch_of`, typically a catalog or snapshot lookup). Two structurally
/// identical plans fingerprint differently iff any table they scan has
/// been updated in between — the identity under which a cached result is
/// valid for reuse (PAPER.md §V: cached intermediates must be invalidated
/// when their base tables change).
pub fn structural_hash_at(plan: &Plan, epoch_of: &dyn Fn(&str) -> u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(local_hash(plan));
    if let Plan::Scan { table, .. } = plan {
        h.write_u64(epoch_of(table));
    }
    for c in plan.children() {
        h.write_u64(structural_hash_at(c, epoch_of));
    }
    h.finish()
}

/// The column-bitmask signature: one bit per base-table column read by the
/// subtree (`hash(table.column) % 64`), unioned bottom-up. A candidate whose
/// signature is missing a bit cannot provide all needed columns.
pub fn signature(plan: &Plan) -> u64 {
    match plan {
        Plan::Scan { table, cols } => {
            let mut sig = 0u64;
            for c in cols {
                sig |= 1u64 << (fx_hash(&(table.as_str(), c.as_str())) % 64);
            }
            sig
        }
        Plan::FnScan { name, args, .. } => 1u64 << (fx_hash(&(name.as_str(), args)) % 64),
        Plan::Cached { tag, .. } => 1u64 << (tag % 64),
        _ => plan
            .children()
            .iter()
            .map(|c| signature(c))
            .fold(0, |acc, s| acc | s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::scan;
    use rdb_expr::{AggFunc, Expr};

    fn base() -> Plan {
        scan("lineitem", &["l_qty", "l_price"]).select(Expr::col(0).gt(Expr::lit(5)))
    }

    #[test]
    fn identical_plans_same_fingerprint() {
        let a = base();
        let b = base();
        assert!(structural_eq(&a, &b));
        assert_eq!(structural_hash(&a), structural_hash(&b));
        assert_eq!(local_hash(&a), local_hash(&b));
        assert_eq!(signature(&a), signature(&b));
    }

    #[test]
    fn parameter_change_breaks_match() {
        let a = base();
        let b = scan("lineitem", &["l_qty", "l_price"]).select(Expr::col(0).gt(Expr::lit(6)));
        assert!(!structural_eq(&a, &b));
        assert_ne!(local_hash(&a), local_hash(&b));
    }

    #[test]
    fn output_names_do_not_matter() {
        let a = base().project(vec![(Expr::col(1).mul(Expr::lit(2.0)), "x")]);
        let b = base().project(vec![(
            Expr::col(1).mul(Expr::lit(2.0)),
            "totally_different",
        )]);
        assert!(structural_eq(&a, &b));
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn aggregate_names_do_not_matter_but_functions_do() {
        let g = |name: &'static str, f: AggFunc| {
            base().aggregate(vec![(Expr::col(0), "k")], vec![(f, name)])
        };
        let a = g("s1", AggFunc::Sum(Expr::col(1)));
        let b = g("s2", AggFunc::Sum(Expr::col(1)));
        let c = g("s1", AggFunc::Avg(Expr::col(1)));
        assert!(structural_eq(&a, &b));
        assert!(!structural_eq(&a, &c));
    }

    #[test]
    fn child_difference_breaks_structural_match_only() {
        let a = base().limit(10);
        let b = scan("lineitem", &["l_qty", "l_price"])
            .select(Expr::col(0).gt(Expr::lit(99)))
            .limit(10);
        // Same local node (limit 10)...
        assert!(local_eq(&a, &b));
        assert_eq!(local_hash(&a), local_hash(&b));
        // ...but different subtrees.
        assert!(!structural_eq(&a, &b));
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn signature_is_union_of_base_columns() {
        let narrow = scan("lineitem", &["l_qty"]);
        let wide = scan("lineitem", &["l_qty", "l_price"]);
        let sig_n = signature(&narrow);
        let sig_w = signature(&wide);
        assert_eq!(sig_n & sig_w, sig_n, "wide signature covers narrow");
        assert!(sig_w.count_ones() >= sig_n.count_ones());
        // Signature survives renaming projections.
        let renamed = wide.clone().project(vec![(Expr::col(0), "renamed")]);
        assert_eq!(signature(&renamed), sig_w);
    }

    #[test]
    fn different_tables_different_signature() {
        let a = scan("lineitem", &["l_qty"]);
        let b = scan("orders", &["l_qty"]);
        assert_ne!(signature(&a), signature(&b));
    }

    #[test]
    fn kind_tags_distinct_per_variant() {
        let plans = [
            scan("t", &["a"]),
            scan("t", &["a"]).select(Expr::lit(true)),
            scan("t", &["a"]).limit(1),
            scan("t", &["a"]).sort(vec![]),
        ];
        let tags: Vec<u8> = plans.iter().map(kind_tag).collect();
        let mut unique = tags.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), tags.len());
    }

    #[test]
    fn fx_hash_stable() {
        assert_eq!(fx_hash(&42u64), fx_hash(&42u64));
        assert_ne!(fx_hash(&42u64), fx_hash(&43u64));
    }

    #[test]
    fn epoch_aware_fingerprint_tracks_table_versions() {
        let q = base().limit(10);
        let at = |e_li: u64| structural_hash_at(&q, &|t| if t == "lineitem" { e_li } else { 0 });
        // Same epochs → same fingerprint, and stable across calls.
        assert_eq!(at(0), at(0));
        // An epoch bump on a scanned table changes the fingerprint.
        assert_ne!(at(0), at(1));
        // An epoch bump on an *unscanned* table does not.
        let with_orders = |e_o: u64| {
            structural_hash_at(&q, &|t| match t {
                "orders" => e_o,
                _ => 3,
            })
        };
        assert_eq!(with_orders(5), with_orders(9));
    }

    #[test]
    fn base_tables_deduplicated_in_order() {
        let q = scan("lineitem", &["l_qty"])
            .inner_join(
                scan("part", &["p_key"]),
                vec![Expr::col(0)],
                vec![Expr::col(0)],
            )
            .inner_join(
                scan("lineitem", &["l_qty"]),
                vec![Expr::col(0)],
                vec![Expr::col(0)],
            );
        assert_eq!(q.base_tables(), vec!["lineitem", "part"]);
        // Cached reads carry no base-table dependency of their own.
        let cached = Plan::Cached {
            tag: 1,
            schema: rdb_vector::Schema::new(vec![]),
        };
        assert!(cached.base_tables().is_empty());
    }
}
