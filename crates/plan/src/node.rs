//! The plan node enum, schema derivation, and the bind pass.

use std::fmt;

use rdb_expr::{AggFunc, Expr};
use rdb_storage::Catalog;
use rdb_vector::row::SortOrder;
use rdb_vector::{DataType, Field, Schema};

/// Join variants supported by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Inner equi-join; output = left columns ++ right columns.
    Inner,
    /// Left outer equi-join; unmatched left rows pad the right side with
    /// NULLs.
    LeftOuter,
    /// Left semi join (SQL `EXISTS`); output = left columns.
    Semi,
    /// Left anti join (SQL `NOT EXISTS`); output = left columns.
    Anti,
    /// Broadcast join against a single-row right side (decorrelated scalar
    /// subquery); key lists must be empty and the right side must produce
    /// exactly one row. Output = left columns ++ right columns.
    Single,
}

impl JoinKind {
    /// Short SQL-ish label.
    pub fn label(self) -> &'static str {
        match self {
            JoinKind::Inner => "inner",
            JoinKind::LeftOuter => "left_outer",
            JoinKind::Semi => "semi",
            JoinKind::Anti => "anti",
            JoinKind::Single => "single",
        }
    }
}

/// One sort key: expression plus direction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SortKeyExpr {
    /// Key expression over the input.
    pub expr: Expr,
    /// Direction.
    pub order: SortOrder,
}

impl SortKeyExpr {
    /// Ascending key.
    pub fn asc(expr: Expr) -> Self {
        SortKeyExpr {
            expr,
            order: SortOrder::Asc,
        }
    }

    /// Descending key.
    pub fn desc(expr: Expr) -> Self {
        SortKeyExpr {
            expr,
            order: SortOrder::Desc,
        }
    }
}

/// Behaviour of a recycler-injected [`Plan::Store`] node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreMode {
    /// Materialization already decided (history mode): tee every batch into
    /// the cache while passing it along.
    Materialize,
    /// Speculative (paper §III-D): buffer copies of the flow while run-time
    /// estimates decide; cancel buffering if not deemed beneficial.
    Speculate,
}

/// What went wrong during schema derivation, binding, or execution
/// preparation. Structured so higher layers (notably the SQL frontend)
/// can attach their own context — source spans, statement text — without
/// re-parsing rendered messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanErrorKind {
    /// A base-table reference did not resolve against the catalog.
    UnknownTable {
        /// The unresolved table name.
        table: String,
    },
    /// A column reference did not resolve against its input schema.
    UnknownColumn {
        /// The unresolved column name.
        column: String,
        /// Where it was looked up (a schema rendering or operator label).
        context: String,
    },
    /// A table-function reference did not resolve against the registry.
    UnknownFunction {
        /// The unresolved function name.
        name: String,
    },
    /// An expression or operator was typed inconsistently.
    TypeMismatch {
        /// What the operator required.
        expected: String,
        /// What it got.
        found: String,
        /// Where.
        context: String,
    },
    /// Mismatched list lengths (join keys, union arms, insert rows).
    ArityMismatch {
        /// Description of the mismatch.
        context: String,
    },
    /// A parameter placeholder had no binding (or appeared somewhere it
    /// cannot, e.g. a typed projection position).
    UnboundParameter {
        /// The parameter name.
        name: String,
    },
    /// The engine's admission wait queue is at capacity; the query was
    /// rejected rather than queued (load shedding under overload).
    Saturated {
        /// Queue capacity that was exceeded.
        limit: usize,
    },
    /// The engine is shutting down and no longer admits queries.
    ShuttingDown,
    /// The engine has degraded to read-only mode (its write-ahead log can
    /// no longer persist commits); reads keep serving, writes are
    /// rejected with this error until the operator intervenes.
    ReadOnly,
    /// Anything else (free-form).
    Other {
        /// The message.
        message: String,
    },
}

/// Errors from schema derivation / binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// The structured cause.
    pub kind: PlanErrorKind,
}

impl PlanError {
    /// Free-form error.
    pub fn msg(message: impl Into<String>) -> PlanError {
        PlanError {
            kind: PlanErrorKind::Other {
                message: message.into(),
            },
        }
    }

    /// Unknown base table.
    pub fn unknown_table(table: impl Into<String>) -> PlanError {
        PlanError {
            kind: PlanErrorKind::UnknownTable {
                table: table.into(),
            },
        }
    }

    /// Unknown column in `context`.
    pub fn unknown_column(column: impl Into<String>, context: impl Into<String>) -> PlanError {
        PlanError {
            kind: PlanErrorKind::UnknownColumn {
                column: column.into(),
                context: context.into(),
            },
        }
    }

    /// Unknown table function.
    pub fn unknown_function(name: impl Into<String>) -> PlanError {
        PlanError {
            kind: PlanErrorKind::UnknownFunction { name: name.into() },
        }
    }

    /// Type mismatch in `context`.
    pub fn type_mismatch(
        expected: impl Into<String>,
        found: impl Into<String>,
        context: impl Into<String>,
    ) -> PlanError {
        PlanError {
            kind: PlanErrorKind::TypeMismatch {
                expected: expected.into(),
                found: found.into(),
                context: context.into(),
            },
        }
    }

    /// Arity mismatch.
    pub fn arity(context: impl Into<String>) -> PlanError {
        PlanError {
            kind: PlanErrorKind::ArityMismatch {
                context: context.into(),
            },
        }
    }

    /// Unbound (or ill-placed) parameter.
    pub fn unbound_parameter(name: impl Into<String>) -> PlanError {
        PlanError {
            kind: PlanErrorKind::UnboundParameter { name: name.into() },
        }
    }

    /// Admission queue full.
    pub fn saturated(limit: usize) -> PlanError {
        PlanError {
            kind: PlanErrorKind::Saturated { limit },
        }
    }

    /// Engine shutting down.
    pub fn shutting_down() -> PlanError {
        PlanError {
            kind: PlanErrorKind::ShuttingDown,
        }
    }

    /// Engine degraded to read-only (durability failure).
    pub fn read_only() -> PlanError {
        PlanError {
            kind: PlanErrorKind::ReadOnly,
        }
    }

    /// The offending identifier, when the kind names one (table, column,
    /// function, or parameter). Lets callers highlight the exact token.
    pub fn subject(&self) -> Option<&str> {
        match &self.kind {
            PlanErrorKind::UnknownTable { table } => Some(table),
            PlanErrorKind::UnknownColumn { column, .. } => Some(column),
            PlanErrorKind::UnknownFunction { name } => Some(name),
            PlanErrorKind::UnboundParameter { name } => Some(name),
            _ => None,
        }
    }
}

impl From<rdb_expr::ExprError> for PlanError {
    fn from(e: rdb_expr::ExprError) -> PlanError {
        match e {
            rdb_expr::ExprError::UnknownColumn { column, schema } => {
                PlanError::unknown_column(column, format!("schema {schema}"))
            }
            rdb_expr::ExprError::UnboundParameter { name } => PlanError::unbound_parameter(name),
        }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan error: ")?;
        match &self.kind {
            PlanErrorKind::UnknownTable { table } => write!(f, "unknown table '{table}'"),
            PlanErrorKind::UnknownColumn { column, context } => {
                write!(f, "unknown column '{column}' in {context}")
            }
            PlanErrorKind::UnknownFunction { name } => {
                write!(f, "unknown table function '{name}'")
            }
            PlanErrorKind::TypeMismatch {
                expected,
                found,
                context,
            } => write!(f, "{context}: expected {expected}, got {found}"),
            PlanErrorKind::ArityMismatch { context } => write!(f, "{context}"),
            PlanErrorKind::UnboundParameter { name } => {
                write!(f, "no value bound for parameter '{name}'")
            }
            PlanErrorKind::Saturated { limit } => {
                write!(f, "admission queue full ({limit} queries already waiting)")
            }
            PlanErrorKind::ShuttingDown => write!(f, "engine is shutting down"),
            PlanErrorKind::ReadOnly => write!(
                f,
                "engine is read-only: the write-ahead log failed and writes \
                 can no longer be made durable"
            ),
            PlanErrorKind::Other { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A logical query plan node.
///
/// Plans are built with named column references and then [`Plan::bind`]
/// resolves every name into a position, yielding the canonical form the
/// recycler matches on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Plan {
    /// Base-table scan of the named columns (in the given order).
    Scan {
        /// Table name in the catalog.
        table: String,
        /// Projected column names.
        cols: Vec<String>,
    },
    /// Table-function scan (e.g. SkyServer's `fGetNearbyObjEq`); a leaf with
    /// a declared output schema. The executor resolves the function by name.
    FnScan {
        /// Function name.
        name: String,
        /// Constant arguments (part of the match identity). Literals in a
        /// concrete plan; prepared templates may use [`Expr::Param`]
        /// placeholders, substituted before execution.
        args: Vec<Expr>,
        /// Declared output schema.
        schema: Schema,
    },
    /// Selection.
    Select {
        /// Input.
        child: Box<Plan>,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// Projection: computes `exprs`, names them `names`.
    Project {
        /// Input.
        child: Box<Plan>,
        /// Output expressions.
        exprs: Vec<Expr>,
        /// Output names (not part of the structural identity).
        names: Vec<String>,
    },
    /// Hash aggregation: `group_by` keys then `aggs`.
    Aggregate {
        /// Input.
        child: Box<Plan>,
        /// Grouping key expressions.
        group_by: Vec<Expr>,
        /// Output names of the grouping keys.
        group_names: Vec<String>,
        /// Aggregate functions.
        aggs: Vec<AggFunc>,
        /// Output names of the aggregates.
        agg_names: Vec<String>,
    },
    /// Hash equi-join; `left_keys[i]` pairs with `right_keys[i]`.
    Join {
        /// Probe side.
        left: Box<Plan>,
        /// Build side.
        right: Box<Plan>,
        /// Join variant.
        kind: JoinKind,
        /// Probe key expressions (over left schema).
        left_keys: Vec<Expr>,
        /// Build key expressions (over right schema).
        right_keys: Vec<Expr>,
    },
    /// Heap-based top-N (paper §IV-B: `topN` keeps an N-sized heap).
    TopN {
        /// Input.
        child: Box<Plan>,
        /// Sort keys.
        keys: Vec<SortKeyExpr>,
        /// Number of rows to keep.
        n: usize,
    },
    /// Full sort.
    Sort {
        /// Input.
        child: Box<Plan>,
        /// Sort keys.
        keys: Vec<SortKeyExpr>,
    },
    /// First-N rows without ordering.
    Limit {
        /// Input.
        child: Box<Plan>,
        /// Row budget.
        n: usize,
    },
    /// Bag union of same-schema children.
    UnionAll {
        /// Inputs.
        children: Vec<Plan>,
    },
    /// Recycler-inserted: read a materialized result from the cache.
    /// Never inserted into the recycler graph.
    Cached {
        /// Cache handle issued by the recycler.
        tag: u64,
        /// Schema of the cached result.
        schema: Schema,
    },
    /// Recycler-inserted: tee the child's output into the cache under `tag`.
    /// Never inserted into the recycler graph.
    Store {
        /// Input.
        child: Box<Plan>,
        /// Cache handle issued by the recycler.
        tag: u64,
        /// Materialize vs. speculate.
        mode: StoreMode,
    },
}

impl Plan {
    // ---- fluent builders -------------------------------------------------

    /// `σ_predicate(self)`.
    pub fn select(self, predicate: Expr) -> Plan {
        Plan::Select {
            child: Box::new(self),
            predicate,
        }
    }

    /// `π_{exprs as names}(self)`.
    pub fn project(self, items: Vec<(Expr, &str)>) -> Plan {
        let (exprs, names) = items.into_iter().map(|(e, n)| (e, n.to_string())).unzip();
        Plan::Project {
            child: Box::new(self),
            exprs,
            names,
        }
    }

    /// `γ_{groups; aggs}(self)`.
    pub fn aggregate(self, groups: Vec<(Expr, &str)>, aggs: Vec<(AggFunc, &str)>) -> Plan {
        let (group_by, group_names) = groups.into_iter().map(|(e, n)| (e, n.to_string())).unzip();
        let (aggs, agg_names) = aggs.into_iter().map(|(a, n)| (a, n.to_string())).unzip();
        Plan::Aggregate {
            child: Box::new(self),
            group_by,
            group_names,
            aggs,
            agg_names,
        }
    }

    /// Hash join with the given kind and key lists.
    pub fn join(
        self,
        right: Plan,
        kind: JoinKind,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
    ) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            kind,
            left_keys,
            right_keys,
        }
    }

    /// Inner equi-join convenience.
    pub fn inner_join(self, right: Plan, left_keys: Vec<Expr>, right_keys: Vec<Expr>) -> Plan {
        self.join(right, JoinKind::Inner, left_keys, right_keys)
    }

    /// Broadcast join against a one-row subplan (scalar subquery).
    pub fn single_join(self, right: Plan) -> Plan {
        self.join(right, JoinKind::Single, vec![], vec![])
    }

    /// Heap top-N.
    pub fn top_n(self, keys: Vec<SortKeyExpr>, n: usize) -> Plan {
        Plan::TopN {
            child: Box::new(self),
            keys,
            n,
        }
    }

    /// Full sort.
    pub fn sort(self, keys: Vec<SortKeyExpr>) -> Plan {
        Plan::Sort {
            child: Box::new(self),
            keys,
        }
    }

    /// Row limit.
    pub fn limit(self, n: usize) -> Plan {
        Plan::Limit {
            child: Box::new(self),
            n,
        }
    }

    /// Wrap in a recycler store operator.
    pub fn store(self, tag: u64, mode: StoreMode) -> Plan {
        Plan::Store {
            child: Box::new(self),
            tag,
            mode,
        }
    }

    // ---- structure -------------------------------------------------------

    /// Child subplans in order.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } | Plan::FnScan { .. } | Plan::Cached { .. } => vec![],
            Plan::Select { child, .. }
            | Plan::Project { child, .. }
            | Plan::Aggregate { child, .. }
            | Plan::TopN { child, .. }
            | Plan::Sort { child, .. }
            | Plan::Limit { child, .. }
            | Plan::Store { child, .. } => vec![child],
            Plan::Join { left, right, .. } => vec![left, right],
            Plan::UnionAll { children } => children.iter().collect(),
        }
    }

    /// Rebuild this node with new children (same arity required).
    pub fn with_children(&self, mut new_children: Vec<Plan>) -> Plan {
        assert_eq!(new_children.len(), self.children().len(), "arity mismatch");
        let mut next = || Box::new(new_children.remove(0));
        match self {
            Plan::Scan { .. } | Plan::FnScan { .. } | Plan::Cached { .. } => self.clone(),
            Plan::Select { predicate, .. } => Plan::Select {
                child: next(),
                predicate: predicate.clone(),
            },
            Plan::Project { exprs, names, .. } => Plan::Project {
                child: next(),
                exprs: exprs.clone(),
                names: names.clone(),
            },
            Plan::Aggregate {
                group_by,
                group_names,
                aggs,
                agg_names,
                ..
            } => Plan::Aggregate {
                child: next(),
                group_by: group_by.clone(),
                group_names: group_names.clone(),
                aggs: aggs.clone(),
                agg_names: agg_names.clone(),
            },
            Plan::Join {
                kind,
                left_keys,
                right_keys,
                ..
            } => Plan::Join {
                left: next(),
                right: next(),
                kind: *kind,
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
            },
            Plan::TopN { keys, n, .. } => Plan::TopN {
                child: next(),
                keys: keys.clone(),
                n: *n,
            },
            Plan::Sort { keys, .. } => Plan::Sort {
                child: next(),
                keys: keys.clone(),
            },
            Plan::Limit { n, .. } => Plan::Limit {
                child: next(),
                n: *n,
            },
            Plan::UnionAll { .. } => {
                let mut children = Vec::new();
                while !new_children.is_empty() {
                    children.push(new_children.remove(0));
                }
                Plan::UnionAll { children }
            }
            Plan::Store { tag, mode, .. } => Plan::Store {
                child: next(),
                tag: *tag,
                mode: *mode,
            },
        }
    }

    /// Names of every base table scanned in the subtree, deduplicated in
    /// first-occurrence order. The recycler keys invalidation and cache
    /// freshness on this set.
    pub fn base_tables(&self) -> Vec<String> {
        fn go(plan: &Plan, out: &mut Vec<String>) {
            if let Plan::Scan { table, .. } = plan {
                if !out.iter().any(|t| t == table) {
                    out.push(table.clone());
                }
            }
            for c in plan.children() {
                go(c, out);
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out
    }

    /// Number of plan nodes in the subtree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Short label naming the operator and its parameters.
    pub fn label(&self) -> String {
        match self {
            Plan::Scan { table, cols } => format!("scan {table} [{}]", cols.join(", ")),
            Plan::FnScan { name, args, .. } => {
                let a: Vec<String> = args.iter().map(|v| v.to_string()).collect();
                format!("fn_scan {name}({})", a.join(", "))
            }
            Plan::Select { predicate, .. } => format!("select {predicate}"),
            Plan::Project { exprs, names, .. } => {
                let items: Vec<String> = exprs
                    .iter()
                    .zip(names)
                    .map(|(e, n)| format!("{e} as {n}"))
                    .collect();
                format!("project [{}]", items.join(", "))
            }
            Plan::Aggregate { group_by, aggs, .. } => {
                let g: Vec<String> = group_by.iter().map(|e| e.to_string()).collect();
                let a: Vec<String> = aggs.iter().map(|f| f.to_string()).collect();
                format!("aggregate by [{}] compute [{}]", g.join(", "), a.join(", "))
            }
            Plan::Join {
                kind,
                left_keys,
                right_keys,
                ..
            } => {
                let l: Vec<String> = left_keys.iter().map(|e| e.to_string()).collect();
                let r: Vec<String> = right_keys.iter().map(|e| e.to_string()).collect();
                format!(
                    "{}_join on [{}]=[{}]",
                    kind.label(),
                    l.join(", "),
                    r.join(", ")
                )
            }
            Plan::TopN { keys, n, .. } => format!("top_{n} by {}", keys_label(keys)),
            Plan::Sort { keys, .. } => format!("sort by {}", keys_label(keys)),
            Plan::Limit { n, .. } => format!("limit {n}"),
            Plan::UnionAll { children } => format!("union_all of {}", children.len()),
            Plan::Cached { tag, .. } => format!("cached #{tag}"),
            Plan::Store { tag, mode, .. } => format!("store #{tag} ({mode:?})"),
        }
    }

    // ---- schema + bind ---------------------------------------------------

    /// Derive the output schema. Works on both named and bound plans.
    pub fn schema(&self, catalog: &Catalog) -> Result<Schema, PlanError> {
        match self {
            Plan::Scan { table, cols } => {
                let t = catalog
                    .schema_of(table)
                    .ok_or_else(|| PlanError::unknown_table(table))?;
                let names: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
                t.project(&names).ok_or_else(|| {
                    let missing = cols
                        .iter()
                        .find(|c| t.index_of(c).is_none())
                        .map(|c| c.as_str())
                        .unwrap_or("?");
                    PlanError::unknown_column(missing, format!("scan of '{table}'"))
                })
            }
            Plan::FnScan { schema, .. } => Ok(schema.clone()),
            Plan::Select { child, .. } => child.schema(catalog),
            Plan::Project {
                child,
                exprs,
                names,
            } => {
                let input = child.schema(catalog)?;
                let tys = input_types(&input);
                let fields = exprs
                    .iter()
                    .zip(names)
                    .map(|(e, n)| {
                        let bound = e.bind(&input).map_err(PlanError::from)?;
                        Ok(Field::new(n.clone(), bound.data_type(&tys)))
                    })
                    .collect::<Result<Vec<_>, PlanError>>()?;
                Ok(Schema::new(fields))
            }
            Plan::Aggregate {
                child,
                group_by,
                group_names,
                aggs,
                agg_names,
            } => {
                let input = child.schema(catalog)?;
                let tys = input_types(&input);
                let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
                for (e, n) in group_by.iter().zip(group_names) {
                    let bound = e.bind(&input).map_err(PlanError::from)?;
                    fields.push(Field::new(n.clone(), bound.data_type(&tys)));
                }
                for (a, n) in aggs.iter().zip(agg_names) {
                    let bound =
                        a.map_argument(&mut |e| e.bind(&input).unwrap_or_else(|_| e.clone()));
                    if let Some(arg) = bound.argument() {
                        if arg.has_named() {
                            return Err(PlanError::msg(format!("unresolved column in {a}")));
                        }
                    }
                    fields.push(Field::new(n.clone(), bound.data_type(&tys)));
                }
                Ok(Schema::new(fields))
            }
            Plan::Join {
                left, right, kind, ..
            } => {
                let l = left.schema(catalog)?;
                match kind {
                    JoinKind::Semi | JoinKind::Anti => Ok(l),
                    _ => Ok(l.join(&right.schema(catalog)?)),
                }
            }
            Plan::TopN { child, .. } | Plan::Sort { child, .. } | Plan::Limit { child, .. } => {
                child.schema(catalog)
            }
            Plan::UnionAll { children } => {
                let first = children
                    .first()
                    .ok_or_else(|| PlanError::msg("empty union"))?
                    .schema(catalog)?;
                for c in &children[1..] {
                    let s = c.schema(catalog)?;
                    if s.len() != first.len()
                        || s.fields()
                            .iter()
                            .zip(first.fields())
                            .any(|(a, b)| a.dtype != b.dtype)
                    {
                        return Err(PlanError::type_mismatch(
                            first.to_string(),
                            s.to_string(),
                            "union arm schemas must agree",
                        ));
                    }
                }
                Ok(first)
            }
            Plan::Cached { schema, .. } => Ok(schema.clone()),
            Plan::Store { child, .. } => child.schema(catalog),
        }
    }

    /// Resolve every named column reference to a position, bottom-up,
    /// producing the canonical plan the recycler matches on.
    pub fn bind(&self, catalog: &Catalog) -> Result<Plan, PlanError> {
        let bound_children: Vec<Plan> = self
            .children()
            .iter()
            .map(|c| c.bind(catalog))
            .collect::<Result<_, _>>()?;
        let child_schemas: Vec<Schema> = bound_children
            .iter()
            .map(|c| c.schema(catalog))
            .collect::<Result<_, _>>()?;
        let rebind = |e: &Expr, s: &Schema| e.bind(s).map_err(PlanError::from);
        Ok(match self {
            Plan::Scan { .. } | Plan::FnScan { .. } | Plan::Cached { .. } => self.clone(),
            Plan::Select { predicate, .. } => Plan::Select {
                predicate: rebind(predicate, &child_schemas[0])?,
                child: Box::new(bound_children.into_iter().next().unwrap()),
            },
            Plan::Project { exprs, names, .. } => Plan::Project {
                exprs: exprs
                    .iter()
                    .map(|e| rebind(e, &child_schemas[0]))
                    .collect::<Result<_, _>>()?,
                names: names.clone(),
                child: Box::new(bound_children.into_iter().next().unwrap()),
            },
            Plan::Aggregate {
                group_by,
                group_names,
                aggs,
                agg_names,
                ..
            } => {
                let s = &child_schemas[0];
                let mut err = None;
                let aggs_bound: Vec<AggFunc> = aggs
                    .iter()
                    .map(|a| {
                        a.map_argument(&mut |e| match e.bind(s) {
                            Ok(b) => b,
                            Err(msg) => {
                                err.get_or_insert(msg);
                                e.clone()
                            }
                        })
                    })
                    .collect();
                if let Some(msg) = err {
                    return Err(PlanError::from(msg));
                }
                Plan::Aggregate {
                    group_by: group_by
                        .iter()
                        .map(|e| rebind(e, s))
                        .collect::<Result<_, _>>()?,
                    group_names: group_names.clone(),
                    aggs: aggs_bound,
                    agg_names: agg_names.clone(),
                    child: Box::new(bound_children.into_iter().next().unwrap()),
                }
            }
            Plan::Join {
                kind,
                left_keys,
                right_keys,
                ..
            } => {
                let lk: Vec<Expr> = left_keys
                    .iter()
                    .map(|e| rebind(e, &child_schemas[0]))
                    .collect::<Result<_, _>>()?;
                let rk: Vec<Expr> = right_keys
                    .iter()
                    .map(|e| rebind(e, &child_schemas[1]))
                    .collect::<Result<_, _>>()?;
                if lk.len() != rk.len() {
                    return Err(PlanError::arity("join key arity mismatch"));
                }
                if *kind == JoinKind::Single && !lk.is_empty() {
                    return Err(PlanError::arity("single join takes no keys"));
                }
                let mut it = bound_children.into_iter();
                Plan::Join {
                    left: Box::new(it.next().unwrap()),
                    right: Box::new(it.next().unwrap()),
                    kind: *kind,
                    left_keys: lk,
                    right_keys: rk,
                }
            }
            Plan::TopN { keys, n, .. } => Plan::TopN {
                keys: bind_keys(keys, &child_schemas[0])?,
                n: *n,
                child: Box::new(bound_children.into_iter().next().unwrap()),
            },
            Plan::Sort { keys, .. } => Plan::Sort {
                keys: bind_keys(keys, &child_schemas[0])?,
                child: Box::new(bound_children.into_iter().next().unwrap()),
            },
            Plan::Limit { n, .. } => Plan::Limit {
                n: *n,
                child: Box::new(bound_children.into_iter().next().unwrap()),
            },
            Plan::UnionAll { .. } => Plan::UnionAll {
                children: bound_children,
            },
            Plan::Store { tag, mode, .. } => Plan::Store {
                tag: *tag,
                mode: *mode,
                child: Box::new(bound_children.into_iter().next().unwrap()),
            },
        })
    }

    /// Whether any expression in the subtree still contains named references.
    pub fn has_named(&self) -> bool {
        let local = self.local_exprs().iter().any(|e| e.has_named());
        local || self.children().iter().any(|c| c.has_named())
    }

    /// Whether any expression in the subtree contains a parameter
    /// placeholder (i.e. the plan is a prepared template, not executable
    /// as-is).
    pub fn has_params(&self) -> bool {
        let local = self.local_exprs().iter().any(|e| e.has_params());
        local || self.children().iter().any(|c| c.has_params())
    }

    /// Names of all parameter placeholders in the subtree, deduplicated in
    /// first-occurrence order.
    pub fn param_names(&self) -> Vec<String> {
        fn go(plan: &Plan, out: &mut Vec<String>) {
            for e in plan.local_exprs() {
                e.param_names(out);
            }
            for c in plan.children() {
                go(c, out);
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out
    }

    /// First parameter placeholder appearing in a position whose *output
    /// type* depends on it — projection expressions, aggregate group keys,
    /// and aggregate arguments. Such templates cannot derive a schema
    /// before substitution, so they are rejected at prepare time instead of
    /// panicking inside type derivation.
    ///
    /// Invariant: the positions listed here must cover every expression
    /// [`Plan::schema`] calls [`Expr::data_type`] on; extend both together
    /// when adding an operator that types one of its expressions.
    pub fn param_in_typed_position(&self) -> Option<String> {
        let local: Vec<&Expr> = match self {
            Plan::Project { exprs, .. } => exprs.iter().collect(),
            Plan::Aggregate { group_by, aggs, .. } => group_by
                .iter()
                .chain(aggs.iter().filter_map(|a| a.argument()))
                .collect(),
            _ => vec![],
        };
        for e in local {
            let mut names = Vec::new();
            e.param_names(&mut names);
            if let Some(n) = names.into_iter().next() {
                return Some(n);
            }
        }
        self.children()
            .iter()
            .find_map(|c| c.param_in_typed_position())
    }

    /// Every expression held directly by this node (not its children).
    fn local_exprs(&self) -> Vec<&Expr> {
        match self {
            Plan::Scan { .. } | Plan::Cached { .. } => vec![],
            Plan::FnScan { args, .. } => args.iter().collect(),
            Plan::Select { predicate, .. } => vec![predicate],
            Plan::Project { exprs, .. } => exprs.iter().collect(),
            Plan::Aggregate { group_by, aggs, .. } => group_by
                .iter()
                .chain(aggs.iter().filter_map(|a| a.argument()))
                .collect(),
            Plan::Join {
                left_keys,
                right_keys,
                ..
            } => left_keys.iter().chain(right_keys).collect(),
            Plan::TopN { keys, .. } | Plan::Sort { keys, .. } => {
                keys.iter().map(|k| &k.expr).collect()
            }
            Plan::Limit { .. } | Plan::UnionAll { .. } | Plan::Store { .. } => vec![],
        }
    }

    /// Replace every [`Expr::Param`] in the subtree with the literal bound
    /// to its name, producing a concrete executable plan. Errors if any
    /// placeholder has no binding.
    pub fn substitute_params(&self, params: &rdb_expr::Params) -> Result<Plan, PlanError> {
        let new_children: Vec<Plan> = self
            .children()
            .iter()
            .map(|c| c.substitute_params(params))
            .collect::<Result<_, _>>()?;
        let sub = |e: &Expr| e.substitute_params(params).map_err(PlanError::from);
        Ok(match self {
            Plan::Scan { .. } | Plan::Cached { .. } => self.clone(),
            Plan::FnScan { name, args, schema } => Plan::FnScan {
                name: name.clone(),
                args: args.iter().map(sub).collect::<Result<_, _>>()?,
                schema: schema.clone(),
            },
            Plan::Select { predicate, .. } => Plan::Select {
                predicate: sub(predicate)?,
                child: Box::new(new_children.into_iter().next().unwrap()),
            },
            Plan::Project { exprs, names, .. } => Plan::Project {
                exprs: exprs.iter().map(sub).collect::<Result<_, _>>()?,
                names: names.clone(),
                child: Box::new(new_children.into_iter().next().unwrap()),
            },
            Plan::Aggregate {
                group_by,
                group_names,
                aggs,
                agg_names,
                ..
            } => {
                let mut err = None;
                let aggs_sub: Vec<AggFunc> = aggs
                    .iter()
                    .map(|a| {
                        a.map_argument(&mut |e| match e.substitute_params(params) {
                            Ok(s) => s,
                            Err(msg) => {
                                err.get_or_insert(msg);
                                e.clone()
                            }
                        })
                    })
                    .collect();
                if let Some(msg) = err {
                    return Err(PlanError::from(msg));
                }
                Plan::Aggregate {
                    group_by: group_by.iter().map(sub).collect::<Result<_, _>>()?,
                    group_names: group_names.clone(),
                    aggs: aggs_sub,
                    agg_names: agg_names.clone(),
                    child: Box::new(new_children.into_iter().next().unwrap()),
                }
            }
            Plan::Join {
                kind,
                left_keys,
                right_keys,
                ..
            } => {
                let mut it = new_children.into_iter();
                Plan::Join {
                    left: Box::new(it.next().unwrap()),
                    right: Box::new(it.next().unwrap()),
                    kind: *kind,
                    left_keys: left_keys.iter().map(sub).collect::<Result<_, _>>()?,
                    right_keys: right_keys.iter().map(sub).collect::<Result<_, _>>()?,
                }
            }
            Plan::TopN { keys, n, .. } => Plan::TopN {
                keys: sub_keys(keys, params)?,
                n: *n,
                child: Box::new(new_children.into_iter().next().unwrap()),
            },
            Plan::Sort { keys, .. } => Plan::Sort {
                keys: sub_keys(keys, params)?,
                child: Box::new(new_children.into_iter().next().unwrap()),
            },
            Plan::Limit { .. } | Plan::UnionAll { .. } | Plan::Store { .. } => {
                self.with_children(new_children)
            }
        })
    }
}

fn sub_keys(
    keys: &[SortKeyExpr],
    params: &rdb_expr::Params,
) -> Result<Vec<SortKeyExpr>, PlanError> {
    keys.iter()
        .map(|k| {
            Ok(SortKeyExpr {
                expr: k.expr.substitute_params(params).map_err(PlanError::from)?,
                order: k.order,
            })
        })
        .collect()
}

fn keys_label(keys: &[SortKeyExpr]) -> String {
    let parts: Vec<String> = keys
        .iter()
        .map(|k| {
            format!(
                "{}{}",
                k.expr,
                match k.order {
                    SortOrder::Asc => "",
                    SortOrder::Desc => " desc",
                }
            )
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

fn bind_keys(keys: &[SortKeyExpr], schema: &Schema) -> Result<Vec<SortKeyExpr>, PlanError> {
    keys.iter()
        .map(|k| {
            Ok(SortKeyExpr {
                expr: k.expr.bind(schema).map_err(PlanError::from)?,
                order: k.order,
            })
        })
        .collect()
}

fn input_types(schema: &Schema) -> Vec<DataType> {
    schema.fields().iter().map(|f| f.dtype).collect()
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(plan: &Plan, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
            writeln!(f, "{:indent$}{}", "", plan.label(), indent = depth * 2)?;
            for c in plan.children() {
                go(c, f, depth + 1)?;
            }
            Ok(())
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::scan;
    use rdb_storage::TableBuilder;
    use rdb_vector::Value;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs([
            ("l_qty", DataType::Int),
            ("l_price", DataType::Float),
            ("l_date", DataType::Date),
        ]);
        let mut b = TableBuilder::new("lineitem", schema, 1);
        b.push_row(vec![Value::Int(1), Value::Float(10.0), Value::Date(0)]);
        cat.register(b.finish()).expect("register table");
        let schema = Schema::from_pairs([("o_id", DataType::Int), ("o_flag", DataType::Str)]);
        let mut b = TableBuilder::new("orders", schema, 1);
        b.push_row(vec![Value::Int(1), Value::str("F")]);
        cat.register(b.finish()).expect("register table");
        cat
    }

    #[test]
    fn scan_schema_projects() {
        let cat = catalog();
        let p = scan("lineitem", &["l_price", "l_qty"]);
        let s = p.schema(&cat).unwrap();
        assert_eq!(s.names(), vec!["l_price", "l_qty"]);
        assert!(scan("nope", &["x"]).schema(&cat).is_err());
    }

    #[test]
    fn bind_produces_positional_plan() {
        let cat = catalog();
        let p = scan("lineitem", &["l_qty", "l_price"])
            .select(Expr::name("l_qty").gt(Expr::lit(3)))
            .project(vec![(Expr::name("l_price").mul(Expr::lit(2.0)), "double")]);
        assert!(p.has_named());
        let bound = p.bind(&cat).unwrap();
        assert!(!bound.has_named());
        let s = bound.schema(&cat).unwrap();
        assert_eq!(s.names(), vec!["double"]);
        assert_eq!(s.field(0).dtype, DataType::Float);
    }

    #[test]
    fn bind_reports_unknown_names() {
        let cat = catalog();
        let p = scan("lineitem", &["l_qty"]).select(Expr::name("bogus").gt(Expr::lit(3)));
        let err = p.bind(&cat).unwrap_err();
        assert!(err.to_string().contains("bogus"), "{err}");
    }

    #[test]
    fn aggregate_schema() {
        let cat = catalog();
        let p = scan("lineitem", &["l_qty", "l_price", "l_date"]).aggregate(
            vec![(Expr::name("l_date").year(), "y")],
            vec![
                (AggFunc::Sum(Expr::name("l_qty")), "sq"),
                (AggFunc::Avg(Expr::name("l_price")), "ap"),
                (AggFunc::CountStar, "n"),
            ],
        );
        let s = p.schema(&cat).unwrap();
        assert_eq!(s.names(), vec!["y", "sq", "ap", "n"]);
        assert_eq!(s.field(0).dtype, DataType::Int);
        assert_eq!(s.field(1).dtype, DataType::Int);
        assert_eq!(s.field(2).dtype, DataType::Float);
        let bound = p.bind(&cat).unwrap();
        assert!(!bound.has_named());
    }

    #[test]
    fn join_schema_by_kind() {
        let cat = catalog();
        let l = scan("lineitem", &["l_qty"]);
        let r = scan("orders", &["o_id", "o_flag"]);
        let inner = l.clone().inner_join(
            r.clone(),
            vec![Expr::name("l_qty")],
            vec![Expr::name("o_id")],
        );
        assert_eq!(
            inner.schema(&cat).unwrap().names(),
            vec!["l_qty", "o_id", "o_flag"]
        );
        let semi = l.clone().join(
            r.clone(),
            JoinKind::Semi,
            vec![Expr::name("l_qty")],
            vec![Expr::name("o_id")],
        );
        assert_eq!(semi.schema(&cat).unwrap().names(), vec!["l_qty"]);
        let bound = inner.bind(&cat).unwrap();
        match &bound {
            Plan::Join {
                left_keys,
                right_keys,
                ..
            } => {
                assert_eq!(left_keys[0], Expr::col(0));
                assert_eq!(right_keys[0], Expr::col(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn union_schema_checked() {
        let cat = catalog();
        let a = scan("lineitem", &["l_qty"]);
        let b = scan("orders", &["o_id"]);
        let u = Plan::UnionAll {
            children: vec![a.clone(), b],
        };
        assert!(u.schema(&cat).is_ok());
        let bad = Plan::UnionAll {
            children: vec![a, scan("orders", &["o_flag"])],
        };
        assert!(bad.schema(&cat).is_err());
    }

    #[test]
    fn with_children_rebuilds() {
        let cat = catalog();
        let p = scan("lineitem", &["l_qty"]).select(Expr::name("l_qty").gt(Expr::lit(0)));
        let replacement = scan("lineitem", &["l_qty"]).limit(1);
        let rebuilt = p.with_children(vec![replacement.clone()]);
        match &rebuilt {
            Plan::Select { child, .. } => assert_eq!(child.as_ref(), &replacement),
            other => panic!("unexpected {other:?}"),
        }
        assert!(rebuilt.schema(&cat).is_ok());
    }

    #[test]
    fn node_count_and_labels() {
        let p = scan("lineitem", &["l_qty"])
            .select(Expr::name("l_qty").gt(Expr::lit(0)))
            .limit(5);
        assert_eq!(p.node_count(), 3);
        assert!(p.label().starts_with("limit"));
        let rendered = p.to_string();
        assert!(rendered.contains("scan lineitem"));
        assert!(rendered.contains("select"));
    }

    #[test]
    fn single_join_rejects_keys() {
        let cat = catalog();
        let p = scan("lineitem", &["l_qty"]).join(
            scan("orders", &["o_id"]),
            JoinKind::Single,
            vec![Expr::name("l_qty")],
            vec![Expr::name("o_id")],
        );
        assert!(p.bind(&cat).is_err());
    }

    #[test]
    fn store_and_cached_are_transparent() {
        let cat = catalog();
        let p = scan("lineitem", &["l_qty"]).store(7, StoreMode::Materialize);
        assert_eq!(p.schema(&cat).unwrap().names(), vec!["l_qty"]);
        let c = Plan::Cached {
            tag: 7,
            schema: Schema::from_pairs([("x", DataType::Int)]),
        };
        assert_eq!(c.schema(&cat).unwrap().names(), vec!["x"]);
    }

    #[test]
    fn has_named_sees_fn_scan_args() {
        let p = crate::builder::fn_scan_exprs(
            "f",
            vec![Expr::name("col")],
            Schema::from_pairs([("x", DataType::Int)]),
        );
        assert!(p.has_named(), "named refs in fn-scan args must be visible");
        let ok = crate::builder::fn_scan_exprs(
            "f",
            vec![Expr::param("n")],
            Schema::from_pairs([("x", DataType::Int)]),
        );
        assert!(!ok.has_named());
        assert!(ok.has_params());
    }

    #[test]
    fn substitute_params_fills_every_slot() {
        let p = scan("lineitem", &["l_qty", "l_price"])
            .select(
                Expr::name("l_qty")
                    .gt(Expr::param("qty"))
                    .and(Expr::name("l_price").lt(Expr::param("price"))),
            )
            .bind(&catalog())
            .unwrap();
        assert!(p.has_params());
        assert_eq!(p.param_names(), vec!["qty", "price"]);
        let params = rdb_expr::Params::new().set("qty", 1i64).set("price", 9.0);
        let concrete = p.substitute_params(&params).unwrap();
        assert!(!concrete.has_params());
        // Missing binding errors and names the slot.
        let partial = rdb_expr::Params::new().set("qty", 1i64);
        let err = p.substitute_params(&partial).unwrap_err();
        assert!(err.to_string().contains("price"), "{err}");
    }
}
