//! The operator trait and execution helpers.

use std::time::Instant;

use rdb_vector::Batch;

use crate::metrics::OpMetrics;

/// A pull-based, vector-at-a-time physical operator.
///
/// `next_batch` returns `None` when exhausted. `progress` is the paper's
/// *progress meter* (§III-D): scans and blocking operators report their own
/// completion fraction; pipelining operators report the progress of their
/// closest scan-or-blocking left-deep descendant.
pub trait Operator: Send {
    /// Produce the next batch, or `None` at end of stream.
    fn next_batch(&mut self) -> Option<Batch>;

    /// Completion fraction in `[0, 1]`.
    fn progress(&self) -> f64;
}

/// Measure one `next_batch` call inclusively into `metrics`.
///
/// Every operator's `next_batch` body should be wrapped by this (the
/// builder-constructed operators all do), so `metrics.time_ns` is the
/// inclusive subtree cost.
pub fn timed_next(metrics: &OpMetrics, f: impl FnOnce() -> Option<Batch>) -> Option<Batch> {
    let start = Instant::now();
    let out = f();
    metrics.add_time(start.elapsed().as_nanos() as u64);
    metrics.add_call();
    if let Some(b) = &out {
        metrics.add_rows(b.rows() as u64);
        metrics.add_bytes(b.size_bytes() as u64);
    }
    out
}

/// Drain an operator into a vector of batches.
pub fn collect_all(op: &mut dyn Operator) -> Vec<Batch> {
    let mut out = Vec::new();
    while let Some(b) = op.next_batch() {
        out.push(b);
    }
    out
}

/// Drain an operator and concatenate into a single batch (empty batch if no
/// rows were produced and the width is unknown).
pub fn run_to_batch(op: &mut dyn Operator) -> Batch {
    let batches = collect_all(op);
    if batches.is_empty() {
        Batch::empty()
    } else {
        Batch::concat(&batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_vector::Column;

    struct Fixed {
        batches: Vec<Batch>,
    }

    impl Operator for Fixed {
        fn next_batch(&mut self) -> Option<Batch> {
            if self.batches.is_empty() {
                None
            } else {
                Some(self.batches.remove(0))
            }
        }
        fn progress(&self) -> f64 {
            1.0
        }
    }

    #[test]
    fn collect_and_concat() {
        let b1 = Batch::new(vec![Column::from_ints(vec![1, 2])]);
        let b2 = Batch::new(vec![Column::from_ints(vec![3])]);
        let mut op = Fixed {
            batches: vec![b1, b2],
        };
        let all = run_to_batch(&mut op);
        assert_eq!(all.column(0).as_ints(), &[1, 2, 3]);
        let mut empty = Fixed { batches: vec![] };
        assert!(run_to_batch(&mut empty).is_empty());
    }

    #[test]
    fn timed_next_counts() {
        let m = OpMetrics::default();
        let out = timed_next(&m, || {
            Some(Batch::new(vec![Column::from_ints(vec![1, 2, 3])]))
        });
        assert_eq!(out.unwrap().rows(), 3);
        assert_eq!(m.rows_out(), 3);
        assert_eq!(m.calls.load(std::sync::atomic::Ordering::Relaxed), 1);
    }
}
