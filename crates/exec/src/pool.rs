//! A small shared worker pool for intra-query parallelism.
//!
//! Morsel-driven pipelines (see [`crate::parallel`]) submit one job per
//! worker; each job loops over morsels until the shared dispenser runs dry,
//! so correctness never depends on how many pool threads actually pick the
//! jobs up — a saturated pool just runs them with less overlap.
//!
//! Two properties matter for the engine:
//!
//! * **No deadlock under nesting.** A job may block on other jobs (a hash
//!   join's shared build side can contain a nested parallel pipeline, and a
//!   pipeline job blocks on its gather channel under backpressure). A job
//!   is queued only when an idle worker can be *reserved* for it — the
//!   idle count and the queue live under one lock, and `queued ≤ idle` is
//!   an invariant — otherwise [`WorkerPool::run`] spawns a fresh overflow
//!   thread. A submitted job therefore never waits behind a blocked one.
//! * **Panic isolation.** A panicking job must not take the pool down with
//!   it: jobs run under `catch_unwind`, and the failure surfaces to the
//!   consumer through its closed result channel (the gather operator
//!   panics on the consumer thread, exactly like a serial operator would).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// A unit of pipeline work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct PoolQueue {
    jobs: VecDeque<Job>,
    /// Workers currently blocked in `available.wait` (maintained under this
    /// same lock, so `run` reads an exact value).
    idle: usize,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// Fixed set of resident threads executing submitted jobs, with overflow
/// spawning when no resident is free. Dropping the pool joins the resident
/// threads.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    size: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size)
            .finish()
    }
}

impl WorkerPool {
    /// Pool with `size` resident worker threads (at least one).
    pub fn new(size: usize) -> Arc<WorkerPool> {
        let size = size.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue::default()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let threads = (0..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rdb-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(WorkerPool {
            shared,
            threads: Mutex::new(threads),
            size,
        })
    }

    /// Number of resident threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `job` on an idle resident thread, or on a fresh overflow thread
    /// when none can be reserved (see module docs: a submitted job must
    /// never queue behind a job that may be blocked waiting for it).
    ///
    /// Overflow is deliberate, not an oversight: under heavy query
    /// concurrency most pipeline jobs will spawn rather than queue, which
    /// costs a thread spawn (~tens of µs against ms-scale pipelines) but
    /// buys *cross-query liveness isolation* — queueing a query's jobs
    /// behind another query's would let one client holding an undrained
    /// handle (whose workers sit blocked on gather backpressure) stall
    /// every other query on the pool.
    pub fn run(&self, job: Job) {
        {
            let mut q = self.shared.queue.lock();
            if q.jobs.len() < q.idle {
                q.jobs.push_back(job);
                self.shared.available.notify_one();
                return;
            }
        }
        std::thread::spawn(move || run_quietly(job));
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut q = shared.queue.lock();
    loop {
        if let Some(job) = q.jobs.pop_front() {
            drop(q);
            run_quietly(job);
            q = shared.queue.lock();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        q.idle += 1;
        shared.available.wait(&mut q);
        q.idle -= 1;
    }
}

/// Run a job, swallowing panics: the failure reaches the consumer through
/// the job's dropped channel sender, not by killing the pool thread.
fn run_quietly(job: Job) {
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
}

/// Run `jobs` on `pool`, or on plain spawned threads when the caller has no
/// pool (a per-session DOP override on an engine built without one).
pub fn run_jobs(pool: Option<&Arc<WorkerPool>>, jobs: Vec<Job>) {
    match pool {
        Some(pool) => {
            for job in jobs {
                pool.run(job);
            }
        }
        None => {
            for job in jobs {
                std::thread::spawn(move || run_quietly(job));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;

    #[test]
    fn jobs_run_and_pool_drains_on_drop() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..20 {
            let counter = counter.clone();
            let tx = tx.clone();
            pool.run(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            }));
        }
        drop(tx);
        for _ in 0..20 {
            rx.recv().expect("job completed");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 20);
        drop(pool); // must not hang
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        pool.run(Box::new(|| panic!("job failure")));
        pool.run(Box::new(move || {
            let _ = tx.send(42);
        }));
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn saturated_pool_overflows_instead_of_queueing() {
        // One resident thread blocked on a nested dependency; the nested
        // job must still run (on an overflow thread), or this deadlocks.
        let pool = WorkerPool::new(1);
        let (inner_tx, inner_rx) = mpsc::channel();
        let (outer_tx, outer_rx) = mpsc::channel();
        let pool2 = Arc::clone(&pool);
        pool.run(Box::new(move || {
            pool2.run(Box::new(move || {
                let _ = inner_tx.send(());
            }));
            inner_rx.recv().expect("nested job ran");
            let _ = outer_tx.send(());
        }));
        outer_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("nested submission must not deadlock");
    }
}
