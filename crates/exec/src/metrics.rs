//! Per-operator run-time measurements.
//!
//! The recycler's benefit metric is fed by *measured* statistics (paper
//! §III-C: "the base cost ... is measured during the execution of each
//! operator"). Every operator owns an [`OpMetrics`]; the builder assembles
//! them into a [`MetricsNode`] tree parallel to the plan so that, after a
//! query finishes, the recycler can read per-subtree cost, cardinality and
//! size.
//!
//! Two cost views are maintained:
//!
//! * **inclusive wall time** — time spent inside `next_batch` of the
//!   operator (children included), i.e. the cost of computing that subtree's
//!   result: exactly the paper's base cost;
//! * **work units** — a deterministic proxy (rows produced plus
//!   operator-declared extra work such as rows scanned or hashed), summed
//!   over the subtree on demand. Unit tests use work units so benefit and
//!   eviction decisions are exact and repeatable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters owned by one physical operator. All fields are atomics so the
/// concurrent engine can read them while a query runs (e.g. a speculative
/// store extrapolating mid-flight).
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// Inclusive wall-clock nanoseconds spent in this operator's
    /// `next_batch` (children included).
    pub time_ns: AtomicU64,
    /// Rows emitted by this operator.
    pub rows_out: AtomicU64,
    /// Bytes emitted by this operator (the paper estimates result sizes
    /// from cardinality and sampled tuple widths; we measure the batch
    /// footprint directly, which is the same quantity without sampling
    /// error).
    pub bytes_out: AtomicU64,
    /// Operator-declared extra work units (rows scanned, rows hashed, ...).
    pub extra_work: AtomicU64,
    /// Number of `next_batch` calls.
    pub calls: AtomicU64,
}

impl OpMetrics {
    /// Fresh zeroed metrics behind an `Arc`.
    pub fn shared() -> Arc<OpMetrics> {
        Arc::new(OpMetrics::default())
    }

    /// Add inclusive time.
    pub fn add_time(&self, ns: u64) {
        self.time_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Add emitted rows.
    pub fn add_rows(&self, rows: u64) {
        self.rows_out.fetch_add(rows, Ordering::Relaxed);
    }

    /// Add emitted bytes.
    pub fn add_bytes(&self, bytes: u64) {
        self.bytes_out.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Add operator-declared work.
    pub fn add_work(&self, units: u64) {
        self.extra_work.fetch_add(units, Ordering::Relaxed);
    }

    /// Count one call.
    pub fn add_call(&self) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Inclusive time in nanoseconds.
    pub fn time_ns(&self) -> u64 {
        self.time_ns.load(Ordering::Relaxed)
    }

    /// Rows emitted so far.
    pub fn rows_out(&self) -> u64 {
        self.rows_out.load(Ordering::Relaxed)
    }

    /// Bytes emitted so far.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// `next_batch` calls so far. Zero means the operator never ran —
    /// e.g. its subtree was skipped by a warm operator-state hit — which
    /// the recycler uses to keep zeroed metrics out of its cost stats.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Exclusive work units of this operator alone.
    pub fn own_work(&self) -> u64 {
        self.rows_out.load(Ordering::Relaxed) + self.extra_work.load(Ordering::Relaxed)
    }
}

/// Metrics tree mirroring the plan shape.
#[derive(Debug, Clone)]
pub struct MetricsNode {
    /// This operator's counters.
    pub metrics: Arc<OpMetrics>,
    /// Children in plan order.
    pub children: Vec<MetricsNode>,
}

impl MetricsNode {
    /// Leaf node.
    pub fn leaf(metrics: Arc<OpMetrics>) -> Self {
        MetricsNode {
            metrics,
            children: Vec::new(),
        }
    }

    /// Internal node.
    pub fn new(metrics: Arc<OpMetrics>, children: Vec<MetricsNode>) -> Self {
        MetricsNode { metrics, children }
    }

    /// Inclusive wall time of this subtree (already measured inclusively).
    pub fn inclusive_time_ns(&self) -> u64 {
        self.metrics.time_ns()
    }

    /// Inclusive work units: own work plus all descendants'.
    pub fn inclusive_work(&self) -> u64 {
        self.metrics.own_work()
            + self
                .children
                .iter()
                .map(|c| c.inclusive_work())
                .sum::<u64>()
    }

    /// Rows this subtree's root emitted (the result cardinality).
    pub fn cardinality(&self) -> u64 {
        self.metrics.rows_out()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = OpMetrics::shared();
        m.add_time(100);
        m.add_time(50);
        m.add_rows(10);
        m.add_work(5);
        m.add_call();
        assert_eq!(m.time_ns(), 150);
        assert_eq!(m.rows_out(), 10);
        assert_eq!(m.own_work(), 15);
    }

    #[test]
    fn inclusive_work_sums_subtree() {
        let leaf1 = OpMetrics::shared();
        leaf1.add_rows(100);
        let leaf2 = OpMetrics::shared();
        leaf2.add_work(40);
        let root = OpMetrics::shared();
        root.add_rows(7);
        let tree = MetricsNode::new(
            root,
            vec![MetricsNode::leaf(leaf1), MetricsNode::leaf(leaf2)],
        );
        assert_eq!(tree.inclusive_work(), 147);
        assert_eq!(tree.cardinality(), 7);
    }

    #[test]
    fn inclusive_time_is_roots_own_measurement() {
        let child = OpMetrics::shared();
        child.add_time(70);
        let root = OpMetrics::shared();
        root.add_time(100); // measured inclusively already
        let tree = MetricsNode::new(root, vec![MetricsNode::leaf(child)]);
        assert_eq!(tree.inclusive_time_ns(), 100);
    }
}
