//! Structured execution failure reporting for parallel pipelines.
//!
//! Serial operators fail by panicking on the query's own thread, which the
//! session layer can catch and attribute. Parallel pipeline workers run on
//! pool threads under `catch_unwind` ([`crate::pool`]); before this module
//! existed, a dead worker surfaced as a *consumer-side panic* ("worker
//! failed before morsel N") with the original cause swallowed. Now every
//! worker records its failure into the query's shared [`FailSlot`] before
//! its channel sender drops, and the consuming operator ends the stream
//! cleanly instead of panicking — the error then travels through
//! [`crate::stream::ExecStream::error`] to the session layer, which aborts
//! recycler bookkeeping (a truncated stream must never publish) and reports
//! the cause.

use std::sync::Arc;

use parking_lot::Mutex;

/// An execution failure: what went wrong, carried from the failing worker
/// thread to the query's consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    message: String,
}

impl ExecError {
    /// Build from a message.
    pub fn msg(message: impl Into<String>) -> ExecError {
        ExecError {
            message: message.into(),
        }
    }

    /// The failure description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ExecError {}

/// Best-effort extraction of a panic payload's message (the two shapes
/// `panic!` actually produces), for wrapping worker panics into
/// [`ExecError`]s.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "unknown panic"
    }
}

/// One-shot, first-wins error slot shared by a query's pipeline workers
/// and its consuming operators. Workers `set` on failure; the consumer
/// (and the session layer above it) `get`s after the stream ends short.
#[derive(Debug, Default)]
pub struct FailSlot {
    slot: Mutex<Option<ExecError>>,
}

impl FailSlot {
    /// Fresh empty slot behind an `Arc`.
    pub fn shared() -> Arc<FailSlot> {
        Arc::new(FailSlot::default())
    }

    /// Record a failure. The first recorded error wins: later failures are
    /// usually knock-on effects of the first.
    pub fn set(&self, err: ExecError) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    /// The recorded failure, if any.
    pub fn get(&self) -> Option<ExecError> {
        self.slot.lock().clone()
    }

    /// Whether a failure has been recorded.
    pub fn is_set(&self) -> bool {
        self.slot.lock().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_error_wins() {
        let slot = FailSlot::shared();
        assert!(!slot.is_set());
        assert!(slot.get().is_none());
        slot.set(ExecError::msg("first"));
        slot.set(ExecError::msg("second"));
        assert!(slot.is_set());
        assert_eq!(slot.get().unwrap().message(), "first");
    }

    #[test]
    fn panic_payloads_unwrap() {
        let p = std::panic::catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "static str");
        let p = std::panic::catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted 7");
    }
}
