//! Leaf operators: table scan and table-function scan.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rdb_storage::Table;
use rdb_vector::{Batch, Value, BATCH_CAPACITY};

use crate::context::TableFunction;
use crate::metrics::OpMetrics;
use crate::op::{timed_next, Operator};

/// Sequential scan over an in-memory table with column projection. Each
/// batch is an O(1) zero-copy slice of the table's columns.
pub struct ScanExec {
    table: Arc<Table>,
    projection: Vec<usize>,
    offset: usize,
    metrics: Arc<OpMetrics>,
    cancel: Option<Arc<AtomicBool>>,
}

impl ScanExec {
    /// Scan `table`, emitting the columns at `projection` positions.
    pub fn new(table: Arc<Table>, projection: Vec<usize>, metrics: Arc<OpMetrics>) -> Self {
        ScanExec {
            table,
            projection,
            offset: 0,
            metrics,
            cancel: None,
        }
    }

    /// Observe a cancellation flag: a set flag ends the scan at the next
    /// batch boundary, which bounds cancel latency even when every batch
    /// feeds a long operator chain above. The flag is only loaded, never
    /// cleared (the connection layer owns the clear).
    pub fn with_cancel(mut self, cancel: Option<Arc<AtomicBool>>) -> Self {
        self.cancel = cancel;
        self
    }
}

impl Operator for ScanExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            if self.offset >= self.table.rows() {
                return None;
            }
            if self
                .cancel
                .as_ref()
                .is_some_and(|c| c.load(Ordering::Acquire))
            {
                return None; // cancelled: end the stream early
            }
            let len = BATCH_CAPACITY.min(self.table.rows() - self.offset);
            let batch = self.table.scan_batch(&self.projection, self.offset, len);
            self.offset += len;
            Some(batch)
        })
    }

    fn progress(&self) -> f64 {
        if self.table.rows() == 0 {
            1.0
        } else {
            self.offset as f64 / self.table.rows() as f64
        }
    }
}

/// Table-function scan: computes the function's full result on first pull
/// (functions are black boxes with no incremental interface), then streams
/// it out in batches.
pub struct FnScanExec {
    function: Arc<dyn TableFunction>,
    args: Vec<Value>,
    produced: Option<Vec<Batch>>,
    next: usize,
    metrics: Arc<OpMetrics>,
}

impl FnScanExec {
    /// Scan `function(args)`.
    pub fn new(
        function: Arc<dyn TableFunction>,
        args: Vec<Value>,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        FnScanExec {
            function,
            args,
            produced: None,
            next: 0,
            metrics,
        }
    }
}

impl Operator for FnScanExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            if self.produced.is_none() {
                let mut work = 0u64;
                let batches = self.function.execute(&self.args, &mut work);
                self.metrics.add_work(work);
                self.produced = Some(batches);
            }
            let batches = self.produced.as_mut().unwrap();
            if self.next < batches.len() {
                let b = batches[self.next].clone();
                self.next += 1;
                Some(b)
            } else {
                None
            }
        })
    }

    fn progress(&self) -> f64 {
        match &self.produced {
            None => 0.0,
            Some(batches) => {
                if batches.is_empty() {
                    1.0
                } else {
                    self.next as f64 / batches.len() as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::run_to_batch;
    use rdb_storage::TableBuilder;
    use rdb_vector::{Column, DataType, Schema};

    fn table(rows: usize) -> Arc<Table> {
        let schema = Schema::from_pairs([("a", DataType::Int), ("b", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema, rows);
        for i in 0..rows {
            b.push_row(vec![Value::Int(i as i64), Value::Int((i * 2) as i64)]);
        }
        b.finish()
    }

    #[test]
    fn scan_projects_and_batches() {
        let t = table(2500);
        let m = OpMetrics::shared();
        let mut scan = ScanExec::new(t, vec![1], m.clone());
        assert_eq!(scan.progress(), 0.0);
        let out = run_to_batch(&mut scan);
        assert_eq!(out.rows(), 2500);
        assert_eq!(out.width(), 1);
        assert_eq!(out.column(0).as_ints()[2], 4);
        assert_eq!(scan.progress(), 1.0);
        assert_eq!(m.rows_out(), 2500);
        assert!(m.time_ns() > 0);
    }

    struct Doubler;
    impl TableFunction for Doubler {
        fn schema(&self, _args: &[Value]) -> Schema {
            Schema::from_pairs([("x", DataType::Int)])
        }
        fn execute(&self, args: &[Value], work: &mut u64) -> Vec<Batch> {
            let n = args[0].as_int().unwrap();
            *work += 1000; // pretend the function scanned 1000 rows
            vec![Batch::new(vec![Column::from_ints(vec![n * 2])])]
        }
    }

    #[test]
    fn fn_scan_executes_once_and_reports_work() {
        let m = OpMetrics::shared();
        let mut f = FnScanExec::new(Arc::new(Doubler), vec![Value::Int(21)], m.clone());
        assert_eq!(f.progress(), 0.0);
        let out = run_to_batch(&mut f);
        assert_eq!(out.column(0).as_ints(), &[42]);
        assert_eq!(m.own_work(), 1001); // 1000 hidden + 1 row out
        assert_eq!(f.progress(), 1.0);
    }
}
