//! Plan-to-executor builder.
//!
//! With `ExecContext::parallelism > 1` the builder splits scan-rooted
//! pipelines across a worker pool at the natural consumer points — the
//! plan root, store tees, and the blocking breakers (aggregate, top-N,
//! sort) — falling back to the serial operators everywhere else. Serial
//! and parallel builds of the same plan produce byte-identical output
//! streams (see [`crate::parallel`]).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use rdb_expr::Expr;
use rdb_plan::{Plan, PlanError, StoreMode};
use rdb_vector::{DataType, Schema};

use crate::agg::HashAggExec;
use crate::context::ExecContext;
use crate::error::FailSlot;
use crate::filter::{FilterExec, ProjectExec};
use crate::fuse::FusedPipelineExec;
use crate::join::{BuildPublish, BuildSide, HashJoinExec, SharedBuild};
use crate::metrics::{MetricsNode, OpMetrics};
use crate::op::Operator;
use crate::parallel::{build_source, BuildChild, GatherExec, ParallelAggExec, ParallelTopNExec};
use crate::scan::{FnScanExec, ScanExec};
use crate::sort::{LimitExec, SortExec, TopNExec, UnionAllExec};
use crate::store::{
    ArtifactKind, CachedExec, MaterializedResult, OperatorState, StateCost, StateReplayExec,
    StateTee, StoreExec, TeePublish,
};

/// A built executor: the root operator, the per-node metrics tree (parallel
/// to the plan), and the output schema.
pub struct ExecTree {
    /// Root operator; pull until `None`.
    pub root: Box<dyn Operator>,
    /// Metrics mirroring the plan shape (for recycler annotation).
    pub metrics: MetricsNode,
    /// Output schema.
    pub schema: Schema,
    /// Failure slot shared with the execution's parallel workers; consult
    /// after the stream ends to distinguish completion from worker death.
    pub fail: Arc<FailSlot>,
}

/// Build a physical operator tree from a *bound* plan.
pub fn build(plan: &Plan, ctx: &ExecContext) -> Result<ExecTree, PlanError> {
    if plan.has_named() {
        return Err(PlanError::msg(
            "plan contains unresolved column names; call bind() first",
        ));
    }
    let schema = plan.schema(&ctx.catalog)?;
    // The stream edge is itself a pipeline consumer: a scan-rooted chain
    // with no breaker above it parallelizes here.
    let (root, metrics) = build_gathered(plan, ctx)?;
    Ok(ExecTree {
        root,
        metrics,
        schema,
        fail: ctx.fail.clone(),
    })
}

fn types_of(schema: &Schema) -> Vec<DataType> {
    schema.fields().iter().map(|f| f.dtype).collect()
}

/// Deterministic discriminator for a hash-build artifact: two joins may
/// share a build subplan but index it on different key expressions, so the
/// keys are part of the artifact identity.
fn state_variant(keys: &[Expr]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{keys:?}").hash(&mut h);
    h.finish()
}

/// Construct the shared build side for a hash join, going through the
/// recycler's operator-state cache when one is attached: a warm build is
/// adopted as-is (the right subtree never executes) and a cold build is
/// offered back to the cache once the first prober materializes it. Used
/// by both the serial join arm and parallel probe stages, so the same
/// artifact serves any DOP.
pub(crate) fn join_build(
    right: &Plan,
    right_keys: &[Expr],
    right_types: &[DataType],
    m: &Arc<OpMetrics>,
    ctx: &ExecContext,
    build_child: &mut BuildChild<'_>,
) -> Result<(Arc<SharedBuild>, MetricsNode), PlanError> {
    let variant = state_variant(right_keys);
    let recycling = ctx.state_recycling(right);
    if let Some((store, epochs)) = &recycling {
        if let Some(OperatorState::HashBuild(b)) =
            store.fetch_state(right, ArtifactKind::HashBuild, variant, epochs)
        {
            // Warm build: the subtree's metrics placeholder stays
            // zero-call, so the recycler's annotation pass leaves the
            // cold-run cost statistics untouched.
            return Ok((
                SharedBuild::ready(b),
                MetricsNode::leaf(OpMetrics::shared()),
            ));
        }
    }
    let (right_op, right_metrics) = build_child(right)?;
    let publish = recycling.map(|(store, epochs)| {
        let plan = right.clone();
        let cancel = ctx.cancel.clone();
        let rm = right_metrics.clone();
        Box::new(move |built: &Arc<BuildSide>, cost: StateCost| {
            if cancel.as_ref().is_some_and(|c| c.load(Ordering::Acquire)) {
                return; // cancelled mid-build: the index may be truncated
            }
            // Reconstruction work = draining the build subtree plus
            // indexing its rows (the deterministic analog of cost_ns).
            let cost = StateCost {
                cost_work: rm.inclusive_work() as f64 + cost.rows as f64,
                ..cost
            };
            store.publish_state(
                &plan,
                variant,
                OperatorState::HashBuild(built.clone()),
                cost,
                &epochs,
            );
        }) as BuildPublish
    });
    Ok((
        SharedBuild::new(
            right_op,
            right_keys.to_vec(),
            right_types.to_vec(),
            m.clone(),
            publish,
        ),
        right_metrics,
    ))
}

/// Build `plan` as an order-preserving parallel pipeline if it is a
/// suitable scan-rooted chain, else serially. Used at every point where a
/// consumer accepts the canonical batch sequence: the plan root, store
/// tees, and sort inputs.
fn build_gathered(
    plan: &Plan,
    ctx: &ExecContext,
) -> Result<(Box<dyn Operator>, MetricsNode), PlanError> {
    if let Some(source) = build_source(plan, ctx, ctx.parallelism, &mut |p| build_node(p, ctx))? {
        let metrics = source.metrics.clone();
        return Ok((Box::new(GatherExec::new(source)), metrics));
    }
    build_node(plan, ctx)
}

fn build_node(
    plan: &Plan,
    ctx: &ExecContext,
) -> Result<(Box<dyn Operator>, MetricsNode), PlanError> {
    // Fused serial execution of scan-rooted filter/project/probe chains:
    // one push-style loop per morsel instead of one pull hop per operator
    // per batch (see `crate::fuse`). Same batches, same metrics shape.
    if ctx.fusion {
        if let Some(fused) =
            crate::fuse::build_fused_pipeline(plan, ctx, false, &mut |p| build_node(p, ctx))?
        {
            let metrics = fused.metrics.clone();
            return Ok((
                Box::new(FusedPipelineExec::new(fused.dispenser, fused.chain)),
                metrics,
            ));
        }
    }
    let m = OpMetrics::shared();
    Ok(match plan {
        Plan::Scan { table, cols } => {
            let t = ctx
                .table(table)
                .ok_or_else(|| PlanError::unknown_table(table))?;
            let projection: Vec<usize> = cols
                .iter()
                .map(|c| {
                    t.schema()
                        .index_of(c)
                        .ok_or_else(|| PlanError::unknown_column(c, format!("table '{table}'")))
                })
                .collect::<Result<_, _>>()?;
            (
                Box::new(ScanExec::new(t, projection, m.clone()).with_cancel(ctx.cancel.clone())),
                MetricsNode::leaf(m),
            )
        }
        Plan::FnScan { name, args, .. } => {
            let f = ctx
                .functions
                .get(name)
                .ok_or_else(|| PlanError::unknown_function(name))?
                .clone();
            // Arguments must be constant by execution time; prepared
            // templates substitute their parameters before building.
            let values = args
                .iter()
                .map(|a| match a {
                    rdb_expr::Expr::Lit(v) => Ok(v.clone()),
                    other => Err(PlanError::msg(format!(
                        "table function '{name}' argument '{other}' is not a literal; \
                         substitute parameters before execution"
                    ))),
                })
                .collect::<Result<Vec<_>, _>>()?;
            (
                Box::new(FnScanExec::new(f, values, m.clone())),
                MetricsNode::leaf(m),
            )
        }
        Plan::Select { child, predicate } => {
            let (c, cm) = build_node(child, ctx)?;
            (
                Box::new(FilterExec::new(c, predicate.clone(), m.clone())),
                MetricsNode::new(m, vec![cm]),
            )
        }
        Plan::Project { child, exprs, .. } => {
            let (c, cm) = build_node(child, ctx)?;
            (
                Box::new(ProjectExec::new(c, exprs.clone(), m.clone())),
                MetricsNode::new(m, vec![cm]),
            )
        }
        Plan::Aggregate {
            child,
            group_by,
            aggs,
            ..
        } => {
            let input_types = types_of(&child.schema(&ctx.catalog)?);
            let output_types = types_of(&plan.schema(&ctx.catalog)?);
            let recycling = ctx.state_recycling(plan);
            if let Some((store, epochs)) = &recycling {
                if let Some(OperatorState::AggTable(r)) =
                    store.fetch_state(plan, ArtifactKind::AggTable, 0, epochs)
                {
                    // Warm aggregation table: replay its sorted group rows
                    // without executing the input subtree. The replay is
                    // metrics-detached — this node and the skipped subtree
                    // stay zero-call, so cold-run cost stats survive the
                    // recycler's annotation pass.
                    return Ok((
                        Box::new(StateReplayExec::new(&r)),
                        MetricsNode::new(m, vec![MetricsNode::leaf(OpMetrics::shared())]),
                    ));
                }
            }
            // Partitioned parallel aggregation — but only when every
            // accumulator merges exactly (see `exact_accumulation`):
            // per-worker partial tables merged (and key-sorted) at this
            // breaker are then bit-identical to serial execution. Float
            // sums/averages instead keep the serial fold order over a
            // parallel-gathered input (the scan/filter/probe work below
            // still parallelizes), because partitioned float addition
            // would drift in the low-order bits and break byte-identical
            // cache replay across DOPs.
            let mut built: Option<(Box<dyn Operator>, MetricsNode)> = None;
            if crate::agg::exact_accumulation(aggs, &input_types) {
                if let Some(source) =
                    build_source(child, ctx, ctx.parallelism, &mut |p| build_node(p, ctx))?
                {
                    let cm = source.metrics.clone();
                    built = Some((
                        Box::new(ParallelAggExec::new(
                            source,
                            group_by.clone(),
                            aggs.clone(),
                            input_types.clone(),
                            output_types.clone(),
                            m.clone(),
                        )),
                        MetricsNode::new(m.clone(), vec![cm]),
                    ));
                }
            }
            let (agg_op, node) = match built {
                Some(b) => b,
                None => {
                    let (c, cm) = build_gathered(child, ctx)?;
                    (
                        Box::new(HashAggExec::new(
                            c,
                            group_by.clone(),
                            aggs.clone(),
                            input_types,
                            output_types,
                            m.clone(),
                        )) as Box<dyn Operator>,
                        MetricsNode::new(m.clone(), vec![cm]),
                    )
                }
            };
            if let Some((store, epochs)) = recycling {
                // Tee the aggregate's output (its sorted group rows are a
                // lossless encoding of the table) and offer it to the
                // operator-state cache at end-of-stream.
                let schema = plan.schema(&ctx.catalog)?;
                let plan_key = plan.clone();
                let nm = node.clone();
                let publish = Box::new(move |r: Arc<MaterializedResult>, cost: StateCost| {
                    let cost = StateCost {
                        cost_work: nm.inclusive_work() as f64,
                        ..cost
                    };
                    store.publish_state(&plan_key, 0, OperatorState::AggTable(r), cost, &epochs);
                }) as TeePublish;
                return Ok((
                    Box::new(
                        StateTee::new(agg_op, schema, publish, ctx.cancel.clone())
                            .with_fail(ctx.fail.clone()),
                    ),
                    node,
                ));
            }
            (agg_op, node)
        }
        Plan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
        } => {
            let right_types = types_of(&right.schema(&ctx.catalog)?);
            let (l, lm) = build_node(left, ctx)?;
            if ctx.state_recycling(right).is_some() {
                // Route the build side through the operator-state cache;
                // probing a shared build is identical to owning one.
                let (build, rm) = join_build(right, right_keys, &right_types, &m, ctx, &mut |p| {
                    build_node(p, ctx)
                })?;
                return Ok((
                    Box::new(HashJoinExec::with_shared_build(
                        l,
                        build,
                        *kind,
                        left_keys.clone(),
                        right_types,
                        m.clone(),
                    )),
                    MetricsNode::new(m, vec![lm, rm]),
                ));
            }
            let (r, rm) = build_node(right, ctx)?;
            (
                Box::new(HashJoinExec::new(
                    l,
                    r,
                    *kind,
                    left_keys.clone(),
                    right_keys.clone(),
                    right_types,
                    m.clone(),
                )),
                MetricsNode::new(m, vec![lm, rm]),
            )
        }
        Plan::TopN { child, keys, n } => {
            let output_types = types_of(&child.schema(&ctx.catalog)?);
            // Partitioned parallel top-N: per-worker heap runs merged at
            // this breaker (position tie-breaks keep it deterministic).
            if let Some(source) =
                build_source(child, ctx, ctx.parallelism, &mut |p| build_node(p, ctx))?
            {
                let cm = source.metrics.clone();
                return Ok((
                    Box::new(ParallelTopNExec::new(
                        source,
                        keys.clone(),
                        *n,
                        output_types,
                        m.clone(),
                    )),
                    MetricsNode::new(m, vec![cm]),
                ));
            }
            let (c, cm) = build_node(child, ctx)?;
            (
                Box::new(TopNExec::new(c, keys.clone(), *n, output_types, m.clone())),
                MetricsNode::new(m, vec![cm]),
            )
        }
        Plan::Sort { child, keys } => {
            // Sort is order-insensitive to its input, but the serial sort
            // is stable — feeding it the canonical (gathered) sequence
            // keeps ties byte-identical to serial execution while the
            // scan/filter/probe work below still parallelizes.
            let (c, cm) = build_gathered(child, ctx)?;
            (
                Box::new(SortExec::new(c, keys.clone(), m.clone())),
                MetricsNode::new(m, vec![cm]),
            )
        }
        Plan::Limit { child, n } => {
            let (c, cm) = build_node(child, ctx)?;
            (
                Box::new(LimitExec::new(c, *n, m.clone())),
                MetricsNode::new(m, vec![cm]),
            )
        }
        Plan::UnionAll { children } => {
            let mut ops = Vec::with_capacity(children.len());
            let mut ms = Vec::with_capacity(children.len());
            for c in children {
                let (op, cm) = build_node(c, ctx)?;
                ops.push(op);
                ms.push(cm);
            }
            (
                Box::new(UnionAllExec::new(ops, m.clone())),
                MetricsNode::new(m, ms),
            )
        }
        Plan::Cached { tag, .. } => {
            let store = ctx
                .store
                .clone()
                .ok_or_else(|| PlanError::msg("cached node without a result store"))?;
            (
                Box::new(CachedExec::new(*tag, store, m.clone())),
                MetricsNode::leaf(m),
            )
        }
        Plan::Store { child, tag, mode } => {
            let store = ctx
                .store
                .clone()
                .ok_or_else(|| PlanError::msg("store node without a result store"))?;
            let child_schema = child.schema(&ctx.catalog)?;
            // The tee buffers the canonical batch sequence, so a parallel
            // pipeline below it publishes byte-identically to serial.
            let (c, cm) = build_gathered(child, ctx)?;
            (
                Box::new(
                    StoreExec::new(
                        c,
                        *tag,
                        child_schema,
                        store,
                        *mode == StoreMode::Speculate,
                        m.clone(),
                    )
                    .with_cancel(ctx.cancel.clone())
                    .with_fail(ctx.fail.clone()),
                ),
                MetricsNode::new(m, vec![cm]),
            )
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::run_to_batch;
    use rdb_expr::{AggFunc, Expr};
    use rdb_plan::{scan, SortKeyExpr};
    use rdb_storage::{Catalog, TableBuilder};
    use rdb_vector::Value;
    use std::sync::Arc;

    fn ctx() -> ExecContext {
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs([
            ("k", DataType::Int),
            ("v", DataType::Float),
            ("tag", DataType::Str),
        ]);
        let mut b = TableBuilder::new("t", schema, 100);
        for i in 0..100i64 {
            b.push_row(vec![
                Value::Int(i % 10),
                Value::Float(i as f64),
                Value::str(if i % 2 == 0 { "even" } else { "odd" }),
            ]);
        }
        cat.register(b.finish()).expect("register table");
        ExecContext::new(Arc::new(cat))
    }

    #[test]
    fn full_pipeline_runs() {
        let ctx = ctx();
        let plan = scan("t", &["k", "v", "tag"])
            .select(Expr::name("tag").eq(Expr::lit("even")))
            .aggregate(
                vec![(Expr::name("k"), "k")],
                vec![
                    (AggFunc::Sum(Expr::name("v")), "sv"),
                    (AggFunc::CountStar, "n"),
                ],
            )
            .sort(vec![SortKeyExpr::asc(Expr::name("k"))])
            .bind(&ctx.catalog)
            .unwrap();
        let mut tree = build(&plan, &ctx).unwrap();
        let out = run_to_batch(tree.root.as_mut());
        assert_eq!(out.rows(), 5); // even k: 0,2,4,6,8
        assert_eq!(out.column(0).as_ints(), &[0, 2, 4, 6, 8]);
        // k=0 matches v=0,10,...,90 → all even i with i%10==0: 0,10,...,90 → sum 450
        assert_eq!(out.column(1).as_floats()[0], 450.0);
        assert_eq!(out.column(2).as_ints(), &[10, 10, 10, 10, 10]);
        assert_eq!(tree.schema.names(), vec!["k", "sv", "n"]);
        // Metrics were collected.
        assert!(tree.metrics.inclusive_work() > 0);
        assert_eq!(tree.metrics.cardinality(), 5);
    }

    #[test]
    fn join_and_topn_pipeline() {
        let ctx = ctx();
        let left = scan("t", &["k", "v"]);
        let right = scan("t", &["k", "tag"]).aggregate(
            vec![(Expr::name("k"), "gk")],
            vec![(AggFunc::CountStar, "cnt")],
        );
        let plan = left
            .inner_join(right, vec![Expr::name("k")], vec![Expr::name("gk")])
            .top_n(vec![SortKeyExpr::desc(Expr::name("v"))], 3)
            .bind(&ctx.catalog)
            .unwrap();
        let mut tree = build(&plan, &ctx).unwrap();
        let out = run_to_batch(tree.root.as_mut());
        assert_eq!(out.rows(), 3);
        assert_eq!(out.column(1).as_floats(), &[99.0, 98.0, 97.0]);
    }

    #[test]
    fn unbound_plan_rejected() {
        let ctx = ctx();
        let plan = scan("t", &["k"]).select(Expr::name("k").gt(Expr::lit(1)));
        assert!(build(&plan, &ctx).is_err());
    }

    #[test]
    fn unknown_table_rejected() {
        let ctx = ctx();
        let plan = scan("missing", &["x"]);
        assert!(build(&plan, &ctx).is_err());
    }

    #[test]
    fn store_without_result_store_rejected() {
        let ctx = ctx();
        let plan = scan("t", &["k"])
            .store(1, StoreMode::Materialize)
            .bind(&ctx.catalog)
            .unwrap();
        assert!(build(&plan, &ctx).is_err());
    }
}
