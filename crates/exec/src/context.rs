//! Execution context: catalog, table functions, and the result store hook.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rdb_plan::Plan;
use rdb_storage::{Catalog, CatalogSnapshot, Table};
use rdb_vector::{Batch, Schema, Value};

use crate::error::FailSlot;
use crate::pool::WorkerPool;
use crate::store::ResultStore;

/// A table-valued function (e.g. SkyServer's `fGetNearbyObjEq`): given
/// literal arguments it produces a relation. The executor treats it as an
/// expensive leaf; its identity (name + arguments) is what the recycler
/// matches on.
pub trait TableFunction: Send + Sync {
    /// Output schema for the given arguments.
    fn schema(&self, args: &[Value]) -> Schema;

    /// Compute the full result. `work` receives the number of abstract work
    /// units expended (e.g. rows examined), so deterministic cost accounting
    /// can include the function's hidden effort.
    fn execute(&self, args: &[Value], work: &mut u64) -> Vec<Batch>;

    /// Volatile functions produce a fresh result on every call (server
    /// statistics, clocks); the engine never routes them through the
    /// recycler, so their results are neither cached nor matched.
    fn volatile(&self) -> bool {
        false
    }
}

/// Name → table function registry.
#[derive(Default)]
pub struct FnRegistry {
    fns: HashMap<String, Arc<dyn TableFunction>>,
}

impl FnRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        FnRegistry::default()
    }

    /// Register a function under `name`.
    pub fn register(&mut self, name: impl Into<String>, f: Arc<dyn TableFunction>) {
        self.fns.insert(name.into(), f);
    }

    /// Look up a function.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn TableFunction>> {
        self.fns.get(name)
    }

    /// Whether `name` resolves to a function declared volatile.
    pub fn is_volatile(&self, name: &str) -> bool {
        self.fns.get(name).is_some_and(|f| f.volatile())
    }
}

/// Everything the plan-to-executor builder needs.
#[derive(Clone)]
pub struct ExecContext {
    /// Base tables (schemas, and current versions when no snapshot is
    /// pinned).
    pub catalog: Arc<Catalog>,
    /// Point-in-time table versions this execution reads. When set, every
    /// scan resolves its table here, so the whole query sees one consistent
    /// epoch vector regardless of concurrent DML; without it scans read
    /// each table's current version at build time.
    pub snapshot: Option<Arc<CatalogSnapshot>>,
    /// Table functions.
    pub functions: Arc<FnRegistry>,
    /// Recycler cache hook; `None` runs without recycling (store operators
    /// then pass through and cached reads are an error).
    pub store: Option<Arc<dyn ResultStore>>,
    /// Degree of intra-query parallelism the builder may use (1 = serial;
    /// the serial and parallel plans produce byte-identical results, see
    /// [`crate::parallel`]). Pipelines are only split when the scan is
    /// large enough to yield multiple morsels.
    pub parallelism: usize,
    /// Worker pool parallel pipelines run on; without one they fall back
    /// to plain spawned threads.
    pub pool: Option<Arc<WorkerPool>>,
    /// Cooperative cancellation flag. Operators with long-running phases
    /// (scans, morsel dispensers, build drains) *load* it at batch/morsel
    /// boundaries and end their stream early when set — they never clear
    /// it, so the connection layer's own check-and-clear still observes
    /// the cancel and reports `57014` to the client.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Whether the builder may collapse filter → project → join-probe
    /// chains into fused push-style pipelines (see [`crate::fuse`]).
    /// Fusion changes iteration shape only — observable results and cache
    /// entries are byte-identical either way — so this is a performance
    /// switch, kept as a flag for A/B equivalence testing and benchmarks.
    pub fusion: bool,
    /// Shared failure slot for this execution: parallel pipeline workers
    /// record structured errors here instead of panicking across the
    /// gather channel (see [`crate::error`]). Store tees also consult it
    /// to suppress publishing truncated results.
    pub fail: Arc<FailSlot>,
}

impl ExecContext {
    /// Context over a catalog with no functions and no recycler.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        ExecContext {
            catalog,
            snapshot: None,
            functions: Arc::new(FnRegistry::new()),
            store: None,
            parallelism: 1,
            pool: None,
            cancel: None,
            fusion: true,
            fail: FailSlot::shared(),
        }
    }

    /// Enable or disable pipeline fusion (on by default).
    pub fn with_fusion(mut self, fusion: bool) -> Self {
        self.fusion = fusion;
        self
    }

    /// Set the degree of parallelism (clamped to at least 1).
    pub fn with_parallelism(mut self, dop: usize) -> Self {
        self.parallelism = dop.max(1);
        self
    }

    /// Attach a worker pool for parallel pipelines.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attach a table-function registry.
    pub fn with_functions(mut self, functions: Arc<FnRegistry>) -> Self {
        self.functions = functions;
        self
    }

    /// Attach a result store (the recycler cache).
    pub fn with_store(mut self, store: Arc<dyn ResultStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Pin this execution to a catalog snapshot.
    pub fn with_snapshot(mut self, snapshot: Arc<CatalogSnapshot>) -> Self {
        self.snapshot = Some(snapshot);
        self
    }

    /// Attach a cancellation flag (see the field docs for the contract).
    pub fn with_cancel(mut self, cancel: Option<Arc<AtomicBool>>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Whether the query has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Acquire))
    }

    /// Resolve the table version scans must read: the pinned snapshot's if
    /// one is set, the catalog's current version otherwise.
    pub fn table(&self, name: &str) -> Option<Arc<Table>> {
        match &self.snapshot {
            Some(s) => s.get(name).cloned(),
            None => self.catalog.get(name),
        }
    }

    /// The `(table, epoch)` vector this execution's snapshot pins for the
    /// base tables of `plan` — the validity key for operator-state
    /// artifacts. `None` without a pinned snapshot: state recycling needs
    /// a consistent epoch vector to key and gate artifacts by, so
    /// snapshot-less executions (tests, ad-hoc builds) skip it entirely.
    pub fn state_epochs(&self, plan: &Plan) -> Option<Vec<(String, u64)>> {
        let snap = self.snapshot.as_ref()?;
        Some(
            plan.base_tables()
                .into_iter()
                .map(|t| {
                    let e = snap.epoch_of(&t).unwrap_or(0);
                    (t, e)
                })
                .collect(),
        )
    }

    /// Store + epoch vector when operator-state recycling is on for this
    /// execution (a result store is attached *and* a snapshot is pinned).
    pub fn state_recycling(&self, plan: &Plan) -> Option<StateRecycling> {
        let store = self.store.clone()?;
        let epochs = self.state_epochs(plan)?;
        Some((store, epochs))
    }
}

/// The pair operator-state fetch/publish paths work against: the result
/// store and the `(table, epoch)` vector keying artifact validity.
pub type StateRecycling = (Arc<dyn ResultStore>, Vec<(String, u64)>);

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_vector::{Column, DataType};

    struct Ones;
    impl TableFunction for Ones {
        fn schema(&self, _args: &[Value]) -> Schema {
            Schema::from_pairs([("one", DataType::Int)])
        }
        fn execute(&self, _args: &[Value], work: &mut u64) -> Vec<Batch> {
            *work += 1;
            vec![Batch::new(vec![Column::from_ints(vec![1])])]
        }
    }

    #[test]
    fn registry_roundtrip() {
        let mut reg = FnRegistry::new();
        reg.register("ones", Arc::new(Ones));
        assert!(reg.get("ones").is_some());
        assert!(reg.get("none").is_none());
        let mut work = 0;
        let out = reg.get("ones").unwrap().execute(&[], &mut work);
        assert_eq!(out[0].rows(), 1);
        assert_eq!(work, 1);
    }
}
