//! Fused push-style pipelines: filter → project → join-probe chains
//! collapsed into one loop per morsel.
//!
//! The unfused executor runs a scan-rooted chain as a stack of pull
//! operators; even under morsel-driven parallelism every morsel pays one
//! virtual `next_batch` hop, one selection materialization, and one batch
//! re-wrap *per operator*. A [`FusedChain`] runs the same chain as a
//! single push-style loop over each morsel:
//!
//! * selections are **chain state** — a reusable `Vec<u32>` of surviving
//!   physical row indices, seeded and narrowed in place by the
//!   branch-free kernel ([`rdb_expr::CompiledPredicate`]) with no
//!   per-batch `Vec<bool>` and no literal broadcasts;
//! * probe keys are hashed in bulk ([`rdb_vector::hash_columns`]) into a
//!   reusable buffer, and the probe loop is an array lookup plus a typed
//!   candidate confirmation;
//! * batches are only re-wrapped at the chain edge, not between stages.
//!
//! # Fusion boundary rule
//!
//! Fusion changes the *iteration shape* of a pipeline, never its
//! observable batch sequence. A chain fuses from a base-table scan up
//! through pipelining stages only (`Select`, `Project`, and the probe
//! side of `Join`) and always stops at pipeline breakers (aggregate,
//! sort, top-N, the build side of a join), at `Store`/`StateTee` tees,
//! and at gather points. Those boundaries are where the recycler observes
//! batches — a store tee must publish byte-identical
//! `MaterializedResult`s at any DOP, fused or not — so the fused chain
//! reproduces the serial operator semantics exactly per morsel: the same
//! logical rows in the same order, the same sparse-compaction heuristic
//! ([`crate::filter::COMPACT_FRACTION`]), the same NULL-key and
//! candidate-verification join behavior, and the same per-plan-node
//! rows/work metrics the recycler's cost model consumes.
//!
//! Wall-time metrics are the one approximation: a fused chain cannot
//! time stages individually, so each morsel's fused time is charged to
//! every stage of the span (the span root's inclusive time — what the
//! recycler reads for subtree cost — stays accurate). All counters are
//! accumulated in per-chain [`StageLocal`]s and flushed to the shared
//! atomics every [`FLUSH_EVERY`] morsels and at end-of-stream — per-stage
//! atomic traffic was the dominant fused per-morsel cost before.

use std::sync::Arc;
use std::time::Instant;

use rdb_expr::{eval, CompiledPredicate, Expr};
use rdb_plan::{JoinKind, Plan, PlanError};
use rdb_vector::{hash_columns, morsel_count, Batch, Column, ColumnBuilder, DataType};

use crate::context::ExecContext;
use crate::filter::COMPACT_FRACTION;
use crate::join::{BuildSide, SharedBuild};
use crate::metrics::{MetricsNode, OpMetrics};
use crate::op::Operator;
use crate::parallel::{BuildChild, MorselDispenser};

/// One fused pipeline stage. Mirrors the serial operator it replaces; the
/// recycler-facing metrics contract (rows out, probe work) is identical.
#[derive(Clone)]
pub enum FusedStage {
    /// `Select`: narrow the live selection with a compiled predicate.
    Filter {
        pred: CompiledPredicate,
        metrics: Arc<OpMetrics>,
    },
    /// `Project`: recompute the column set over the physical rows.
    Project {
        exprs: Vec<Expr>,
        metrics: Arc<OpMetrics>,
    },
    /// `Join` probe against a shared (possibly recycled) build side.
    Probe {
        build: Arc<SharedBuild>,
        kind: JoinKind,
        left_keys: Vec<Expr>,
        right_types: Vec<DataType>,
        metrics: Arc<OpMetrics>,
        /// Lazily resolved build side (first morsel through this chain).
        built: Option<Arc<BuildSide>>,
    },
}

impl FusedStage {
    fn metrics(&self) -> &Arc<OpMetrics> {
        match self {
            FusedStage::Filter { metrics, .. }
            | FusedStage::Project { metrics, .. }
            | FusedStage::Probe { metrics, .. } => metrics,
        }
    }
}

/// Per-stage measurement counters accumulated *locally* in the chain and
/// flushed to the shared atomic [`OpMetrics`] in bulk — per-morsel atomic
/// RMWs on every stage are exactly the kind of per-row overhead fusion
/// exists to remove.
#[derive(Clone, Copy, Default)]
struct StageLocal {
    time: u64,
    calls: u64,
    rows: u64,
    bytes: u64,
    work: u64,
}

/// Morsels between metric flushes: keeps the shared counters fresh enough
/// for mid-flight progress estimates while amortizing the atomic traffic.
const FLUSH_EVERY: u32 = 64;

/// A fused operator chain plus its reusable scratch buffers. One instance
/// per worker (clones share the `Arc`ed metrics and build sides but own
/// their scratch), driven morsel-at-a-time via [`FusedChain::push`].
#[derive(Clone)]
pub struct FusedChain {
    stages: Vec<FusedStage>,
    /// Locally accumulated per-stage counters (see [`StageLocal`]).
    locals: Vec<StageLocal>,
    /// Morsels pushed since the last metrics flush.
    since_flush: u32,
    /// Live selection indices (chain state between stages).
    sel_scratch: Vec<u32>,
    /// Second index buffer (semi/anti probe output).
    aux_scratch: Vec<u32>,
    /// Per-row probe-key hashes.
    hash_scratch: Vec<u64>,
}

impl FusedChain {
    /// Chain over `stages`, bottom (nearest the scan) first.
    pub fn new(stages: Vec<FusedStage>) -> FusedChain {
        let locals = vec![StageLocal::default(); stages.len()];
        FusedChain {
            stages,
            locals,
            since_flush: 0,
            sel_scratch: Vec::new(),
            aux_scratch: Vec::new(),
            hash_scratch: Vec::new(),
        }
    }

    /// Number of fused stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Push one morsel through the whole chain. Returns the chain's output
    /// batch, or `None` when the morsel's rows were all filtered out /
    /// unmatched (the serial chain emits nothing for such a morsel either).
    pub fn push(&mut self, morsel: Batch) -> Option<Batch> {
        let start = Instant::now();
        let mut sel_buf = std::mem::take(&mut self.sel_scratch);
        let mut aux = std::mem::take(&mut self.aux_scratch);
        let mut hashes = std::mem::take(&mut self.hash_scratch);
        let out = run_chain(
            &mut self.stages,
            &mut self.locals,
            morsel,
            &mut sel_buf,
            &mut aux,
            &mut hashes,
        );
        let elapsed = start.elapsed().as_nanos() as u64;
        for l in &mut self.locals {
            l.time += elapsed;
        }
        self.sel_scratch = sel_buf;
        self.aux_scratch = aux;
        self.hash_scratch = hashes;
        self.since_flush += 1;
        if self.since_flush >= FLUSH_EVERY {
            self.flush();
        }
        out
    }

    /// Publish the locally accumulated counters into the shared metrics.
    /// Idempotent (locals drain to zero); called periodically, at
    /// end-of-stream by the drivers, and on drop as a safety net for
    /// cancelled / aborted executions.
    pub fn flush(&mut self) {
        self.since_flush = 0;
        for (stage, l) in self.stages.iter().zip(self.locals.iter_mut()) {
            let m = stage.metrics();
            if l.time > 0 {
                m.add_time(l.time);
            }
            if l.calls > 0 {
                m.calls
                    .fetch_add(l.calls, std::sync::atomic::Ordering::Relaxed);
            }
            if l.rows > 0 {
                m.add_rows(l.rows);
            }
            if l.bytes > 0 {
                m.add_bytes(l.bytes);
            }
            if l.work > 0 {
                m.add_work(l.work);
            }
            *l = StageLocal::default();
        }
    }
}

impl Drop for FusedChain {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Logical output bytes for a stage emitting `rows` of `cur` — the same
/// selectivity-scaled estimate [`Batch::size_bytes`] reports for a
/// selected batch, so fused byte metrics match the serial operators'.
/// `span` caches the summed column bytes of `cur` across consecutive
/// stages that leave the columns untouched.
fn out_bytes(cur: &Batch, rows: usize, span: &mut Option<usize>) -> u64 {
    let span =
        *span.get_or_insert_with(|| cur.columns().iter().map(|c| c.size_bytes()).sum::<usize>());
    (span * rows).checked_div(cur.physical_rows()).unwrap_or(0) as u64
}

fn run_chain(
    stages: &mut [FusedStage],
    locals: &mut [StageLocal],
    morsel: Batch,
    sel_buf: &mut Vec<u32>,
    aux: &mut Vec<u32>,
    hashes: &mut Vec<u64>,
) -> Option<Batch> {
    // `cur` never carries a selection inside the chain: the live selection
    // is `sel_buf` when `dense` is false, all physical rows otherwise.
    let mut cur = morsel;
    let mut dense = true;
    let mut killed_at: Option<usize> = None;
    // Summed column bytes of `cur`, invalidated whenever `cur`'s columns
    // change (compaction, projection, probe output).
    let mut span: Option<usize> = None;
    for i in 0..stages.len() {
        let local = &mut locals[i];
        match &mut stages[i] {
            FusedStage::Filter { pred, .. } => {
                if dense {
                    pred.select_physical_into(&cur, sel_buf);
                    dense = sel_buf.len() == cur.physical_rows();
                } else {
                    pred.refine(&cur, sel_buf);
                }
                if !dense {
                    if sel_buf.is_empty() {
                        local.calls += 1;
                        killed_at = Some(i);
                        break;
                    }
                    // The serial filter's sparse-compaction heuristic:
                    // below 1-in-COMPACT_FRACTION survivors, gather now so
                    // later stages stop computing over dead rows.
                    if sel_buf.len() * COMPACT_FRACTION < cur.physical_rows() {
                        cur = cur.take_physical(sel_buf);
                        dense = true;
                        span = None;
                    }
                }
                let rows = if dense {
                    cur.physical_rows()
                } else {
                    sel_buf.len()
                };
                local.calls += 1;
                local.rows += rows as u64;
                local.bytes += out_bytes(&cur, rows, &mut span);
            }
            FusedStage::Project { exprs, .. } => {
                cur = Batch::new(exprs.iter().map(|e| eval(e, &cur)).collect());
                span = None;
                let rows = if dense {
                    cur.physical_rows()
                } else {
                    sel_buf.len()
                };
                local.calls += 1;
                local.rows += rows as u64;
                local.bytes += out_bytes(&cur, rows, &mut span);
            }
            FusedStage::Probe {
                build,
                kind,
                left_keys,
                right_types,
                built,
                ..
            } => {
                let b = match built {
                    Some(b) => b.clone(),
                    None => {
                        let g = build.get();
                        *built = Some(g.clone());
                        g
                    }
                };
                let in_rows = if dense {
                    cur.physical_rows()
                } else {
                    sel_buf.len()
                };
                local.work += in_rows as u64;
                match kind {
                    JoinKind::Single => {
                        assert_eq!(
                            b.rows(),
                            1,
                            "single join build side must have exactly one row"
                        );
                        let n = cur.physical_rows();
                        let idx = vec![0u32; n];
                        let right_part = b.batch().take(&idx);
                        let mut cols: Vec<Column> = cur.columns().to_vec();
                        cols.extend(right_part.into_columns());
                        cur = Batch::new(cols);
                        span = None;
                        let rows = if dense { n } else { sel_buf.len() };
                        local.calls += 1;
                        local.rows += rows as u64;
                        local.bytes += out_bytes(&cur, rows, &mut span);
                    }
                    JoinKind::Inner | JoinKind::LeftOuter => {
                        let key_cols: Vec<Column> =
                            left_keys.iter().map(|e| eval(e, &cur)).collect();
                        let key_refs: Vec<&Column> = key_cols.iter().collect();
                        hash_columns(&key_refs, cur.physical_rows(), hashes);
                        let mut left_idx: Vec<u32> = Vec::new();
                        let mut right_idx: Vec<u32> = Vec::new();
                        let mut unmatched: Vec<u32> = Vec::new();
                        let sel_slice = (!dense).then_some(sel_buf.as_slice());
                        let dense_end = if dense { cur.physical_rows() as u32 } else { 0 };
                        let rows_iter =
                            sel_slice.into_iter().flatten().copied().chain(0..dense_end);
                        b.probe_pairs(
                            &key_refs,
                            hashes,
                            rows_iter,
                            *kind == JoinKind::LeftOuter,
                            &mut left_idx,
                            &mut right_idx,
                            &mut unmatched,
                        );
                        let matched_left = cur.take_physical(&left_idx);
                        let matched_right = b.batch().take_physical(&right_idx);
                        let mut cols = matched_left.into_columns();
                        cols.extend(matched_right.into_columns());
                        let matched = Batch::new(cols);
                        cur = if *kind == JoinKind::LeftOuter && !unmatched.is_empty() {
                            let pad_left = cur.take_physical(&unmatched);
                            let n = pad_left.rows();
                            let mut cols = pad_left.into_columns();
                            for t in right_types.iter() {
                                let mut bld = ColumnBuilder::new(*t, n);
                                for _ in 0..n {
                                    bld.push_null();
                                }
                                cols.push(bld.finish());
                            }
                            Batch::concat(&[matched, Batch::new(cols)])
                        } else {
                            matched
                        };
                        dense = true;
                        span = None;
                        if cur.rows() == 0 {
                            local.calls += 1;
                            killed_at = Some(i);
                            break;
                        }
                        local.calls += 1;
                        local.rows += cur.rows() as u64;
                        local.bytes += cur.size_bytes() as u64;
                    }
                    JoinKind::Semi | JoinKind::Anti => {
                        let key_cols: Vec<Column> =
                            left_keys.iter().map(|e| eval(e, &cur)).collect();
                        let key_refs: Vec<&Column> = key_cols.iter().collect();
                        hash_columns(&key_refs, cur.physical_rows(), hashes);
                        aux.clear();
                        let sel_slice = (!dense).then_some(sel_buf.as_slice());
                        let dense_end = if dense { cur.physical_rows() as u32 } else { 0 };
                        let rows_iter =
                            sel_slice.into_iter().flatten().copied().chain(0..dense_end);
                        b.probe_keep(&key_refs, hashes, rows_iter, *kind == JoinKind::Semi, aux);
                        std::mem::swap(sel_buf, aux);
                        dense = false;
                        if sel_buf.is_empty() {
                            local.calls += 1;
                            killed_at = Some(i);
                            break;
                        }
                        local.calls += 1;
                        local.rows += sel_buf.len() as u64;
                        local.bytes += out_bytes(&cur, sel_buf.len(), &mut span);
                    }
                }
            }
        }
    }
    if let Some(k) = killed_at {
        // Later stages saw the (empty) morsel too: keep their call counts
        // non-zero so the recycler's "never ran" marker stays truthful.
        for l in &mut locals[k + 1..] {
            l.calls += 1;
        }
        return None;
    }
    if dense {
        Some(cur)
    } else {
        Some(cur.with_selection(Arc::new(std::mem::take(sel_buf))))
    }
}

/// The serial fused pipeline operator: drives a [`MorselDispenser`]
/// through one [`FusedChain`] on the caller's thread. Under parallel
/// execution the same chain type runs inside per-worker segments instead
/// (see [`crate::parallel::SegmentPipe`]).
pub struct FusedPipelineExec {
    dispenser: Arc<MorselDispenser>,
    chain: FusedChain,
}

impl FusedPipelineExec {
    /// Wrap a built fused pipeline.
    pub fn new(dispenser: Arc<MorselDispenser>, chain: FusedChain) -> FusedPipelineExec {
        FusedPipelineExec { dispenser, chain }
    }
}

impl Operator for FusedPipelineExec {
    fn next_batch(&mut self) -> Option<Batch> {
        while let Some((_, morsel)) = self.dispenser.next_morsel() {
            if let Some(out) = self.chain.push(morsel) {
                return Some(out);
            }
        }
        // End of stream: publish the deferred counters before the caller
        // (recycler completion, EXPLAIN ANALYZE) reads the shared metrics.
        self.chain.flush();
        None
    }

    fn progress(&self) -> f64 {
        self.dispenser.progress()
    }
}

/// A fused pipeline ready to run: the shared dispenser, a prototype chain
/// (clone one per worker), and the metrics tree mirroring the plan span.
pub(crate) struct FusedPipeline {
    pub(crate) dispenser: Arc<MorselDispenser>,
    pub(crate) chain: FusedChain,
    pub(crate) metrics: MetricsNode,
}

/// Walk the fusable chain under `plan`: pipelining stages (top-down) over
/// a base-table scan. `None` when `plan` does not head such a chain (or
/// the chain is empty — a bare scan has nothing to fuse).
fn collect_chain(plan: &Plan) -> Option<(Vec<&Plan>, &str, &[String])> {
    let mut stages: Vec<&Plan> = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            Plan::Scan { table, cols } => {
                if stages.is_empty() {
                    return None;
                }
                return Some((stages, table, cols));
            }
            Plan::Select { child, .. } | Plan::Project { child, .. } => {
                stages.push(cur);
                cur = child;
            }
            Plan::Join { left, .. } => {
                stages.push(cur);
                cur = left;
            }
            _ => return None,
        }
    }
}

/// Number of plan nodes `plan` would fuse into one push-style span (the
/// chain stages, excluding the scan), or `None` when `plan` does not head
/// a fusable chain. EXPLAIN uses this to annotate fused spans.
pub fn fused_span(plan: &Plan) -> Option<usize> {
    collect_chain(plan).map(|(stages, _, _)| stages.len())
}

/// Build the fused pipeline for `plan` if it heads a fusable chain.
/// `require_multi_morsel` gates on the scan being big enough to split
/// (the parallel caller); the serial caller fuses any size. Join build
/// sides route through the operator-state cache exactly like the unfused
/// builder ([`crate::build::join_build`]) — same artifact at any DOP.
pub(crate) fn build_fused_pipeline(
    plan: &Plan,
    ctx: &ExecContext,
    require_multi_morsel: bool,
    build_child: &mut BuildChild<'_>,
) -> Result<Option<FusedPipeline>, PlanError> {
    let Some((stages, table_name, cols)) = collect_chain(plan) else {
        return Ok(None);
    };
    let Some(table) = ctx.table(table_name) else {
        return Ok(None); // serial build reports the unknown table
    };
    if require_multi_morsel && morsel_count(table.rows()) < 2 {
        return Ok(None);
    }
    let projection: Vec<usize> = match cols
        .iter()
        .map(|c| table.schema().index_of(c))
        .collect::<Option<Vec<_>>>()
    {
        Some(p) => p,
        None => return Ok(None), // serial build reports the unknown column
    };
    let scan_metrics = OpMetrics::shared();
    let mut node = MetricsNode::leaf(scan_metrics.clone());
    let mut fused: Vec<FusedStage> = Vec::with_capacity(stages.len());
    // Bottom-up: reverse the collected top-down chain.
    for stage in stages.iter().rev() {
        let m = OpMetrics::shared();
        match stage {
            Plan::Select { predicate, .. } => {
                node = MetricsNode::new(m.clone(), vec![node]);
                fused.push(FusedStage::Filter {
                    pred: CompiledPredicate::compile(predicate),
                    metrics: m,
                });
            }
            Plan::Project { exprs, .. } => {
                node = MetricsNode::new(m.clone(), vec![node]);
                fused.push(FusedStage::Project {
                    exprs: exprs.clone(),
                    metrics: m,
                });
            }
            Plan::Join {
                right,
                kind,
                left_keys,
                right_keys,
                ..
            } => {
                let right_types: Vec<DataType> = right
                    .schema(&ctx.catalog)?
                    .fields()
                    .iter()
                    .map(|f| f.dtype)
                    .collect();
                let (build, right_metrics) = crate::build::join_build(
                    right,
                    right_keys,
                    &right_types,
                    &m,
                    ctx,
                    build_child,
                )?;
                node = MetricsNode::new(m.clone(), vec![node, right_metrics]);
                fused.push(FusedStage::Probe {
                    build,
                    kind: *kind,
                    left_keys: left_keys.clone(),
                    right_types,
                    metrics: m,
                    built: None,
                });
            }
            _ => unreachable!("chain walk admits only Select/Project/Join"),
        }
    }
    let dispenser = Arc::new(
        MorselDispenser::new(table, projection, scan_metrics).with_cancel(ctx.cancel.clone()),
    );
    Ok(Some(FusedPipeline {
        dispenser,
        chain: FusedChain::new(fused),
        metrics: node,
    }))
}
