//! Ordering operators: full sort, heap top-N, limit, and union-all.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rdb_expr::eval;
use rdb_plan::SortKeyExpr;
use rdb_vector::column::ColumnBuilder;
use rdb_vector::row::{RowCmp, SortOrder};
use rdb_vector::{Batch, Column, DataType, Value, BATCH_CAPACITY};

use crate::metrics::OpMetrics;
use crate::op::{timed_next, Operator};

/// Blocking full sort by the given keys.
pub struct SortExec {
    child: Box<dyn Operator>,
    keys: Vec<SortKeyExpr>,
    output: Option<Vec<Batch>>,
    emitted: usize,
    metrics: Arc<OpMetrics>,
}

impl SortExec {
    /// Sort `child` by `keys`.
    pub fn new(child: Box<dyn Operator>, keys: Vec<SortKeyExpr>, metrics: Arc<OpMetrics>) -> Self {
        SortExec {
            child,
            keys,
            output: None,
            emitted: 0,
            metrics,
        }
    }

    fn build(&mut self) -> Vec<Batch> {
        let mut batches = Vec::new();
        while let Some(b) = self.child.next_batch() {
            self.metrics.add_work(b.rows() as u64);
            batches.push(b);
        }
        if batches.is_empty() {
            return Vec::new();
        }
        let all = Batch::concat(&batches);
        let key_cols: Vec<Column> = self.keys.iter().map(|k| eval(&k.expr, &all)).collect();
        let key_refs: Vec<&Column> = key_cols.iter().collect();
        let orders: Vec<SortOrder> = self.keys.iter().map(|k| k.order).collect();
        let cmp = RowCmp::new(&key_refs, &key_refs, &orders);
        let mut idx: Vec<u32> = (0..all.rows() as u32).collect();
        idx.sort_by(|&a, &b| cmp.cmp(a as usize, b as usize));
        let sorted = all.take(&idx);
        // Re-chunk into standard batches.
        let mut out = Vec::new();
        let mut offset = 0;
        while offset < sorted.rows() {
            let len = BATCH_CAPACITY.min(sorted.rows() - offset);
            out.push(sorted.slice(offset, len));
            offset += len;
        }
        out
    }
}

impl Operator for SortExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            if self.output.is_none() {
                let built = self.build();
                self.output = Some(built);
            }
            let out = self.output.as_ref().unwrap();
            if self.emitted < out.len() {
                let b = out[self.emitted].clone();
                self.emitted += 1;
                Some(b)
            } else {
                None
            }
        })
    }

    fn progress(&self) -> f64 {
        match &self.output {
            None => 0.0,
            Some(out) => {
                if out.is_empty() {
                    1.0
                } else {
                    self.emitted as f64 / out.len() as f64
                }
            }
        }
    }
}

/// A heap entry: sort-key values, the full row, and the row's global
/// position in scan order. The position is the final tie-break key, which
/// makes top-N fully deterministic on duplicate sort keys — the
/// earliest-scanned row wins — independent of heap internals *and* of
/// which parallel worker folded the row in.
pub(crate) struct HeapRow {
    keys: Vec<Value>,
    row: Vec<Value>,
    pos: u64,
    orders: Arc<[SortOrder]>,
}

impl HeapRow {
    fn key_cmp(&self, other: &Self) -> Ordering {
        for ((a, b), ord) in self.keys.iter().zip(&other.keys).zip(self.orders.iter()) {
            let c = ord.apply(a.cmp(b));
            if c != Ordering::Equal {
                return c;
            }
        }
        // Positions are unique, so the order is total (and `Eq` below is
        // consistent with it).
        self.pos.cmp(&other.pos)
    }
}

impl PartialEq for HeapRow {
    fn eq(&self, other: &Self) -> bool {
        self.key_cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapRow {}
impl PartialOrd for HeapRow {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapRow {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key_cmp(other)
    }
}

/// The accumulating state of a top-N: an N-row max-heap whose root is the
/// *worst* retained row. Shared between the serial [`TopNExec`] and the
/// per-worker partial runs of parallel top-N, which are combined with
/// [`TopNState::merge`] at the breaker — the position tie-break (see
/// [`HeapRow`]) makes the merged result byte-identical to the serial one
/// regardless of how rows were distributed over workers.
pub(crate) struct TopNState {
    keys: Vec<SortKeyExpr>,
    orders: Arc<[SortOrder]>,
    n: usize,
    heap: BinaryHeap<HeapRow>,
}

impl TopNState {
    pub(crate) fn new(keys: Vec<SortKeyExpr>, n: usize) -> Self {
        let orders: Arc<[SortOrder]> = keys.iter().map(|k| k.order).collect();
        TopNState {
            keys,
            orders,
            n,
            heap: BinaryHeap::with_capacity(n + 1),
        }
    }

    fn offer(&mut self, entry: HeapRow) {
        if self.heap.len() < self.n {
            self.heap.push(entry);
        } else if let Some(worst) = self.heap.peek() {
            if entry.key_cmp(worst) == Ordering::Less {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// Fold a batch in. `chunk` identifies the batch's place in canonical
    /// scan order (input ordinal serially, morsel index in parallel); row
    /// positions are derived from it, so ties resolve identically either
    /// way.
    pub(crate) fn fold(&mut self, batch: &Batch, chunk: u64) {
        if self.n == 0 {
            return;
        }
        let key_cols: Vec<Column> = self.keys.iter().map(|k| eval(&k.expr, batch)).collect();
        let mut seq = 0u64;
        // Key columns are physical-length; walk the selected rows.
        batch.for_each_selected(|row| {
            let entry = HeapRow {
                keys: key_cols.iter().map(|c| c.get(row)).collect(),
                row: batch.physical_row(row),
                pos: (chunk << 32) | seq,
                orders: self.orders.clone(),
            };
            seq += 1;
            self.offer(entry);
        });
    }

    /// Combine a partial run produced over a disjoint chunk subset.
    pub(crate) fn merge(&mut self, other: TopNState) {
        for entry in other.heap {
            self.offer(entry);
        }
    }

    /// Finish: retained rows ascending by (key, position), chunked into
    /// output batches.
    pub(crate) fn into_batches(self, output_types: &[DataType]) -> Vec<Batch> {
        let rows: Vec<HeapRow> = self.heap.into_sorted_vec(); // ascending
        let mut out = Vec::new();
        let mut offset = 0;
        while offset < rows.len() {
            let len = BATCH_CAPACITY.min(rows.len() - offset);
            let mut builders: Vec<ColumnBuilder> = output_types
                .iter()
                .map(|t| ColumnBuilder::new(*t, len))
                .collect();
            for r in &rows[offset..offset + len] {
                for (i, v) in r.row.iter().enumerate() {
                    builders[i].push(v.clone());
                }
            }
            out.push(Batch::new(
                builders.into_iter().map(|b| b.finish()).collect(),
            ));
            offset += len;
        }
        out
    }
}

/// Heap-based top-N (paper §IV-B): maintains an N-row max-heap so the cost
/// is `O(M log N)` rather than a full sort. Emits rows in key order.
pub struct TopNExec {
    child: Box<dyn Operator>,
    keys: Vec<SortKeyExpr>,
    n: usize,
    output_types: Vec<DataType>,
    output: Option<Vec<Batch>>,
    emitted: usize,
    metrics: Arc<OpMetrics>,
}

impl TopNExec {
    /// Keep the first `n` rows of `child` under `keys` order.
    pub fn new(
        child: Box<dyn Operator>,
        keys: Vec<SortKeyExpr>,
        n: usize,
        output_types: Vec<DataType>,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        TopNExec {
            child,
            keys,
            n,
            output_types,
            output: None,
            emitted: 0,
            metrics,
        }
    }

    fn build(&mut self) -> Vec<Batch> {
        let mut state = TopNState::new(self.keys.clone(), self.n);
        let mut chunk = 0u64;
        while let Some(batch) = self.child.next_batch() {
            self.metrics.add_work(batch.rows() as u64);
            state.fold(&batch, chunk);
            chunk += 1;
        }
        state.into_batches(&self.output_types)
    }
}

impl Operator for TopNExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            if self.output.is_none() {
                let built = self.build();
                self.output = Some(built);
            }
            let out = self.output.as_ref().unwrap();
            if self.emitted < out.len() {
                let b = out[self.emitted].clone();
                self.emitted += 1;
                Some(b)
            } else {
                None
            }
        })
    }

    fn progress(&self) -> f64 {
        match &self.output {
            None => 0.0,
            Some(out) => {
                if out.is_empty() {
                    1.0
                } else {
                    self.emitted as f64 / out.len() as f64
                }
            }
        }
    }
}

/// Pass through the first `n` rows, then stop pulling.
pub struct LimitExec {
    child: Box<dyn Operator>,
    remaining: usize,
    metrics: Arc<OpMetrics>,
}

impl LimitExec {
    /// First `n` rows of `child`.
    pub fn new(child: Box<dyn Operator>, n: usize, metrics: Arc<OpMetrics>) -> Self {
        LimitExec {
            child,
            remaining: n,
            metrics,
        }
    }
}

impl Operator for LimitExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            if self.remaining == 0 {
                return None;
            }
            let batch = self.child.next_batch()?;
            if batch.rows() <= self.remaining {
                self.remaining -= batch.rows();
                Some(batch)
            } else {
                let out = batch.slice(0, self.remaining);
                self.remaining = 0;
                Some(out)
            }
        })
    }

    fn progress(&self) -> f64 {
        if self.remaining == 0 {
            1.0
        } else {
            self.child.progress()
        }
    }
}

/// Bag union: drains children in order.
pub struct UnionAllExec {
    children: Vec<Box<dyn Operator>>,
    current: usize,
    metrics: Arc<OpMetrics>,
}

impl UnionAllExec {
    /// Union of `children` (same schemas).
    pub fn new(children: Vec<Box<dyn Operator>>, metrics: Arc<OpMetrics>) -> Self {
        UnionAllExec {
            children,
            current: 0,
            metrics,
        }
    }
}

impl Operator for UnionAllExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            while self.current < self.children.len() {
                if let Some(b) = self.children[self.current].next_batch() {
                    return Some(b);
                }
                self.current += 1;
            }
            None
        })
    }

    fn progress(&self) -> f64 {
        if self.children.is_empty() {
            return 1.0;
        }
        let done = self.current as f64;
        let cur = if self.current < self.children.len() {
            self.children[self.current].progress()
        } else {
            0.0
        };
        ((done + cur) / self.children.len() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::run_to_batch;
    use rdb_expr::Expr;

    struct Source {
        batches: Vec<Batch>,
    }

    impl Operator for Source {
        fn next_batch(&mut self) -> Option<Batch> {
            if self.batches.is_empty() {
                None
            } else {
                Some(self.batches.remove(0))
            }
        }
        fn progress(&self) -> f64 {
            if self.batches.is_empty() {
                1.0
            } else {
                0.0
            }
        }
    }

    fn src(vals: Vec<i64>, extra: Vec<f64>) -> Box<dyn Operator> {
        Box::new(Source {
            batches: vec![Batch::new(vec![
                Column::from_ints(vals),
                Column::from_floats(extra),
            ])],
        })
    }

    #[test]
    fn sort_orders_rows() {
        let child = src(vec![3, 1, 2], vec![0.3, 0.1, 0.2]);
        let mut s = SortExec::new(
            child,
            vec![SortKeyExpr::asc(Expr::col(0))],
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut s);
        assert_eq!(out.column(0).as_ints(), &[1, 2, 3]);
        assert_eq!(out.column(1).as_floats(), &[0.1, 0.2, 0.3]);
    }

    #[test]
    fn sort_desc_and_secondary_key() {
        let child = src(vec![1, 1, 2], vec![0.1, 0.9, 0.5]);
        let mut s = SortExec::new(
            child,
            vec![
                SortKeyExpr::desc(Expr::col(0)),
                SortKeyExpr::asc(Expr::col(1)),
            ],
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut s);
        assert_eq!(out.column(0).as_ints(), &[2, 1, 1]);
        assert_eq!(out.column(1).as_floats(), &[0.5, 0.1, 0.9]);
    }

    #[test]
    fn top_n_keeps_best() {
        let child = src(vec![5, 3, 9, 1, 7], vec![0.5, 0.3, 0.9, 0.1, 0.7]);
        let mut t = TopNExec::new(
            child,
            vec![SortKeyExpr::asc(Expr::col(0))],
            3,
            vec![DataType::Int, DataType::Float],
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut t);
        assert_eq!(out.column(0).as_ints(), &[1, 3, 5]);
    }

    #[test]
    fn top_n_desc() {
        let child = src(vec![5, 3, 9, 1, 7], vec![0.0; 5]);
        let mut t = TopNExec::new(
            child,
            vec![SortKeyExpr::desc(Expr::col(0))],
            2,
            vec![DataType::Int, DataType::Float],
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut t);
        assert_eq!(out.column(0).as_ints(), &[9, 7]);
    }

    #[test]
    fn top_n_smaller_input() {
        let child = src(vec![2, 1], vec![0.0; 2]);
        let mut t = TopNExec::new(
            child,
            vec![SortKeyExpr::asc(Expr::col(0))],
            10,
            vec![DataType::Int, DataType::Float],
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut t);
        assert_eq!(out.column(0).as_ints(), &[1, 2]);
    }

    #[test]
    fn limit_truncates() {
        let child = src(vec![1, 2, 3, 4], vec![0.0; 4]);
        let mut l = LimitExec::new(child, 2, OpMetrics::shared());
        let out = run_to_batch(&mut l);
        assert_eq!(out.column(0).as_ints(), &[1, 2]);
        assert_eq!(l.progress(), 1.0);
    }

    #[test]
    fn union_concatenates() {
        let a = src(vec![1], vec![0.1]);
        let b = src(vec![2, 3], vec![0.2, 0.3]);
        let mut u = UnionAllExec::new(vec![a, b], OpMetrics::shared());
        let out = run_to_batch(&mut u);
        assert_eq!(out.column(0).as_ints(), &[1, 2, 3]);
        assert_eq!(u.progress(), 1.0);
    }
}
