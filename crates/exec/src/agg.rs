//! Blocking hash aggregation.
//!
//! The group table hashes encoded key bytes with the vendored FxHash (the
//! keys are derived from the data being aggregated; SipHash's DoS
//! resistance buys nothing) and input batches are consumed
//! selection-aware: filtered batches arrive as shared columns plus a
//! selection vector and only the selected rows are folded in — the
//! aggregate is the pipeline breaker, so nothing upstream ever gathered.
//!
//! **Deterministic emission order.** The breaker emits groups sorted by
//! group key (ascending `Value` order, NULLs first), *not* in hash-table
//! insertion order. This makes the output independent of input batch
//! arrival order — and therefore of worker interleaving under
//! morsel-driven parallel execution (see [`crate::parallel`]) — which the
//! recycler requires: fingerprint-identical plans must publish
//! byte-identical `MaterializedResult`s whether they ran at DOP 1 or 8.
//!
//! The same [`GroupTable`] state backs both the serial [`HashAggExec`] and
//! the partitioned parallel aggregation: each worker folds its morsels into
//! a private table, and the partials are merged pairwise at the breaker
//! ([`GroupTable::merge`]), where the sort then erases the merge order.

use std::sync::Arc;

use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};

use rdb_expr::{eval, AggFunc, Expr};
use rdb_vector::column::ColumnBuilder;
use rdb_vector::row::encode_row_key;
use rdb_vector::{Batch, Column, DataType, Value, BATCH_CAPACITY};

use crate::metrics::OpMetrics;
use crate::op::{timed_next, Operator};

/// One per-group accumulator.
#[derive(Debug)]
pub(crate) enum Acc {
    /// `count(*)` / `count(expr)`.
    Count(i64),
    /// `sum` over integers; `seen` distinguishes 0 from SQL NULL-sum.
    SumInt { total: i64, seen: bool },
    /// `sum` over floats.
    SumFloat { total: f64, seen: bool },
    /// `min`.
    Min(Option<Value>),
    /// `max`.
    Max(Option<Value>),
    /// `avg`.
    Avg { sum: f64, count: i64 },
    /// `count(distinct expr)`.
    Distinct(FxHashSet<Value>),
}

impl Acc {
    fn new(func: &AggFunc, input_types: &[DataType]) -> Acc {
        match func {
            AggFunc::CountStar | AggFunc::Count(_) => Acc::Count(0),
            AggFunc::Sum(e) => match e.data_type(input_types) {
                DataType::Int => Acc::SumInt {
                    total: 0,
                    seen: false,
                },
                _ => Acc::SumFloat {
                    total: 0.0,
                    seen: false,
                },
            },
            AggFunc::Min(_) => Acc::Min(None),
            AggFunc::Max(_) => Acc::Max(None),
            AggFunc::Avg(_) => Acc::Avg { sum: 0.0, count: 0 },
            AggFunc::CountDistinct(_) => Acc::Distinct(FxHashSet::default()),
        }
    }

    /// Fold in row `i` of the evaluated argument column (`None` for
    /// `count(*)`).
    fn update(&mut self, arg: Option<&Column>, i: usize) {
        match self {
            Acc::Count(n) => match arg {
                None => *n += 1,
                Some(c) => {
                    if c.is_valid(i) {
                        *n += 1;
                    }
                }
            },
            Acc::SumInt { total, seen } => {
                let c = arg.expect("sum needs an argument");
                if c.is_valid(i) {
                    *total += c.as_ints()[i];
                    *seen = true;
                }
            }
            Acc::SumFloat { total, seen } => {
                let c = arg.expect("sum needs an argument");
                if c.is_valid(i) {
                    *total += match c.get(i).as_float() {
                        Some(f) => f,
                        None => return,
                    };
                    *seen = true;
                }
            }
            Acc::Min(cur) => {
                let c = arg.expect("min needs an argument");
                if c.is_valid(i) {
                    let v = c.get(i);
                    if cur.as_ref().is_none_or(|m| v < *m) {
                        *cur = Some(v);
                    }
                }
            }
            Acc::Max(cur) => {
                let c = arg.expect("max needs an argument");
                if c.is_valid(i) {
                    let v = c.get(i);
                    if cur.as_ref().is_none_or(|m| v > *m) {
                        *cur = Some(v);
                    }
                }
            }
            Acc::Avg { sum, count } => {
                let c = arg.expect("avg needs an argument");
                if c.is_valid(i) {
                    if let Some(f) = c.get(i).as_float() {
                        *sum += f;
                        *count += 1;
                    }
                }
            }
            Acc::Distinct(set) => {
                let c = arg.expect("count distinct needs an argument");
                if c.is_valid(i) {
                    set.insert(c.get(i));
                }
            }
        }
    }

    /// Combine a partial accumulator produced by another worker over a
    /// disjoint subset of the same group's rows.
    pub(crate) fn merge(&mut self, other: Acc) {
        match (self, other) {
            (Acc::Count(a), Acc::Count(b)) => *a += b,
            (
                Acc::SumInt { total, seen },
                Acc::SumInt {
                    total: t2,
                    seen: s2,
                },
            ) => {
                *total += t2;
                *seen |= s2;
            }
            (
                Acc::SumFloat { total, seen },
                Acc::SumFloat {
                    total: t2,
                    seen: s2,
                },
            ) => {
                *total += t2;
                *seen |= s2;
            }
            (Acc::Min(cur), Acc::Min(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|m| v < *m) {
                        *cur = Some(v);
                    }
                }
            }
            (Acc::Max(cur), Acc::Max(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|m| v > *m) {
                        *cur = Some(v);
                    }
                }
            }
            (Acc::Avg { sum, count }, Acc::Avg { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (Acc::Distinct(set), Acc::Distinct(other)) => set.extend(other),
            _ => unreachable!("merging accumulators of different shapes"),
        }
    }

    fn finish(&self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(*n),
            Acc::SumInt { total, seen } => {
                if *seen {
                    Value::Int(*total)
                } else {
                    Value::Null
                }
            }
            Acc::SumFloat { total, seen } => {
                if *seen {
                    Value::Float(*total)
                } else {
                    Value::Null
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.clone().unwrap_or(Value::Null),
            Acc::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum / *count as f64)
                }
            }
            Acc::Distinct(set) => Value::Int(set.len() as i64),
        }
    }
}

pub(crate) struct Group {
    key: Vec<Value>,
    accs: Vec<Acc>,
}

/// A hash table from group key to accumulator states: the shared state of
/// serial and partitioned parallel aggregation.
pub(crate) struct GroupTable {
    group_by: Vec<Expr>,
    aggs: Vec<AggFunc>,
    input_types: Vec<DataType>,
    groups: FxHashMap<Vec<u8>, usize>,
    states: Vec<Group>,
    key_buf: Vec<u8>,
}

impl GroupTable {
    pub(crate) fn new(group_by: Vec<Expr>, aggs: Vec<AggFunc>, input_types: Vec<DataType>) -> Self {
        GroupTable {
            group_by,
            aggs,
            input_types,
            // Pre-size for one full vector of distinct keys; the map grows
            // only when the workload really has more groups than that.
            groups: FxHashMap::with_capacity_and_hasher(BATCH_CAPACITY, FxBuildHasher::default()),
            states: Vec::new(),
            key_buf: Vec::new(),
        }
    }

    /// Fold a batch in, selection-aware.
    pub(crate) fn fold(&mut self, batch: &Batch) {
        let key_cols: Vec<Column> = self.group_by.iter().map(|e| eval(e, batch)).collect();
        let key_refs: Vec<&Column> = key_cols.iter().collect();
        let arg_cols: Vec<Option<Column>> = self
            .aggs
            .iter()
            .map(|a| a.argument().map(|e| eval(e, batch)))
            .collect();
        let sel = batch.sel();
        for li in 0..batch.rows() {
            // Selection-aware: `row` is the physical position.
            let row = match sel {
                Some(s) => s[li] as usize,
                None => li,
            };
            self.key_buf.clear();
            encode_row_key(&key_refs, row, &mut self.key_buf);
            let idx = match self.groups.get(&self.key_buf) {
                Some(&i) => i,
                None => {
                    let idx = self.states.len();
                    self.states.push(Group {
                        key: key_refs.iter().map(|c| c.get(row)).collect(),
                        accs: self
                            .aggs
                            .iter()
                            .map(|a| Acc::new(a, &self.input_types))
                            .collect(),
                    });
                    self.groups.insert(self.key_buf.clone(), idx);
                    idx
                }
            };
            for (acc, arg) in self.states[idx].accs.iter_mut().zip(&arg_cols) {
                acc.update(arg.as_ref(), row);
            }
        }
    }

    /// Absorb another partial table computed over a disjoint row subset.
    pub(crate) fn merge(&mut self, other: GroupTable) {
        let GroupTable {
            groups, mut states, ..
        } = other;
        for (key_bytes, other_idx) in groups {
            // Each state is consumed exactly once (group keys are unique),
            // so take the accumulators out by swap.
            let g = &mut states[other_idx];
            let accs = std::mem::take(&mut g.accs);
            let key = std::mem::take(&mut g.key);
            match self.groups.get(&key_bytes) {
                Some(&i) => {
                    for (acc, o) in self.states[i].accs.iter_mut().zip(accs) {
                        acc.merge(o);
                    }
                }
                None => {
                    let idx = self.states.len();
                    self.states.push(Group { key, accs });
                    self.groups.insert(key_bytes, idx);
                }
            }
        }
    }

    /// Finish: sort groups by key for deterministic emission (see module
    /// docs), adding SQL's single empty-input row for global aggregation.
    pub(crate) fn into_sorted_states(mut self) -> Vec<Group> {
        if self.states.is_empty() && self.group_by.is_empty() {
            self.states.push(Group {
                key: vec![],
                accs: self
                    .aggs
                    .iter()
                    .map(|a| Acc::new(a, &self.input_types))
                    .collect(),
            });
        }
        self.states.sort_by(|a, b| a.key.cmp(&b.key));
        self.states
    }
}

/// Whether every accumulator in `aggs` combines *exactly* — i.e. its merge
/// is truly associative and commutative over the reals it computes (counts,
/// integer sums, min/max, distinct sets). Only such aggregates may be
/// partitioned across parallel workers and merged in arbitrary order while
/// staying bit-identical to serial execution; floating-point sums and
/// averages are kept in serial fold order instead (the builder runs them
/// over a parallel-gathered input), because float addition is not
/// associative and partial sums would drift in the low-order bits.
pub(crate) fn exact_accumulation(aggs: &[AggFunc], input_types: &[DataType]) -> bool {
    aggs.iter().all(|a| match a {
        AggFunc::CountStar
        | AggFunc::Count(_)
        | AggFunc::Min(_)
        | AggFunc::Max(_)
        | AggFunc::CountDistinct(_) => true,
        AggFunc::Sum(e) => e.data_type(input_types) == DataType::Int,
        AggFunc::Avg(_) => false,
    })
}

/// Chunk sorted group states into output batches.
pub(crate) fn emit_groups(
    states: &[Group],
    output_types: &[DataType],
    group_len: usize,
) -> Vec<Batch> {
    let width = output_types.len();
    let mut out = Vec::new();
    let mut offset = 0;
    while offset < states.len() {
        let len = BATCH_CAPACITY.min(states.len() - offset);
        let mut builders: Vec<ColumnBuilder> = output_types
            .iter()
            .map(|t| ColumnBuilder::new(*t, len))
            .collect();
        for g in &states[offset..offset + len] {
            for (k, v) in g.key.iter().enumerate() {
                builders[k].push(v.clone());
            }
            for (a, acc) in g.accs.iter().enumerate() {
                builders[group_len + a].push(acc.finish());
            }
        }
        let cols: Vec<Column> = builders.into_iter().map(|b| b.finish()).collect();
        debug_assert_eq!(cols.len(), width);
        out.push(Batch::new(cols));
        offset += len;
    }
    out
}

/// Recover the accumulator whose serial fold over the group's rows
/// produced the finished value `v`, or `None` when the finished value
/// under-determines the state (`avg` loses its sum/count split, `count
/// distinct` loses its set). The recovered accumulator continues the
/// *exact* serial fold: folding further rows into it yields bit-identical
/// results to re-folding the whole input from scratch — including float
/// sums, because `(((0 + a) + b) + c)` resumed after `b` is literally the
/// same operation sequence.
fn resume_acc(func: &AggFunc, input_types: &[DataType], v: Value) -> Option<Acc> {
    match func {
        AggFunc::CountStar | AggFunc::Count(_) => match v {
            Value::Int(n) => Some(Acc::Count(n)),
            _ => None,
        },
        AggFunc::Sum(e) => match e.data_type(input_types) {
            DataType::Int => Some(match v {
                Value::Int(t) => Acc::SumInt {
                    total: t,
                    seen: true,
                },
                _ => Acc::SumInt {
                    total: 0,
                    seen: false,
                },
            }),
            _ => match v {
                Value::Null => Some(Acc::SumFloat {
                    total: 0.0,
                    seen: false,
                }),
                other => Some(Acc::SumFloat {
                    total: other.as_float()?,
                    seen: true,
                }),
            },
        },
        AggFunc::Min(_) => Some(Acc::Min(match v {
            Value::Null => None,
            other => Some(other),
        })),
        AggFunc::Max(_) => Some(Acc::Max(match v {
            Value::Null => None,
            other => Some(other),
        })),
        AggFunc::Avg(_) | AggFunc::CountDistinct(_) => None,
    }
}

/// An aggregation table re-materialized from a cached result so that new
/// input rows can be folded in *incrementally* — the delta-repair kernel
/// for appends. `resume` rebuilds every group's accumulator from its
/// finished output row (see [`resume_acc`] for which aggregates admit
/// this), `fold` continues the serial fold with delta rows, and `finish`
/// re-emits the sorted groups. The emitted batches are byte-identical to
/// recomputing the aggregate over old ++ delta input.
pub struct ResumedAgg {
    table: GroupTable,
    output_types: Vec<DataType>,
    group_len: usize,
}

impl ResumedAgg {
    /// Rebuild group state from `cached` (the aggregate's emitted rows:
    /// group keys then finished aggregate values, dense). Returns `None`
    /// when any aggregate's state cannot be recovered from its finished
    /// value.
    pub fn resume(
        cached: &Batch,
        group_by: Vec<Expr>,
        aggs: Vec<AggFunc>,
        input_types: Vec<DataType>,
        output_types: Vec<DataType>,
    ) -> Option<ResumedAgg> {
        let group_len = group_by.len();
        let mut table = GroupTable::new(group_by, aggs, input_types);
        let key_refs: Vec<&Column> = cached.columns()[..group_len].iter().collect();
        let mut key_buf = Vec::new();
        for row in 0..cached.rows() {
            let accs = table
                .aggs
                .iter()
                .enumerate()
                .map(|(j, a)| {
                    resume_acc(a, &table.input_types, cached.column(group_len + j).get(row))
                })
                .collect::<Option<Vec<Acc>>>()?;
            key_buf.clear();
            encode_row_key(&key_refs, row, &mut key_buf);
            let idx = table.states.len();
            table.states.push(Group {
                key: key_refs.iter().map(|c| c.get(row)).collect(),
                accs,
            });
            table.groups.insert(key_buf.clone(), idx);
        }
        Some(ResumedAgg {
            table,
            output_types,
            group_len,
        })
    }

    /// Continue the fold with a (delta) input batch, selection-aware.
    pub fn fold(&mut self, batch: &Batch) {
        self.table.fold(batch);
    }

    /// Re-emit the sorted group rows.
    pub fn finish(self) -> Vec<Batch> {
        let states = self.table.into_sorted_states();
        emit_groups(&states, &self.output_types, self.group_len)
    }
}

/// Delete-repair for pure counting aggregates: subtract the deleted rows'
/// per-group counts from `cached` and drop groups whose `count(*)` hits
/// zero. Requires every aggregate to be `count(*)` or `count(expr)` with
/// at least one `count(*)` present — the `count(*)` column proves a group
/// lost *all* its rows (retraction), which no other finished value can
/// (`sum` over `[5, NULL]` minus 5 is NULL, not 0). Returns `None` when
/// the gate fails, a deleted row's group is missing from the cache, or a
/// count would go negative — the caller must evict instead.
pub fn retract_count_groups(
    cached: &Batch,
    group_by: Vec<Expr>,
    aggs: Vec<AggFunc>,
    input_types: Vec<DataType>,
    output_types: Vec<DataType>,
    deleted_input: &[Batch],
) -> Option<Vec<Batch>> {
    let star = aggs.iter().position(|a| matches!(a, AggFunc::CountStar))?;
    if !aggs
        .iter()
        .all(|a| matches!(a, AggFunc::CountStar | AggFunc::Count(_)))
    {
        return None;
    }
    let group_len = group_by.len();
    let mut retract = GroupTable::new(group_by, aggs.clone(), input_types);
    for b in deleted_input {
        retract.fold(b);
    }
    let key_refs: Vec<&Column> = cached.columns()[..group_len].iter().collect();
    let mut index: FxHashMap<Vec<u8>, usize> =
        FxHashMap::with_capacity_and_hasher(cached.rows(), FxBuildHasher::default());
    let mut key_buf = Vec::new();
    for row in 0..cached.rows() {
        key_buf.clear();
        encode_row_key(&key_refs, row, &mut key_buf);
        index.insert(key_buf.clone(), row);
    }
    let mut sub = vec![vec![0i64; aggs.len()]; cached.rows()];
    for (key_bytes, &idx) in &retract.groups {
        // Every deleted row existed in the old table, so its group must be
        // in the cached result; a miss means the cache and the delta have
        // diverged and repair is unsound.
        let row = *index.get(key_bytes)?;
        for (j, acc) in retract.states[idx].accs.iter().enumerate() {
            sub[row][j] = match acc {
                Acc::Count(n) => *n,
                _ => return None,
            };
        }
    }
    let mut states = Vec::with_capacity(cached.rows());
    for (row, sub_row) in sub.iter().enumerate() {
        let mut accs = Vec::with_capacity(aggs.len());
        for (j, _) in aggs.iter().enumerate() {
            let old = match cached.column(group_len + j).get(row) {
                Value::Int(n) => n,
                _ => return None,
            };
            let new = old - sub_row[j];
            if new < 0 {
                return None;
            }
            accs.push(Acc::Count(new));
        }
        let star_count = match &accs[star] {
            Acc::Count(n) => *n,
            _ => unreachable!(),
        };
        // A grouped aggregate drops fully-retracted groups; the global
        // (group-less) row survives even at zero, exactly like recomputing
        // over empty input.
        if group_len > 0 && star_count == 0 {
            continue;
        }
        states.push(Group {
            key: key_refs.iter().map(|c| c.get(row)).collect(),
            accs,
        });
    }
    // Cached rows are already in sorted-key order and retraction only
    // drops rows, so the order invariant is preserved without re-sorting.
    Some(emit_groups(&states, &output_types, group_len))
}

/// Blocking hash aggregation: consumes the whole input, then streams the
/// grouped result sorted by group key. With no group keys it produces
/// exactly one row (also for empty input, per SQL semantics).
pub struct HashAggExec {
    child: Box<dyn Operator>,
    group_by: Vec<Expr>,
    aggs: Vec<AggFunc>,
    input_types: Vec<DataType>,
    output_types: Vec<DataType>,
    output: Option<Vec<Batch>>,
    emitted_batches: usize,
    metrics: Arc<OpMetrics>,
}

impl HashAggExec {
    /// Create the operator. `input_types` are the child's column types;
    /// `output_types` the output schema types (groups then aggregates).
    pub fn new(
        child: Box<dyn Operator>,
        group_by: Vec<Expr>,
        aggs: Vec<AggFunc>,
        input_types: Vec<DataType>,
        output_types: Vec<DataType>,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        assert_eq!(group_by.len() + aggs.len(), output_types.len());
        HashAggExec {
            child,
            group_by,
            aggs,
            input_types,
            output_types,
            output: None,
            emitted_batches: 0,
            metrics,
        }
    }

    fn build(&mut self) -> Vec<Batch> {
        let mut table = GroupTable::new(
            self.group_by.clone(),
            self.aggs.clone(),
            self.input_types.clone(),
        );
        while let Some(batch) = self.child.next_batch() {
            self.metrics.add_work(batch.rows() as u64);
            table.fold(&batch);
        }
        let states = table.into_sorted_states();
        emit_groups(&states, &self.output_types, self.group_by.len())
    }
}

impl Operator for HashAggExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            if self.output.is_none() {
                let built = self.build();
                self.output = Some(built);
            }
            let out = self.output.as_ref().unwrap();
            if self.emitted_batches < out.len() {
                let b = out[self.emitted_batches].clone();
                self.emitted_batches += 1;
                Some(b)
            } else {
                None
            }
        })
    }

    fn progress(&self) -> f64 {
        match &self.output {
            None => 0.0,
            Some(out) => {
                if out.is_empty() {
                    1.0
                } else {
                    self.emitted_batches as f64 / out.len() as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::run_to_batch;

    struct Source {
        batches: Vec<Batch>,
    }

    impl Operator for Source {
        fn next_batch(&mut self) -> Option<Batch> {
            if self.batches.is_empty() {
                None
            } else {
                Some(self.batches.remove(0))
            }
        }
        fn progress(&self) -> f64 {
            1.0
        }
    }

    fn src(cols: Vec<Column>) -> Box<dyn Operator> {
        Box::new(Source {
            batches: vec![Batch::new(cols)],
        })
    }

    #[test]
    fn grouped_aggregation() {
        let child = src(vec![
            Column::from_strs(["a", "b", "a", "a"]),
            Column::from_ints(vec![1, 2, 3, 4]),
        ]);
        let mut agg = HashAggExec::new(
            child,
            vec![Expr::col(0)],
            vec![
                AggFunc::Sum(Expr::col(1)),
                AggFunc::CountStar,
                AggFunc::Avg(Expr::col(1)),
            ],
            vec![DataType::Str, DataType::Int],
            vec![DataType::Str, DataType::Int, DataType::Int, DataType::Float],
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut agg);
        assert_eq!(out.rows(), 2);
        let rows = out.to_rows();
        assert_eq!(
            rows[0],
            vec![
                Value::str("a"),
                Value::Int(8),
                Value::Int(3),
                Value::Float(8.0 / 3.0)
            ]
        );
        assert_eq!(
            rows[1],
            vec![
                Value::str("b"),
                Value::Int(2),
                Value::Int(1),
                Value::Float(2.0)
            ]
        );
    }

    #[test]
    fn emission_is_sorted_by_group_key_not_arrival_order() {
        // Keys arrive in descending order interleaved across batches; the
        // breaker must emit ascending regardless.
        let child = Box::new(Source {
            batches: vec![
                Batch::new(vec![Column::from_ints(vec![9, 3, 7])]),
                Batch::new(vec![Column::from_ints(vec![1, 9, 5])]),
            ],
        });
        let mut agg = HashAggExec::new(
            child,
            vec![Expr::col(0)],
            vec![AggFunc::CountStar],
            vec![DataType::Int],
            vec![DataType::Int, DataType::Int],
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut agg);
        assert_eq!(out.column(0).as_ints(), &[1, 3, 5, 7, 9]);
        assert_eq!(out.column(1).as_ints(), &[1, 1, 1, 1, 2]);
    }

    #[test]
    fn partial_tables_merge_to_the_same_result() {
        let mk = || {
            GroupTable::new(
                vec![Expr::col(0)],
                vec![
                    AggFunc::Sum(Expr::col(1)),
                    AggFunc::CountStar,
                    AggFunc::Min(Expr::col(1)),
                    AggFunc::Max(Expr::col(1)),
                    AggFunc::Avg(Expr::col(1)),
                    AggFunc::CountDistinct(Expr::col(1)),
                ],
                vec![DataType::Int, DataType::Int],
            )
        };
        let b1 = Batch::new(vec![
            Column::from_ints(vec![1, 2, 1]),
            Column::from_ints(vec![10, 20, 30]),
        ]);
        let b2 = Batch::new(vec![
            Column::from_ints(vec![2, 3, 1]),
            Column::from_ints(vec![40, 50, 10]),
        ]);
        // Serial: both batches into one table.
        let mut serial = mk();
        serial.fold(&b1);
        serial.fold(&b2);
        // Parallel: one table per batch, merged.
        let mut p1 = mk();
        p1.fold(&b1);
        let mut p2 = mk();
        p2.fold(&b2);
        p1.merge(p2);
        let types = vec![
            DataType::Int,
            DataType::Int,
            DataType::Int,
            DataType::Int,
            DataType::Int,
            DataType::Float,
            DataType::Int,
        ];
        let a = emit_groups(&serial.into_sorted_states(), &types, 1);
        let b = emit_groups(&p1.into_sorted_states(), &types, 1);
        assert_eq!(Batch::concat(&a).to_rows(), Batch::concat(&b).to_rows());
    }

    #[test]
    fn global_aggregation_on_empty_input() {
        let child = Box::new(Source { batches: vec![] });
        let mut agg = HashAggExec::new(
            child,
            vec![],
            vec![AggFunc::CountStar, AggFunc::Sum(Expr::col(0))],
            vec![DataType::Int],
            vec![DataType::Int, DataType::Int],
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut agg);
        assert_eq!(out.rows(), 1);
        assert_eq!(out.row(0), vec![Value::Int(0), Value::Null]);
    }

    #[test]
    fn min_max_and_distinct() {
        let child = src(vec![
            Column::from_ints(vec![1, 1, 1, 1]),
            Column::from_floats(vec![2.0, 8.0, 2.0, 4.0]),
        ]);
        let mut agg = HashAggExec::new(
            child,
            vec![Expr::col(0)],
            vec![
                AggFunc::Min(Expr::col(1)),
                AggFunc::Max(Expr::col(1)),
                AggFunc::CountDistinct(Expr::col(1)),
            ],
            vec![DataType::Int, DataType::Float],
            vec![
                DataType::Int,
                DataType::Float,
                DataType::Float,
                DataType::Int,
            ],
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut agg);
        assert_eq!(
            out.row(0),
            vec![
                Value::Int(1),
                Value::Float(2.0),
                Value::Float(8.0),
                Value::Int(3)
            ]
        );
    }

    #[test]
    fn count_skips_nulls_sum_int() {
        let mut b = ColumnBuilder::new(DataType::Int, 3);
        b.push(Value::Int(5));
        b.push_null();
        b.push(Value::Int(7));
        let child = src(vec![b.finish()]);
        let mut agg = HashAggExec::new(
            child,
            vec![],
            vec![
                AggFunc::Count(Expr::col(0)),
                AggFunc::CountStar,
                AggFunc::Sum(Expr::col(0)),
            ],
            vec![DataType::Int],
            vec![DataType::Int, DataType::Int, DataType::Int],
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut agg);
        assert_eq!(
            out.row(0),
            vec![Value::Int(2), Value::Int(3), Value::Int(12)]
        );
    }

    #[test]
    fn group_by_expression() {
        let child = src(vec![Column::from_ints(vec![10, 11, 20, 21, 30])]);
        let mut agg = HashAggExec::new(
            child,
            vec![Expr::col(0).div(Expr::lit(10))], // int div promotes to float
            vec![AggFunc::CountStar],
            vec![DataType::Int],
            vec![DataType::Float, DataType::Int],
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut agg);
        assert_eq!(out.rows(), 5); // 1.0, 1.1, 2.0, 2.1, 3.0 are distinct
    }

    #[test]
    fn progress_moves_to_one() {
        let child = src(vec![Column::from_ints(vec![1])]);
        let mut agg = HashAggExec::new(
            child,
            vec![Expr::col(0)],
            vec![AggFunc::CountStar],
            vec![DataType::Int],
            vec![DataType::Int, DataType::Int],
            OpMetrics::shared(),
        );
        assert_eq!(agg.progress(), 0.0);
        while agg.next_batch().is_some() {}
        assert_eq!(agg.progress(), 1.0);
    }
}
