//! Hash joins: inner, left outer, semi, anti, and single-row broadcast.
//!
//! The build side (right input) is drained into a hash table first — the
//! only materialization a pipelined engine performs for joins — and the
//! probe side then streams through batch-at-a-time. The index maps
//! pre-computed 64-bit key hashes ([`rdb_vector::hash_columns`]: one typed
//! pass per key column, no per-row byte encoding) to candidate build rows;
//! probes hash a whole batch's keys in bulk and confirm candidates with
//! the positional equality predicate [`rdb_vector::key_rows_eq`], so the
//! row-at-a-time work left in the probe loop is an array lookup and a
//! typed compare. Probe batches are consumed selection-aware: semi/anti
//! joins emit the probe batch with a narrowed selection (zero-copy), and
//! single-row broadcasts share the probe columns.

use std::sync::Arc;

use fxhash::{FxBuildHasher, FxHashMap};

use rdb_expr::{eval, Expr};
use rdb_vector::column::ColumnBuilder;
use rdb_vector::row::row_has_null_key;
use rdb_vector::{hash_columns, key_rows_eq, Batch, Column, DataType};

use crate::metrics::OpMetrics;
use crate::op::{timed_next, Operator};

pub use rdb_plan::JoinKind;

/// The materialized build side of a hash join: the concatenated build
/// input plus its key index. Under morsel-driven parallel execution one
/// build side is shared by every probe worker of the query (see
/// [`SharedBuild`]), which is also what keeps a `store` tee under the build
/// subtree publishing exactly once. A build side is also a first-class
/// recycler artifact: published keyed by its build subplan, a later query
/// joining against the same subplan probes it without rebuilding.
#[derive(Debug)]
pub struct BuildSide {
    /// Concatenated build input.
    batch: Batch,
    /// Key columns evaluated over `batch`, kept to confirm hash-bucket
    /// candidates positionally (hashes are candidates, not proofs).
    key_cols: Vec<Column>,
    /// Key hash → row indices in `batch`, each list in build-row order
    /// (which is what keeps join output order identical across runs).
    index: FxHashMap<u64, Vec<u32>>,
}

impl BuildSide {
    /// Build-side row count.
    pub fn rows(&self) -> usize {
        self.batch.rows()
    }

    /// Memory footprint in bytes: the batch, the kept key columns, and an
    /// estimate of the hash index (hash words, row-id lists, per-entry
    /// bookkeeping). This is what the recycler cache accounts for a cached
    /// build side.
    pub fn size_bytes(&self) -> usize {
        let index_bytes: usize = self
            .index
            .values()
            .map(|v| std::mem::size_of::<u64>() + v.len() * std::mem::size_of::<u32>() + 48)
            .sum();
        let key_bytes: usize = self.key_cols.iter().map(|c| c.size_bytes()).sum();
        self.batch.size_bytes() + key_bytes + index_bytes
    }

    /// The concatenated build batch (dense; gathers index it physically).
    pub(crate) fn batch(&self) -> &Batch {
        &self.batch
    }

    /// Map-side probe over prepared probe keys: for every probe row
    /// yielded by `rows` (physical indices, in order), append the verified
    /// `(probe, build)` match pairs; rows with no match — including NULL
    /// keys, which no indexed build row can equal — go to `unmatched` when
    /// `want_unmatched` (left outer).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_pairs(
        &self,
        probe_keys: &[&Column],
        hashes: &[u64],
        rows: impl Iterator<Item = u32>,
        want_unmatched: bool,
        left_idx: &mut Vec<u32>,
        right_idx: &mut Vec<u32>,
        unmatched: &mut Vec<u32>,
    ) {
        let build_keys: Vec<&Column> = self.key_cols.iter().collect();
        for row in rows {
            let mut any = false;
            if let Some(cands) = self.index.get(&hashes[row as usize]) {
                for &r in cands {
                    if key_rows_eq(probe_keys, row as usize, &build_keys, r as usize) {
                        left_idx.push(row);
                        right_idx.push(r);
                        any = true;
                    }
                }
            }
            if !any && want_unmatched {
                unmatched.push(row);
            }
        }
    }

    /// Existence probe (semi/anti): keep the probe rows whose
    /// has-a-verified-match status equals `want_match`. NULL probe keys
    /// never match (no indexed build row can equal them).
    pub(crate) fn probe_keep(
        &self,
        probe_keys: &[&Column],
        hashes: &[u64],
        rows: impl Iterator<Item = u32>,
        want_match: bool,
        keep: &mut Vec<u32>,
    ) {
        let build_keys: Vec<&Column> = self.key_cols.iter().collect();
        for row in rows {
            let has = self.index.get(&hashes[row as usize]).is_some_and(|cands| {
                cands
                    .iter()
                    .any(|&r| key_rows_eq(probe_keys, row as usize, &build_keys, r as usize))
            });
            if has == want_match {
                keep.push(row);
            }
        }
    }
}

/// Iterate a batch's selected physical rows (its selection vector, or all
/// physical rows when it has none) — the probe loops' row domain.
pub(crate) fn selected_rows(batch: &Batch) -> impl Iterator<Item = u32> + '_ {
    let sel = batch.sel();
    let dense_end = if sel.is_some() {
        0
    } else {
        batch.physical_rows() as u32
    };
    sel.into_iter().flatten().copied().chain(0..dense_end)
}

/// Drain `right` and index it on `right_keys` (`right_types` shape a
/// zero-row build so gathers still work).
pub(crate) fn build_side(
    right: &mut dyn Operator,
    right_keys: &[Expr],
    right_types: &[DataType],
    metrics: &OpMetrics,
) -> BuildSide {
    let mut batches = Vec::new();
    while let Some(b) = right.next_batch() {
        metrics.add_work(b.rows() as u64);
        batches.push(b);
    }
    let batch = if batches.is_empty() {
        // Zero-row batch with the right column types, so gathers work.
        Batch::new(
            right_types
                .iter()
                .map(|t| ColumnBuilder::new(*t, 0).finish())
                .collect(),
        )
    } else {
        Batch::concat(&batches)
    };
    let mut index: FxHashMap<u64, Vec<u32>> =
        FxHashMap::with_capacity_and_hasher(batch.rows(), FxBuildHasher::default());
    let mut key_cols: Vec<Column> = Vec::new();
    if !right_keys.is_empty() {
        key_cols = right_keys.iter().map(|e| eval(e, &batch)).collect();
        let key_refs: Vec<&Column> = key_cols.iter().collect();
        let mut hashes = Vec::new();
        hash_columns(&key_refs, batch.rows(), &mut hashes);
        for (row, &h) in hashes.iter().enumerate() {
            if row_has_null_key(&key_refs, row) {
                continue; // SQL equality never matches NULL keys
            }
            index.entry(h).or_default().push(row as u32);
        }
    }
    BuildSide {
        batch,
        key_cols,
        index,
    }
}

/// A build side computed once and shared across probe workers. The first
/// worker to need it drains the build operator under the lock (including
/// any `store` tee inside, which therefore publishes exactly once and in
/// deterministic serial order); the rest block briefly, then share the
/// `Arc`.
pub struct SharedBuild {
    state: parking_lot::Mutex<SharedBuildState>,
}

/// Called once, right after a pending build side is first constructed,
/// with the build and its measured construction cost — the recycler's
/// publish hook. Never called for warm ([`SharedBuild::ready`]) builds.
pub type BuildPublish = Box<dyn FnOnce(&Arc<BuildSide>, crate::store::StateCost) + Send>;

enum SharedBuildState {
    Pending {
        right: Box<dyn Operator>,
        right_keys: Vec<Expr>,
        right_types: Vec<DataType>,
        metrics: Arc<OpMetrics>,
        publish: Option<BuildPublish>,
    },
    Ready(Arc<BuildSide>),
    /// The building worker panicked mid-drain. The mutex does not poison,
    /// so this sentinel is what keeps a later worker from re-draining the
    /// half-consumed build operator into an *incomplete* index — wrong
    /// join rows would then stream out before the query ever failed.
    Failed,
}

impl SharedBuild {
    /// Wrap a build operator for on-demand, build-once sharing. `publish`
    /// (if any) fires once when the build side is first constructed.
    pub fn new(
        right: Box<dyn Operator>,
        right_keys: Vec<Expr>,
        right_types: Vec<DataType>,
        metrics: Arc<OpMetrics>,
        publish: Option<BuildPublish>,
    ) -> Arc<SharedBuild> {
        Arc::new(SharedBuild {
            state: parking_lot::Mutex::new(SharedBuildState::Pending {
                right,
                right_keys,
                right_types,
                metrics,
                publish,
            }),
        })
    }

    /// A build side already in hand (a recycler warm hit): every worker
    /// shares it immediately; the build operator is never constructed,
    /// never drained, and nothing is re-published.
    pub fn ready(built: Arc<BuildSide>) -> Arc<SharedBuild> {
        Arc::new(SharedBuild {
            state: parking_lot::Mutex::new(SharedBuildState::Ready(built)),
        })
    }

    pub(crate) fn get(&self) -> Arc<BuildSide> {
        let mut st = self.state.lock();
        // Take the pending pieces out and leave `Failed` behind while
        // draining: if the drain panics (unwinding through the
        // non-poisoning lock), every later worker sees the sentinel and
        // fails loudly instead of indexing the half-drained remainder.
        match std::mem::replace(&mut *st, SharedBuildState::Failed) {
            SharedBuildState::Ready(b) => {
                *st = SharedBuildState::Ready(b.clone());
                b
            }
            SharedBuildState::Pending {
                mut right,
                right_keys,
                right_types,
                metrics,
                publish,
            } => {
                let start = std::time::Instant::now();
                let built = Arc::new(build_side(
                    right.as_mut(),
                    &right_keys,
                    &right_types,
                    &metrics,
                ));
                if let Some(publish) = publish {
                    let rows = built.rows() as u64;
                    publish(
                        &built,
                        crate::store::StateCost {
                            cost_ns: start.elapsed().as_nanos() as f64,
                            cost_work: rows as f64,
                            rows,
                        },
                    );
                }
                *st = SharedBuildState::Ready(built.clone());
                built
            }
            SharedBuildState::Failed => {
                panic!("shared join build side failed in another worker")
            }
        }
    }
}

/// Where a join instance gets its build side from.
enum BuildSource {
    /// This operator owns and drains the build child (serial execution).
    Own(Box<dyn Operator>),
    /// Shared with sibling probe workers of a parallel pipeline.
    Shared(Arc<SharedBuild>),
}

/// Hash equi-join.
pub struct HashJoinExec {
    left: Box<dyn Operator>,
    right: BuildSource,
    kind: JoinKind,
    left_keys: Vec<Expr>,
    right_keys: Vec<Expr>,
    /// Types of the right (build) side columns — needed to construct NULL
    /// padding for left-outer joins.
    right_types: Vec<DataType>,
    built: Option<Arc<BuildSide>>,
    /// Reused per-batch probe-hash buffer (allocation-free once warm).
    hash_scratch: Vec<u64>,
    metrics: Arc<OpMetrics>,
}

impl HashJoinExec {
    /// Create a join; `right_types` are the build side's output types.
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        kind: JoinKind,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        right_types: Vec<DataType>,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        HashJoinExec {
            left,
            right: BuildSource::Own(right),
            kind,
            left_keys,
            right_keys,
            right_types,
            built: None,
            hash_scratch: Vec::new(),
            metrics,
        }
    }

    /// Probe-side instance of a parallel pipeline: shares `build` with its
    /// sibling workers instead of draining a build child of its own.
    pub fn with_shared_build(
        left: Box<dyn Operator>,
        build: Arc<SharedBuild>,
        kind: JoinKind,
        left_keys: Vec<Expr>,
        right_types: Vec<DataType>,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        HashJoinExec {
            left,
            right: BuildSource::Shared(build),
            kind,
            left_keys,
            right_keys: Vec::new(),
            right_types,
            built: None,
            hash_scratch: Vec::new(),
            metrics,
        }
    }

    fn build(&mut self) -> Arc<BuildSide> {
        match &mut self.right {
            BuildSource::Own(right) => Arc::new(build_side(
                right.as_mut(),
                &self.right_keys,
                &self.right_types,
                &self.metrics,
            )),
            BuildSource::Shared(shared) => shared.get(),
        }
    }

    fn probe(&mut self, left_batch: Batch) -> Batch {
        let built = self.built.clone().expect("probe before build");
        self.metrics.add_work(left_batch.rows() as u64);
        match self.kind {
            JoinKind::Single => {
                assert_eq!(
                    built.batch.rows(),
                    1,
                    "single join build side must have exactly one row"
                );
                // Broadcast the single build row across the probe batch's
                // physical rows and keep the probe's selection: the probe
                // columns stay shared, nothing is gathered.
                let n = left_batch.physical_rows();
                let idx = vec![0u32; n];
                let right_part = built.batch.take(&idx);
                let sel = left_batch.sel_arc();
                let mut cols: Vec<Column> = left_batch.columns().to_vec();
                cols.extend(right_part.into_columns());
                let out = Batch::new(cols);
                match sel {
                    Some(s) => out.with_selection(s),
                    None => out,
                }
            }
            JoinKind::Inner | JoinKind::LeftOuter => {
                // Key columns are evaluated (and hashed in bulk) over the
                // physical rows; the selection decides which of them probe.
                let key_cols: Vec<Column> = self
                    .left_keys
                    .iter()
                    .map(|e| eval(e, &left_batch))
                    .collect();
                let key_refs: Vec<&Column> = key_cols.iter().collect();
                hash_columns(
                    &key_refs,
                    left_batch.physical_rows(),
                    &mut self.hash_scratch,
                );
                let mut left_idx: Vec<u32> = Vec::new();
                let mut right_idx: Vec<u32> = Vec::new();
                let mut unmatched: Vec<u32> = Vec::new();
                built.probe_pairs(
                    &key_refs,
                    &self.hash_scratch,
                    selected_rows(&left_batch),
                    self.kind == JoinKind::LeftOuter,
                    &mut left_idx,
                    &mut right_idx,
                    &mut unmatched,
                );
                let matched_left = left_batch.take_physical(&left_idx);
                let matched_right = built.batch.take_physical(&right_idx);
                let mut cols = matched_left.into_columns();
                cols.extend(matched_right.into_columns());
                let matched = Batch::new(cols);
                if self.kind == JoinKind::LeftOuter && !unmatched.is_empty() {
                    let pad_left = left_batch.take_physical(&unmatched);
                    let n = pad_left.rows();
                    let mut cols = pad_left.into_columns();
                    for t in &self.right_types {
                        let mut b = ColumnBuilder::new(*t, n);
                        for _ in 0..n {
                            b.push_null();
                        }
                        cols.push(b.finish());
                    }
                    let padded = Batch::new(cols);
                    Batch::concat(&[matched, padded])
                } else {
                    matched
                }
            }
            JoinKind::Semi | JoinKind::Anti => {
                let key_cols: Vec<Column> = self
                    .left_keys
                    .iter()
                    .map(|e| eval(e, &left_batch))
                    .collect();
                let key_refs: Vec<&Column> = key_cols.iter().collect();
                hash_columns(
                    &key_refs,
                    left_batch.physical_rows(),
                    &mut self.hash_scratch,
                );
                let mut keep: Vec<u32> = Vec::new();
                built.probe_keep(
                    &key_refs,
                    &self.hash_scratch,
                    selected_rows(&left_batch),
                    self.kind == JoinKind::Semi,
                    &mut keep,
                );
                // Zero-copy: the output is the probe batch narrowed to the
                // qualifying rows.
                left_batch.with_selection(Arc::new(keep))
            }
        }
    }
}

impl Operator for HashJoinExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            if self.built.is_none() {
                let built = self.build();
                self.built = Some(built);
            }
            loop {
                let left_batch = self.left.next_batch()?;
                let out = self.probe(left_batch);
                if !out.is_empty() {
                    return Some(out);
                }
            }
        })
    }

    fn progress(&self) -> f64 {
        // Probe side drives the pipeline.
        self.left.progress()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::run_to_batch;
    use rdb_vector::Value;

    struct Source {
        batches: Vec<Batch>,
    }

    impl Operator for Source {
        fn next_batch(&mut self) -> Option<Batch> {
            if self.batches.is_empty() {
                None
            } else {
                Some(self.batches.remove(0))
            }
        }
        fn progress(&self) -> f64 {
            1.0
        }
    }

    fn src(cols: Vec<Column>) -> Box<dyn Operator> {
        Box::new(Source {
            batches: vec![Batch::new(cols)],
        })
    }

    fn empty_src() -> Box<dyn Operator> {
        Box::new(Source { batches: vec![] })
    }

    fn join(
        kind: JoinKind,
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        right_types: Vec<DataType>,
    ) -> HashJoinExec {
        HashJoinExec::new(
            left,
            right,
            kind,
            vec![Expr::col(0)],
            vec![Expr::col(0)],
            right_types,
            OpMetrics::shared(),
        )
    }

    #[test]
    fn inner_join_matches_pairs() {
        let left = src(vec![
            Column::from_ints(vec![1, 2, 3]),
            Column::from_strs(["a", "b", "c"]),
        ]);
        let right = src(vec![
            Column::from_ints(vec![2, 3, 3]),
            Column::from_floats(vec![0.2, 0.3, 0.33]),
        ]);
        let mut j = join(
            JoinKind::Inner,
            left,
            right,
            vec![DataType::Int, DataType::Float],
        );
        let out = run_to_batch(&mut j);
        assert_eq!(out.rows(), 3); // 2→1 match, 3→2 matches
        let mut rows = out.to_rows();
        rows.sort_by(|a, b| a[0].cmp(&b[0]).then(a[3].cmp(&b[3])));
        assert_eq!(
            rows[0],
            vec![
                Value::Int(2),
                Value::str("b"),
                Value::Int(2),
                Value::Float(0.2)
            ]
        );
        assert_eq!(rows[2][3], Value::Float(0.33));
    }

    #[test]
    fn left_outer_pads_with_nulls() {
        let left = src(vec![Column::from_ints(vec![1, 2])]);
        let right = src(vec![Column::from_ints(vec![2]), Column::from_strs(["hit"])]);
        let mut j = join(
            JoinKind::LeftOuter,
            left,
            right,
            vec![DataType::Int, DataType::Str],
        );
        let out = run_to_batch(&mut j);
        assert_eq!(out.rows(), 2);
        let mut rows = out.to_rows();
        rows.sort_by(|a, b| a[0].cmp(&b[0]));
        assert_eq!(rows[0], vec![Value::Int(1), Value::Null, Value::Null]);
        assert_eq!(
            rows[1],
            vec![Value::Int(2), Value::Int(2), Value::str("hit")]
        );
    }

    #[test]
    fn semi_and_anti() {
        let mk = || src(vec![Column::from_ints(vec![1, 2, 3, 4])]);
        let right = || src(vec![Column::from_ints(vec![2, 4, 4])]);
        let mut semi = join(JoinKind::Semi, mk(), right(), vec![DataType::Int]);
        let out = run_to_batch(&mut semi);
        assert_eq!(out.column(0).as_ints(), &[2, 4]); // no duplication
        let mut anti = join(JoinKind::Anti, mk(), right(), vec![DataType::Int]);
        let out = run_to_batch(&mut anti);
        assert_eq!(out.column(0).as_ints(), &[1, 3]);
    }

    #[test]
    fn single_join_broadcasts() {
        let left = src(vec![Column::from_ints(vec![1, 2, 3])]);
        let right = src(vec![Column::from_floats(vec![9.5])]);
        let mut j = HashJoinExec::new(
            left,
            right,
            JoinKind::Single,
            vec![],
            vec![],
            vec![DataType::Float],
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut j);
        assert_eq!(out.rows(), 3);
        assert_eq!(out.column(1).as_floats(), &[9.5, 9.5, 9.5]);
    }

    #[test]
    fn empty_build_side() {
        let left = src(vec![Column::from_ints(vec![1, 2])]);
        let mut inner = join(JoinKind::Inner, left, empty_src(), vec![DataType::Int]);
        assert!(run_to_batch(&mut inner).is_empty());
        let left = src(vec![Column::from_ints(vec![1, 2])]);
        let mut anti = join(JoinKind::Anti, left, empty_src(), vec![DataType::Int]);
        assert_eq!(run_to_batch(&mut anti).rows(), 2);
        let left = src(vec![Column::from_ints(vec![1, 2])]);
        let mut outer = join(JoinKind::LeftOuter, left, empty_src(), vec![DataType::Int]);
        let out = run_to_batch(&mut outer);
        assert_eq!(out.rows(), 2);
        assert_eq!(out.column(1).null_count(), 2);
    }

    #[test]
    fn null_keys_never_match() {
        let mut b = ColumnBuilder::new(DataType::Int, 2);
        b.push(Value::Int(1));
        b.push_null();
        let left = src(vec![b.finish()]);
        let mut bb = ColumnBuilder::new(DataType::Int, 2);
        bb.push(Value::Int(1));
        bb.push_null();
        let right = src(vec![bb.finish()]);
        let mut j = join(JoinKind::Inner, left, right, vec![DataType::Int]);
        let out = run_to_batch(&mut j);
        assert_eq!(out.rows(), 1, "NULL = NULL must not match");
    }
}
