//! Pull-based batch streaming over a built executor.
//!
//! [`ExecStream`] is the public face of the operator pull loop: it wraps a
//! built [`ExecTree`] and yields result [`Batch`]es one vector at a time
//! (`Iterator<Item = Batch>`), so consumers stay pipelined end-to-end
//! instead of receiving one concatenated result. Materialization is an
//! explicit choice via [`ExecStream::collect_batch`].

use std::sync::Arc;

use rdb_vector::{Batch, Schema};

use crate::build::ExecTree;
use crate::error::{ExecError, FailSlot};
use crate::metrics::MetricsNode;
use crate::op::Operator;

/// An executing query as an iterator of result batches.
pub struct ExecStream {
    root: Box<dyn Operator>,
    metrics: MetricsNode,
    schema: Schema,
    exhausted: bool,
    fail: Arc<FailSlot>,
}

impl ExecStream {
    /// Wrap a built executor tree.
    pub fn new(tree: ExecTree) -> ExecStream {
        ExecStream {
            root: tree.root,
            metrics: tree.metrics,
            schema: tree.schema,
            exhausted: false,
            fail: tree.fail,
        }
    }

    /// The execution failure recorded by a pipeline worker, if any. A
    /// stream that ends with an error here ended *short* — the consumer
    /// must treat the result as truncated (the session layer aborts its
    /// recycler bookkeeping and reports the error instead of success).
    pub fn error(&self) -> Option<ExecError> {
        self.fail.get()
    }

    /// Result schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Per-operator measurements collected so far (live during execution).
    pub fn metrics(&self) -> &MetricsNode {
        &self.metrics
    }

    /// Whether the stream has returned `None` (fully drained).
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Root progress meter in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.exhausted {
            1.0
        } else {
            self.root.progress()
        }
    }

    /// Drain the remaining batches and concatenate them (explicit
    /// materialization; an empty result keeps the schema's width).
    pub fn collect_batch(&mut self) -> Batch {
        let mut batches = Vec::new();
        for b in &mut *self {
            batches.push(b);
        }
        Batch::concat_or_empty(&self.schema, &batches)
    }
}

impl Iterator for ExecStream {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.exhausted {
            return None;
        }
        match self.root.next_batch() {
            // The public edge is a materialization boundary: clients index
            // columns positionally, so any in-flight selection vector is
            // resolved here. Unselected batches pass through as zero-copy
            // shared clones.
            Some(b) => Some(b.compact()),
            None => {
                self.exhausted = true;
                None
            }
        }
    }
}

impl ExecTree {
    /// Turn this built executor into a pull stream.
    pub fn into_stream(self) -> ExecStream {
        ExecStream::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crate::context::ExecContext;
    use rdb_expr::Expr;
    use rdb_plan::scan;
    use rdb_storage::{Catalog, TableBuilder};
    use rdb_vector::{DataType, Value, BATCH_CAPACITY};
    use std::sync::Arc;

    fn ctx(rows: usize) -> ExecContext {
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs([("k", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema, rows);
        for i in 0..rows {
            b.push_row(vec![Value::Int(i as i64)]);
        }
        cat.register(b.finish()).expect("register table");
        ExecContext::new(Arc::new(cat))
    }

    #[test]
    fn stream_yields_vector_at_a_time() {
        let ctx = ctx(BATCH_CAPACITY * 3 + 10);
        let plan = scan("t", &["k"]).bind(&ctx.catalog).unwrap();
        let mut stream = build(&plan, &ctx).unwrap().into_stream();
        assert_eq!(stream.schema().names(), vec!["k"]);
        let mut batches = 0;
        let mut rows = 0;
        for b in &mut stream {
            batches += 1;
            rows += b.rows();
            assert!(b.rows() <= BATCH_CAPACITY);
        }
        assert_eq!(batches, 4);
        assert_eq!(rows, BATCH_CAPACITY * 3 + 10);
        assert!(stream.exhausted());
        assert_eq!(stream.progress(), 1.0);
    }

    #[test]
    fn collect_batch_materializes_remainder() {
        let ctx = ctx(BATCH_CAPACITY + 5);
        let plan = scan("t", &["k"])
            .select(Expr::name("k").ge(Expr::lit(0)))
            .bind(&ctx.catalog)
            .unwrap();
        let mut stream = build(&plan, &ctx).unwrap().into_stream();
        let first = stream.next().unwrap();
        let rest = stream.collect_batch();
        assert_eq!(first.rows() + rest.rows(), BATCH_CAPACITY + 5);
        // Exhausted stream keeps returning None.
        assert!(stream.next().is_none());
        assert_eq!(stream.collect_batch().rows(), 0);
    }
}
