//! Morsel-driven intra-query parallelism.
//!
//! A *pipeline* — the stretch of pipelining operators (selection,
//! projection, join probes) between a base-table scan and the next
//! pipeline breaker — is the unit of parallel execution. The scan is split
//! into [`rdb_vector::BATCH_CAPACITY`]-sized **morsels** (O(1) zero-copy
//! column windows over the pinned table snapshot); a [`MorselDispenser`]
//! hands them out to workers on demand, which is the load balancing: fast
//! workers simply take more morsels. Every worker owns a private clone of
//! the pipeline's operator segment fed one morsel at a time through a
//! [`SegmentPipe`], so no operator state is ever shared between threads —
//! only three things are: the dispenser, the per-plan-node [`OpMetrics`]
//! (atomic counters, summed across workers), and a hash join's
//! [`crate::join::SharedBuild`] (built exactly once, by the first worker
//! that needs it).
//!
//! **Determinism.** Parallel execution must be observationally identical
//! to serial execution — the recycler caches results by plan fingerprint
//! and replays them byte-for-byte, so a `store` tee under a parallel
//! pipeline has to publish the same `MaterializedResult` at any DOP:
//!
//! * the morsel grid is a pure function of the table's row count
//!   ([`rdb_vector::morsel_count`]), identical to the serial scan's batch
//!   boundaries;
//! * each morsel's trip through the segment is a pure function of the
//!   morsel (operators are deterministic), so worker interleaving can only
//!   permute *whole morsel outputs*;
//! * [`GatherExec`] undoes that permutation: workers tag outputs with
//!   their morsel index and the gather re-sequences them, emitting exactly
//!   the serial batch sequence;
//! * order-insensitive breakers take the other route: parallel aggregation
//!   merges per-worker [`GroupTable`] partials and sorts groups by key
//!   (the serial aggregate emits in the same sorted order), and parallel
//!   top-N merges per-worker heap runs whose ties are broken by global
//!   scan position (the serial top-N uses the same rule).
//!
//! **Failure.** A panicking worker records a structured [`ExecError`] into
//! the query's shared [`FailSlot`] before its channel sender drops; the
//! consumer detects the shortfall (morsels or partials missing), ends the
//! stream cleanly, and the error surfaces through
//! [`crate::stream::ExecStream::error`] — no panic crosses the gather
//! boundary, and a poisoned source can never publish a truncated result.
//! The pool itself survives ([`crate::pool`]).

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;

use parking_lot::Mutex;

use rdb_expr::{AggFunc, Expr};
use rdb_plan::{Plan, SortKeyExpr};
use rdb_storage::Table;
use rdb_vector::{morsel_bounds, morsel_count, Batch, DataType};

use crate::agg::{emit_groups, GroupTable};
use crate::error::{panic_message, ExecError, FailSlot};
use crate::filter::{FilterExec, ProjectExec};
use crate::fuse::FusedChain;
use crate::join::{HashJoinExec, SharedBuild};
use crate::metrics::{MetricsNode, OpMetrics};
use crate::op::{timed_next, Operator};
use crate::pool::{run_jobs, Job, WorkerPool};
use crate::sort::TopNState;

/// Hands out `(morsel index, batch)` pairs from a pinned table snapshot.
/// The atomic cursor *is* the work-stealing: workers pull the next morsel
/// whenever they finish one, so skew balances itself at morsel granularity.
pub struct MorselDispenser {
    table: Arc<Table>,
    projection: Vec<usize>,
    next: AtomicUsize,
    total: usize,
    metrics: Arc<OpMetrics>,
    cancel: Option<Arc<AtomicBool>>,
}

impl MorselDispenser {
    /// Dispense the morsels of `table` under `projection`.
    pub fn new(table: Arc<Table>, projection: Vec<usize>, metrics: Arc<OpMetrics>) -> Self {
        let total = morsel_count(table.rows());
        MorselDispenser {
            table,
            projection,
            next: AtomicUsize::new(0),
            total,
            metrics,
            cancel: None,
        }
    }

    /// Observe a cancellation flag: a set flag stops morsel hand-out, so
    /// every worker winds down at its next morsel boundary — the parallel
    /// analog of the serial scan's batch-boundary cancel check. The flag
    /// is only loaded, never cleared.
    pub fn with_cancel(mut self, cancel: Option<Arc<AtomicBool>>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Whether the query driving this dispenser has been cancelled.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Acquire))
    }

    /// Total number of morsels.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Claim the next morsel, or `None` when the scan is exhausted (or the
    /// query was cancelled).
    pub fn next_morsel(&self) -> Option<(u64, Batch)> {
        if self.cancelled() {
            return None;
        }
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        if idx >= self.total {
            return None;
        }
        let (offset, len) = morsel_bounds(self.table.rows(), idx);
        let batch = self.table.scan_batch(&self.projection, offset, len);
        self.metrics.add_call();
        self.metrics.add_rows(batch.rows() as u64);
        self.metrics.add_bytes(batch.size_bytes() as u64);
        Some((idx as u64, batch))
    }

    /// Fraction of morsels dispatched so far.
    pub fn progress(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.next.load(Ordering::Relaxed).min(self.total) as f64 / self.total as f64
    }
}

/// The leaf of a worker's segment: yields the one batch the worker loaded,
/// then `None` until the next morsel is loaded.
struct SlotSource {
    slot: Arc<Mutex<Option<Batch>>>,
}

impl Operator for SlotSource {
    fn next_batch(&mut self) -> Option<Batch> {
        self.slot.lock().take()
    }
    fn progress(&self) -> f64 {
        0.0
    }
}

/// One worker's private pipeline segment, driven morsel-at-a-time. Either
/// an operator chain over a slot leaf (load the morsel, drain the chain —
/// the pipelining operators are restartable after `None`, so one segment
/// serves every morsel the worker claims), or a [`FusedChain`] running the
/// whole span as one push-style loop. Both produce identical outputs; the
/// fused form is the default ([`crate::context::ExecContext::fusion`]).
pub enum SegmentPipe {
    /// Unfused: a private operator chain over a morsel slot.
    Ops {
        /// The slot the worker loads each morsel into.
        slot: Arc<Mutex<Option<Batch>>>,
        /// Chain root (pulls from the slot leaf).
        root: Box<dyn Operator>,
    },
    /// Fused: one push-style loop per morsel.
    Fused(FusedChain),
}

impl SegmentPipe {
    /// Push one morsel through, collecting its outputs (usually 0 or 1
    /// batches; joins may expand).
    fn push(&mut self, batch: Batch) -> Vec<Batch> {
        match self {
            SegmentPipe::Ops { slot, root } => {
                *slot.lock() = Some(batch);
                let mut outs = Vec::new();
                while let Some(b) = root.next_batch() {
                    outs.push(b);
                }
                outs
            }
            SegmentPipe::Fused(chain) => chain.push(batch).into_iter().collect(),
        }
    }

    /// Publish any deferred per-stage counters. Fused chains accumulate
    /// metrics locally between flushes; the unfused operators update the
    /// shared metrics inline, so this is a no-op for them.
    fn flush(&mut self) {
        if let SegmentPipe::Fused(chain) = self {
            chain.flush();
        }
    }
}

/// A constructed parallel pipeline, ready to be wrapped by a consumer
/// ([`GatherExec`], [`ParallelAggExec`], [`ParallelTopNExec`]).
pub struct ParallelSource {
    /// Shared morsel source (also the progress meter).
    pub dispenser: Arc<MorselDispenser>,
    /// One segment per worker.
    pub segments: Vec<SegmentPipe>,
    /// Metrics tree mirroring the pipeline's plan shape (stages share one
    /// `OpMetrics` per plan node across workers).
    pub metrics: MetricsNode,
    /// Pool to run on (`None`: plain spawned threads).
    pub pool: Option<Arc<WorkerPool>>,
    /// Where workers record failures (shared with the whole execution).
    pub fail: Arc<FailSlot>,
}

/// The callback [`build_source`] uses to construct join build sides — the
/// plan builder's own recursive entry point, so build subtrees (which may
/// contain stores, cached reads, or nested parallel pipelines) are built
/// exactly like serial plans.
pub type BuildChild<'a> =
    dyn FnMut(&Plan) -> Result<(Box<dyn Operator>, MetricsNode), rdb_plan::PlanError> + 'a;

/// Try to construct a parallel pipeline over `plan` with up to `dop`
/// workers. Returns `Ok(None)` when the subtree is not a scan-rooted
/// pipeline (or is too small to be worth splitting); the caller then falls
/// back to the serial build.
pub fn build_source(
    plan: &Plan,
    ctx: &crate::context::ExecContext,
    dop: usize,
    build_child: &mut BuildChild<'_>,
) -> Result<Option<ParallelSource>, rdb_plan::PlanError> {
    if dop < 2 {
        return Ok(None);
    }
    if ctx.fusion {
        // Fused form: build one prototype chain and clone it per worker
        // (clones share the Arc'ed metrics and build sides but own their
        // scratch buffers).
        let Some(fused) = crate::fuse::build_fused_pipeline(plan, ctx, true, build_child)? else {
            return Ok(None);
        };
        let dop = dop.min(fused.dispenser.total());
        let segments = (0..dop)
            .map(|_| SegmentPipe::Fused(fused.chain.clone()))
            .collect();
        return Ok(Some(ParallelSource {
            dispenser: fused.dispenser,
            segments,
            metrics: fused.metrics,
            pool: ctx.pool.clone(),
            fail: ctx.fail.clone(),
        }));
    }
    // Walk the chain: pipelining unary stages and join probes down to a
    // base-table scan.
    let mut stages: Vec<&Plan> = Vec::new();
    let mut cur = plan;
    let (table_name, cols) = loop {
        match cur {
            Plan::Scan { table, cols } => {
                if stages.is_empty() {
                    // A bare scan has no per-morsel work to parallelize.
                    return Ok(None);
                }
                break (table, cols);
            }
            Plan::Select { child, .. } | Plan::Project { child, .. } => {
                stages.push(cur);
                cur = child;
            }
            Plan::Join { left, .. } => {
                stages.push(cur);
                cur = left;
            }
            _ => return Ok(None),
        }
    };
    let Some(table) = ctx.table(table_name) else {
        return Ok(None); // serial build reports the unknown table
    };
    if morsel_count(table.rows()) < 2 {
        return Ok(None); // single morsel: serial is strictly cheaper
    }
    let projection: Vec<usize> = match cols
        .iter()
        .map(|c| table.schema().index_of(c))
        .collect::<Option<Vec<_>>>()
    {
        Some(p) => p,
        None => return Ok(None), // serial build reports the unknown column
    };
    let dop = dop.min(morsel_count(table.rows()));

    // Shared per-plan-node metrics, plus shared build sides for joins.
    let scan_metrics = OpMetrics::shared();
    let mut scan_node = MetricsNode::leaf(scan_metrics.clone());
    enum Stage {
        Filter(Expr, Arc<OpMetrics>),
        Project(Vec<Expr>, Arc<OpMetrics>),
        Probe {
            build: Arc<SharedBuild>,
            kind: rdb_plan::JoinKind,
            left_keys: Vec<Expr>,
            right_types: Vec<DataType>,
            metrics: Arc<OpMetrics>,
        },
    }
    // Bottom-up: reverse the collected top-down chain.
    let mut built_stages: Vec<Stage> = Vec::with_capacity(stages.len());
    for stage in stages.iter().rev() {
        let m = OpMetrics::shared();
        match stage {
            Plan::Select { predicate, .. } => {
                scan_node = MetricsNode::new(m.clone(), vec![scan_node]);
                built_stages.push(Stage::Filter(predicate.clone(), m));
            }
            Plan::Project { exprs, .. } => {
                scan_node = MetricsNode::new(m.clone(), vec![scan_node]);
                built_stages.push(Stage::Project(exprs.clone(), m));
            }
            Plan::Join {
                right,
                kind,
                left_keys,
                right_keys,
                ..
            } => {
                let right_types: Vec<DataType> = right
                    .schema(&ctx.catalog)?
                    .fields()
                    .iter()
                    .map(|f| f.dtype)
                    .collect();
                // Warm-fetch / cold-publish through the operator-state
                // cache, exactly like the serial join arm — same artifact
                // at any DOP.
                let (build, right_metrics) = crate::build::join_build(
                    right,
                    right_keys,
                    &right_types,
                    &m,
                    ctx,
                    build_child,
                )?;
                scan_node = MetricsNode::new(m.clone(), vec![scan_node, right_metrics]);
                built_stages.push(Stage::Probe {
                    build,
                    kind: *kind,
                    left_keys: left_keys.clone(),
                    right_types,
                    metrics: m,
                });
            }
            _ => unreachable!("chain walk admits only Select/Project/Join"),
        }
    }

    let dispenser = Arc::new(
        MorselDispenser::new(table, projection, scan_metrics).with_cancel(ctx.cancel.clone()),
    );
    let segments = (0..dop)
        .map(|_| {
            let slot = Arc::new(Mutex::new(None));
            let mut op: Box<dyn Operator> = Box::new(SlotSource { slot: slot.clone() });
            for stage in &built_stages {
                op = match stage {
                    Stage::Filter(predicate, m) => {
                        Box::new(FilterExec::new(op, predicate.clone(), m.clone()))
                    }
                    Stage::Project(exprs, m) => {
                        Box::new(ProjectExec::new(op, exprs.clone(), m.clone()))
                    }
                    Stage::Probe {
                        build,
                        kind,
                        left_keys,
                        right_types,
                        metrics,
                    } => Box::new(HashJoinExec::with_shared_build(
                        op,
                        build.clone(),
                        *kind,
                        left_keys.clone(),
                        right_types.clone(),
                        metrics.clone(),
                    )),
                };
            }
            SegmentPipe::Ops { slot, root: op }
        })
        .collect();
    Ok(Some(ParallelSource {
        dispenser,
        segments,
        metrics: scan_node,
        pool: ctx.pool.clone(),
        fail: ctx.fail.clone(),
    }))
}

// ---------------------------------------------------------------------------
// Gather: order-preserving parallel pipeline execution
// ---------------------------------------------------------------------------

/// How many morsel results may sit in flight per worker before producers
/// block (backpressure toward a slow consumer).
const GATHER_BACKLOG_PER_WORKER: usize = 4;

struct GatherRun {
    rx: Receiver<(u64, Vec<Batch>)>,
    /// Out-of-order arrivals waiting for their turn.
    pending: BTreeMap<u64, Vec<Batch>>,
    /// In-order batches ready to emit.
    ready: VecDeque<Batch>,
    /// Next morsel index to release.
    next: u64,
    total: u64,
}

enum GatherState {
    Pending(Option<ParallelSource>),
    Running(GatherRun),
    Done,
}

/// Runs a parallel pipeline and re-sequences worker outputs into canonical
/// morsel order, so downstream consumers (stores, breakers, the stream
/// edge) observe exactly the serial batch sequence.
pub struct GatherExec {
    state: GatherState,
    dispenser: Arc<MorselDispenser>,
    fail: Arc<FailSlot>,
}

impl GatherExec {
    /// Wrap a built parallel source.
    pub fn new(source: ParallelSource) -> GatherExec {
        let dispenser = source.dispenser.clone();
        let fail = source.fail.clone();
        GatherExec {
            state: GatherState::Pending(Some(source)),
            dispenser,
            fail,
        }
    }

    fn start(source: ParallelSource) -> GatherRun {
        let ParallelSource {
            dispenser,
            segments,
            pool,
            fail,
            ..
        } = source;
        let workers = segments.len();
        let (tx, rx) = sync_channel(workers * GATHER_BACKLOG_PER_WORKER);
        let total = dispenser.total() as u64;
        let jobs: Vec<Job> = segments
            .into_iter()
            .map(|mut seg| {
                let dispenser = dispenser.clone();
                let tx = tx.clone();
                let fail = fail.clone();
                Box::new(move || {
                    // Record the panic before the sender drops, so the
                    // consumer reads the cause instead of a bare shortfall.
                    let res = catch_unwind(AssertUnwindSafe(move || {
                        // Hold each morsel's output until the next one is
                        // claimed: the deferred metrics flush then happens
                        // before this worker's final send, i.e. strictly
                        // before the consumer can observe stream end.
                        let mut held: Option<(u64, Vec<Batch>)> = None;
                        while let Some((idx, morsel)) = dispenser.next_morsel() {
                            if let Some(prev) = held.take() {
                                if tx.send(prev).is_err() {
                                    return; // consumer dropped the stream
                                }
                            }
                            let outs = seg.push(morsel);
                            held = Some((idx, outs));
                        }
                        seg.flush();
                        if let Some(prev) = held {
                            let _ = tx.send(prev);
                        }
                    }));
                    if let Err(p) = res {
                        fail.set(ExecError::msg(format!(
                            "parallel pipeline worker panicked: {}",
                            panic_message(p.as_ref())
                        )));
                    }
                }) as Job
            })
            .collect();
        drop(tx);
        run_jobs(pool.as_ref(), jobs);
        GatherRun {
            rx,
            pending: BTreeMap::new(),
            ready: VecDeque::new(),
            next: 0,
            total,
        }
    }
}

impl Operator for GatherExec {
    fn next_batch(&mut self) -> Option<Batch> {
        loop {
            match &mut self.state {
                GatherState::Pending(source) => {
                    let Some(source) = source.take() else {
                        self.fail
                            .set(ExecError::msg("parallel gather restarted after teardown"));
                        self.state = GatherState::Done;
                        return None;
                    };
                    self.state = GatherState::Running(Self::start(source));
                }
                GatherState::Running(run) => {
                    if let Some(b) = run.ready.pop_front() {
                        return Some(b);
                    }
                    if run.next == run.total {
                        self.state = GatherState::Done;
                        return None;
                    }
                    if let Some(outs) = run.pending.remove(&run.next) {
                        run.ready.extend(outs);
                        run.next += 1;
                        continue;
                    }
                    match run.rx.recv() {
                        Ok((idx, outs)) => {
                            run.pending.insert(idx, outs);
                        }
                        Err(_) => {
                            if !self.dispenser.cancelled() {
                                // A worker died: its panic is already in
                                // the slot (recorded before the sender
                                // dropped); make sure *something* is, then
                                // end the stream. The session layer reads
                                // the slot and aborts recycler bookkeeping
                                // — a truncated stream never publishes.
                                self.fail.set(ExecError::msg(format!(
                                    "parallel pipeline worker failed before morsel {} of {}",
                                    run.next, run.total
                                )));
                            }
                            // On cancel the missing indices will simply
                            // never arrive; the connection layer reports
                            // the cancel itself.
                            self.state = GatherState::Done;
                            return None;
                        }
                    }
                }
                GatherState::Done => return None,
            }
        }
    }

    fn progress(&self) -> f64 {
        match &self.state {
            GatherState::Done => 1.0,
            // Morsels *dispatched* (the serial scan meter's analog);
            // slightly ahead of what has been emitted, which is what
            // speculative stores want for extrapolation.
            _ => self.dispenser.progress(),
        }
    }
}

// ---------------------------------------------------------------------------
// Partitioned breakers: aggregation and top-N over per-worker partials
// ---------------------------------------------------------------------------

/// Run the pipeline to completion, one `fold` state per worker, and hand
/// the partials back. `fold` receives the morsel index alongside each
/// output batch (top-N derives position tie-breaks from it; aggregation
/// ignores it). A dead worker never sends its partial — the shortfall
/// comes back as the structured error the worker recorded. (Cancellation
/// is not a shortfall: it stops morsel hand-out, so every worker still
/// winds down normally and sends its partial.)
fn run_partials<S: Send + 'static>(
    source: ParallelSource,
    make: impl Fn() -> S,
    fold: impl Fn(&mut S, u64, Batch) + Send + Sync + Clone + 'static,
) -> Result<Vec<S>, ExecError> {
    let ParallelSource {
        dispenser,
        segments,
        pool,
        fail,
        ..
    } = source;
    let workers = segments.len();
    let (tx, rx) = sync_channel(workers);
    let jobs: Vec<Job> = segments
        .into_iter()
        .map(|mut seg| {
            let dispenser = dispenser.clone();
            let tx = tx.clone();
            let fold = fold.clone();
            let fail = fail.clone();
            let mut state = make();
            Box::new(move || {
                let res = catch_unwind(AssertUnwindSafe(move || {
                    while let Some((idx, morsel)) = dispenser.next_morsel() {
                        for out in seg.push(morsel) {
                            fold(&mut state, idx, out);
                        }
                    }
                    // Flush deferred metrics before the partial is sent:
                    // the breaker counts partials to detect completion.
                    seg.flush();
                    let _ = tx.send(state);
                }));
                if let Err(p) = res {
                    fail.set(ExecError::msg(format!(
                        "parallel pipeline worker panicked: {}",
                        panic_message(p.as_ref())
                    )));
                }
            }) as Job
        })
        .collect();
    drop(tx);
    run_jobs(pool.as_ref(), jobs);
    let partials: Vec<S> = rx.into_iter().collect();
    if partials.len() != workers {
        return Err(fail.get().unwrap_or_else(|| {
            ExecError::msg(format!(
                "a parallel breaker worker failed ({} of {workers} partials arrived)",
                partials.len(),
            ))
        }));
    }
    Ok(partials)
}

/// Partitioned hash aggregation: every worker folds its morsels into a
/// private [`GroupTable`]; the partials are merged at the breaker and the
/// merged groups emitted sorted by key — the same order the serial
/// aggregate emits, so the result is independent of the merge order.
pub struct ParallelAggExec {
    source: Option<ParallelSource>,
    group_by: Vec<Expr>,
    aggs: Vec<AggFunc>,
    input_types: Vec<DataType>,
    output_types: Vec<DataType>,
    output: Option<Vec<Batch>>,
    emitted: usize,
    metrics: Arc<OpMetrics>,
    fail: Arc<FailSlot>,
}

impl ParallelAggExec {
    /// See [`crate::agg::HashAggExec::new`] for the parameter contract.
    pub fn new(
        source: ParallelSource,
        group_by: Vec<Expr>,
        aggs: Vec<AggFunc>,
        input_types: Vec<DataType>,
        output_types: Vec<DataType>,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        assert_eq!(group_by.len() + aggs.len(), output_types.len());
        let fail = source.fail.clone();
        ParallelAggExec {
            source: Some(source),
            group_by,
            aggs,
            input_types,
            output_types,
            output: None,
            emitted: 0,
            metrics,
            fail,
        }
    }

    fn build(&mut self) -> Result<Vec<Batch>, ExecError> {
        let Some(source) = self.source.take() else {
            return Err(ExecError::msg(
                "parallel aggregate restarted after teardown",
            ));
        };
        let group_by = self.group_by.clone();
        let aggs = self.aggs.clone();
        let input_types = self.input_types.clone();
        let agg_metrics = self.metrics.clone();
        let partials = run_partials(
            source,
            || GroupTable::new(group_by.clone(), aggs.clone(), input_types.clone()),
            move |table, _idx, batch| {
                agg_metrics.add_work(batch.rows() as u64);
                table.fold(&batch);
            },
        )?;
        let mut merged = GroupTable::new(
            self.group_by.clone(),
            self.aggs.clone(),
            self.input_types.clone(),
        );
        for p in partials {
            merged.merge(p);
        }
        let states = merged.into_sorted_states();
        Ok(emit_groups(
            &states,
            &self.output_types,
            self.group_by.len(),
        ))
    }
}

impl Operator for ParallelAggExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            if self.output.is_none() {
                match self.build() {
                    Ok(built) => self.output = Some(built),
                    Err(e) => {
                        // Surface through the fail slot and end the stream.
                        self.fail.set(e);
                        self.output = Some(Vec::new());
                    }
                }
            }
            let out = self.output.as_ref()?;
            if self.emitted < out.len() {
                let b = out[self.emitted].clone();
                self.emitted += 1;
                Some(b)
            } else {
                None
            }
        })
    }

    fn progress(&self) -> f64 {
        match &self.output {
            None => 0.0,
            Some(out) => {
                if out.is_empty() {
                    1.0
                } else {
                    self.emitted as f64 / out.len() as f64
                }
            }
        }
    }
}

/// Partitioned top-N: per-worker heap runs (ties broken by global scan
/// position, exactly like the serial operator) merged at the breaker.
pub struct ParallelTopNExec {
    source: Option<ParallelSource>,
    keys: Vec<SortKeyExpr>,
    n: usize,
    output_types: Vec<DataType>,
    output: Option<Vec<Batch>>,
    emitted: usize,
    metrics: Arc<OpMetrics>,
    fail: Arc<FailSlot>,
}

impl ParallelTopNExec {
    /// Keep the first `n` rows of the pipeline under `keys` order.
    pub fn new(
        source: ParallelSource,
        keys: Vec<SortKeyExpr>,
        n: usize,
        output_types: Vec<DataType>,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        let fail = source.fail.clone();
        ParallelTopNExec {
            source: Some(source),
            keys,
            n,
            output_types,
            output: None,
            emitted: 0,
            metrics,
            fail,
        }
    }

    fn build(&mut self) -> Result<Vec<Batch>, ExecError> {
        let Some(source) = self.source.take() else {
            return Err(ExecError::msg("parallel top-N restarted after teardown"));
        };
        let keys = self.keys.clone();
        let n = self.n;
        let topn_metrics = self.metrics.clone();
        let partials = run_partials(
            source,
            || TopNState::new(keys.clone(), n),
            move |state, idx, batch| {
                topn_metrics.add_work(batch.rows() as u64);
                // The morsel index feeds the global-scan-position
                // tie-break, matching the serial operator's chunk ordinal.
                state.fold(&batch, idx);
            },
        )?;
        let mut merged = TopNState::new(self.keys.clone(), self.n);
        for p in partials {
            merged.merge(p);
        }
        Ok(merged.into_batches(&self.output_types))
    }
}

impl Operator for ParallelTopNExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            if self.output.is_none() {
                match self.build() {
                    Ok(built) => self.output = Some(built),
                    Err(e) => {
                        self.fail.set(e);
                        self.output = Some(Vec::new());
                    }
                }
            }
            let out = self.output.as_ref()?;
            if self.emitted < out.len() {
                let b = out[self.emitted].clone();
                self.emitted += 1;
                Some(b)
            } else {
                None
            }
        })
    }

    fn progress(&self) -> f64 {
        match &self.output {
            None => 0.0,
            Some(out) => {
                if out.is_empty() {
                    1.0
                } else {
                    self.emitted as f64 / out.len() as f64
                }
            }
        }
    }
}
