//! Pipelined, vectorized query executor.
//!
//! Operators pull [`rdb_vector::Batch`]es from their children
//! (vector-at-a-time, the Vectorwise paradigm the paper targets). Pipelines
//! only break at blocking operators (hash aggregation, sort, top-N, join
//! build sides) — intermediate results are *not* materialized unless the
//! recycler decides to, which is the entire point of the paper.
//!
//! With `ExecContext::parallelism > 1` those same pipelines execute
//! **morsel-driven parallel** (see [`parallel`] for the model and its
//! determinism guarantees, and [`pool`] for the worker pool): scans split
//! into morsels claimed by workers on demand, pipeline breakers merge
//! per-worker partials, and order-preserving gathers keep every observable
//! byte — including what a [`StoreExec`] tee publishes into the recycler —
//! identical to serial execution at any degree of parallelism.
//!
//! Scan-rooted filter → project → join-probe chains additionally execute
//! **fused** ([`fuse`]): one push-style loop per morsel with selection
//! indices and probe-key hashes kept in reusable buffers, instead of one
//! pull hop per operator per batch. Fusion never crosses pipeline
//! breakers, store tees, or gather points — see [`fuse`] for the
//! boundary rule and why cache entries stay byte-identical.
//!
//! Recycler integration points (paper §II):
//!
//! * [`StoreExec`] — the `store` operator: pass along / buffer
//!   (speculation) / materialize the tuple flow without interrupting it;
//! * [`CachedExec`] — reads a previously materialized result;
//! * [`ResultStore`] — the trait through which store/cached operators talk
//!   to the recycler cache (implemented by `rdb-recycler`);
//! * [`OpMetrics`] / [`MetricsNode`] — per-operator run-time measurements
//!   (inclusive wall time, rows, abstract work units) used to annotate the
//!   recycler graph after each query, and *progress meters* (§III-D) used
//!   by speculative stores to extrapolate cost and size.

pub mod agg;
pub mod build;
pub mod context;
pub mod error;
pub mod filter;
pub mod fuse;
pub mod join;
pub mod metrics;
pub mod op;
pub mod parallel;
pub mod pool;
pub mod scan;
pub mod sort;
pub mod store;
pub mod stream;

pub use agg::{retract_count_groups, ResumedAgg};
pub use build::{build, ExecTree};
pub use context::{ExecContext, FnRegistry, TableFunction};
pub use error::{ExecError, FailSlot};
pub use fuse::{fused_span, FusedChain, FusedPipelineExec};
pub use join::{BuildPublish, BuildSide, SharedBuild};
pub use metrics::{MetricsNode, OpMetrics};
pub use op::{collect_all, run_to_batch, Operator};
pub use parallel::{GatherExec, MorselDispenser, ParallelAggExec, ParallelTopNExec};
pub use pool::WorkerPool;
pub use store::{
    ArtifactKind, CachedExec, MaterializedResult, OperatorState, ResultStore, SpeculationEstimate,
    StateCost, StoreExec, StoreVerdict,
};
pub use stream::ExecStream;
