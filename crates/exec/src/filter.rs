//! Pipelining operators: selection and projection.

use std::sync::Arc;

use rdb_expr::{eval, eval_predicate, Expr};
use rdb_vector::Batch;

use crate::metrics::OpMetrics;
use crate::op::{timed_next, Operator};

/// Vectorized selection: evaluates the predicate per batch and compacts.
pub struct FilterExec {
    child: Box<dyn Operator>,
    predicate: Expr,
    metrics: Arc<OpMetrics>,
}

impl FilterExec {
    /// Filter `child` by `predicate` (bound, boolean).
    pub fn new(child: Box<dyn Operator>, predicate: Expr, metrics: Arc<OpMetrics>) -> Self {
        FilterExec {
            child,
            predicate,
            metrics,
        }
    }
}

impl Operator for FilterExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            // Loop until a non-empty output batch or end of input, so
            // downstream operators never see empty batches.
            loop {
                let batch = self.child.next_batch()?;
                let mask = eval_predicate(&self.predicate, &batch);
                let out = batch.filter(&mask);
                if !out.is_empty() {
                    return Some(out);
                }
            }
        })
    }

    fn progress(&self) -> f64 {
        self.child.progress()
    }
}

/// Vectorized projection: computes one output column per expression.
pub struct ProjectExec {
    child: Box<dyn Operator>,
    exprs: Vec<Expr>,
    metrics: Arc<OpMetrics>,
}

impl ProjectExec {
    /// Project `child` through `exprs` (bound).
    pub fn new(child: Box<dyn Operator>, exprs: Vec<Expr>, metrics: Arc<OpMetrics>) -> Self {
        ProjectExec {
            child,
            exprs,
            metrics,
        }
    }
}

impl Operator for ProjectExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            let batch = self.child.next_batch()?;
            Some(Batch::new(
                self.exprs.iter().map(|e| eval(e, &batch)).collect(),
            ))
        })
    }

    fn progress(&self) -> f64 {
        self.child.progress()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::run_to_batch;
    use rdb_vector::Column;

    struct Source {
        batches: Vec<Batch>,
        emitted: usize,
        total: usize,
    }

    impl Source {
        fn ints(groups: Vec<Vec<i64>>) -> Self {
            let total = groups.len();
            Source {
                batches: groups
                    .into_iter()
                    .map(|g| Batch::new(vec![Column::from_ints(g)]))
                    .collect(),
                emitted: 0,
                total,
            }
        }
    }

    impl Operator for Source {
        fn next_batch(&mut self) -> Option<Batch> {
            if self.batches.is_empty() {
                None
            } else {
                self.emitted += 1;
                Some(self.batches.remove(0))
            }
        }
        fn progress(&self) -> f64 {
            self.emitted as f64 / self.total.max(1) as f64
        }
    }

    #[test]
    fn filter_compacts_and_skips_empty() {
        let src = Source::ints(vec![vec![1, 2, 3], vec![4, 5], vec![100]]);
        let mut f = FilterExec::new(
            Box::new(src),
            Expr::col(0).ge(Expr::lit(4)),
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut f);
        assert_eq!(out.column(0).as_ints(), &[4, 5, 100]);
    }

    #[test]
    fn filter_empty_result() {
        let src = Source::ints(vec![vec![1, 2]]);
        let mut f = FilterExec::new(
            Box::new(src),
            Expr::col(0).gt(Expr::lit(10)),
            OpMetrics::shared(),
        );
        assert!(f.next_batch().is_none());
    }

    #[test]
    fn project_computes_columns() {
        let src = Source::ints(vec![vec![1, 2]]);
        let m = OpMetrics::shared();
        let mut p = ProjectExec::new(
            Box::new(src),
            vec![Expr::col(0).mul(Expr::lit(10)), Expr::col(0)],
            m.clone(),
        );
        let out = run_to_batch(&mut p);
        assert_eq!(out.column(0).as_ints(), &[10, 20]);
        assert_eq!(out.column(1).as_ints(), &[1, 2]);
        assert_eq!(m.rows_out(), 2);
    }

    #[test]
    fn progress_delegates_to_child() {
        let src = Source::ints(vec![vec![1], vec![2]]);
        let mut f = FilterExec::new(Box::new(src), Expr::lit(true), OpMetrics::shared());
        assert_eq!(f.progress(), 0.0);
        f.next_batch();
        assert_eq!(f.progress(), 0.5);
    }
}
