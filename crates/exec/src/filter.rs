//! Pipelining operators: selection and projection.
//!
//! Both are zero-copy on the common path: [`FilterExec`] narrows batches
//! with a selection vector instead of gathering survivors, and
//! [`ProjectExec`] computes over the shared physical columns and carries
//! the input's selection onto its output. Column data is only moved at a
//! pipeline breaker or store boundary — with one deliberate exception:
//! when a filter keeps fewer than 1 in [`COMPACT_FRACTION`] rows it
//! compacts immediately, because downstream expression evaluation works
//! over *physical* rows and, at very low selectivity, computing over the
//! dead rows costs more than one small gather.

use std::sync::Arc;

use rdb_expr::{eval, CompiledPredicate, Expr};
use rdb_vector::Batch;

use crate::metrics::OpMetrics;
use crate::op::{timed_next, Operator};

/// Below `physical_rows / COMPACT_FRACTION` surviving rows a filter
/// gathers instead of attaching a selection (see module docs).
pub const COMPACT_FRACTION: usize = 16;

/// Vectorized selection: the predicate is compiled once at construction
/// and evaluated per batch by the allocation-free selection kernel,
/// writing qualifying row indices into a reusable scratch buffer. All-true
/// batches pass through untouched; all-false batches are skipped without
/// emitting anything; very sparse survivors are compacted on the spot.
pub struct FilterExec {
    child: Box<dyn Operator>,
    pred: CompiledPredicate,
    scratch: Vec<u32>,
    metrics: Arc<OpMetrics>,
}

impl FilterExec {
    /// Filter `child` by `predicate` (bound, boolean).
    pub fn new(child: Box<dyn Operator>, predicate: Expr, metrics: Arc<OpMetrics>) -> Self {
        FilterExec {
            child,
            pred: CompiledPredicate::compile(&predicate),
            scratch: Vec::new(),
            metrics,
        }
    }
}

impl Operator for FilterExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        let FilterExec {
            child,
            pred,
            scratch,
            ..
        } = self;
        timed_next(&metrics, || {
            // Loop until a non-empty output batch or end of input, so
            // downstream operators never see empty batches.
            loop {
                let batch = child.next_batch()?;
                pred.select_into(&batch, scratch);
                if scratch.is_empty() {
                    continue;
                }
                if scratch.len() == batch.rows() {
                    return Some(batch);
                }
                if scratch.len() * COMPACT_FRACTION < batch.physical_rows() {
                    return Some(batch.take_physical(scratch));
                }
                return Some(batch.with_selection(Arc::new(std::mem::take(scratch))));
            }
        })
    }

    fn progress(&self) -> f64 {
        self.child.progress()
    }
}

/// Vectorized projection: computes one output column per expression over
/// the physical rows and carries the input's selection vector onto the
/// output (column references pass through as shared, uncopied columns).
pub struct ProjectExec {
    child: Box<dyn Operator>,
    exprs: Vec<Expr>,
    metrics: Arc<OpMetrics>,
}

impl ProjectExec {
    /// Project `child` through `exprs` (bound).
    pub fn new(child: Box<dyn Operator>, exprs: Vec<Expr>, metrics: Arc<OpMetrics>) -> Self {
        ProjectExec {
            child,
            exprs,
            metrics,
        }
    }
}

impl Operator for ProjectExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            let batch = self.child.next_batch()?;
            let out = Batch::new(self.exprs.iter().map(|e| eval(e, &batch)).collect());
            Some(match batch.sel_arc() {
                Some(sel) => out.with_selection(sel),
                None => out,
            })
        })
    }

    fn progress(&self) -> f64 {
        self.child.progress()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::run_to_batch;
    use rdb_vector::Column;

    struct Source {
        batches: Vec<Batch>,
        emitted: usize,
        total: usize,
    }

    impl Source {
        fn ints(groups: Vec<Vec<i64>>) -> Self {
            let total = groups.len();
            Source {
                batches: groups
                    .into_iter()
                    .map(|g| Batch::new(vec![Column::from_ints(g)]))
                    .collect(),
                emitted: 0,
                total,
            }
        }
    }

    impl Operator for Source {
        fn next_batch(&mut self) -> Option<Batch> {
            if self.batches.is_empty() {
                None
            } else {
                self.emitted += 1;
                Some(self.batches.remove(0))
            }
        }
        fn progress(&self) -> f64 {
            self.emitted as f64 / self.total.max(1) as f64
        }
    }

    #[test]
    fn filter_compacts_and_skips_empty() {
        let src = Source::ints(vec![vec![1, 2, 3], vec![4, 5], vec![100]]);
        let mut f = FilterExec::new(
            Box::new(src),
            Expr::col(0).ge(Expr::lit(4)),
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut f);
        assert_eq!(out.column(0).as_ints(), &[4, 5, 100]);
    }

    #[test]
    fn filter_emits_selection_and_shares_columns() {
        let src = Source::ints(vec![vec![1, 2, 3, 4]]);
        let mut f = FilterExec::new(
            Box::new(src),
            Expr::col(0).ge(Expr::lit(3)),
            OpMetrics::shared(),
        );
        let out = f.next_batch().unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.sel(), Some(&[2u32, 3][..]), "selection, not a gather");
        assert_eq!(out.column(0).as_ints(), &[1, 2, 3, 4], "columns untouched");
    }

    #[test]
    fn all_true_filter_passes_batch_through() {
        let src = Source::ints(vec![vec![1, 2]]);
        let mut f = FilterExec::new(
            Box::new(src),
            Expr::col(0).ge(Expr::lit(0)),
            OpMetrics::shared(),
        );
        let out = f.next_batch().unwrap();
        assert!(out.sel().is_none(), "all-true adds no selection");
        assert_eq!(out.rows(), 2);
    }

    #[test]
    fn project_carries_selection() {
        let src = Source::ints(vec![vec![10, 20, 30]]);
        let f = FilterExec::new(
            Box::new(src),
            Expr::col(0).gt(Expr::lit(10)),
            OpMetrics::shared(),
        );
        let mut p = ProjectExec::new(
            Box::new(f),
            vec![Expr::col(0).add(Expr::lit(1))],
            OpMetrics::shared(),
        );
        let out = p.next_batch().unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.sel(), Some(&[1u32, 2][..]));
        assert_eq!(
            out.to_rows(),
            vec![
                vec![rdb_vector::Value::Int(21)],
                vec![rdb_vector::Value::Int(31)]
            ]
        );
    }

    #[test]
    fn filter_empty_result() {
        let src = Source::ints(vec![vec![1, 2]]);
        let mut f = FilterExec::new(
            Box::new(src),
            Expr::col(0).gt(Expr::lit(10)),
            OpMetrics::shared(),
        );
        assert!(f.next_batch().is_none());
    }

    #[test]
    fn project_computes_columns() {
        let src = Source::ints(vec![vec![1, 2]]);
        let m = OpMetrics::shared();
        let mut p = ProjectExec::new(
            Box::new(src),
            vec![Expr::col(0).mul(Expr::lit(10)), Expr::col(0)],
            m.clone(),
        );
        let out = run_to_batch(&mut p);
        assert_eq!(out.column(0).as_ints(), &[10, 20]);
        assert_eq!(out.column(1).as_ints(), &[1, 2]);
        assert_eq!(m.rows_out(), 2);
    }

    #[test]
    fn progress_delegates_to_child() {
        let src = Source::ints(vec![vec![1], vec![2]]);
        let mut f = FilterExec::new(Box::new(src), Expr::lit(true), OpMetrics::shared());
        assert_eq!(f.progress(), 0.0);
        f.next_batch();
        assert_eq!(f.progress(), 0.5);
    }
}
