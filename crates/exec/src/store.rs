//! The `store` operator and cached-result scan (paper §II, §III-D).
//!
//! A [`StoreExec`] wraps an arbitrary sub-pipeline and can, *without
//! interrupting the tuple flow*:
//!
//! * **pass along** tuples (after a cancelled speculation),
//! * **buffer** them while run-time estimates decide whether the result is
//!   worth materializing (speculation), or
//! * **materialize** them into the recycler cache (decision already made in
//!   the rewriting phase — history mode).
//!
//! Speculative stores extrapolate the result's final cost and size from the
//! producing operator's *progress meter*: an operator that has processed
//! `n` of `m` tuples has progress `n/m`, and `estimate = observed/progress`.
//! The recycler supplies the verdict through [`ResultStore::speculate`].
//!
//! [`CachedExec`] replays a previously materialized result.
//!
//! Both directions of the cache are zero-copy: the tee buffers **shared**
//! batch clones (refcount bumps; data is only gathered once, when the
//! buffer is concatenated into the published [`MaterializedResult`]), and
//! replay re-chunks the cached result with O(1) column slices, so a cache
//! hit costs O(#batches) rather than O(result bytes).

use std::sync::Arc;
use std::time::Instant;

use rdb_vector::{Batch, Schema};

use crate::metrics::OpMetrics;
use crate::op::{timed_next, Operator};

/// A fully materialized (intermediate or final) query result.
#[derive(Debug, Clone)]
pub struct MaterializedResult {
    /// Result schema (graph-canonical names).
    pub schema: Schema,
    /// All rows, concatenated.
    pub batch: Batch,
    /// Memory footprint in bytes (what the recycler cache accounts).
    pub size_bytes: usize,
}

impl MaterializedResult {
    /// Build from collected batches.
    pub fn from_batches(schema: Schema, batches: &[Batch]) -> Self {
        let batch = Batch::concat_or_empty(&schema, batches);
        let size_bytes = batch.size_bytes();
        MaterializedResult {
            schema,
            batch,
            size_bytes,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.batch.rows()
    }

    /// Re-chunk into standard execution batches along the morsel grid.
    /// Zero-copy: every batch is an O(1) slice sharing this result's
    /// column storage.
    pub fn batches(&self) -> Vec<Batch> {
        (0..self.batch.morsel_count())
            .map(|i| self.batch.morsel(i))
            .collect()
    }
}

/// Run-time estimate snapshot handed to the recycler during speculation.
#[derive(Debug, Clone)]
pub struct SpeculationEstimate {
    /// Progress of the producing subtree in `[0, 1]` (0 = unknown yet).
    pub progress: f64,
    /// Rows buffered so far.
    pub buffered_rows: u64,
    /// Bytes buffered so far.
    pub buffered_bytes: usize,
    /// Extrapolated final row count (`buffered_rows / progress`).
    pub est_rows: f64,
    /// Extrapolated final size in bytes.
    pub est_bytes: f64,
    /// Extrapolated final subtree cost in nanoseconds.
    pub est_cost_ns: f64,
}

/// Recycler's answer to a speculation snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreVerdict {
    /// Keep buffering; ask again on the next batch.
    #[default]
    Undecided,
    /// Materializing is beneficial: buffer to completion and publish.
    Commit,
    /// Not beneficial: drop the buffer and pass tuples along.
    Cancel,
}

/// The executor-facing interface of the recycler cache. Implemented by
/// `rdb-recycler`; a trivial implementation can be used for tests.
pub trait ResultStore: Send + Sync {
    /// Fetch the result leased under `tag` (set up by the rewriter when it
    /// substituted a cached result into the plan).
    fn fetch(&self, tag: u64) -> Option<Arc<MaterializedResult>>;

    /// A store operator finished producing the result for `tag`; the
    /// implementation decides admission/replacement.
    fn publish(&self, tag: u64, result: MaterializedResult);

    /// A speculative store abandoned materialization of `tag`.
    fn abandon(&self, tag: u64);

    /// Speculation decision callback (paper §III-D).
    fn speculate(&self, tag: u64, est: &SpeculationEstimate) -> StoreVerdict;
}

/// Execution-side behaviour of a store operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Buffering while speculating.
    Speculating,
    /// Buffering with a commit decision (history mode starts here).
    Committed,
    /// Passing through after a cancelled speculation.
    PassThrough,
    /// Finished (buffer published or discarded).
    Done,
}

/// The `store` operator.
pub struct StoreExec {
    child: Box<dyn Operator>,
    tag: u64,
    schema: Schema,
    store: Arc<dyn ResultStore>,
    phase: Phase,
    buffer: Vec<Batch>,
    buffered_rows: u64,
    buffered_bytes: usize,
    started: Option<Instant>,
    metrics: Arc<OpMetrics>,
}

impl StoreExec {
    /// Create a store operator over `child`.
    ///
    /// `speculative` selects the paper's speculation mode; otherwise the
    /// materialization decision was already made by the rewriter.
    pub fn new(
        child: Box<dyn Operator>,
        tag: u64,
        schema: Schema,
        store: Arc<dyn ResultStore>,
        speculative: bool,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        StoreExec {
            child,
            tag,
            schema,
            store,
            phase: if speculative {
                Phase::Speculating
            } else {
                Phase::Committed
            },
            buffer: Vec::new(),
            buffered_rows: 0,
            buffered_bytes: 0,
            started: None,
            metrics,
        }
    }

    fn estimate(&self) -> SpeculationEstimate {
        let progress = self.child.progress().clamp(0.0, 1.0);
        let elapsed = self
            .started
            .map(|t| t.elapsed().as_nanos() as f64)
            .unwrap_or(0.0);
        let p = progress.max(1e-6);
        SpeculationEstimate {
            progress,
            buffered_rows: self.buffered_rows,
            buffered_bytes: self.buffered_bytes,
            est_rows: self.buffered_rows as f64 / p,
            est_bytes: self.buffered_bytes as f64 / p,
            est_cost_ns: elapsed / p,
        }
    }
}

impl Operator for StoreExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            if self.started.is_none() {
                self.started = Some(Instant::now());
            }
            match self.child.next_batch() {
                Some(batch) => {
                    match self.phase {
                        // The tee buffers *shared* clones (refcount bumps);
                        // data is gathered once, at publish time.
                        Phase::Speculating => {
                            self.buffer.push(batch.clone());
                            self.buffered_rows += batch.rows() as u64;
                            self.buffered_bytes += batch.size_bytes();
                            let est = self.estimate();
                            match self.store.speculate(self.tag, &est) {
                                StoreVerdict::Undecided => {}
                                StoreVerdict::Commit => self.phase = Phase::Committed,
                                StoreVerdict::Cancel => {
                                    self.buffer.clear();
                                    self.buffered_rows = 0;
                                    self.buffered_bytes = 0;
                                    self.phase = Phase::PassThrough;
                                    self.store.abandon(self.tag);
                                }
                            }
                        }
                        Phase::Committed => {
                            self.buffer.push(batch.clone());
                            self.buffered_rows += batch.rows() as u64;
                            self.buffered_bytes += batch.size_bytes();
                        }
                        Phase::PassThrough | Phase::Done => {}
                    }
                    Some(batch)
                }
                None => {
                    match self.phase {
                        Phase::Speculating | Phase::Committed => {
                            // End of stream while still buffering: a
                            // still-undecided speculation at completion has
                            // exact numbers; let the recycler decide once
                            // more with progress 1, then publish on commit.
                            let publish = if self.phase == Phase::Committed {
                                true
                            } else {
                                let mut est = self.estimate();
                                est.progress = 1.0;
                                est.est_rows = self.buffered_rows as f64;
                                est.est_bytes = self.buffered_bytes as f64;
                                match self.store.speculate(self.tag, &est) {
                                    StoreVerdict::Commit => true,
                                    _ => {
                                        self.store.abandon(self.tag);
                                        false
                                    }
                                }
                            };
                            if publish {
                                let result = MaterializedResult::from_batches(
                                    self.schema.clone(),
                                    &self.buffer,
                                );
                                self.store.publish(self.tag, result);
                            }
                            self.buffer.clear();
                            self.phase = Phase::Done;
                        }
                        Phase::PassThrough => self.phase = Phase::Done,
                        Phase::Done => {}
                    }
                    None
                }
            }
        })
    }

    fn progress(&self) -> f64 {
        self.child.progress()
    }
}

/// Reads a materialized result from the cache.
pub struct CachedExec {
    tag: u64,
    store: Arc<dyn ResultStore>,
    batches: Option<Vec<Batch>>,
    next: usize,
    metrics: Arc<OpMetrics>,
}

impl CachedExec {
    /// Replay the result leased under `tag`.
    pub fn new(tag: u64, store: Arc<dyn ResultStore>, metrics: Arc<OpMetrics>) -> Self {
        CachedExec {
            tag,
            store,
            batches: None,
            next: 0,
            metrics,
        }
    }
}

impl Operator for CachedExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            if self.batches.is_none() {
                let result = self
                    .store
                    .fetch(self.tag)
                    .unwrap_or_else(|| panic!("no leased result for tag {}", self.tag));
                self.batches = Some(result.batches());
            }
            let batches = self.batches.as_ref().unwrap();
            if self.next < batches.len() {
                let b = batches[self.next].clone();
                self.next += 1;
                Some(b)
            } else {
                None
            }
        })
    }

    fn progress(&self) -> f64 {
        match &self.batches {
            None => 0.0,
            Some(b) => {
                if b.is_empty() {
                    1.0
                } else {
                    self.next as f64 / b.len() as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::run_to_batch;
    use parking_lot::Mutex;
    use rdb_vector::{Column, DataType};
    use std::collections::HashMap;

    struct Source {
        batches: Vec<Batch>,
        total: usize,
    }

    impl Operator for Source {
        fn next_batch(&mut self) -> Option<Batch> {
            if self.batches.is_empty() {
                None
            } else {
                Some(self.batches.remove(0))
            }
        }
        fn progress(&self) -> f64 {
            1.0 - self.batches.len() as f64 / self.total.max(1) as f64
        }
    }

    fn src(groups: Vec<Vec<i64>>) -> Box<dyn Operator> {
        let total = groups.len();
        Box::new(Source {
            batches: groups
                .into_iter()
                .map(|g| Batch::new(vec![Column::from_ints(g)]))
                .collect(),
            total,
        })
    }

    #[derive(Default)]
    struct MockStore {
        published: Mutex<HashMap<u64, Arc<MaterializedResult>>>,
        abandoned: Mutex<Vec<u64>>,
        verdict: Mutex<StoreVerdict>,
        calls: Mutex<u64>,
    }

    impl ResultStore for MockStore {
        fn fetch(&self, tag: u64) -> Option<Arc<MaterializedResult>> {
            self.published.lock().get(&tag).cloned()
        }
        fn publish(&self, tag: u64, result: MaterializedResult) {
            self.published.lock().insert(tag, Arc::new(result));
        }
        fn abandon(&self, tag: u64) {
            self.abandoned.lock().push(tag);
        }
        fn speculate(&self, _tag: u64, _est: &SpeculationEstimate) -> StoreVerdict {
            *self.calls.lock() += 1;
            *self.verdict.lock()
        }
    }

    fn schema() -> Schema {
        Schema::from_pairs([("x", DataType::Int)])
    }

    #[test]
    fn materialize_mode_tees_and_publishes() {
        let store = Arc::new(MockStore::default());
        let mut op = StoreExec::new(
            src(vec![vec![1, 2], vec![3]]),
            7,
            schema(),
            store.clone(),
            false,
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut op);
        assert_eq!(out.column(0).as_ints(), &[1, 2, 3], "flow uninterrupted");
        let published = store.fetch(7).expect("result published");
        assert_eq!(published.batch.column(0).as_ints(), &[1, 2, 3]);
        assert!(published.size_bytes > 0);
    }

    #[test]
    fn speculation_commit_publishes() {
        let store = Arc::new(MockStore::default());
        *store.verdict.lock() = StoreVerdict::Commit;
        let mut op = StoreExec::new(
            src(vec![vec![1], vec![2]]),
            1,
            schema(),
            store.clone(),
            true,
            OpMetrics::shared(),
        );
        run_to_batch(&mut op);
        assert!(store.fetch(1).is_some());
        assert!(store.abandoned.lock().is_empty());
    }

    #[test]
    fn speculation_cancel_drops_buffer() {
        let store = Arc::new(MockStore::default());
        *store.verdict.lock() = StoreVerdict::Cancel;
        let mut op = StoreExec::new(
            src(vec![vec![1], vec![2], vec![3]]),
            2,
            schema(),
            store.clone(),
            true,
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut op);
        assert_eq!(out.rows(), 3, "tuples still flow after cancel");
        assert!(store.fetch(2).is_none());
        assert_eq!(store.abandoned.lock().as_slice(), &[2]);
        // Speculation stops after the cancel verdict.
        assert_eq!(*store.calls.lock(), 1);
    }

    #[test]
    fn undecided_speculation_resolves_at_completion() {
        // Recycler stays undecided mid-flight; at end-of-stream the store
        // asks one final time with exact numbers (progress == 1).
        struct DecideAtEnd(MockStore);
        impl ResultStore for DecideAtEnd {
            fn fetch(&self, t: u64) -> Option<Arc<MaterializedResult>> {
                self.0.fetch(t)
            }
            fn publish(&self, t: u64, r: MaterializedResult) {
                self.0.publish(t, r)
            }
            fn abandon(&self, t: u64) {
                self.0.abandon(t)
            }
            fn speculate(&self, _t: u64, est: &SpeculationEstimate) -> StoreVerdict {
                if est.progress >= 1.0 {
                    StoreVerdict::Commit
                } else {
                    StoreVerdict::Undecided
                }
            }
        }
        let store = Arc::new(DecideAtEnd(MockStore::default()));
        let mut op = StoreExec::new(
            src(vec![vec![1], vec![2]]),
            3,
            schema(),
            store.clone(),
            true,
            OpMetrics::shared(),
        );
        run_to_batch(&mut op);
        assert!(store.fetch(3).is_some());
    }

    #[test]
    fn cached_exec_replays() {
        let store = Arc::new(MockStore::default());
        store.publish(
            9,
            MaterializedResult::from_batches(
                schema(),
                &[Batch::new(vec![Column::from_ints(vec![5, 6])])],
            ),
        );
        let mut c = CachedExec::new(9, store, OpMetrics::shared());
        let out = run_to_batch(&mut c);
        assert_eq!(out.column(0).as_ints(), &[5, 6]);
        assert_eq!(c.progress(), 1.0);
    }

    #[test]
    fn empty_result_materializes_with_width() {
        let r = MaterializedResult::from_batches(schema(), &[]);
        assert_eq!(r.rows(), 0);
        assert_eq!(r.batch.width(), 1);
        assert!(r.batches().is_empty());
    }

    #[test]
    #[should_panic(expected = "no leased result")]
    fn cached_exec_panics_without_lease() {
        let store = Arc::new(MockStore::default());
        let mut c = CachedExec::new(42, store, OpMetrics::shared());
        c.next_batch();
    }
}
