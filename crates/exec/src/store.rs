//! The `store` operator and cached-result scan (paper §II, §III-D).
//!
//! A [`StoreExec`] wraps an arbitrary sub-pipeline and can, *without
//! interrupting the tuple flow*:
//!
//! * **pass along** tuples (after a cancelled speculation),
//! * **buffer** them while run-time estimates decide whether the result is
//!   worth materializing (speculation), or
//! * **materialize** them into the recycler cache (decision already made in
//!   the rewriting phase — history mode).
//!
//! Speculative stores extrapolate the result's final cost and size from the
//! producing operator's *progress meter*: an operator that has processed
//! `n` of `m` tuples has progress `n/m`, and `estimate = observed/progress`.
//! The recycler supplies the verdict through [`ResultStore::speculate`].
//!
//! [`CachedExec`] replays a previously materialized result.
//!
//! Both directions of the cache are zero-copy: the tee buffers **shared**
//! batch clones (refcount bumps; data is only gathered once, when the
//! buffer is concatenated into the published [`MaterializedResult`]), and
//! replay re-chunks the cached result with O(1) column slices, so a cache
//! hit costs O(#batches) rather than O(result bytes).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rdb_plan::Plan;
use rdb_vector::{Batch, Schema};

use crate::error::FailSlot;
use crate::join::BuildSide;
use crate::metrics::OpMetrics;
use crate::op::{timed_next, Operator};

/// A fully materialized (intermediate or final) query result.
#[derive(Debug, Clone)]
pub struct MaterializedResult {
    /// Result schema (graph-canonical names).
    pub schema: Schema,
    /// All rows, concatenated.
    pub batch: Batch,
    /// Memory footprint in bytes (what the recycler cache accounts).
    pub size_bytes: usize,
}

impl MaterializedResult {
    /// Build from collected batches.
    pub fn from_batches(schema: Schema, batches: &[Batch]) -> Self {
        let batch = Batch::concat_or_empty(&schema, batches);
        let size_bytes = batch.size_bytes();
        MaterializedResult {
            schema,
            batch,
            size_bytes,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.batch.rows()
    }

    /// Re-chunk into standard execution batches along the morsel grid.
    /// Zero-copy: every batch is an O(1) slice sharing this result's
    /// column storage.
    pub fn batches(&self) -> Vec<Batch> {
        (0..self.batch.morsel_count())
            .map(|i| self.batch.morsel(i))
            .collect()
    }
}

/// Run-time estimate snapshot handed to the recycler during speculation.
#[derive(Debug, Clone)]
pub struct SpeculationEstimate {
    /// Progress of the producing subtree in `[0, 1]` (0 = unknown yet).
    pub progress: f64,
    /// Rows buffered so far.
    pub buffered_rows: u64,
    /// Bytes buffered so far.
    pub buffered_bytes: usize,
    /// Extrapolated final row count (`buffered_rows / progress`).
    pub est_rows: f64,
    /// Extrapolated final size in bytes.
    pub est_bytes: f64,
    /// Extrapolated final subtree cost in nanoseconds.
    pub est_cost_ns: f64,
}

/// Recycler's answer to a speculation snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreVerdict {
    /// Keep buffering; ask again on the next batch.
    #[default]
    Undecided,
    /// Materializing is beneficial: buffer to completion and publish.
    Commit,
    /// Not beneficial: drop the buffer and pass tuples along.
    Cancel,
}

/// Which kind of reusable artifact a cache entry holds. Results are the
/// paper's materialized result sets; hash builds and aggregation tables
/// are *operator state* (HashStash-style reuse): the internal structure a
/// pipeline breaker would otherwise rebuild from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// A materialized result set (streamable batches).
    Result,
    /// A hash-join build side (concatenated build batches + key index).
    HashBuild,
    /// A hash-aggregation table, stored as its sorted group rows — the
    /// operator's exact output sequence, so replaying it is lossless.
    AggTable,
}

impl ArtifactKind {
    /// Short label for stats/explain output.
    pub fn label(&self) -> &'static str {
        match self {
            ArtifactKind::Result => "result",
            ArtifactKind::HashBuild => "hash-build",
            ArtifactKind::AggTable => "agg-table",
        }
    }
}

/// A reusable piece of operator state, published to and fetched from the
/// recycler keyed by the *subplan that produced it* (not the enclosing
/// query), so any join probing the same build subplan — or any
/// aggregation over the same input — can reuse it.
#[derive(Debug, Clone)]
pub enum OperatorState {
    /// A ready hash-join build side.
    HashBuild(Arc<BuildSide>),
    /// An aggregation table in sorted-group-row form.
    AggTable(Arc<MaterializedResult>),
}

impl OperatorState {
    /// Which artifact kind this state is.
    pub fn kind(&self) -> ArtifactKind {
        match self {
            OperatorState::HashBuild(_) => ArtifactKind::HashBuild,
            OperatorState::AggTable(_) => ArtifactKind::AggTable,
        }
    }

    /// Memory footprint in bytes (what the cache accounts).
    pub fn size_bytes(&self) -> usize {
        match self {
            OperatorState::HashBuild(b) => b.size_bytes(),
            OperatorState::AggTable(r) => r.size_bytes,
        }
    }
}

/// Measured cost of constructing a piece of operator state, reported at
/// publish time so the recycler can rank the artifact against competing
/// cache entries.
#[derive(Debug, Clone, Copy, Default)]
pub struct StateCost {
    /// Wall-clock construction time in nanoseconds.
    pub cost_ns: f64,
    /// Deterministic work units (rows processed).
    pub cost_work: f64,
    /// Rows held by the state.
    pub rows: u64,
}

/// The executor-facing interface of the recycler cache. Implemented by
/// `rdb-recycler`; a trivial implementation can be used for tests.
pub trait ResultStore: Send + Sync {
    /// Fetch the result leased under `tag` (set up by the rewriter when it
    /// substituted a cached result into the plan).
    fn fetch(&self, tag: u64) -> Option<Arc<MaterializedResult>>;

    /// A store operator finished producing the result for `tag`; the
    /// implementation decides admission/replacement.
    fn publish(&self, tag: u64, result: MaterializedResult);

    /// A speculative store abandoned materialization of `tag`.
    fn abandon(&self, tag: u64);

    /// Speculation decision callback (paper §III-D).
    fn speculate(&self, tag: u64, est: &SpeculationEstimate) -> StoreVerdict;

    /// Fetch cached operator state for `plan` (the producing subplan) if
    /// an entry of `kind`/`variant` exists whose recorded epochs equal
    /// `epochs` (the querying snapshot's versions of the subplan's base
    /// tables). Default: no operator-state cache.
    fn fetch_state(
        &self,
        plan: &Plan,
        kind: ArtifactKind,
        variant: u64,
        epochs: &[(String, u64)],
    ) -> Option<OperatorState> {
        let _ = (plan, kind, variant, epochs);
        None
    }

    /// Offer freshly built operator state for `plan` to the cache.
    /// `epochs` are the base-table versions the state was built from;
    /// admission/replacement is the implementation's call. Default: drop.
    fn publish_state(
        &self,
        plan: &Plan,
        variant: u64,
        state: OperatorState,
        cost: StateCost,
        epochs: &[(String, u64)],
    ) {
        let _ = (plan, variant, state, cost, epochs);
    }
}

/// Execution-side behaviour of a store operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Buffering while speculating.
    Speculating,
    /// Buffering with a commit decision (history mode starts here).
    Committed,
    /// Passing through after a cancelled speculation.
    PassThrough,
    /// Finished (buffer published or discarded).
    Done,
}

/// The `store` operator.
pub struct StoreExec {
    child: Box<dyn Operator>,
    tag: u64,
    schema: Schema,
    store: Arc<dyn ResultStore>,
    phase: Phase,
    buffer: Vec<Batch>,
    buffered_rows: u64,
    buffered_bytes: usize,
    started: Option<Instant>,
    /// Query cancel flag: a cancelled query's stream may end early, so the
    /// buffer would be a *truncated* result — abandon instead of publish.
    cancel: Option<Arc<AtomicBool>>,
    /// Execution failure slot: a recorded worker failure also means the
    /// stream ended short, so the buffer is equally untrusted.
    fail: Option<Arc<FailSlot>>,
    metrics: Arc<OpMetrics>,
}

impl StoreExec {
    /// Create a store operator over `child`.
    ///
    /// `speculative` selects the paper's speculation mode; otherwise the
    /// materialization decision was already made by the rewriter.
    pub fn new(
        child: Box<dyn Operator>,
        tag: u64,
        schema: Schema,
        store: Arc<dyn ResultStore>,
        speculative: bool,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        StoreExec {
            child,
            tag,
            schema,
            store,
            phase: if speculative {
                Phase::Speculating
            } else {
                Phase::Committed
            },
            buffer: Vec::new(),
            buffered_rows: 0,
            buffered_bytes: 0,
            started: None,
            cancel: None,
            fail: None,
            metrics,
        }
    }

    /// Attach the query's cancel flag (see the `cancel` field).
    pub fn with_cancel(mut self, cancel: Option<Arc<AtomicBool>>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attach the execution's failure slot (see the `fail` field).
    pub fn with_fail(mut self, fail: Arc<FailSlot>) -> Self {
        self.fail = Some(fail);
        self
    }

    /// Whether the stream can no longer be trusted to be complete: the
    /// query was cancelled or a pipeline worker recorded a failure.
    fn compromised(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Acquire))
            || self.fail.as_ref().is_some_and(|f| f.is_set())
    }

    fn estimate(&self) -> SpeculationEstimate {
        let progress = self.child.progress().clamp(0.0, 1.0);
        let elapsed = self
            .started
            .map(|t| t.elapsed().as_nanos() as f64)
            .unwrap_or(0.0);
        let p = progress.max(1e-6);
        SpeculationEstimate {
            progress,
            buffered_rows: self.buffered_rows,
            buffered_bytes: self.buffered_bytes,
            est_rows: self.buffered_rows as f64 / p,
            est_bytes: self.buffered_bytes as f64 / p,
            est_cost_ns: elapsed / p,
        }
    }
}

impl Operator for StoreExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            if self.started.is_none() {
                self.started = Some(Instant::now());
            }
            match self.child.next_batch() {
                Some(batch) => {
                    match self.phase {
                        // The tee buffers *shared* clones (refcount bumps);
                        // data is gathered once, at publish time.
                        Phase::Speculating => {
                            self.buffer.push(batch.clone());
                            self.buffered_rows += batch.rows() as u64;
                            self.buffered_bytes += batch.size_bytes();
                            let est = self.estimate();
                            match self.store.speculate(self.tag, &est) {
                                StoreVerdict::Undecided => {}
                                StoreVerdict::Commit => self.phase = Phase::Committed,
                                StoreVerdict::Cancel => {
                                    self.buffer.clear();
                                    self.buffered_rows = 0;
                                    self.buffered_bytes = 0;
                                    self.phase = Phase::PassThrough;
                                    self.store.abandon(self.tag);
                                }
                            }
                        }
                        Phase::Committed => {
                            self.buffer.push(batch.clone());
                            self.buffered_rows += batch.rows() as u64;
                            self.buffered_bytes += batch.size_bytes();
                        }
                        Phase::PassThrough | Phase::Done => {}
                    }
                    Some(batch)
                }
                None => {
                    match self.phase {
                        Phase::Speculating | Phase::Committed => {
                            // End of stream while still buffering: a
                            // still-undecided speculation at completion has
                            // exact numbers; let the recycler decide once
                            // more with progress 1, then publish on commit.
                            let publish = if self.compromised() {
                                // The child stream may have been cut short
                                // by a cancel or a worker failure; the
                                // buffer cannot be trusted to be complete.
                                self.store.abandon(self.tag);
                                false
                            } else if self.phase == Phase::Committed {
                                true
                            } else {
                                let mut est = self.estimate();
                                est.progress = 1.0;
                                est.est_rows = self.buffered_rows as f64;
                                est.est_bytes = self.buffered_bytes as f64;
                                match self.store.speculate(self.tag, &est) {
                                    StoreVerdict::Commit => true,
                                    _ => {
                                        self.store.abandon(self.tag);
                                        false
                                    }
                                }
                            };
                            if publish {
                                let result = MaterializedResult::from_batches(
                                    self.schema.clone(),
                                    &self.buffer,
                                );
                                self.store.publish(self.tag, result);
                            }
                            self.buffer.clear();
                            self.phase = Phase::Done;
                        }
                        Phase::PassThrough => self.phase = Phase::Done,
                        Phase::Done => {}
                    }
                    None
                }
            }
        })
    }

    fn progress(&self) -> f64 {
        self.child.progress()
    }
}

/// Publish hook for a [`StateTee`]: receives the buffered result and the
/// measured construction cost once the stream completes cleanly.
pub type TeePublish = Box<dyn FnOnce(Arc<MaterializedResult>, StateCost) + Send>;

/// Tees an operator's output into a buffered [`MaterializedResult`] and
/// hands it to a publish hook at end-of-stream — the operator-state
/// analogue of [`StoreExec`], used to capture aggregation tables for the
/// recycler. Buffering is zero-copy (shared batch clones); the hook only
/// fires when the stream ends *uncancelled*, so a truncated aggregate is
/// never published. The tee carries no metrics of its own: the wrapped
/// operator's numbers stay untouched.
pub struct StateTee {
    child: Box<dyn Operator>,
    schema: Schema,
    buffer: Vec<Batch>,
    started: Option<Instant>,
    publish: Option<TeePublish>,
    cancel: Option<Arc<AtomicBool>>,
    fail: Option<Arc<FailSlot>>,
}

impl StateTee {
    /// Wrap `child`, publishing its buffered output through `publish`.
    pub fn new(
        child: Box<dyn Operator>,
        schema: Schema,
        publish: TeePublish,
        cancel: Option<Arc<AtomicBool>>,
    ) -> Self {
        StateTee {
            child,
            schema,
            buffer: Vec::new(),
            started: None,
            publish: Some(publish),
            cancel,
            fail: None,
        }
    }

    /// Attach the execution's failure slot: a recorded worker failure
    /// suppresses publishing, like a cancel.
    pub fn with_fail(mut self, fail: Arc<FailSlot>) -> Self {
        self.fail = Some(fail);
        self
    }

    fn compromised(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Acquire))
            || self.fail.as_ref().is_some_and(|f| f.is_set())
    }
}

impl Operator for StateTee {
    fn next_batch(&mut self) -> Option<Batch> {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
        match self.child.next_batch() {
            Some(batch) => {
                if self.publish.is_some() {
                    self.buffer.push(batch.clone());
                }
                Some(batch)
            }
            None => {
                if let Some(publish) = self.publish.take() {
                    if self.compromised() {
                        // Stream may have been cut short: buffer untrusted.
                        self.buffer.clear();
                    } else {
                        let result = Arc::new(MaterializedResult::from_batches(
                            self.schema.clone(),
                            &std::mem::take(&mut self.buffer),
                        ));
                        let cost = StateCost {
                            cost_ns: self
                                .started
                                .map(|t| t.elapsed().as_nanos() as f64)
                                .unwrap_or(0.0),
                            cost_work: 0.0, // hook refines from subtree metrics
                            rows: result.rows() as u64,
                        };
                        publish(result, cost);
                    }
                }
                None
            }
        }
    }

    fn progress(&self) -> f64 {
        self.child.progress()
    }
}

/// Replays an already-fetched operator-state result (e.g. a warm
/// aggregation table) as a batch stream. Unlike [`CachedExec`] there is no
/// store lease: the artifact was resolved during plan building.
pub struct StateReplayExec {
    batches: Vec<Batch>,
    next: usize,
}

impl StateReplayExec {
    /// Stream out `result`'s batches.
    pub fn new(result: &MaterializedResult) -> Self {
        StateReplayExec {
            batches: result.batches(),
            next: 0,
        }
    }
}

impl Operator for StateReplayExec {
    fn next_batch(&mut self) -> Option<Batch> {
        if self.next < self.batches.len() {
            let b = self.batches[self.next].clone();
            self.next += 1;
            Some(b)
        } else {
            None
        }
    }

    fn progress(&self) -> f64 {
        if self.batches.is_empty() {
            1.0
        } else {
            self.next as f64 / self.batches.len() as f64
        }
    }
}

/// Reads a materialized result from the cache.
pub struct CachedExec {
    tag: u64,
    store: Arc<dyn ResultStore>,
    batches: Option<Vec<Batch>>,
    next: usize,
    metrics: Arc<OpMetrics>,
}

impl CachedExec {
    /// Replay the result leased under `tag`.
    pub fn new(tag: u64, store: Arc<dyn ResultStore>, metrics: Arc<OpMetrics>) -> Self {
        CachedExec {
            tag,
            store,
            batches: None,
            next: 0,
            metrics,
        }
    }
}

impl Operator for CachedExec {
    fn next_batch(&mut self) -> Option<Batch> {
        let metrics = self.metrics.clone();
        timed_next(&metrics, || {
            if self.batches.is_none() {
                let result = self
                    .store
                    .fetch(self.tag)
                    .unwrap_or_else(|| panic!("no leased result for tag {}", self.tag));
                self.batches = Some(result.batches());
            }
            let batches = self.batches.as_ref().unwrap();
            if self.next < batches.len() {
                let b = batches[self.next].clone();
                self.next += 1;
                Some(b)
            } else {
                None
            }
        })
    }

    fn progress(&self) -> f64 {
        match &self.batches {
            None => 0.0,
            Some(b) => {
                if b.is_empty() {
                    1.0
                } else {
                    self.next as f64 / b.len() as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::run_to_batch;
    use parking_lot::Mutex;
    use rdb_vector::{Column, DataType};
    use std::collections::HashMap;

    struct Source {
        batches: Vec<Batch>,
        total: usize,
    }

    impl Operator for Source {
        fn next_batch(&mut self) -> Option<Batch> {
            if self.batches.is_empty() {
                None
            } else {
                Some(self.batches.remove(0))
            }
        }
        fn progress(&self) -> f64 {
            1.0 - self.batches.len() as f64 / self.total.max(1) as f64
        }
    }

    fn src(groups: Vec<Vec<i64>>) -> Box<dyn Operator> {
        let total = groups.len();
        Box::new(Source {
            batches: groups
                .into_iter()
                .map(|g| Batch::new(vec![Column::from_ints(g)]))
                .collect(),
            total,
        })
    }

    #[derive(Default)]
    struct MockStore {
        published: Mutex<HashMap<u64, Arc<MaterializedResult>>>,
        abandoned: Mutex<Vec<u64>>,
        verdict: Mutex<StoreVerdict>,
        calls: Mutex<u64>,
    }

    impl ResultStore for MockStore {
        fn fetch(&self, tag: u64) -> Option<Arc<MaterializedResult>> {
            self.published.lock().get(&tag).cloned()
        }
        fn publish(&self, tag: u64, result: MaterializedResult) {
            self.published.lock().insert(tag, Arc::new(result));
        }
        fn abandon(&self, tag: u64) {
            self.abandoned.lock().push(tag);
        }
        fn speculate(&self, _tag: u64, _est: &SpeculationEstimate) -> StoreVerdict {
            *self.calls.lock() += 1;
            *self.verdict.lock()
        }
    }

    fn schema() -> Schema {
        Schema::from_pairs([("x", DataType::Int)])
    }

    #[test]
    fn materialize_mode_tees_and_publishes() {
        let store = Arc::new(MockStore::default());
        let mut op = StoreExec::new(
            src(vec![vec![1, 2], vec![3]]),
            7,
            schema(),
            store.clone(),
            false,
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut op);
        assert_eq!(out.column(0).as_ints(), &[1, 2, 3], "flow uninterrupted");
        let published = store.fetch(7).expect("result published");
        assert_eq!(published.batch.column(0).as_ints(), &[1, 2, 3]);
        assert!(published.size_bytes > 0);
    }

    #[test]
    fn speculation_commit_publishes() {
        let store = Arc::new(MockStore::default());
        *store.verdict.lock() = StoreVerdict::Commit;
        let mut op = StoreExec::new(
            src(vec![vec![1], vec![2]]),
            1,
            schema(),
            store.clone(),
            true,
            OpMetrics::shared(),
        );
        run_to_batch(&mut op);
        assert!(store.fetch(1).is_some());
        assert!(store.abandoned.lock().is_empty());
    }

    #[test]
    fn speculation_cancel_drops_buffer() {
        let store = Arc::new(MockStore::default());
        *store.verdict.lock() = StoreVerdict::Cancel;
        let mut op = StoreExec::new(
            src(vec![vec![1], vec![2], vec![3]]),
            2,
            schema(),
            store.clone(),
            true,
            OpMetrics::shared(),
        );
        let out = run_to_batch(&mut op);
        assert_eq!(out.rows(), 3, "tuples still flow after cancel");
        assert!(store.fetch(2).is_none());
        assert_eq!(store.abandoned.lock().as_slice(), &[2]);
        // Speculation stops after the cancel verdict.
        assert_eq!(*store.calls.lock(), 1);
    }

    #[test]
    fn undecided_speculation_resolves_at_completion() {
        // Recycler stays undecided mid-flight; at end-of-stream the store
        // asks one final time with exact numbers (progress == 1).
        struct DecideAtEnd(MockStore);
        impl ResultStore for DecideAtEnd {
            fn fetch(&self, t: u64) -> Option<Arc<MaterializedResult>> {
                self.0.fetch(t)
            }
            fn publish(&self, t: u64, r: MaterializedResult) {
                self.0.publish(t, r)
            }
            fn abandon(&self, t: u64) {
                self.0.abandon(t)
            }
            fn speculate(&self, _t: u64, est: &SpeculationEstimate) -> StoreVerdict {
                if est.progress >= 1.0 {
                    StoreVerdict::Commit
                } else {
                    StoreVerdict::Undecided
                }
            }
        }
        let store = Arc::new(DecideAtEnd(MockStore::default()));
        let mut op = StoreExec::new(
            src(vec![vec![1], vec![2]]),
            3,
            schema(),
            store.clone(),
            true,
            OpMetrics::shared(),
        );
        run_to_batch(&mut op);
        assert!(store.fetch(3).is_some());
    }

    #[test]
    fn cached_exec_replays() {
        let store = Arc::new(MockStore::default());
        store.publish(
            9,
            MaterializedResult::from_batches(
                schema(),
                &[Batch::new(vec![Column::from_ints(vec![5, 6])])],
            ),
        );
        let mut c = CachedExec::new(9, store, OpMetrics::shared());
        let out = run_to_batch(&mut c);
        assert_eq!(out.column(0).as_ints(), &[5, 6]);
        assert_eq!(c.progress(), 1.0);
    }

    #[test]
    fn empty_result_materializes_with_width() {
        let r = MaterializedResult::from_batches(schema(), &[]);
        assert_eq!(r.rows(), 0);
        assert_eq!(r.batch.width(), 1);
        assert!(r.batches().is_empty());
    }

    #[test]
    #[should_panic(expected = "no leased result")]
    fn cached_exec_panics_without_lease() {
        let store = Arc::new(MockStore::default());
        let mut c = CachedExec::new(42, store, OpMetrics::shared());
        c.next_batch();
    }
}
