//! Synthetic SkyServer workload (paper §V, Fig. 6).
//!
//! The paper's real-world experiment uses a 100 GB subset of SDSS SkyServer
//! DR7 and a 100-query log whose dominant pattern is
//!
//! ```sql
//! SELECT p.objID, p.run, ... FROM fGetNearbyObjEq(195, 2.5, 0.5) n,
//!        PhotoPrimary p WHERE n.objID = p.objID LIMIT 10;
//! ```
//!
//! with queries "either identical to the one above, or share the
//! computation of fGetNearbyObjEq(195, 2.5, 0.5)". We cannot ship SDSS
//! data, so this crate builds the closest synthetic equivalent (see
//! DESIGN.md): a `photoprimary` table of objects with sky positions, an
//! expensive `fgetnearbyobjeq` cone-search table function (full-scan
//! great-circle filter), and a session generator reproducing the query-log
//! structure (a hot parameter triple shared by most queries).

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rdb_engine::WorkloadQuery;
use rdb_exec::{FnRegistry, TableFunction};
use rdb_expr::Params;
use rdb_plan::{fn_scan_exprs, scan, Plan};
use rdb_storage::{Catalog, Table, TableBuilder};
use rdb_vector::{Batch, Column, DataType, Schema, Value, BATCH_CAPACITY};

/// Configuration of the synthetic sky catalog.
#[derive(Debug, Clone, Copy)]
pub struct SkyConfig {
    /// Number of objects in `photoprimary`.
    pub objects: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SkyConfig {
    fn default() -> Self {
        SkyConfig {
            objects: 50_000,
            seed: 4242,
        }
    }
}

/// Generate the `photoprimary` table.
pub fn generate(config: &SkyConfig) -> Arc<Catalog> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([
        ("p_objid", DataType::Int),
        ("p_ra", DataType::Float),
        ("p_dec", DataType::Float),
        ("p_run", DataType::Int),
        ("p_rerun", DataType::Int),
        ("p_camcol", DataType::Int),
        ("p_field", DataType::Int),
        ("p_obj", DataType::Int),
        ("p_type", DataType::Int),
        ("p_psfmag_r", DataType::Float),
        ("p_psfmag_g", DataType::Float),
    ]);
    let mut b = TableBuilder::new("photoprimary", schema, config.objects);
    for i in 0..config.objects {
        // Cluster objects around a handful of sky regions so cone searches
        // return non-trivial but small result sets.
        let center = (i % 8) as f64;
        let ra = 150.0 + center * 15.0 + rng.gen_range(-4.0..4.0);
        let dec = -5.0 + center * 2.0 + rng.gen_range(-3.0..3.0);
        b.push_row(vec![
            Value::Int(i as i64 + 1_000_000),
            Value::Float(ra),
            Value::Float(dec),
            Value::Int(rng.gen_range(1000..9999)),
            Value::Int(rng.gen_range(1..50)),
            Value::Int(rng.gen_range(1..7)),
            Value::Int(rng.gen_range(1..900)),
            Value::Int(rng.gen_range(0..255)),
            Value::Int(if rng.gen_bool(0.7) { 6 } else { 3 }),
            Value::Float(rng.gen_range(14.0..24.0)),
            Value::Float(rng.gen_range(14.0..24.0)),
        ]);
    }
    cat.register(b.finish()).expect("register table");
    Arc::new(cat)
}

/// `fGetNearbyObjEq(ra, dec, radius_arcmin)`: all objects within the cone,
/// with their distance, ordered by distance. Implemented as a full-scan
/// great-circle filter, which is deliberately expensive — this is the
/// shared computation the recycler amortizes.
pub struct FGetNearbyObjEq {
    table: Arc<Table>,
}

impl FGetNearbyObjEq {
    /// Bind the function to the generated `photoprimary` table.
    pub fn new(catalog: &Catalog) -> Self {
        FGetNearbyObjEq {
            table: catalog
                .get("photoprimary")
                .expect("photoprimary must exist")
                .clone(),
        }
    }

    /// The function's output schema.
    pub fn output_schema() -> Schema {
        Schema::from_pairs([("n_objid", DataType::Int), ("n_distance", DataType::Float)])
    }
}

impl TableFunction for FGetNearbyObjEq {
    fn schema(&self, _args: &[Value]) -> Schema {
        Self::output_schema()
    }

    fn execute(&self, args: &[Value], work: &mut u64) -> Vec<Batch> {
        let ra0 = args[0].as_float().expect("ra").to_radians();
        let dec0 = args[1].as_float().expect("dec").to_radians();
        let radius_deg = args[2].as_float().expect("radius") / 60.0; // arcmin → deg
        let cos_limit = radius_deg.to_radians().cos();
        let objid = self
            .table
            .column_by_name("p_objid")
            .expect("objid")
            .as_ints();
        let ra = self.table.column_by_name("p_ra").expect("ra").as_floats();
        let dec = self.table.column_by_name("p_dec").expect("dec").as_floats();
        *work += self.table.rows() as u64;
        let mut hits: Vec<(i64, f64)> = Vec::new();
        for i in 0..self.table.rows() {
            let (rai, deci) = (ra[i].to_radians(), dec[i].to_radians());
            // Great-circle angular separation via the spherical law of
            // cosines (adequate for arcminute-scale radii).
            let cos_sep = dec0.sin() * deci.sin() + dec0.cos() * deci.cos() * (rai - ra0).cos();
            if cos_sep >= cos_limit {
                hits.push((objid[i], cos_sep.clamp(-1.0, 1.0).acos().to_degrees()));
            }
        }
        hits.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut out = Vec::new();
        for chunk in hits.chunks(BATCH_CAPACITY) {
            out.push(Batch::new(vec![
                Column::from_ints(chunk.iter().map(|h| h.0).collect()),
                Column::from_floats(chunk.iter().map(|h| h.1).collect()),
            ]));
        }
        out
    }
}

/// Register the SkyServer functions over a generated catalog.
pub fn functions(catalog: &Catalog) -> Arc<FnRegistry> {
    let mut reg = FnRegistry::new();
    reg.register("fgetnearbyobjeq", Arc::new(FGetNearbyObjEq::new(catalog)));
    Arc::new(reg)
}

/// The paper's dominant query pattern: cone search joined to
/// `photoprimary`, `LIMIT n`.
pub fn nearby_query(ra: f64, dec: f64, radius: f64, cols: &[&str], limit: usize) -> Plan {
    nearby_template(cols, limit)
        .substitute_params(&cone_params(ra, dec, radius))
        .expect("cone template substitutes")
}

/// Prepared-statement template of the dominant pattern: the cone-search
/// arguments are `:ra` / `:dec` / `:radius` parameter slots, so a session
/// prepares the pattern once and executes it per log entry.
pub fn nearby_template(cols: &[&str], limit: usize) -> Plan {
    scan("photoprimary", cols)
        .inner_join(
            fn_scan_exprs(
                "fgetnearbyobjeq",
                vec![
                    rdb_expr::Expr::param("ra"),
                    rdb_expr::Expr::param("dec"),
                    rdb_expr::Expr::param("radius"),
                ],
                FGetNearbyObjEq::output_schema(),
            ),
            vec![rdb_expr::Expr::name("p_objid")],
            vec![rdb_expr::Expr::name("n_objid")],
        )
        .limit(limit)
}

/// Bindings for [`nearby_template`].
pub fn cone_params(ra: f64, dec: f64, radius: f64) -> Params {
    Params::new()
        .set("ra", ra)
        .set("dec", dec)
        .set("radius", radius)
}

/// The dominant pattern as SQL text — the `Session::prepare_sql` form of
/// [`nearby_template`], with the same `$ra` / `$dec` / `$radius` slots.
/// Lowering + normalization converge it onto the builder template's
/// fingerprint, so SQL clients and plan-builder clients share the cone
/// search's cache entry.
pub fn nearby_sql(cols: &[&str], limit: usize) -> String {
    format!(
        "SELECT {}, n_objid, n_distance \
         FROM photoprimary INNER JOIN fgetnearbyobjeq($ra, $dec, $radius) \
         ON p_objid = n_objid LIMIT {limit}",
        cols.join(", ")
    )
}

/// The two session templates as SQL text (wide and narrow projections).
pub fn session_sql_templates() -> (String, String) {
    (nearby_sql(&WIDE_COLS, 10), nearby_sql(&NARROW_COLS, 10))
}

/// Session (query log) generation options.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Number of queries (the paper's log has 100).
    pub queries: usize,
    /// Fraction of queries using the hot parameter triple.
    pub hot_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            queries: 100,
            hot_fraction: 0.85,
            seed: 99,
        }
    }
}

/// The hot parameter triple (the paper's `fGetNearbyObjEq(195, 2.5, 0.5)`;
/// re-centred into our synthetic sky).
pub const HOT_PARAMS: (f64, f64, f64) = (195.0, 2.5, 30.0);

const WIDE_COLS: [&str; 8] = [
    "p_objid",
    "p_run",
    "p_rerun",
    "p_camcol",
    "p_field",
    "p_obj",
    "p_type",
    "p_psfmag_r",
];
const NARROW_COLS: [&str; 4] = ["p_objid", "p_run", "p_type", "p_psfmag_r"];

/// Which of the two session templates a log entry executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionTemplate {
    /// The dominant pattern's wide projection.
    Wide,
    /// The narrow-projection variant sharing the cone search.
    Narrow,
}

/// One entry of a prepared-statement query log: which template to execute
/// and with what parameter bindings.
#[derive(Debug, Clone)]
pub struct SessionQuery {
    /// Pattern label (`hot` / `hot_narrow` / `cold`).
    pub label: &'static str,
    /// Template selector.
    pub template: SessionTemplate,
    /// Cone-search parameter bindings.
    pub params: Params,
}

/// The two templates a SkyServer session prepares once: the dominant wide
/// pattern and its narrow-projection variant.
pub fn session_templates() -> (Plan, Plan) {
    (
        nearby_template(&WIDE_COLS, 10),
        nearby_template(&NARROW_COLS, 10),
    )
}

/// Generate the query log in prepared form: every entry references one of
/// the two [`session_templates`] with parameter bindings, mirroring how the
/// paper's log shares `fGetNearbyObjEq(195, 2.5, 0.5)` across most queries.
pub fn make_prepared_session(options: &SessionOptions) -> Vec<SessionQuery> {
    let mut rng = SmallRng::seed_from_u64(options.seed);
    let (ra, dec, r) = HOT_PARAMS;
    (0..options.queries)
        .map(|_| {
            if rng.gen_bool(options.hot_fraction) {
                if rng.gen_bool(0.7) {
                    SessionQuery {
                        label: "hot",
                        template: SessionTemplate::Wide,
                        params: cone_params(ra, dec, r),
                    }
                } else {
                    SessionQuery {
                        label: "hot_narrow",
                        template: SessionTemplate::Narrow,
                        params: cone_params(ra, dec, r),
                    }
                }
            } else {
                let ra2 = 150.0 + rng.gen_range(0..8) as f64 * 15.0;
                let dec2 = -5.0 + rng.gen_range(0..8) as f64 * 2.0;
                SessionQuery {
                    label: "cold",
                    template: SessionTemplate::Wide,
                    params: cone_params(ra2, dec2, 20.0),
                }
            }
        })
        .collect()
}

/// Generate a query session as concrete labelled plans (the prepared log
/// with every entry's parameters substituted) — the form the stream runner
/// and the operator-at-a-time baseline consume.
pub fn make_session(options: &SessionOptions) -> Vec<WorkloadQuery> {
    let (wide, narrow) = session_templates();
    make_prepared_session(options)
        .into_iter()
        .map(|q| {
            let template = match q.template {
                SessionTemplate::Wide => &wide,
                SessionTemplate::Narrow => &narrow,
            };
            WorkloadQuery::new(
                q.label,
                template
                    .substitute_params(&q.params)
                    .expect("session params substitute"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_exec::{build, run_to_batch, ExecContext};

    fn setup() -> (Arc<Catalog>, ExecContext) {
        let cat = generate(&SkyConfig {
            objects: 5_000,
            seed: 1,
        });
        let ctx = ExecContext::new(cat.clone()).with_functions(functions(&cat));
        (cat, ctx)
    }

    #[test]
    fn cone_search_returns_sorted_nearby_objects() {
        let (cat, _ctx) = setup();
        let f = FGetNearbyObjEq::new(&cat);
        let mut work = 0;
        let out = f.execute(
            &[Value::Float(195.0), Value::Float(2.5), Value::Float(60.0)],
            &mut work,
        );
        assert_eq!(work, 5_000, "full scan work accounted");
        if let Some(first) = out.first() {
            let d = first.column(1).as_floats();
            assert!(d.windows(2).all(|w| w[0] <= w[1]), "sorted by distance");
            assert!(d.iter().all(|&x| x <= 1.0 + 1e-9), "within 60 arcmin");
        }
    }

    #[test]
    fn wider_radius_returns_more() {
        let (cat, _) = setup();
        let f = FGetNearbyObjEq::new(&cat);
        let mut w = 0;
        let narrow: usize = f
            .execute(
                &[Value::Float(195.0), Value::Float(2.5), Value::Float(10.0)],
                &mut w,
            )
            .iter()
            .map(|b| b.rows())
            .sum();
        let wide: usize = f
            .execute(
                &[Value::Float(195.0), Value::Float(2.5), Value::Float(120.0)],
                &mut w,
            )
            .iter()
            .map(|b| b.rows())
            .sum();
        assert!(wide >= narrow);
        assert!(wide > 0, "clustered sky must have nearby objects");
    }

    #[test]
    fn nearby_query_executes_with_limit() {
        let (cat, ctx) = setup();
        let plan = nearby_query(195.0, 2.5, 60.0, &WIDE_COLS, 10)
            .bind(&cat)
            .unwrap();
        let mut tree = build(&plan, &ctx).unwrap();
        let out = run_to_batch(tree.root.as_mut());
        assert!(out.rows() <= 10);
        assert_eq!(tree.schema.len(), WIDE_COLS.len() + 2);
    }

    #[test]
    fn prepared_session_shares_hot_cone_search() {
        let cat = generate(&SkyConfig {
            objects: 3_000,
            seed: 2,
        });
        let engine = rdb_engine::Engine::builder(cat.clone())
            .functions(functions(&cat))
            .build();
        let session = engine.session();
        let (wide, narrow) = session_templates();
        let wide = session.prepare(&wide).unwrap();
        let narrow = session.prepare(&narrow).unwrap();
        assert_eq!(wide.param_names(), &["ra", "dec", "radius"]);
        let log = make_prepared_session(&SessionOptions {
            queries: 30,
            hot_fraction: 0.9,
            seed: 5,
        });
        let mut reused = 0;
        for q in &log {
            let prepared = match q.template {
                SessionTemplate::Wide => &wide,
                SessionTemplate::Narrow => &narrow,
            };
            let out = prepared.execute(&q.params).unwrap().into_outcome();
            assert!(out.batch.rows() <= 10);
            if out.reused() {
                reused += 1;
            }
        }
        assert!(
            reused >= log.len() / 2,
            "hot-dominated log must reuse heavily (got {reused}/{})",
            log.len()
        );
    }

    #[test]
    fn sql_cone_template_converges_with_builder() {
        let cat = generate(&SkyConfig {
            objects: 2_000,
            seed: 9,
        });
        let engine = rdb_engine::Engine::builder(cat.clone())
            .functions(functions(&cat))
            .build();
        let session = engine.session();
        let (wide_sql, narrow_sql) = session_sql_templates();
        let (wide_tpl, narrow_tpl) = session_templates();
        for (sql, tpl) in [(&wide_sql, &wide_tpl), (&narrow_sql, &narrow_tpl)] {
            let from_sql = session
                .prepare_sql(sql)
                .unwrap_or_else(|e| panic!("{}", e.render(sql)));
            let from_builder = session.prepare(tpl).unwrap();
            assert!(
                rdb_plan::structural_eq(from_sql.template(), from_builder.template()),
                "cone templates diverge\nSQL:\n{}\nbuilder:\n{}",
                from_sql.template(),
                from_builder.template()
            );
            assert_eq!(from_sql.fingerprint(), from_builder.fingerprint());
            assert_eq!(from_sql.param_names(), &["ra", "dec", "radius"]);
        }
        // Executions share the cone search across frontends: the builder
        // execution reuses the SQL execution's materialized cone.
        let (ra, dec, r) = HOT_PARAMS;
        let params = cone_params(ra, dec, r);
        let from_sql = session.prepare_sql(&wide_sql).unwrap();
        let a = from_sql.execute(&params).unwrap().into_outcome();
        let from_builder = session.prepare(&wide_tpl).unwrap();
        let b = from_builder.execute(&params).unwrap().into_outcome();
        assert!(b.reused(), "builder run must reuse the SQL run's cone");
        assert_eq!(a.batch.to_rows(), b.batch.to_rows());
    }

    #[test]
    fn session_structure_matches_log() {
        let session = make_session(&SessionOptions {
            queries: 100,
            hot_fraction: 0.85,
            seed: 5,
        });
        assert_eq!(session.len(), 100);
        let hot = session
            .iter()
            .filter(|q| q.label.starts_with("hot"))
            .count();
        assert!(hot >= 70, "most queries share the hot cone search ({hot})");
        let cold = session.iter().filter(|q| q.label == "cold").count();
        assert!(cold > 0, "some queries are cold");
        // Identical hot queries are structurally identical plans.
        let hots: Vec<&WorkloadQuery> = session.iter().filter(|q| q.label == "hot").collect();
        assert!(hots.windows(2).all(|w| w[0].plan == w[1].plan));
    }
}
