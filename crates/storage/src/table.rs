//! Columnar tables.

use std::sync::Arc;

use rdb_vector::column::{Column, ColumnBuilder};
use rdb_vector::{Batch, Schema, Value, BATCH_CAPACITY};

/// An immutable, fully in-memory columnar table.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Build a table from full-length columns matching `schema`.
    pub fn new(name: impl Into<String>, schema: Schema, columns: Vec<Column>) -> Self {
        assert_eq!(schema.len(), columns.len(), "schema/column count mismatch");
        let rows = columns.first().map_or(0, |c| c.len());
        for (f, c) in schema.fields().iter().zip(&columns) {
            assert_eq!(c.len(), rows, "column '{}' length mismatch", f.name);
            assert_eq!(c.data_type(), f.dtype, "column '{}' type mismatch", f.name);
        }
        Table {
            name: name.into(),
            schema,
            columns,
            rows,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Full column by position.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Full column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.size_bytes()).sum()
    }

    /// One scan batch: rows `[offset, offset+len)` of the columns at
    /// positions `projection`. Zero-copy: each batch column is an O(1)
    /// slice sharing the table's storage.
    pub fn scan_batch(&self, projection: &[usize], offset: usize, len: usize) -> Batch {
        let len = len.min(self.rows.saturating_sub(offset));
        Batch::new(
            projection
                .iter()
                .map(|&i| self.columns[i].slice(offset, len))
                .collect(),
        )
    }

    /// Iterate the whole table as batches of at most [`BATCH_CAPACITY`] rows
    /// over the given column positions (test/loader helper; the executor
    /// drives its own scan cursor).
    pub fn batches(&self, projection: &[usize]) -> Vec<Batch> {
        let mut out = Vec::with_capacity(self.rows / BATCH_CAPACITY + 1);
        let mut offset = 0;
        while offset < self.rows {
            let len = BATCH_CAPACITY.min(self.rows - offset);
            out.push(self.scan_batch(projection, offset, len));
            offset += len;
        }
        out
    }
}

/// Row-oriented builder used by the data generators.
pub struct TableBuilder {
    name: String,
    schema: Schema,
    builders: Vec<ColumnBuilder>,
}

impl TableBuilder {
    /// New builder for `schema`, reserving `capacity` rows per column.
    pub fn new(name: impl Into<String>, schema: Schema, capacity: usize) -> Self {
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype, capacity))
            .collect();
        TableBuilder {
            name: name.into(),
            schema,
            builders,
        }
    }

    /// Append one row; `values` must match the schema arity and types.
    pub fn push_row(&mut self, values: Vec<Value>) {
        assert_eq!(values.len(), self.builders.len(), "row arity mismatch");
        for (b, v) in self.builders.iter_mut().zip(values) {
            b.push(v);
        }
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.builders.first().map_or(0, |b| b.len())
    }

    /// Whether no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish into an immutable [`Table`].
    pub fn finish(self) -> Arc<Table> {
        let columns = self.builders.into_iter().map(|b| b.finish()).collect();
        Arc::new(Table::new(self.name, self.schema, columns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_vector::DataType;

    fn table() -> Arc<Table> {
        let schema = Schema::from_pairs([("id", DataType::Int), ("name", DataType::Str)]);
        let mut b = TableBuilder::new("t", schema, 4);
        for i in 0..4 {
            b.push_row(vec![Value::Int(i), Value::str(format!("r{i}"))]);
        }
        b.finish()
    }

    #[test]
    fn builder_roundtrip() {
        let t = table();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.name(), "t");
        assert_eq!(t.column_by_name("id").unwrap().as_ints(), &[0, 1, 2, 3]);
        assert!(t.column_by_name("zz").is_none());
    }

    #[test]
    fn scan_batch_projects_and_slices() {
        let t = table();
        let b = t.scan_batch(&[1], 1, 2);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.row(0), vec![Value::str("r1")]);
        // Over-long request clamps to table end.
        let b = t.scan_batch(&[0], 3, 100);
        assert_eq!(b.rows(), 1);
    }

    #[test]
    fn scan_batches_share_table_storage() {
        let t = table();
        let b = t.scan_batch(&[0, 1], 1, 2);
        assert!(b.column(0).shares_storage(t.column(0)));
        assert!(b.column(1).shares_storage(t.column(1)));
    }

    #[test]
    fn batches_cover_all_rows() {
        let schema = Schema::from_pairs([("x", DataType::Int)]);
        let mut bld = TableBuilder::new("big", schema, 3000);
        for i in 0..3000 {
            bld.push_row(vec![Value::Int(i)]);
        }
        let t = bld.finish();
        let batches = t.batches(&[0]);
        assert_eq!(batches.len(), 3); // 1024 + 1024 + 952
        let total: usize = batches.iter().map(|b| b.rows()).sum();
        assert_eq!(total, 3000);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn schema_enforced() {
        let schema = Schema::from_pairs([("x", DataType::Int)]);
        Table::new("bad", schema, vec![Column::from_strs(["a"])]);
    }
}
