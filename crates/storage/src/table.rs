//! Columnar tables: immutable snapshots and versioned mutable wrappers.

use std::sync::Arc;

use parking_lot::RwLock;
use rdb_vector::column::{Column, ColumnBuilder};
use rdb_vector::{Batch, DataType, Schema, Value, BATCH_CAPACITY};

use crate::StorageError;

/// An immutable, fully in-memory columnar **snapshot** of a table at one
/// epoch. In-flight scans hold an `Arc<Table>` and keep reading their
/// version's Arc'd columns however many updates commit concurrently.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
    epoch: u64,
}

impl Table {
    /// Build a table from full-length columns matching `schema` (epoch 0).
    pub fn new(name: impl Into<String>, schema: Schema, columns: Vec<Column>) -> Self {
        Table::new_at_epoch(name, schema, columns, 0)
    }

    /// Build a table snapshot stamped with an explicit epoch.
    pub fn new_at_epoch(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Column>,
        epoch: u64,
    ) -> Self {
        assert_eq!(schema.len(), columns.len(), "schema/column count mismatch");
        let rows = columns.first().map_or(0, |c| c.len());
        for (f, c) in schema.fields().iter().zip(&columns) {
            assert_eq!(c.len(), rows, "column '{}' length mismatch", f.name);
            assert_eq!(c.data_type(), f.dtype, "column '{}' type mismatch", f.name);
        }
        Table {
            name: name.into(),
            schema,
            columns,
            rows,
            epoch,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The version this snapshot belongs to. Epoch 0 is the freshly loaded
    /// table; every committed append/delete bumps it by one.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Full column by position.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Full column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.size_bytes()).sum()
    }

    /// One scan batch: rows `[offset, offset+len)` of the columns at
    /// positions `projection`. Zero-copy: each batch column is an O(1)
    /// slice sharing the table's storage.
    pub fn scan_batch(&self, projection: &[usize], offset: usize, len: usize) -> Batch {
        let len = len.min(self.rows.saturating_sub(offset));
        Batch::new(
            projection
                .iter()
                .map(|&i| self.columns[i].slice(offset, len))
                .collect(),
        )
    }

    /// Iterate the whole table as batches of at most [`BATCH_CAPACITY`] rows
    /// over the given column positions (test/loader helper; the executor
    /// drives its own scan cursor).
    pub fn batches(&self, projection: &[usize]) -> Vec<Batch> {
        let mut out = Vec::with_capacity(self.rows / BATCH_CAPACITY + 1);
        let mut offset = 0;
        while offset < self.rows {
            let len = BATCH_CAPACITY.min(self.rows - offset);
            out.push(self.scan_batch(projection, offset, len));
            offset += len;
        }
        out
    }

    /// One row as owned values (checkpoint/serialization helper; scans go
    /// through the zero-copy [`Table::scan_batch`] path).
    pub fn row_values(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// All rows as owned values, row-major (checkpoint helper).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.rows).map(|i| self.row_values(i)).collect()
    }
}

/// The logical change one epoch commit applies, in a replayable,
/// value-level form. This is exactly what a write-ahead log must record
/// to reproduce the commit against the predecessor snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum TableDelta {
    /// Rows appended after the predecessor's last row.
    Append {
        /// Appended rows, schema order.
        rows: Vec<Vec<Value>>,
    },
    /// Row positions (into the predecessor snapshot, ascending) removed.
    Delete {
        /// Deleted row indices.
        deleted: Vec<u64>,
    },
    /// Wholesale replacement of the contents.
    Replace {
        /// The full new contents, schema order.
        rows: Vec<Vec<Value>>,
    },
}

impl TableDelta {
    /// Rows touched (appended, deleted, or installed).
    pub fn rows_affected(&self) -> usize {
        match self {
            TableDelta::Append { rows } | TableDelta::Replace { rows } => rows.len(),
            TableDelta::Delete { deleted } => deleted.len(),
        }
    }
}

/// Everything a durability layer needs to persist one epoch commit: which
/// table, under what schema (so replay can detect drift), the epoch the
/// commit produces, and the delta itself.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitRecord {
    /// Committing table.
    pub table: String,
    /// The table's schema at commit time.
    pub schema: Schema,
    /// Epoch the commit produces (predecessor epoch + 1).
    pub epoch: u64,
    /// The change being committed.
    pub delta: TableDelta,
}

/// Observer invoked for every [`VersionedTable`] commit, **under the
/// table's write lock, after the epoch check and before the pointer
/// swap**. That placement is the whole durability contract: per table,
/// hook invocations happen in exactly epoch order, and a hook error
/// aborts the commit before any reader can observe the new version — a
/// WAL implementing this trait therefore logs every epoch before it
/// becomes visible, with no gaps and no reordering.
///
/// Implementations must be fast or accept that readers of *this* table
/// block behind them for the duration (e.g. an `fsync` under the WAL's
/// `FsyncPolicy::Always`; other tables and all snapshots already taken
/// are unaffected).
pub trait CommitHook: Send + Sync {
    /// Log `record`; an error aborts the commit (nothing is swapped).
    fn before_commit(&self, record: &CommitRecord) -> Result<(), StorageError>;
}

/// Row-oriented builder used by the data generators.
pub struct TableBuilder {
    name: String,
    schema: Schema,
    builders: Vec<ColumnBuilder>,
}

impl TableBuilder {
    /// New builder for `schema`, reserving `capacity` rows per column.
    pub fn new(name: impl Into<String>, schema: Schema, capacity: usize) -> Self {
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype, capacity))
            .collect();
        TableBuilder {
            name: name.into(),
            schema,
            builders,
        }
    }

    /// Append one row; `values` must match the schema arity and types.
    pub fn push_row(&mut self, values: Vec<Value>) {
        assert_eq!(values.len(), self.builders.len(), "row arity mismatch");
        for (b, v) in self.builders.iter_mut().zip(values) {
            b.push(v);
        }
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.builders.first().map_or(0, |b| b.len())
    }

    /// Whether no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish into an immutable [`Table`].
    pub fn finish(self) -> Arc<Table> {
        let columns = self.builders.into_iter().map(|b| b.finish()).collect();
        Arc::new(Table::new(self.name, self.schema, columns))
    }
}

/// A mutable table: a sequence of immutable [`Table`] snapshots, one per
/// epoch. Readers take an O(1) [`VersionedTable::snapshot`] (an `Arc`
/// clone under a read lock held for nanoseconds) and are never blocked by
/// or exposed to later writes; writers rebuild the column vector
/// **outside** any lock against the snapshot they started from, then
/// commit with an epoch compare-and-swap — the write lock is held only
/// for the pointer swap, so heavy writers cannot starve readers, and a
/// writer that lost a race rebuilds against the winner's snapshot.
///
/// Cost model: snapshots never copy anything (`Arc` clone); commits
/// rebuild the touched columns, which with the current flat column
/// layout is an O(resident rows) copy per append/delete — the trade
/// taken for O(1) zero-copy scans of a contiguous column. A chunked
/// column layout could make appends O(tail) later without changing this
/// API.
pub struct VersionedTable {
    name: String,
    schema: Schema,
    current: RwLock<Arc<Table>>,
    /// Durability observer; see [`CommitHook`] for the ordering contract.
    hook: RwLock<Option<Arc<dyn CommitHook>>>,
}

impl std::fmt::Debug for VersionedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedTable")
            .field("name", &self.name)
            .field("schema", &self.schema)
            .field("current", &self.current)
            .field("hooked", &self.hook.read().is_some())
            .finish()
    }
}

/// What a writer's build step produced: a new column vector (plus its
/// loggable delta) to commit as the next epoch, or nothing to change (no
/// epoch is spent on no-ops).
enum NextVersion<R> {
    Commit(R, Vec<Column>, TableDelta),
    Noop(R),
}

impl VersionedTable {
    /// Wrap an initial snapshot (its epoch is preserved).
    pub fn new(initial: Arc<Table>) -> Self {
        VersionedTable {
            name: initial.name().to_string(),
            schema: initial.schema().clone(),
            current: RwLock::new(initial),
            hook: RwLock::new(None),
        }
    }

    /// Install (or swap) the commit hook. Every subsequent commit is
    /// reported to `hook` before its pointer swap; commits already past
    /// their epoch check are unaffected.
    pub fn set_commit_hook(&self, hook: Arc<dyn CommitHook>) {
        *self.hook.write() = Some(hook);
    }

    /// Remove the commit hook, if any.
    pub fn clear_commit_hook(&self) {
        *self.hook.write() = None;
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema (invariant across versions).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The current snapshot: O(1), never blocks writers for longer than the
    /// pointer swap, and stays valid (and immutable) forever.
    pub fn snapshot(&self) -> Arc<Table> {
        self.current.read().clone()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.current.read().epoch()
    }

    /// Commit `next(old)` as the successor of the current snapshot, or
    /// keep the current one if the build reports a no-op. The build runs
    /// outside any lock; the commit re-checks the epoch under the write
    /// lock (held only for the swap) and rebuilds on a lost race, so
    /// writers serialize logically without ever blocking readers behind
    /// O(rows) work.
    ///
    /// If a [`CommitHook`] is installed it runs under the write lock,
    /// after the epoch check and before the swap: only the CAS winner
    /// reaches the hook, so per-table hook invocations are exactly the
    /// committed epoch sequence. A hook error aborts the commit — the
    /// current snapshot stays in place and the error propagates.
    fn commit<R>(
        &self,
        mut next: impl FnMut(&Table) -> Result<NextVersion<R>, StorageError>,
    ) -> Result<(R, Arc<Table>), StorageError> {
        loop {
            let old = self.snapshot();
            let (out, columns, delta) = match next(&old)? {
                NextVersion::Commit(out, columns, delta) => (out, columns, delta),
                // Nothing changed: no new epoch, no snapshot churn.
                NextVersion::Noop(out) => return Ok((out, old)),
            };
            let candidate = Arc::new(Table::new_at_epoch(
                self.name.clone(),
                self.schema.clone(),
                columns,
                old.epoch() + 1,
            ));
            let mut cur = self.current.write();
            if cur.epoch() == old.epoch() {
                let hook = self.hook.read().clone();
                if let Some(hook) = hook {
                    hook.before_commit(&CommitRecord {
                        table: self.name.clone(),
                        schema: self.schema.clone(),
                        epoch: candidate.epoch(),
                        delta,
                    })?;
                }
                *cur = candidate.clone();
                return Ok((out, candidate));
            }
            // Another writer committed first: rebuild against its result.
        }
    }

    /// Append `rows` (validated against the schema) and commit a new
    /// snapshot. Returns the new snapshot. The commit rebuilds each
    /// column (O(resident rows), see the type-level cost model); existing
    /// snapshots keep their own storage untouched. An empty `rows` is a
    /// no-op: the current snapshot is returned and no epoch is committed.
    pub fn append(&self, rows: &[Vec<Value>]) -> Result<Arc<Table>, StorageError> {
        for row in rows {
            self.validate_row(row)?;
        }
        let ((), next) = self.commit(|old| {
            if rows.is_empty() {
                return Ok(NextVersion::Noop(()));
            }
            let columns = (0..self.schema.len())
                .map(|i| {
                    let mut b = ColumnBuilder::new(self.schema.field(i).dtype, rows.len());
                    for row in rows {
                        b.push(row[i].clone());
                    }
                    let tail = b.finish();
                    Column::concat(&[old.column(i), &tail])
                })
                .collect();
            Ok(NextVersion::Commit(
                (),
                columns,
                TableDelta::Append {
                    rows: rows.to_vec(),
                },
            ))
        })?;
        Ok(next)
    }

    /// Delete the rows for which `mask_of` returns `true` and commit a new
    /// snapshot. The mask is always evaluated against the snapshot
    /// actually being replaced (re-evaluated if a concurrent writer commits
    /// first), so interleaved deletes compose linearizably. Returns the
    /// number of rows deleted and the new snapshot. A mask matching no
    /// rows is a no-op: nothing is rebuilt and no epoch is committed.
    pub fn delete_where(
        &self,
        mask_of: impl Fn(&Table) -> Vec<bool>,
    ) -> Result<(usize, Arc<Table>), StorageError> {
        self.commit(|old| {
            let delete = mask_of(old);
            if delete.len() != old.rows() {
                return Err(StorageError(format!(
                    "delete mask has {} entries for {} rows of '{}'",
                    delete.len(),
                    old.rows(),
                    self.name
                )));
            }
            let deleted = delete.iter().filter(|&&d| d).count();
            if deleted == 0 {
                return Ok(NextVersion::Noop(0));
            }
            let keep: Vec<bool> = delete.iter().map(|&d| !d).collect();
            let columns = (0..self.schema.len())
                .map(|i| old.column(i).filter(&keep))
                .collect();
            let indices = delete
                .iter()
                .enumerate()
                .filter(|(_, &d)| d)
                .map(|(i, _)| i as u64)
                .collect();
            Ok(NextVersion::Commit(
                deleted,
                columns,
                TableDelta::Delete { deleted: indices },
            ))
        })
    }

    /// [`delete_where`](Self::delete_where), but additionally capturing the
    /// deleted rows' full values (in predecessor order) inside the commit,
    /// so callers can derive a typed delta without racing other writers.
    /// The logged [`TableDelta::Delete`] is unchanged — positions only —
    /// keeping the WAL format stable.
    pub fn delete_where_capturing(
        &self,
        mask_of: impl Fn(&Table) -> Vec<bool>,
    ) -> Result<(Vec<Vec<Value>>, Arc<Table>), StorageError> {
        self.commit(|old| {
            let delete = mask_of(old);
            if delete.len() != old.rows() {
                return Err(StorageError(format!(
                    "delete mask has {} entries for {} rows of '{}'",
                    delete.len(),
                    old.rows(),
                    self.name
                )));
            }
            if !delete.iter().any(|&d| d) {
                return Ok(NextVersion::Noop(Vec::new()));
            }
            let captured: Vec<Vec<Value>> = delete
                .iter()
                .enumerate()
                .filter(|(_, &d)| d)
                .map(|(i, _)| old.row_values(i))
                .collect();
            let keep: Vec<bool> = delete.iter().map(|&d| !d).collect();
            let columns = (0..self.schema.len())
                .map(|i| old.column(i).filter(&keep))
                .collect();
            let indices = delete
                .iter()
                .enumerate()
                .filter(|(_, &d)| d)
                .map(|(i, _)| i as u64)
                .collect();
            Ok(NextVersion::Commit(
                captured,
                columns,
                TableDelta::Delete { deleted: indices },
            ))
        })
    }

    /// Replace the contents wholesale with `table` (same schema required),
    /// committing it as the next epoch. Returns the new snapshot.
    pub fn replace(&self, table: &Table) -> Result<Arc<Table>, StorageError> {
        if table.schema() != &self.schema {
            return Err(StorageError(format!(
                "replacement schema for '{}' does not match",
                self.name
            )));
        }
        let ((), next) = self.commit(|_| {
            Ok(NextVersion::Commit(
                (),
                (0..table.schema().len())
                    .map(|i| table.column(i).clone())
                    .collect(),
                TableDelta::Replace {
                    rows: table.to_rows(),
                },
            ))
        })?;
        Ok(next)
    }

    /// Force-install `rows` as the contents at `epoch`, bypassing the
    /// commit hook and the CAS loop. Recovery only: this is how a
    /// checkpoint image is loaded before WAL replay. Not linearizable
    /// against concurrent writers — recovery runs single-threaded before
    /// the engine serves anything.
    pub fn restore(&self, rows: &[Vec<Value>], epoch: u64) -> Result<Arc<Table>, StorageError> {
        for row in rows {
            self.validate_row(row)?;
        }
        let columns = (0..self.schema.len())
            .map(|i| {
                let mut b = ColumnBuilder::new(self.schema.field(i).dtype, rows.len());
                for row in rows {
                    b.push(row[i].clone());
                }
                b.finish()
            })
            .collect();
        let table = Arc::new(Table::new_at_epoch(
            self.name.clone(),
            self.schema.clone(),
            columns,
            epoch,
        ));
        *self.current.write() = table.clone();
        Ok(table)
    }

    /// Re-apply a logged delta as epoch `epoch`, bypassing the commit
    /// hook (recovery: WAL replay). `epoch` must be exactly the successor
    /// of the current epoch; records at or below the current epoch are
    /// already reflected (covered by a checkpoint) and report `Ok(false)`.
    /// A gap is an error — the log is missing records.
    pub fn apply_logged(&self, delta: &TableDelta, epoch: u64) -> Result<bool, StorageError> {
        let old = self.snapshot();
        if epoch <= old.epoch() {
            return Ok(false);
        }
        if epoch != old.epoch() + 1 {
            return Err(StorageError(format!(
                "replay gap: table '{}' is at epoch {} but the next log record is epoch {}",
                self.name,
                old.epoch(),
                epoch
            )));
        }
        let columns: Vec<Column> = match delta {
            TableDelta::Append { rows } => {
                for row in rows {
                    self.validate_row(row)?;
                }
                (0..self.schema.len())
                    .map(|i| {
                        let mut b = ColumnBuilder::new(self.schema.field(i).dtype, rows.len());
                        for row in rows {
                            b.push(row[i].clone());
                        }
                        let tail = b.finish();
                        Column::concat(&[old.column(i), &tail])
                    })
                    .collect()
            }
            TableDelta::Delete { deleted } => {
                let mut keep = vec![true; old.rows()];
                for &i in deleted {
                    let i = i as usize;
                    if i >= keep.len() {
                        return Err(StorageError(format!(
                            "replay delete index {} out of range for {} rows of '{}'",
                            i,
                            old.rows(),
                            self.name
                        )));
                    }
                    keep[i] = false;
                }
                (0..self.schema.len())
                    .map(|i| old.column(i).filter(&keep))
                    .collect()
            }
            TableDelta::Replace { rows } => {
                for row in rows {
                    self.validate_row(row)?;
                }
                (0..self.schema.len())
                    .map(|i| {
                        let mut b = ColumnBuilder::new(self.schema.field(i).dtype, rows.len());
                        for row in rows {
                            b.push(row[i].clone());
                        }
                        b.finish()
                    })
                    .collect()
            }
        };
        let table = Arc::new(Table::new_at_epoch(
            self.name.clone(),
            self.schema.clone(),
            columns,
            epoch,
        ));
        *self.current.write() = table;
        Ok(true)
    }

    fn validate_row(&self, row: &[Value]) -> Result<(), StorageError> {
        if row.len() != self.schema.len() {
            return Err(StorageError(format!(
                "row arity {} does not match schema arity {} of '{}'",
                row.len(),
                self.schema.len(),
                self.name
            )));
        }
        for (v, f) in row.iter().zip(self.schema.fields()) {
            // Same coercions as ColumnBuilder::push: NULL anywhere, ints
            // promote to float.
            let ok = match v.data_type() {
                None => true,
                Some(dt) => dt == f.dtype || (dt == DataType::Int && f.dtype == DataType::Float),
            };
            if !ok {
                return Err(StorageError(format!(
                    "value {v} does not match column '{}' type {:?} of '{}'",
                    f.name, f.dtype, self.name
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_vector::DataType;

    fn table() -> Arc<Table> {
        let schema = Schema::from_pairs([("id", DataType::Int), ("name", DataType::Str)]);
        let mut b = TableBuilder::new("t", schema, 4);
        for i in 0..4 {
            b.push_row(vec![Value::Int(i), Value::str(format!("r{i}"))]);
        }
        b.finish()
    }

    #[test]
    fn builder_roundtrip() {
        let t = table();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.name(), "t");
        assert_eq!(t.column_by_name("id").unwrap().as_ints(), &[0, 1, 2, 3]);
        assert!(t.column_by_name("zz").is_none());
    }

    #[test]
    fn scan_batch_projects_and_slices() {
        let t = table();
        let b = t.scan_batch(&[1], 1, 2);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.row(0), vec![Value::str("r1")]);
        // Over-long request clamps to table end.
        let b = t.scan_batch(&[0], 3, 100);
        assert_eq!(b.rows(), 1);
    }

    #[test]
    fn scan_batches_share_table_storage() {
        let t = table();
        let b = t.scan_batch(&[0, 1], 1, 2);
        assert!(b.column(0).shares_storage(t.column(0)));
        assert!(b.column(1).shares_storage(t.column(1)));
    }

    #[test]
    fn batches_cover_all_rows() {
        let schema = Schema::from_pairs([("x", DataType::Int)]);
        let mut bld = TableBuilder::new("big", schema, 3000);
        for i in 0..3000 {
            bld.push_row(vec![Value::Int(i)]);
        }
        let t = bld.finish();
        let batches = t.batches(&[0]);
        assert_eq!(batches.len(), 3); // 1024 + 1024 + 952
        let total: usize = batches.iter().map(|b| b.rows()).sum();
        assert_eq!(total, 3000);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn schema_enforced() {
        let schema = Schema::from_pairs([("x", DataType::Int)]);
        Table::new("bad", schema, vec![Column::from_strs(["a"])]);
    }

    fn versioned() -> VersionedTable {
        VersionedTable::new(table())
    }

    #[test]
    fn append_bumps_epoch_and_preserves_snapshots() {
        let vt = versioned();
        let before = vt.snapshot();
        assert_eq!(before.epoch(), 0);
        let after = vt
            .append(&[
                vec![Value::Int(4), Value::str("r4")],
                vec![Value::Int(5), Value::Null],
            ])
            .unwrap();
        assert_eq!(after.epoch(), 1);
        assert_eq!(vt.epoch(), 1);
        assert_eq!(after.rows(), 6);
        assert_eq!(after.column(0).as_ints(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(after.column(1).get(5), Value::Null);
        // The pinned snapshot is untouched.
        assert_eq!(before.rows(), 4);
        assert_eq!(before.epoch(), 0);
    }

    #[test]
    fn append_validates_rows() {
        let vt = versioned();
        // Arity.
        assert!(vt.append(&[vec![Value::Int(9)]]).is_err());
        // Type.
        assert!(vt
            .append(&[vec![Value::str("oops"), Value::str("r")]])
            .is_err());
        // A failed append commits nothing.
        assert_eq!(vt.epoch(), 0);
        assert_eq!(vt.snapshot().rows(), 4);
    }

    #[test]
    fn delete_where_filters_and_bumps_epoch() {
        let vt = versioned();
        let (deleted, after) = vt
            .delete_where(|t| t.column(0).as_ints().iter().map(|&x| x % 2 == 0).collect())
            .unwrap();
        assert_eq!(deleted, 2);
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.column(0).as_ints(), &[1, 3]);
        // Mask length is checked against the locked snapshot.
        assert!(vt.delete_where(|_| vec![true]).is_err());
        assert_eq!(vt.epoch(), 1, "failed delete commits nothing");
    }

    #[derive(Default)]
    struct RecordingHook {
        records: parking_lot::Mutex<Vec<CommitRecord>>,
        fail: std::sync::atomic::AtomicBool,
    }

    impl CommitHook for RecordingHook {
        fn before_commit(&self, record: &CommitRecord) -> Result<(), StorageError> {
            if self.fail.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(StorageError("injected hook failure".to_string()));
            }
            self.records.lock().push(record.clone());
            Ok(())
        }
    }

    #[test]
    fn commit_hook_sees_every_epoch_in_order() {
        let vt = versioned();
        let hook = Arc::new(RecordingHook::default());
        vt.set_commit_hook(hook.clone());
        vt.append(&[vec![Value::Int(4), Value::str("r4")]]).unwrap();
        vt.delete_where(|t| t.column(0).as_ints().iter().map(|&x| x == 0).collect())
            .unwrap();
        // No-ops spend no epoch and reach no hook.
        vt.append(&[]).unwrap();
        let records = hook.records.lock();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].epoch, 1);
        assert!(matches!(&records[0].delta, TableDelta::Append { rows } if rows.len() == 1));
        assert_eq!(records[1].epoch, 2);
        assert_eq!(
            records[1].delta,
            TableDelta::Delete { deleted: vec![0] },
            "delete logs predecessor row positions"
        );
    }

    #[test]
    fn failing_hook_aborts_commit() {
        let vt = versioned();
        let hook = Arc::new(RecordingHook::default());
        hook.fail.store(true, std::sync::atomic::Ordering::Relaxed);
        vt.set_commit_hook(hook);
        let err = vt.append(&[vec![Value::Int(9), Value::Null]]).unwrap_err();
        assert!(err.to_string().contains("injected hook failure"));
        assert_eq!(vt.epoch(), 0, "aborted commit swaps nothing");
        assert_eq!(vt.snapshot().rows(), 4);
    }

    #[test]
    fn apply_logged_replays_deltas_exactly() {
        let source = versioned();
        let hook = Arc::new(RecordingHook::default());
        source.set_commit_hook(hook.clone());
        source
            .append(&[
                vec![Value::Int(4), Value::str("r4")],
                vec![Value::Int(5), Value::Null],
            ])
            .unwrap();
        source
            .delete_where(|t| t.column(0).as_ints().iter().map(|&x| x % 2 == 1).collect())
            .unwrap();

        let replica = versioned();
        for record in hook.records.lock().iter() {
            assert!(replica.apply_logged(&record.delta, record.epoch).unwrap());
        }
        let (a, b) = (source.snapshot(), replica.snapshot());
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.column(0).as_ints(), b.column(0).as_ints());

        // Already-applied records are skipped, gaps are errors.
        let first = hook.records.lock()[0].clone();
        assert!(!replica.apply_logged(&first.delta, first.epoch).unwrap());
        assert!(replica.apply_logged(&first.delta, 99).is_err());
    }

    #[test]
    fn restore_installs_rows_at_epoch() {
        let vt = versioned();
        vt.restore(&[vec![Value::Int(7), Value::str("x")]], 5)
            .unwrap();
        let snap = vt.snapshot();
        assert_eq!(snap.epoch(), 5);
        assert_eq!(snap.rows(), 1);
        assert_eq!(snap.column(0).as_ints(), &[7]);
    }

    #[test]
    fn snapshots_are_o1_arc_clones() {
        let vt = versioned();
        let a = vt.snapshot();
        let b = vt.snapshot();
        assert!(Arc::ptr_eq(&a, &b), "snapshot is a pointer clone");
        assert!(a.column(0).shares_storage(b.column(0)));
    }
}
