//! In-memory columnar storage: versioned tables and the catalog.
//!
//! Base tables are fully resident columnar arrays (the paper's evaluation
//! uses warm runs with the working set in the buffer pool, so an in-memory
//! store preserves the relevant behaviour). Unlike the paper — which
//! leaves update handling out of scope (§II) apart from noting that cached
//! results must be invalidated when their base tables change (§V) — tables
//! here are **mutable through versioning**:
//!
//! * [`Table`] is one immutable, epoch-stamped snapshot; its columns are
//!   `Arc`-shared, so holding a snapshot costs nothing and survives any
//!   number of later commits;
//! * [`VersionedTable`] is the mutable wrapper: `append`/`delete_where`
//!   commit a new snapshot with the epoch bumped by one, while concurrent
//!   readers keep their pinned version (O(1) snapshot reads, no torn
//!   scans);
//! * [`Catalog`] maps names to versioned tables and hands out
//!   [`CatalogSnapshot`]s — the per-query unit of consistency whose epoch
//!   vector also keys the recycler's cache-freshness checks;
//! * every commit can be observed through a [`CommitHook`] invoked in
//!   exact epoch order before the version swap — the anchor point for the
//!   `rdb_wal` write-ahead log ([`TableDelta`]/[`CommitRecord`] are the
//!   loggable form of a commit, [`VersionedTable::apply_logged`] and
//!   [`VersionedTable::restore`] the replay entry points).

use std::fmt;

pub mod catalog;
pub mod table;

pub use catalog::{Catalog, CatalogSnapshot};
pub use table::{CommitHook, CommitRecord, Table, TableBuilder, TableDelta, VersionedTable};

/// Errors from catalog registration and table mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageError(pub String);

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "storage error: {}", self.0)
    }
}

impl std::error::Error for StorageError {}
