//! In-memory columnar storage: tables and the catalog.
//!
//! Base tables are fully resident columnar arrays (the paper's evaluation
//! uses warm runs with the working set in the buffer pool, so an in-memory
//! store preserves the relevant behaviour). Tables are immutable once
//! loaded; the recycler paper leaves update handling out of scope (§II) and
//! so do we, apart from explicit cache flushes.

pub mod catalog;
pub mod table;

pub use catalog::Catalog;
pub use table::{Table, TableBuilder};
