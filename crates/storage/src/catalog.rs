//! The table catalog and point-in-time catalog snapshots.

use std::collections::HashMap;
use std::sync::Arc;

use rdb_vector::Schema;

use crate::table::{CommitHook, Table, VersionedTable};
use crate::StorageError;

/// A name → table mapping shared by the planner and the executor.
///
/// Every entry is a [`VersionedTable`]: the catalog's shape (which tables
/// exist, their schemas) is fixed once the catalog is wrapped in an `Arc`,
/// but table *contents* evolve through epoch-stamped append/delete commits.
/// Queries read through a [`CatalogSnapshot`], which pins each table's
/// `Arc<Table>` version so in-flight scans are never affected by later
/// writes.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<VersionedTable>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table under its own name. Errors if the name is already
    /// taken — replacement must be explicit via [`Catalog::replace`].
    pub fn register(&mut self, table: Arc<Table>) -> Result<(), StorageError> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(StorageError(format!(
                "table '{name}' is already registered; use Catalog::replace \
                 to overwrite it explicitly"
            )));
        }
        self.tables
            .insert(name, Arc::new(VersionedTable::new(table)));
        Ok(())
    }

    /// Replace an existing table's contents wholesale (committing the new
    /// contents as the next epoch), or register it fresh if the name is
    /// free. Returns the snapshot that was replaced, if any.
    pub fn replace(&mut self, table: Arc<Table>) -> Result<Option<Arc<Table>>, StorageError> {
        match self.tables.get(table.name()) {
            Some(vt) => {
                let old = vt.snapshot();
                vt.replace(&table)?;
                Ok(Some(old))
            }
            None => {
                self.register(table)?;
                Ok(None)
            }
        }
    }

    /// Current snapshot of a table: O(1), pinned to the epoch at the time
    /// of the call.
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.get(name).map(|t| t.snapshot())
    }

    /// The versioned table itself (the DML surface).
    pub fn versioned(&self, name: &str) -> Option<&Arc<VersionedTable>> {
        self.tables.get(name)
    }

    /// Schema of a table, if present (invariant across epochs).
    pub fn schema_of(&self, name: &str) -> Option<&Schema> {
        self.tables.get(name).map(|t| t.schema())
    }

    /// Current epoch of a table, if present.
    pub fn epoch_of(&self, name: &str) -> Option<u64> {
        self.tables.get(name).map(|t| t.epoch())
    }

    /// Names of all registered tables (unordered).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Total footprint of all current table versions in bytes.
    pub fn size_bytes(&self) -> usize {
        self.tables
            .values()
            .map(|t| t.snapshot().size_bytes())
            .sum()
    }

    /// Install `hook` as the commit hook of **every** registered table
    /// (see [`CommitHook`] for the per-table ordering contract). Works
    /// through a shared reference because the hook slot is
    /// interior-mutable — the catalog's shape stays frozen.
    pub fn set_commit_hook(&self, hook: Arc<dyn CommitHook>) {
        for vt in self.tables.values() {
            vt.set_commit_hook(hook.clone());
        }
    }

    /// Pin every table at its current version. The snapshot is the unit a
    /// query executes against: all of its scans read the pinned versions,
    /// and its epoch vector keys the recycler's freshness checks.
    pub fn snapshot(&self) -> CatalogSnapshot {
        CatalogSnapshot {
            tables: self
                .tables
                .iter()
                .map(|(n, t)| (n.clone(), t.snapshot()))
                .collect(),
        }
    }
}

/// An immutable point-in-time view of a [`Catalog`]: each table pinned at
/// one epoch. Cheap to clone-by-`Arc` and to hold for the lifetime of a
/// query.
#[derive(Debug, Clone)]
pub struct CatalogSnapshot {
    tables: HashMap<String, Arc<Table>>,
}

impl CatalogSnapshot {
    /// The pinned version of a table.
    pub fn get(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    /// The pinned epoch of a table.
    pub fn epoch_of(&self, name: &str) -> Option<u64> {
        self.tables.get(name).map(|t| t.epoch())
    }

    /// `(table, epoch)` pairs, sorted by name (a stable identity for the
    /// whole snapshot).
    pub fn epochs(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .tables
            .iter()
            .map(|(n, t)| (n.clone(), t.epoch()))
            .collect();
        out.sort();
        out
    }

    /// Rebuild a standalone immutable [`Catalog`] over exactly these table
    /// versions (epochs preserved). Used by baselines that must re-execute
    /// a query against the same data a snapshot-pinned run saw.
    pub fn to_catalog(&self) -> Catalog {
        let mut cat = Catalog::new();
        for t in self.tables.values() {
            cat.register(t.clone())
                .expect("snapshot table names are unique");
        }
        cat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use rdb_vector::{DataType, Value};

    fn one_row_table(name: &str, x: i64) -> Arc<Table> {
        let schema = Schema::from_pairs([("x", DataType::Int)]);
        let mut b = TableBuilder::new(name, schema, 1);
        b.push_row(vec![Value::Int(x)]);
        b.finish()
    }

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        cat.register(one_row_table("t1", 1)).unwrap();
        assert!(cat.get("t1").is_some());
        assert!(cat.get("t2").is_none());
        assert_eq!(cat.schema_of("t1").unwrap().names(), vec!["x"]);
        assert_eq!(cat.table_names(), vec!["t1"]);
        assert_eq!(cat.epoch_of("t1"), Some(0));
        assert!(cat.size_bytes() > 0);
    }

    #[test]
    fn duplicate_register_is_rejected() {
        let mut cat = Catalog::new();
        cat.register(one_row_table("t", 1)).unwrap();
        let err = cat.register(one_row_table("t", 2)).unwrap_err();
        assert!(err.to_string().contains("already registered"), "{err}");
        // The original survives untouched.
        assert_eq!(cat.get("t").unwrap().column(0).as_ints(), &[1]);
        assert_eq!(cat.epoch_of("t"), Some(0));
    }

    #[test]
    fn replace_is_explicit_and_bumps_epoch() {
        let mut cat = Catalog::new();
        cat.register(one_row_table("t", 1)).unwrap();
        let old = cat.replace(one_row_table("t", 2)).unwrap();
        assert_eq!(old.unwrap().column(0).as_ints(), &[1]);
        assert_eq!(cat.get("t").unwrap().column(0).as_ints(), &[2]);
        assert_eq!(cat.epoch_of("t"), Some(1), "replacement is a new epoch");
        // Replace of an unknown name registers fresh.
        assert!(cat.replace(one_row_table("u", 9)).unwrap().is_none());
        assert_eq!(cat.epoch_of("u"), Some(0));
        // Replacement with a different schema is rejected.
        let schema = Schema::from_pairs([("y", DataType::Float)]);
        let mut b = TableBuilder::new("t", schema, 1);
        b.push_row(vec![Value::Float(0.5)]);
        assert!(cat.replace(b.finish()).is_err());
    }

    #[test]
    fn snapshot_pins_versions() {
        let mut cat = Catalog::new();
        cat.register(one_row_table("t", 1)).unwrap();
        let snap = cat.snapshot();
        cat.versioned("t")
            .unwrap()
            .append(&[vec![Value::Int(2)]])
            .unwrap();
        // The snapshot still sees the old version; the catalog the new one.
        assert_eq!(snap.get("t").unwrap().rows(), 1);
        assert_eq!(snap.epoch_of("t"), Some(0));
        assert_eq!(cat.get("t").unwrap().rows(), 2);
        assert_eq!(cat.epoch_of("t"), Some(1));
        assert_eq!(snap.epochs(), vec![("t".to_string(), 0)]);
        // Rebuilding a catalog from the snapshot reads the pinned data.
        let rebuilt = snap.to_catalog();
        assert_eq!(rebuilt.get("t").unwrap().rows(), 1);
        assert_eq!(rebuilt.epoch_of("t"), Some(0), "epoch preserved");
    }
}
