//! The table catalog.

use std::collections::HashMap;
use std::sync::Arc;

use rdb_vector::Schema;

use crate::table::Table;

/// A name → table mapping shared by the planner and the executor.
///
/// The catalog is immutable during query processing (the paper leaves update
/// handling out of scope); it is `Send + Sync` and shared via `Arc`.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table under its own name. Replaces any previous entry.
    pub fn register(&mut self, table: Arc<Table>) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    /// Schema of a table, if present.
    pub fn schema_of(&self, name: &str) -> Option<&Schema> {
        self.tables.get(name).map(|t| t.schema())
    }

    /// Names of all registered tables (unordered).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Total footprint of all tables in bytes.
    pub fn size_bytes(&self) -> usize {
        self.tables.values().map(|t| t.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use rdb_vector::{DataType, Value};

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs([("x", DataType::Int)]);
        let mut b = TableBuilder::new("t1", schema, 1);
        b.push_row(vec![Value::Int(1)]);
        cat.register(b.finish());
        assert!(cat.get("t1").is_some());
        assert!(cat.get("t2").is_none());
        assert_eq!(cat.schema_of("t1").unwrap().names(), vec!["x"]);
        assert_eq!(cat.table_names(), vec!["t1"]);
        assert!(cat.size_bytes() > 0);
    }
}
