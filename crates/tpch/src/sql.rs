//! The TPC-H templates as SQL text.
//!
//! These strings are the `Session::prepare_sql` form of the builder
//! templates in [`crate::templates`]: same parameter slots, same QGEN
//! generators. The test suite asserts that the lowered-and-normalized
//! plans *fingerprint identically* to the builder-built templates — the
//! normalization-convergence property the recycler relies on: a client
//! sending SQL and a client assembling plans by hand share cache entries.

use crate::templates::ParamGen;
use crate::templates::{q14_params, q1_params, q6_params};

/// Q1 — pricing summary report (`:shipdate` bound).
pub const Q1_SQL: &str = "\
SELECT l_returnflag, l_linestatus, \
       sum(l_quantity) AS sum_qty, \
       sum(l_extendedprice) AS sum_base_price, \
       sum(l_extendedprice * (1.0 - l_discount)) AS sum_disc_price, \
       sum(l_extendedprice * (1.0 - l_discount) * (1.0 + l_tax)) AS sum_charge, \
       avg(l_quantity) AS avg_qty, \
       avg(l_extendedprice) AS avg_price, \
       avg(l_discount) AS avg_disc, \
       count(*) AS count_order \
FROM lineitem \
WHERE l_shipdate <= $shipdate \
GROUP BY l_returnflag, l_linestatus \
ORDER BY l_returnflag, l_linestatus";

/// Q6 — forecasting revenue change (date window, discount band, quantity
/// cap).
pub const Q6_SQL: &str = "\
SELECT sum(l_extendedprice * l_discount) AS revenue \
FROM lineitem \
WHERE l_shipdate >= $date_lo AND l_shipdate < $date_hi \
  AND l_discount >= $disc_lo AND l_discount <= $disc_hi \
  AND l_quantity < $qty";

/// Q14 — promotion effect over a month.
pub const Q14_SQL: &str = "\
SELECT 100.0 * sum(CASE WHEN p_type LIKE 'PROMO%' \
                        THEN l_extendedprice * (1.0 - l_discount) \
                        ELSE 0.0 END) \
       / sum(l_extendedprice * (1.0 - l_discount)) AS promo_revenue \
FROM lineitem INNER JOIN part ON l_partkey = p_partkey \
WHERE l_shipdate >= $date_lo AND l_shipdate < $date_hi";

/// SQL text and QGEN parameter generator for pattern `n` (the patterns
/// [`crate::templates::template`] also covers).
pub fn sql_template(n: usize) -> Option<(&'static str, ParamGen)> {
    match n {
        1 => Some((Q1_SQL, q1_params)),
        6 => Some((Q6_SQL, q6_params)),
        14 => Some((Q14_SQL, q14_params)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TpchConfig};
    use crate::templates::template;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rdb_engine::Engine;

    #[test]
    fn sql_templates_fingerprint_identically_to_builders() {
        // The convergence property: a template written as SQL text and
        // the same template assembled with the plan builder normalize to
        // the same canonical plan, hence the same fingerprint — they
        // share recycler cache entries.
        let catalog = generate(&TpchConfig {
            scale: 0.002,
            seed: 7,
        });
        let engine = Engine::builder(catalog).build();
        let session = engine.session();
        for n in [1usize, 6, 14] {
            let (sql, _) = sql_template(n).unwrap();
            let (builder_tpl, _) = template(n).unwrap();
            let from_sql = session
                .prepare_sql(sql)
                .unwrap_or_else(|e| panic!("Q{n}: {}", e.render(sql)));
            let from_builder = session.prepare(&builder_tpl).unwrap();
            // Structural equality: user-assigned output names are not part
            // of the match identity (the recycler handles renames via name
            // mappings), so internal aggregate names may differ.
            assert!(
                rdb_plan::structural_eq(from_sql.template(), from_builder.template()),
                "Q{n}: normalized plans diverge\nSQL:\n{}\nbuilder:\n{}",
                from_sql.template(),
                from_builder.template()
            );
            assert_eq!(
                from_sql.fingerprint(),
                from_builder.fingerprint(),
                "Q{n}: fingerprints diverge"
            );
            assert_eq!(from_sql.param_names(), from_builder.param_names());
        }
    }

    #[test]
    fn sql_and_builder_results_agree() {
        let catalog = generate(&TpchConfig {
            scale: 0.005,
            seed: 11,
        });
        let engine = Engine::builder(catalog).build();
        let session = engine.session();
        for n in [1usize, 6, 14] {
            let (sql, gen_params) = sql_template(n).unwrap();
            let (builder_tpl, _) = template(n).unwrap();
            let params = gen_params(&mut SmallRng::seed_from_u64(3));
            let a = session
                .prepare_sql(sql)
                .unwrap()
                .execute(&params)
                .unwrap()
                .into_outcome();
            let b = session
                .prepare(&builder_tpl)
                .unwrap()
                .execute(&params)
                .unwrap()
                .into_outcome();
            assert_eq!(
                a.batch.to_rows(),
                b.batch.to_rows(),
                "Q{n}: results diverge"
            );
            // Same fingerprint ⇒ the second execution reuses the first's
            // materialized result.
            assert!(
                b.reused(),
                "Q{n}: builder execution must hit the SQL execution's cache entry"
            );
        }
    }

    #[test]
    fn sql_q1_output_names_match_spec() {
        let catalog = generate(&TpchConfig {
            scale: 0.002,
            seed: 5,
        });
        let engine = Engine::builder(catalog).build();
        let session = engine.session();
        let prepared = session.prepare_sql(Q1_SQL).unwrap();
        let params = q1_params(&mut SmallRng::seed_from_u64(1));
        let handle = prepared.execute(&params).unwrap();
        assert_eq!(
            handle.schema().names(),
            vec![
                "l_returnflag",
                "l_linestatus",
                "sum_qty",
                "sum_base_price",
                "sum_disc_price",
                "sum_charge",
                "avg_qty",
                "avg_price",
                "avg_disc",
                "count_order",
            ]
        );
    }
}
