//! The 22 TPC-H query patterns as plan builders.
//!
//! Each builder produces one fixed "optimized" plan shape per pattern (the
//! recycler matches optimized plans, §II) with QGEN-style parameters drawn
//! from [`crate::params`]. Correlated subqueries are decorrelated the way a
//! real optimizer would: scalar subqueries become single-row broadcast
//! joins, `EXISTS`/`NOT EXISTS` become semi/anti joins, and Q21's
//! "different supplier" conditions become distinct-count filters.

use rand::rngs::SmallRng;
use rdb_expr::{AggFunc, Expr};
use rdb_plan::{scan, JoinKind, Plan, SortKeyExpr};
use rdb_vector::types::add_months;
use rdb_vector::Value;

use crate::params;

fn col(n: &str) -> Expr {
    Expr::name(n)
}

fn revenue() -> Expr {
    col("l_extendedprice").mul(Expr::lit(1.0).sub(col("l_discount")))
}

fn strs(xs: &[&str]) -> Vec<Value> {
    xs.iter().map(|s| Value::str(*s)).collect()
}

/// Q1 — pricing summary report.
pub fn q1(rng: &mut SmallRng) -> Plan {
    let d = params::q1_date(rng);
    scan(
        "lineitem",
        &[
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_returnflag",
            "l_linestatus",
            "l_shipdate",
        ],
    )
    .select(col("l_shipdate").le(Expr::lit(Value::Date(d))))
    .aggregate(
        vec![
            (col("l_returnflag"), "l_returnflag"),
            (col("l_linestatus"), "l_linestatus"),
        ],
        vec![
            (AggFunc::Sum(col("l_quantity")), "sum_qty"),
            (AggFunc::Sum(col("l_extendedprice")), "sum_base_price"),
            (AggFunc::Sum(revenue()), "sum_disc_price"),
            (
                AggFunc::Sum(revenue().mul(Expr::lit(1.0).add(col("l_tax")))),
                "sum_charge",
            ),
            (AggFunc::Avg(col("l_quantity")), "avg_qty"),
            (AggFunc::Avg(col("l_extendedprice")), "avg_price"),
            (AggFunc::Avg(col("l_discount")), "avg_disc"),
            (AggFunc::CountStar, "count_order"),
        ],
    )
    .sort(vec![
        SortKeyExpr::asc(col("l_returnflag")),
        SortKeyExpr::asc(col("l_linestatus")),
    ])
}

/// Q2 — minimum-cost supplier.
pub fn q2(rng: &mut SmallRng) -> Plan {
    let size = params::size(rng);
    let syll = params::type_syllable3(rng);
    let region = params::region(rng);
    let supplier_geo = || {
        scan(
            "supplier",
            &[
                "s_suppkey",
                "s_name",
                "s_address",
                "s_nationkey",
                "s_phone",
                "s_acctbal",
            ],
        )
        .inner_join(
            scan("nation", &["n_nationkey", "n_name", "n_regionkey"]).inner_join(
                scan("region", &["r_regionkey", "r_name"])
                    .select(col("r_name").eq(Expr::lit(Value::str(&region)))),
                vec![col("n_regionkey")],
                vec![col("r_regionkey")],
            ),
            vec![col("s_nationkey")],
            vec![col("n_nationkey")],
        )
    };
    let min_cost = scan("partsupp", &["ps_partkey", "ps_suppkey", "ps_supplycost"])
        .inner_join(
            supplier_geo(),
            vec![col("ps_suppkey")],
            vec![col("s_suppkey")],
        )
        .aggregate(
            vec![(col("ps_partkey"), "mc_partkey")],
            vec![(AggFunc::Min(col("ps_supplycost")), "min_sc")],
        );
    scan("part", &["p_partkey", "p_mfgr", "p_type", "p_size"])
        .select(
            col("p_size")
                .eq(Expr::lit(size))
                .and(col("p_type").like(format!("%{syll}"))),
        )
        .inner_join(
            scan("partsupp", &["ps_partkey", "ps_suppkey", "ps_supplycost"]).inner_join(
                supplier_geo(),
                vec![col("ps_suppkey")],
                vec![col("s_suppkey")],
            ),
            vec![col("p_partkey")],
            vec![col("ps_partkey")],
        )
        .inner_join(
            min_cost,
            vec![col("ps_partkey"), col("ps_supplycost")],
            vec![col("mc_partkey"), col("min_sc")],
        )
        .top_n(
            vec![
                SortKeyExpr::desc(col("s_acctbal")),
                SortKeyExpr::asc(col("n_name")),
                SortKeyExpr::asc(col("s_name")),
                SortKeyExpr::asc(col("p_partkey")),
            ],
            100,
        )
        .project(vec![
            (col("s_acctbal"), "s_acctbal"),
            (col("s_name"), "s_name"),
            (col("n_name"), "n_name"),
            (col("p_partkey"), "p_partkey"),
            (col("p_mfgr"), "p_mfgr"),
            (col("s_address"), "s_address"),
            (col("s_phone"), "s_phone"),
        ])
}

/// Q3 — shipping priority.
pub fn q3(rng: &mut SmallRng) -> Plan {
    let seg = params::segment(rng);
    let d = params::q3_date(rng);
    scan(
        "lineitem",
        &["l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"],
    )
    .select(col("l_shipdate").gt(Expr::lit(Value::Date(d))))
    .inner_join(
        scan(
            "orders",
            &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
        )
        .select(col("o_orderdate").lt(Expr::lit(Value::Date(d))))
        .inner_join(
            scan("customer", &["c_custkey", "c_mktsegment"])
                .select(col("c_mktsegment").eq(Expr::lit(Value::str(&seg)))),
            vec![col("o_custkey")],
            vec![col("c_custkey")],
        ),
        vec![col("l_orderkey")],
        vec![col("o_orderkey")],
    )
    .aggregate(
        vec![
            (col("l_orderkey"), "l_orderkey"),
            (col("o_orderdate"), "o_orderdate"),
            (col("o_shippriority"), "o_shippriority"),
        ],
        vec![(AggFunc::Sum(revenue()), "revenue")],
    )
    .top_n(
        vec![
            SortKeyExpr::desc(col("revenue")),
            SortKeyExpr::asc(col("o_orderdate")),
        ],
        10,
    )
}

/// Q4 — order priority checking.
pub fn q4(rng: &mut SmallRng) -> Plan {
    let d = params::first_of_month(rng);
    scan("orders", &["o_orderkey", "o_orderdate", "o_orderpriority"])
        .select(
            col("o_orderdate")
                .ge(Expr::lit(Value::Date(d)))
                .and(col("o_orderdate").lt(Expr::lit(Value::Date(add_months(d, 3))))),
        )
        .join(
            scan("lineitem", &["l_orderkey", "l_commitdate", "l_receiptdate"])
                .select(col("l_commitdate").lt(col("l_receiptdate"))),
            JoinKind::Semi,
            vec![col("o_orderkey")],
            vec![col("l_orderkey")],
        )
        .aggregate(
            vec![(col("o_orderpriority"), "o_orderpriority")],
            vec![(AggFunc::CountStar, "order_count")],
        )
        .sort(vec![SortKeyExpr::asc(col("o_orderpriority"))])
}

/// Q5 — local supplier volume.
pub fn q5(rng: &mut SmallRng) -> Plan {
    let region = params::region(rng);
    let d = params::year_start(rng);
    scan(
        "lineitem",
        &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
    )
    .inner_join(
        scan("supplier", &["s_suppkey", "s_nationkey"]).inner_join(
            scan("nation", &["n_nationkey", "n_name", "n_regionkey"]).inner_join(
                scan("region", &["r_regionkey", "r_name"])
                    .select(col("r_name").eq(Expr::lit(Value::str(&region)))),
                vec![col("n_regionkey")],
                vec![col("r_regionkey")],
            ),
            vec![col("s_nationkey")],
            vec![col("n_nationkey")],
        ),
        vec![col("l_suppkey")],
        vec![col("s_suppkey")],
    )
    .inner_join(
        scan("orders", &["o_orderkey", "o_custkey", "o_orderdate"]).select(
            col("o_orderdate")
                .ge(Expr::lit(Value::Date(d)))
                .and(col("o_orderdate").lt(Expr::lit(Value::Date(add_months(d, 12))))),
        ),
        vec![col("l_orderkey")],
        vec![col("o_orderkey")],
    )
    .inner_join(
        scan("customer", &["c_custkey", "c_nationkey"]),
        vec![col("o_custkey")],
        vec![col("c_custkey")],
    )
    .select(col("c_nationkey").eq(col("s_nationkey")))
    .aggregate(
        vec![(col("n_name"), "n_name")],
        vec![(AggFunc::Sum(revenue()), "revenue")],
    )
    .sort(vec![SortKeyExpr::desc(col("revenue"))])
}

/// Q6 — forecasting revenue change.
pub fn q6(rng: &mut SmallRng) -> Plan {
    let d = params::year_start(rng);
    let disc = params::discount(rng);
    let qty = params::q6_quantity(rng);
    scan(
        "lineitem",
        &["l_quantity", "l_extendedprice", "l_discount", "l_shipdate"],
    )
    .select(Expr::and_all([
        col("l_shipdate").ge(Expr::lit(Value::Date(d))),
        col("l_shipdate").lt(Expr::lit(Value::Date(add_months(d, 12)))),
        col("l_discount").ge(Expr::lit(disc - 0.01001)),
        col("l_discount").le(Expr::lit(disc + 0.01001)),
        col("l_quantity").lt(Expr::lit(qty as f64)),
    ]))
    .aggregate(
        vec![],
        vec![(
            AggFunc::Sum(col("l_extendedprice").mul(col("l_discount"))),
            "revenue",
        )],
    )
}

/// Q7 — volume shipping between two nations.
pub fn q7(rng: &mut SmallRng) -> Plan {
    let (n1, n2) = params::nation_pair(rng);
    let pair = [Value::str(&n1), Value::str(&n2)];
    scan(
        "lineitem",
        &[
            "l_orderkey",
            "l_suppkey",
            "l_extendedprice",
            "l_discount",
            "l_shipdate",
        ],
    )
    .select(
        col("l_shipdate")
            .ge(Expr::lit(Value::Date(rdb_vector::date_from_ymd(
                1995, 1, 1,
            ))))
            .and(
                col("l_shipdate").le(Expr::lit(Value::Date(rdb_vector::date_from_ymd(
                    1996, 12, 31,
                )))),
            ),
    )
    .inner_join(
        scan("supplier", &["s_suppkey", "s_nationkey"]).inner_join(
            scan("nation", &["n_nationkey", "n_name"])
                .select(col("n_name").in_list(pair.clone()))
                .project(vec![
                    (col("n_nationkey"), "sn_nationkey"),
                    (col("n_name"), "supp_nation"),
                ]),
            vec![col("s_nationkey")],
            vec![col("sn_nationkey")],
        ),
        vec![col("l_suppkey")],
        vec![col("s_suppkey")],
    )
    .inner_join(
        scan("orders", &["o_orderkey", "o_custkey"]),
        vec![col("l_orderkey")],
        vec![col("o_orderkey")],
    )
    .inner_join(
        scan("customer", &["c_custkey", "c_nationkey"]).inner_join(
            scan("nation", &["n_nationkey", "n_name"])
                .select(col("n_name").in_list(pair))
                .project(vec![
                    (col("n_nationkey"), "cn_nationkey"),
                    (col("n_name"), "cust_nation"),
                ]),
            vec![col("c_nationkey")],
            vec![col("cn_nationkey")],
        ),
        vec![col("o_custkey")],
        vec![col("c_custkey")],
    )
    .select(
        col("supp_nation")
            .clone()
            .eq(Expr::lit(Value::str(&n1)))
            .and(col("cust_nation").eq(Expr::lit(Value::str(&n2))))
            .or(col("supp_nation")
                .eq(Expr::lit(Value::str(&n2)))
                .and(col("cust_nation").eq(Expr::lit(Value::str(&n1))))),
    )
    .aggregate(
        vec![
            (col("supp_nation"), "supp_nation"),
            (col("cust_nation"), "cust_nation"),
            (col("l_shipdate").year(), "l_year"),
        ],
        vec![(AggFunc::Sum(revenue()), "revenue")],
    )
    .sort(vec![
        SortKeyExpr::asc(col("supp_nation")),
        SortKeyExpr::asc(col("cust_nation")),
        SortKeyExpr::asc(col("l_year")),
    ])
}

/// Q8 — national market share.
pub fn q8(rng: &mut SmallRng) -> Plan {
    let nation = params::nation(rng);
    let region = params::region(rng);
    let ptype = params::full_type(rng);
    scan(
        "lineitem",
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_extendedprice",
            "l_discount",
        ],
    )
    .inner_join(
        scan("part", &["p_partkey", "p_type"])
            .select(col("p_type").eq(Expr::lit(Value::str(&ptype)))),
        vec![col("l_partkey")],
        vec![col("p_partkey")],
    )
    .inner_join(
        scan("orders", &["o_orderkey", "o_custkey", "o_orderdate"]).select(
            col("o_orderdate")
                .ge(Expr::lit(Value::Date(rdb_vector::date_from_ymd(
                    1995, 1, 1,
                ))))
                .and(
                    col("o_orderdate").le(Expr::lit(Value::Date(rdb_vector::date_from_ymd(
                        1996, 12, 31,
                    )))),
                ),
        ),
        vec![col("l_orderkey")],
        vec![col("o_orderkey")],
    )
    .inner_join(
        scan("customer", &["c_custkey", "c_nationkey"]).inner_join(
            scan("nation", &["n_nationkey", "n_regionkey"]).inner_join(
                scan("region", &["r_regionkey", "r_name"])
                    .select(col("r_name").eq(Expr::lit(Value::str(&region)))),
                vec![col("n_regionkey")],
                vec![col("r_regionkey")],
            ),
            vec![col("c_nationkey")],
            vec![col("n_nationkey")],
        ),
        vec![col("o_custkey")],
        vec![col("c_custkey")],
    )
    .inner_join(
        scan("supplier", &["s_suppkey", "s_nationkey"]).inner_join(
            scan("nation", &["n_nationkey", "n_name"]).project(vec![
                (col("n_nationkey"), "n2_nationkey"),
                (col("n_name"), "n2_name"),
            ]),
            vec![col("s_nationkey")],
            vec![col("n2_nationkey")],
        ),
        vec![col("l_suppkey")],
        vec![col("s_suppkey")],
    )
    .aggregate(
        vec![(col("o_orderdate").year(), "o_year")],
        vec![
            (
                AggFunc::Sum(Expr::case(
                    vec![(col("n2_name").eq(Expr::lit(Value::str(&nation))), revenue())],
                    Expr::lit(0.0),
                )),
                "nation_volume",
            ),
            (AggFunc::Sum(revenue()), "total_volume"),
        ],
    )
    .project(vec![
        (col("o_year"), "o_year"),
        (col("nation_volume").div(col("total_volume")), "mkt_share"),
    ])
    .sort(vec![SortKeyExpr::asc(col("o_year"))])
}

/// Q9 — product type profit measure.
pub fn q9(rng: &mut SmallRng) -> Plan {
    let color = params::color(rng);
    scan(
        "lineitem",
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
        ],
    )
    .inner_join(
        scan("part", &["p_partkey", "p_name"]).select(col("p_name").like(format!("%{color}%"))),
        vec![col("l_partkey")],
        vec![col("p_partkey")],
    )
    .inner_join(
        scan("partsupp", &["ps_partkey", "ps_suppkey", "ps_supplycost"]),
        vec![col("l_partkey"), col("l_suppkey")],
        vec![col("ps_partkey"), col("ps_suppkey")],
    )
    .inner_join(
        scan("supplier", &["s_suppkey", "s_nationkey"]).inner_join(
            scan("nation", &["n_nationkey", "n_name"]),
            vec![col("s_nationkey")],
            vec![col("n_nationkey")],
        ),
        vec![col("l_suppkey")],
        vec![col("s_suppkey")],
    )
    .inner_join(
        scan("orders", &["o_orderkey", "o_orderdate"]),
        vec![col("l_orderkey")],
        vec![col("o_orderkey")],
    )
    .aggregate(
        vec![
            (col("n_name"), "nation"),
            (col("o_orderdate").year(), "o_year"),
        ],
        vec![(
            AggFunc::Sum(revenue().sub(col("ps_supplycost").mul(col("l_quantity")))),
            "sum_profit",
        )],
    )
    .sort(vec![
        SortKeyExpr::asc(col("nation")),
        SortKeyExpr::desc(col("o_year")),
    ])
}

/// Q10 — returned item reporting.
pub fn q10(rng: &mut SmallRng) -> Plan {
    let d = params::q10_date(rng);
    scan(
        "lineitem",
        &[
            "l_orderkey",
            "l_extendedprice",
            "l_discount",
            "l_returnflag",
        ],
    )
    .select(col("l_returnflag").eq(Expr::lit("R")))
    .inner_join(
        scan("orders", &["o_orderkey", "o_custkey", "o_orderdate"]).select(
            col("o_orderdate")
                .ge(Expr::lit(Value::Date(d)))
                .and(col("o_orderdate").lt(Expr::lit(Value::Date(add_months(d, 3))))),
        ),
        vec![col("l_orderkey")],
        vec![col("o_orderkey")],
    )
    .inner_join(
        scan(
            "customer",
            &[
                "c_custkey",
                "c_name",
                "c_address",
                "c_nationkey",
                "c_phone",
                "c_acctbal",
            ],
        )
        .inner_join(
            scan("nation", &["n_nationkey", "n_name"]),
            vec![col("c_nationkey")],
            vec![col("n_nationkey")],
        ),
        vec![col("o_custkey")],
        vec![col("c_custkey")],
    )
    .aggregate(
        vec![
            (col("c_custkey"), "c_custkey"),
            (col("c_name"), "c_name"),
            (col("c_acctbal"), "c_acctbal"),
            (col("c_phone"), "c_phone"),
            (col("n_name"), "n_name"),
            (col("c_address"), "c_address"),
        ],
        vec![(AggFunc::Sum(revenue()), "revenue")],
    )
    .top_n(vec![SortKeyExpr::desc(col("revenue"))], 20)
}

/// Q11 — important stock identification.
pub fn q11(rng: &mut SmallRng, scale: f64) -> Plan {
    let nation = params::nation(rng);
    let fraction = params::q11_fraction(scale);
    let ps_nation = || {
        scan(
            "partsupp",
            &["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"],
        )
        .inner_join(
            scan("supplier", &["s_suppkey", "s_nationkey"]).inner_join(
                scan("nation", &["n_nationkey", "n_name"])
                    .select(col("n_name").eq(Expr::lit(Value::str(&nation)))),
                vec![col("s_nationkey")],
                vec![col("n_nationkey")],
            ),
            vec![col("ps_suppkey")],
            vec![col("s_suppkey")],
        )
    };
    let value = col("ps_supplycost").mul(col("ps_availqty"));
    ps_nation()
        .aggregate(
            vec![(col("ps_partkey"), "ps_partkey")],
            vec![(AggFunc::Sum(value.clone()), "value")],
        )
        .single_join(ps_nation().aggregate(vec![], vec![(AggFunc::Sum(value), "total")]))
        .select(col("value").gt(col("total").mul(Expr::lit(fraction))))
        .project(vec![
            (col("ps_partkey"), "ps_partkey"),
            (col("value"), "value"),
        ])
        .sort(vec![SortKeyExpr::desc(col("value"))])
}

/// Q12 — shipping modes and order priority.
pub fn q12(rng: &mut SmallRng) -> Plan {
    let (m1, m2) = params::ship_mode_pair(rng);
    let d = params::year_start(rng);
    let high = col("o_orderpriority").in_list(strs(&["1-URGENT", "2-HIGH"]));
    scan(
        "lineitem",
        &[
            "l_orderkey",
            "l_shipdate",
            "l_commitdate",
            "l_receiptdate",
            "l_shipmode",
        ],
    )
    .select(Expr::and_all([
        col("l_shipmode").in_list([Value::str(&m1), Value::str(&m2)]),
        col("l_commitdate").lt(col("l_receiptdate")),
        col("l_shipdate").lt(col("l_commitdate")),
        col("l_receiptdate").ge(Expr::lit(Value::Date(d))),
        col("l_receiptdate").lt(Expr::lit(Value::Date(add_months(d, 12)))),
    ]))
    .inner_join(
        scan("orders", &["o_orderkey", "o_orderpriority"]),
        vec![col("l_orderkey")],
        vec![col("o_orderkey")],
    )
    .aggregate(
        vec![(col("l_shipmode"), "l_shipmode")],
        vec![
            (
                AggFunc::Sum(Expr::case(vec![(high.clone(), Expr::lit(1))], Expr::lit(0))),
                "high_line_count",
            ),
            (
                AggFunc::Sum(Expr::case(vec![(high, Expr::lit(0))], Expr::lit(1))),
                "low_line_count",
            ),
        ],
    )
    .sort(vec![SortKeyExpr::asc(col("l_shipmode"))])
}

/// Q13 — customer distribution.
pub fn q13(rng: &mut SmallRng) -> Plan {
    let (w1, w2) = params::q13_words(rng);
    scan("customer", &["c_custkey"])
        .join(
            scan("orders", &["o_orderkey", "o_custkey", "o_comment"])
                .select(col("o_comment").not_like(format!("%{w1}%{w2}%")))
                .project(vec![
                    (col("o_orderkey"), "o_orderkey"),
                    (col("o_custkey"), "o_custkey"),
                ]),
            JoinKind::LeftOuter,
            vec![col("c_custkey")],
            vec![col("o_custkey")],
        )
        .aggregate(
            vec![(col("c_custkey"), "c_custkey")],
            vec![(AggFunc::Count(col("o_orderkey")), "c_count")],
        )
        .aggregate(
            vec![(col("c_count"), "c_count")],
            vec![(AggFunc::CountStar, "custdist")],
        )
        .sort(vec![
            SortKeyExpr::desc(col("custdist")),
            SortKeyExpr::desc(col("c_count")),
        ])
}

/// Q14 — promotion effect.
pub fn q14(rng: &mut SmallRng) -> Plan {
    let d = params::month_in_93_97(rng);
    scan(
        "lineitem",
        &["l_partkey", "l_extendedprice", "l_discount", "l_shipdate"],
    )
    .select(
        col("l_shipdate")
            .ge(Expr::lit(Value::Date(d)))
            .and(col("l_shipdate").lt(Expr::lit(Value::Date(add_months(d, 1))))),
    )
    .inner_join(
        scan("part", &["p_partkey", "p_type"]),
        vec![col("l_partkey")],
        vec![col("p_partkey")],
    )
    .aggregate(
        vec![],
        vec![
            (
                AggFunc::Sum(Expr::case(
                    vec![(col("p_type").like("PROMO%"), revenue())],
                    Expr::lit(0.0),
                )),
                "promo",
            ),
            (AggFunc::Sum(revenue()), "total"),
        ],
    )
    .project(vec![(
        Expr::lit(100.0).mul(col("promo")).div(col("total")),
        "promo_revenue",
    )])
}

/// Q15 — top supplier.
pub fn q15(rng: &mut SmallRng) -> Plan {
    let d = params::month_in_93_97(rng);
    let revenue_view = || {
        scan(
            "lineitem",
            &["l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"],
        )
        .select(
            col("l_shipdate")
                .ge(Expr::lit(Value::Date(d)))
                .and(col("l_shipdate").lt(Expr::lit(Value::Date(add_months(d, 3))))),
        )
        .aggregate(
            vec![(col("l_suppkey"), "supplier_no")],
            vec![(AggFunc::Sum(revenue()), "total_revenue")],
        )
    };
    scan("supplier", &["s_suppkey", "s_name", "s_address", "s_phone"])
        .inner_join(
            revenue_view(),
            vec![col("s_suppkey")],
            vec![col("supplier_no")],
        )
        .single_join(revenue_view().aggregate(
            vec![],
            vec![(AggFunc::Max(col("total_revenue")), "max_rev")],
        ))
        .select(col("total_revenue").eq(col("max_rev")))
        .project(vec![
            (col("s_suppkey"), "s_suppkey"),
            (col("s_name"), "s_name"),
            (col("s_address"), "s_address"),
            (col("s_phone"), "s_phone"),
            (col("total_revenue"), "total_revenue"),
        ])
        .sort(vec![SortKeyExpr::asc(col("s_suppkey"))])
}

/// Q16 — parts/supplier relationship. `pa` selects the proactive shape
/// (selection directly under the aggregate, ready for cube caching).
pub fn q16(rng: &mut SmallRng, pa: bool) -> Plan {
    let brand = params::brand(rng);
    let tprefix = params::type_prefix2(rng);
    let sizes: Vec<Value> = params::eight_sizes(rng)
        .into_iter()
        .map(Value::Int)
        .collect();
    let predicate = Expr::and_all([
        col("p_brand").ne(Expr::lit(Value::str(&brand))),
        col("p_type").not_like(format!("{tprefix}%")),
        col("p_size").in_list(sizes),
    ]);
    let base = |part: Plan| {
        scan("partsupp", &["ps_partkey", "ps_suppkey"])
            .inner_join(part, vec![col("ps_partkey")], vec![col("p_partkey")])
            .join(
                scan("supplier", &["s_suppkey", "s_comment"])
                    .select(col("s_comment").like("%Customer%Complaints%"))
                    .project(vec![(col("s_suppkey"), "bad_suppkey")]),
                JoinKind::Anti,
                vec![col("ps_suppkey")],
                vec![col("bad_suppkey")],
            )
    };
    let agg = |p: Plan| {
        p.aggregate(
            vec![
                (col("p_brand"), "p_brand"),
                (col("p_type"), "p_type"),
                (col("p_size"), "p_size"),
            ],
            vec![(AggFunc::CountDistinct(col("ps_suppkey")), "supplier_cnt")],
        )
    };
    let part_all = scan("part", &["p_partkey", "p_brand", "p_type", "p_size"]);
    let shaped = if pa {
        // Selection pulled directly under the aggregate so the cube rewrite
        // applies (paper §IV-B, applied to Q16 in §V).
        agg(base(part_all).select(predicate))
    } else {
        agg(base(part_all.select(predicate)))
    };
    shaped.sort(vec![
        SortKeyExpr::desc(col("supplier_cnt")),
        SortKeyExpr::asc(col("p_brand")),
        SortKeyExpr::asc(col("p_type")),
        SortKeyExpr::asc(col("p_size")),
    ])
}

/// Q17 — small-quantity-order revenue.
pub fn q17(rng: &mut SmallRng) -> Plan {
    let brand = params::brand(rng);
    let container = params::container(rng);
    scan("lineitem", &["l_partkey", "l_quantity", "l_extendedprice"])
        .inner_join(
            scan("part", &["p_partkey", "p_brand", "p_container"]).select(
                col("p_brand")
                    .eq(Expr::lit(Value::str(&brand)))
                    .and(col("p_container").eq(Expr::lit(Value::str(&container)))),
            ),
            vec![col("l_partkey")],
            vec![col("p_partkey")],
        )
        .inner_join(
            scan("lineitem", &["l_partkey", "l_quantity"]).aggregate(
                vec![(col("l_partkey"), "a_partkey")],
                vec![(AggFunc::Avg(col("l_quantity")), "avg_qty")],
            ),
            vec![col("l_partkey")],
            vec![col("a_partkey")],
        )
        .select(col("l_quantity").lt(Expr::lit(0.2).mul(col("avg_qty"))))
        .aggregate(
            vec![],
            vec![(AggFunc::Sum(col("l_extendedprice")), "total")],
        )
        .project(vec![(col("total").div(Expr::lit(7.0)), "avg_yearly")])
}

/// Q18 — large volume customers.
pub fn q18(rng: &mut SmallRng) -> Plan {
    let qty = params::q18_quantity(rng);
    let bigs = scan("lineitem", &["l_orderkey", "l_quantity"])
        .aggregate(
            vec![(col("l_orderkey"), "big_okey")],
            vec![(AggFunc::Sum(col("l_quantity")), "sum_qty")],
        )
        .select(col("sum_qty").gt(Expr::lit(qty as f64)))
        .project(vec![(col("big_okey"), "big_okey")]);
    scan("lineitem", &["l_orderkey", "l_quantity"])
        .inner_join(
            scan(
                "orders",
                &["o_orderkey", "o_custkey", "o_totalprice", "o_orderdate"],
            )
            .join(
                bigs,
                JoinKind::Semi,
                vec![col("o_orderkey")],
                vec![col("big_okey")],
            )
            .inner_join(
                scan("customer", &["c_custkey", "c_name"]),
                vec![col("o_custkey")],
                vec![col("c_custkey")],
            ),
            vec![col("l_orderkey")],
            vec![col("o_orderkey")],
        )
        .aggregate(
            vec![
                (col("c_name"), "c_name"),
                (col("c_custkey"), "c_custkey"),
                (col("o_orderkey"), "o_orderkey"),
                (col("o_orderdate"), "o_orderdate"),
                (col("o_totalprice"), "o_totalprice"),
            ],
            vec![(AggFunc::Sum(col("l_quantity")), "sum_qty")],
        )
        .top_n(
            vec![
                SortKeyExpr::desc(col("o_totalprice")),
                SortKeyExpr::asc(col("o_orderdate")),
            ],
            100,
        )
}

/// Q19 — discounted revenue. `pa` selects the proactive shape (the
/// disjunction sits directly under the aggregate for cube caching).
pub fn q19(rng: &mut SmallRng, pa: bool) -> Plan {
    let (q1, q2, q3) = params::q19_quantities(rng);
    let b1 = params::brand(rng);
    let b2 = params::brand(rng);
    let b3 = params::brand(rng);
    let branch = |brand: &str, containers: &[&str], qlo: i64, shi: i64| {
        Expr::and_all([
            col("p_brand").eq(Expr::lit(Value::str(brand))),
            col("p_container").in_list(strs(containers)),
            col("l_quantity").ge(Expr::lit(qlo as f64)),
            col("l_quantity").le(Expr::lit((qlo + 10) as f64)),
            col("p_size").ge(Expr::lit(1)),
            col("p_size").le(Expr::lit(shi)),
        ])
    };
    let disjunction = Expr::or_all([
        branch(&b1, &["SM CASE", "SM BOX", "SM PACK", "SM PKG"], q1, 5),
        branch(&b2, &["MED BAG", "MED BOX", "MED PKG", "MED PACK"], q2, 10),
        branch(&b3, &["LG CASE", "LG BOX", "LG PACK", "LG PKG"], q3, 15),
    ]);
    let joined = scan(
        "lineitem",
        &[
            "l_partkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_shipinstruct",
            "l_shipmode",
        ],
    )
    .select(
        col("l_shipinstruct")
            .eq(Expr::lit("DELIVER IN PERSON"))
            .and(col("l_shipmode").in_list(strs(&["AIR", "AIR REG"]))),
    )
    .inner_join(
        scan("part", &["p_partkey", "p_brand", "p_size", "p_container"]),
        vec![col("l_partkey")],
        vec![col("p_partkey")],
    );
    let filtered = joined.select(disjunction);
    let agg = filtered.aggregate(vec![], vec![(AggFunc::Sum(revenue()), "revenue")]);
    // The non-PA "optimized" plan pushes the disjunction below the
    // aggregation too; the only difference is that PA mode later applies
    // the cube rewrite to this shape.
    let _ = pa;
    agg
}

/// Q20 — potential part promotion.
pub fn q20(rng: &mut SmallRng) -> Plan {
    let color = params::color(rng);
    let d = params::year_start(rng);
    let nation = params::nation(rng);
    let qtys = scan(
        "lineitem",
        &["l_partkey", "l_suppkey", "l_quantity", "l_shipdate"],
    )
    .select(
        col("l_shipdate")
            .ge(Expr::lit(Value::Date(d)))
            .and(col("l_shipdate").lt(Expr::lit(Value::Date(add_months(d, 12))))),
    )
    .aggregate(
        vec![
            (col("l_partkey"), "q_partkey"),
            (col("l_suppkey"), "q_suppkey"),
        ],
        vec![(AggFunc::Sum(col("l_quantity")), "q_sum")],
    );
    let eligible = scan("partsupp", &["ps_partkey", "ps_suppkey", "ps_availqty"])
        .join(
            scan("part", &["p_partkey", "p_name"])
                .select(col("p_name").like(format!("{color}%")))
                .project(vec![(col("p_partkey"), "cp_partkey")]),
            JoinKind::Semi,
            vec![col("ps_partkey")],
            vec![col("cp_partkey")],
        )
        .inner_join(
            qtys,
            vec![col("ps_partkey"), col("ps_suppkey")],
            vec![col("q_partkey"), col("q_suppkey")],
        )
        .select(col("ps_availqty").gt(Expr::lit(0.5).mul(col("q_sum"))))
        .project(vec![(col("ps_suppkey"), "ok_suppkey")]);
    scan(
        "supplier",
        &["s_suppkey", "s_name", "s_address", "s_nationkey"],
    )
    .join(
        eligible,
        JoinKind::Semi,
        vec![col("s_suppkey")],
        vec![col("ok_suppkey")],
    )
    .inner_join(
        scan("nation", &["n_nationkey", "n_name"])
            .select(col("n_name").eq(Expr::lit(Value::str(&nation)))),
        vec![col("s_nationkey")],
        vec![col("n_nationkey")],
    )
    .project(vec![
        (col("s_name"), "s_name"),
        (col("s_address"), "s_address"),
    ])
    .sort(vec![SortKeyExpr::asc(col("s_name"))])
}

/// Q21 — suppliers who kept orders waiting.
pub fn q21(rng: &mut SmallRng) -> Plan {
    let nation = params::nation(rng);
    let failed = || {
        scan(
            "lineitem",
            &["l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"],
        )
        .select(col("l_receiptdate").gt(col("l_commitdate")))
    };
    let multi = scan("lineitem", &["l_orderkey", "l_suppkey"])
        .aggregate(
            vec![(col("l_orderkey"), "m_okey")],
            vec![(AggFunc::CountDistinct(col("l_suppkey")), "nsupp")],
        )
        .select(col("nsupp").gt(Expr::lit(1)))
        .project(vec![(col("m_okey"), "m_okey")]);
    let multi_failed = failed()
        .aggregate(
            vec![(col("l_orderkey"), "f_okey")],
            vec![(AggFunc::CountDistinct(col("l_suppkey")), "nfail")],
        )
        .select(col("nfail").gt(Expr::lit(1)))
        .project(vec![(col("f_okey"), "f_okey")]);
    failed()
        .inner_join(
            scan("supplier", &["s_suppkey", "s_name", "s_nationkey"]).inner_join(
                scan("nation", &["n_nationkey", "n_name"])
                    .select(col("n_name").eq(Expr::lit(Value::str(&nation)))),
                vec![col("s_nationkey")],
                vec![col("n_nationkey")],
            ),
            vec![col("l_suppkey")],
            vec![col("s_suppkey")],
        )
        .inner_join(
            scan("orders", &["o_orderkey", "o_orderstatus"])
                .select(col("o_orderstatus").eq(Expr::lit("F"))),
            vec![col("l_orderkey")],
            vec![col("o_orderkey")],
        )
        .join(
            multi,
            JoinKind::Semi,
            vec![col("l_orderkey")],
            vec![col("m_okey")],
        )
        .join(
            multi_failed,
            JoinKind::Anti,
            vec![col("l_orderkey")],
            vec![col("f_okey")],
        )
        .aggregate(
            vec![(col("s_name"), "s_name")],
            vec![(AggFunc::CountStar, "numwait")],
        )
        .top_n(
            vec![
                SortKeyExpr::desc(col("numwait")),
                SortKeyExpr::asc(col("s_name")),
            ],
            100,
        )
}

/// Q22 — global sales opportunity.
pub fn q22(rng: &mut SmallRng) -> Plan {
    let codes: Vec<Value> = params::seven_codes(rng)
        .into_iter()
        .map(Value::from)
        .collect();
    let code_expr = col("c_phone").substr(1, 2);
    let avg_bal = scan("customer", &["c_phone", "c_acctbal"])
        .select(
            col("c_acctbal")
                .gt(Expr::lit(0.0))
                .and(code_expr.clone().in_list(codes.clone())),
        )
        .aggregate(vec![], vec![(AggFunc::Avg(col("c_acctbal")), "avg_bal")]);
    scan("customer", &["c_custkey", "c_phone", "c_acctbal"])
        .select(code_expr.clone().in_list(codes))
        .single_join(avg_bal)
        .select(col("c_acctbal").gt(col("avg_bal")))
        .join(
            scan("orders", &["o_custkey"]),
            JoinKind::Anti,
            vec![col("c_custkey")],
            vec![col("o_custkey")],
        )
        .aggregate(
            vec![(code_expr, "cntrycode")],
            vec![
                (AggFunc::CountStar, "numcust"),
                (AggFunc::Sum(col("c_acctbal")), "totacctbal"),
            ],
        )
        .sort(vec![SortKeyExpr::asc(col("cntrycode"))])
}

/// Build pattern `n` (1..=22) with parameters drawn from `rng`.
///
/// `pa` requests the proactive plan shape for the patterns the paper
/// rewrites (Q16 and Q19; Q1's binning rewrite applies to the standard
/// shape and is performed by [`crate::streams`]).
pub fn build_query(n: usize, rng: &mut SmallRng, scale: f64, pa: bool) -> Plan {
    match n {
        1 => q1(rng),
        2 => q2(rng),
        3 => q3(rng),
        4 => q4(rng),
        5 => q5(rng),
        6 => q6(rng),
        7 => q7(rng),
        8 => q8(rng),
        9 => q9(rng),
        10 => q10(rng),
        11 => q11(rng, scale),
        12 => q12(rng),
        13 => q13(rng),
        14 => q14(rng),
        15 => q15(rng),
        16 => q16(rng, pa),
        17 => q17(rng),
        18 => q18(rng),
        19 => q19(rng, pa),
        20 => q20(rng),
        21 => q21(rng),
        22 => q22(rng),
        other => panic!("no TPC-H pattern Q{other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TpchConfig};
    use rand::SeedableRng;
    use rdb_exec::{build as build_exec, run_to_batch, ExecContext};
    use rdb_storage::Catalog;
    use std::sync::Arc;

    fn catalog() -> Arc<Catalog> {
        generate(&TpchConfig {
            scale: 0.005,
            seed: 11,
        })
    }

    #[test]
    fn all_22_queries_bind_and_run() {
        let cat = catalog();
        let ctx = ExecContext::new(cat.clone());
        let mut rng = SmallRng::seed_from_u64(99);
        for n in 1..=22 {
            let plan = build_query(n, &mut rng, 0.005, false);
            let bound = plan
                .bind(&cat)
                .unwrap_or_else(|e| panic!("Q{n} failed to bind: {e}"));
            let mut tree =
                build_exec(&bound, &ctx).unwrap_or_else(|e| panic!("Q{n} failed to build: {e}"));
            let out = run_to_batch(tree.root.as_mut());
            // Smoke checks: schema is non-empty and execution terminates.
            assert!(!tree.schema.is_empty(), "Q{n} has empty schema");
            // Row-bound sanity for the top-N queries.
            match n {
                2 | 18 | 21 => assert!(out.rows() <= 100, "Q{n} exceeds top-N"),
                3 => assert!(out.rows() <= 10),
                10 => assert!(out.rows() <= 20),
                _ => {}
            }
        }
    }

    #[test]
    fn q1_produces_flag_status_groups() {
        let cat = catalog();
        let ctx = ExecContext::new(cat.clone());
        let mut rng = SmallRng::seed_from_u64(1);
        let bound = q1(&mut rng).bind(&cat).unwrap();
        let mut tree = build_exec(&bound, &ctx).unwrap();
        let out = run_to_batch(tree.root.as_mut());
        // (returnflag, linestatus) combinations: at most 3 × 2.
        assert!(out.rows() >= 3 && out.rows() <= 6, "got {}", out.rows());
        assert_eq!(tree.schema.names()[0], "l_returnflag");
        // count_order is positive everywhere.
        let counts = out.column(9).as_ints();
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn q6_revenue_matches_manual_computation() {
        let cat = catalog();
        let ctx = ExecContext::new(cat.clone());
        let mut rng = SmallRng::seed_from_u64(5);
        let plan = q6(&mut rng);
        let bound = plan.bind(&cat).unwrap();
        let mut tree = build_exec(&bound, &ctx).unwrap();
        let out = run_to_batch(tree.root.as_mut());
        assert_eq!(out.rows(), 1);
        // Recompute by hand over the raw table.
        let li = cat.get("lineitem").unwrap();
        let (ship, disc, qty, price) = (
            li.column_by_name("l_shipdate").unwrap().as_dates(),
            li.column_by_name("l_discount").unwrap().as_floats(),
            li.column_by_name("l_quantity").unwrap().as_floats(),
            li.column_by_name("l_extendedprice").unwrap().as_floats(),
        );
        // Extract the parameters back out of the plan's predicate — easier:
        // re-derive them from the same seeded rng.
        let mut rng2 = SmallRng::seed_from_u64(5);
        let d = params::year_start(&mut rng2);
        let dc = params::discount(&mut rng2);
        let qv = params::q6_quantity(&mut rng2) as f64;
        let d_end = add_months(d, 12);
        let expected: f64 = (0..li.rows())
            .filter(|&i| {
                ship[i] >= d
                    && ship[i] < d_end
                    && disc[i] >= dc - 0.01001
                    && disc[i] <= dc + 0.01001
                    && qty[i] < qv
            })
            .map(|i| price[i] * disc[i])
            .sum();
        match out.row(0)[0] {
            Value::Float(got) => assert!((got - expected).abs() < 1e-6),
            Value::Null => assert_eq!(expected, 0.0),
            ref other => panic!("unexpected {other:?}"),
        }
        let _ = params::q6_quantity; // silence path when inlined
    }

    #[test]
    fn q13_histogram_sums_to_customer_count() {
        let cat = catalog();
        let ctx = ExecContext::new(cat.clone());
        let mut rng = SmallRng::seed_from_u64(2);
        let bound = q13(&mut rng).bind(&cat).unwrap();
        let mut tree = build_exec(&bound, &ctx).unwrap();
        let out = run_to_batch(tree.root.as_mut());
        let total: i64 = out.column(1).as_ints().iter().sum();
        assert_eq!(total as usize, cat.get("customer").unwrap().rows());
        // All bucket keys are valid counts (the outer join guarantees
        // customers without orders land in bucket 0, when any exist).
        assert!(out.column(0).as_ints().iter().all(|&c| c >= 0));
    }

    #[test]
    fn q16_pa_shape_matches_standard_results() {
        let cat = catalog();
        let ctx = ExecContext::new(cat.clone());
        let mut a = SmallRng::seed_from_u64(31);
        let mut b = SmallRng::seed_from_u64(31);
        let std_plan = q16(&mut a, false).bind(&cat).unwrap();
        let pa_plan = q16(&mut b, true).bind(&cat).unwrap();
        let mut t1 = build_exec(&std_plan, &ctx).unwrap();
        let mut t2 = build_exec(&pa_plan, &ctx).unwrap();
        let r1 = run_to_batch(t1.root.as_mut());
        let r2 = run_to_batch(t2.root.as_mut());
        assert_eq!(r1.to_rows(), r2.to_rows());
    }

    #[test]
    fn same_seed_same_plan() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(q3(&mut a), q3(&mut b));
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(q3(&mut a), q3(&mut c));
    }
}
