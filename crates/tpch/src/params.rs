//! QGEN-style substitution parameters.
//!
//! Each of the 22 query patterns has a small set of valid parameter values
//! (spec clause 2.4). With many streams it becomes likely that several
//! queries of the same pattern draw the same value — the source of the
//! sharing potential the paper measures ("each query pattern only having a
//! limited number of valid values for each parameter").

use rand::rngs::SmallRng;
use rand::Rng;
use rdb_vector::types::{add_months, date_from_ymd};

use crate::gen::{COLORS, REGIONS, SEGMENTS, SHIP_MODES, TYPE_S1, TYPE_S2, TYPE_S3};

/// Pick one element.
pub fn pick<'a, T>(rng: &mut SmallRng, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

/// Q1: DELTA ∈ [60, 120] days before 1998-12-01.
pub fn q1_date(rng: &mut SmallRng) -> i32 {
    date_from_ymd(1998, 12, 1) - rng.gen_range(60..=120)
}

/// Q2/Q16-style size ∈ [1, 50].
pub fn size(rng: &mut SmallRng) -> i64 {
    rng.gen_range(1..=50)
}

/// A third type syllable (Q2's TYPE).
pub fn type_syllable3(rng: &mut SmallRng) -> String {
    (*pick(rng, &TYPE_S3)).to_string()
}

/// A full three-syllable type (Q8's TYPE, 150 values).
pub fn full_type(rng: &mut SmallRng) -> String {
    format!(
        "{} {} {}",
        pick(rng, &TYPE_S1),
        pick(rng, &TYPE_S2),
        pick(rng, &TYPE_S3)
    )
}

/// A two-syllable type prefix (Q16's TYPE, 30 values).
pub fn type_prefix2(rng: &mut SmallRng) -> String {
    format!("{} {}", pick(rng, &TYPE_S1), pick(rng, &TYPE_S2))
}

/// One of the five regions.
pub fn region(rng: &mut SmallRng) -> String {
    (*pick(rng, &REGIONS)).to_string()
}

/// One of the 25 nation names.
pub fn nation(rng: &mut SmallRng) -> String {
    pick(rng, &crate::gen::NATIONS).0.to_string()
}

/// Two distinct nations (Q7).
pub fn nation_pair(rng: &mut SmallRng) -> (String, String) {
    let a = rng.gen_range(0..25);
    let mut b = rng.gen_range(0..24);
    if b >= a {
        b += 1;
    }
    (
        crate::gen::NATIONS[a].0.to_string(),
        crate::gen::NATIONS[b].0.to_string(),
    )
}

/// A market segment (Q3).
pub fn segment(rng: &mut SmallRng) -> String {
    (*pick(rng, &SEGMENTS)).to_string()
}

/// Q3: a date in March 1995.
pub fn q3_date(rng: &mut SmallRng) -> i32 {
    date_from_ymd(1995, 3, rng.gen_range(1..=31))
}

/// Q4/Q5-style: the first day of a random month in [1993, 1997].
pub fn first_of_month(rng: &mut SmallRng) -> i32 {
    date_from_ymd(rng.gen_range(1993..=1997), rng.gen_range(1..=12), 1)
}

/// Jan 1 of a year in [1993, 1997] (Q5, Q6, Q12, Q20).
pub fn year_start(rng: &mut SmallRng) -> i32 {
    date_from_ymd(rng.gen_range(1993..=1997), 1, 1)
}

/// Q6: DISCOUNT ∈ {0.02 … 0.09}.
pub fn discount(rng: &mut SmallRng) -> f64 {
    rng.gen_range(2..=9) as f64 / 100.0
}

/// Q6: QUANTITY ∈ {24, 25}.
pub fn q6_quantity(rng: &mut SmallRng) -> i64 {
    rng.gen_range(24..=25)
}

/// A brand `Brand#MN` (25 values; Q16, Q17, Q19).
pub fn brand(rng: &mut SmallRng) -> String {
    format!("Brand#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5))
}

/// A color word (Q9, Q20; ~92 values — the paper notes Q9's parameter has
/// "nearly 100 different values").
pub fn color(rng: &mut SmallRng) -> String {
    (*pick(rng, &COLORS)).to_string()
}

/// Q10: first of a month in [1993-02, 1995-01] (24 values).
pub fn q10_date(rng: &mut SmallRng) -> i32 {
    add_months(date_from_ymd(1993, 2, 1), rng.gen_range(0..24))
}

/// Two distinct ship modes (Q12).
pub fn ship_mode_pair(rng: &mut SmallRng) -> (String, String) {
    let a = rng.gen_range(0..SHIP_MODES.len());
    let mut b = rng.gen_range(0..SHIP_MODES.len() - 1);
    if b >= a {
        b += 1;
    }
    (SHIP_MODES[a].to_string(), SHIP_MODES[b].to_string())
}

/// Q13: the word pair of the NOT LIKE pattern (4×4 = 16 values).
pub fn q13_words(rng: &mut SmallRng) -> (String, String) {
    let w1 = ["special", "pending", "unusual", "express"];
    let w2 = ["packages", "requests", "accounts", "deposits"];
    ((*pick(rng, &w1)).to_string(), (*pick(rng, &w2)).to_string())
}

/// Q14/Q15: first of a month in [1993, 1997].
pub fn month_in_93_97(rng: &mut SmallRng) -> i32 {
    first_of_month(rng)
}

/// Q16: eight distinct sizes in [1, 50].
pub fn eight_sizes(rng: &mut SmallRng) -> Vec<i64> {
    let mut out: Vec<i64> = Vec::with_capacity(8);
    while out.len() < 8 {
        let s = rng.gen_range(1..=50);
        if !out.contains(&s) {
            out.push(s);
        }
    }
    out
}

/// A container (Q17, 40 values).
pub fn container(rng: &mut SmallRng) -> String {
    format!(
        "{} {}",
        pick(rng, &crate::gen::CONTAINER_S1),
        pick(rng, &crate::gen::CONTAINER_S2)
    )
}

/// Q18: QUANTITY ∈ [312, 315] — scaled down for small SFs where per-order
/// totals are smaller; the domain size (4 values) is what matters for
/// sharing, not the absolute level.
pub fn q18_quantity(rng: &mut SmallRng) -> i64 {
    rng.gen_range(160..=163)
}

/// Q19: the three per-branch quantity lower bounds.
pub fn q19_quantities(rng: &mut SmallRng) -> (i64, i64, i64) {
    (
        rng.gen_range(1..=10),
        rng.gen_range(10..=20),
        rng.gen_range(20..=30),
    )
}

/// Q22: seven distinct country codes from the 25 valid ones (10..34).
pub fn seven_codes(rng: &mut SmallRng) -> Vec<String> {
    let mut out: Vec<i64> = Vec::with_capacity(7);
    while out.len() < 7 {
        let c = rng.gen_range(10..35);
        if !out.contains(&c) {
            out.push(c);
        }
    }
    out.into_iter().map(|c| c.to_string()).collect()
}

/// Q11: FRACTION = 0.0001 / SF.
pub fn q11_fraction(scale: f64) -> f64 {
    0.0001 / scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn domains_are_bounded() {
        let mut r = rng();
        for _ in 0..200 {
            let d = q1_date(&mut r);
            assert!(d >= date_from_ymd(1998, 12, 1) - 120);
            assert!(d <= date_from_ymd(1998, 12, 1) - 60);
            assert!((2..=9).contains(&((discount(&mut r) * 100.0).round() as i64)));
            let (a, b) = nation_pair(&mut r);
            assert_ne!(a, b);
            let (m1, m2) = ship_mode_pair(&mut r);
            assert_ne!(m1, m2);
            let sizes = eight_sizes(&mut r);
            assert_eq!(sizes.len(), 8);
            let mut dedup = sizes.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 8);
            let codes = seven_codes(&mut r);
            assert_eq!(codes.len(), 7);
        }
    }

    #[test]
    fn limited_domains_repeat() {
        // The whole point: with enough draws, parameters collide.
        let mut r = rng();
        let vals: Vec<i64> = (0..50).map(|_| q6_quantity(&mut r)).collect();
        assert!(vals.contains(&24) && vals.contains(&25));
        let brands: Vec<String> = (0..100).map(|_| brand(&mut r)).collect();
        let mut uniq = brands.clone();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() <= 25);
    }

    #[test]
    fn fraction_scales() {
        assert!((q11_fraction(0.1) - 0.001).abs() < 1e-12);
    }
}
