//! Deterministic dbgen-like data generator.
//!
//! Row counts scale with the scale factor as in the spec (lineitem ≈ 6M·SF).
//! Value distributions follow the spec where the 22 queries depend on them
//! (date ranges, limited categorical domains, comment words for the LIKE
//! predicates, country-code phone prefixes, per-part supplier assignment);
//! text that no query inspects is simplified.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rdb_storage::{Catalog, TableBuilder};
use rdb_vector::types::date_from_ymd;
use rdb_vector::{DataType, Schema, Value};

/// The 25 nations with their region assignment (spec Appendix).
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
    ("CHINA", 2),
];

/// The five regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 92 part-name color words (Q9/Q20 pick their COLOR parameter here).
pub const COLORS: [&str; 92] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
    "yellow",
];

/// Type syllables (`p_type` = one of 6×5×5 = 150 strings).
pub const TYPE_S1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Second syllable.
pub const TYPE_S2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Third syllable.
pub const TYPE_S3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// Container syllables (5×8 = 40 containers).
pub const CONTAINER_S1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
/// Second container syllable.
pub const CONTAINER_S2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// Order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship modes.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Ship instructions.
pub const SHIP_INSTRUCTS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Comment filler vocabulary; includes the Q13 parameter words.
const COMMENT_WORDS: [&str; 16] = [
    "special",
    "pending",
    "unusual",
    "express",
    "packages",
    "requests",
    "accounts",
    "deposits",
    "carefully",
    "quickly",
    "final",
    "ironic",
    "even",
    "bold",
    "silent",
    "furious",
];

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// Scale factor; SF 1 ≈ 6M lineitems. The experiments use small SFs
    /// (0.01–0.25) since everything is in memory.
    pub scale: f64,
    /// RNG seed (the same seed reproduces the same database).
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 0.01,
            seed: 42,
        }
    }
}

impl TpchConfig {
    /// Config with the given scale factor.
    pub fn with_scale(scale: f64) -> Self {
        TpchConfig {
            scale,
            ..Default::default()
        }
    }

    fn count(&self, base: f64) -> usize {
        ((base * self.scale) as usize).max(1)
    }
}

fn comment(rng: &mut SmallRng, words: usize) -> String {
    let mut s = String::new();
    for i in 0..words {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())]);
    }
    s
}

/// Generate the eight TPC-H tables into a fresh catalog.
pub fn generate(config: &TpchConfig) -> Arc<Catalog> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut cat = Catalog::new();

    // region
    let mut region = TableBuilder::new(
        "region",
        Schema::from_pairs([("r_regionkey", DataType::Int), ("r_name", DataType::Str)]),
        REGIONS.len(),
    );
    for (i, name) in REGIONS.iter().enumerate() {
        region.push_row(vec![Value::Int(i as i64), Value::str(*name)]);
    }
    cat.register(region.finish()).expect("register table");

    // nation
    let mut nation = TableBuilder::new(
        "nation",
        Schema::from_pairs([
            ("n_nationkey", DataType::Int),
            ("n_name", DataType::Str),
            ("n_regionkey", DataType::Int),
        ]),
        NATIONS.len(),
    );
    for (i, (name, region)) in NATIONS.iter().enumerate() {
        nation.push_row(vec![
            Value::Int(i as i64),
            Value::str(*name),
            Value::Int(*region as i64),
        ]);
    }
    cat.register(nation.finish()).expect("register table");

    // supplier
    let n_supp = config.count(10_000.0);
    let mut supplier = TableBuilder::new(
        "supplier",
        Schema::from_pairs([
            ("s_suppkey", DataType::Int),
            ("s_name", DataType::Str),
            ("s_address", DataType::Str),
            ("s_nationkey", DataType::Int),
            ("s_phone", DataType::Str),
            ("s_acctbal", DataType::Float),
            ("s_comment", DataType::Str),
        ]),
        n_supp,
    );
    for i in 1..=n_supp {
        let nk = rng.gen_range(0..25) as i64;
        // Spec: exactly 5 per 10k suppliers carry the complaint string.
        let s_comment = if i % 1987 == 3 {
            format!(
                "{} Customer said Complaints {}",
                comment(&mut rng, 2),
                comment(&mut rng, 2)
            )
        } else {
            comment(&mut rng, 5)
        };
        supplier.push_row(vec![
            Value::Int(i as i64),
            Value::str(format!("Supplier#{i:09}")),
            Value::str(format!("addr-{}", rng.gen_range(0..100000))),
            Value::Int(nk),
            Value::str(format!("{}-{:07}", 10 + nk, rng.gen_range(0..10_000_000))),
            Value::Float(rng.gen_range(-999.99..9999.99)),
            Value::str(s_comment),
        ]);
    }
    cat.register(supplier.finish()).expect("register table");

    // part
    let n_part = config.count(200_000.0);
    let mut part = TableBuilder::new(
        "part",
        Schema::from_pairs([
            ("p_partkey", DataType::Int),
            ("p_name", DataType::Str),
            ("p_mfgr", DataType::Str),
            ("p_brand", DataType::Str),
            ("p_type", DataType::Str),
            ("p_size", DataType::Int),
            ("p_container", DataType::Str),
            ("p_retailprice", DataType::Float),
        ]),
        n_part,
    );
    for i in 1..=n_part {
        let c1 = COLORS[rng.gen_range(0..COLORS.len())];
        let c2 = COLORS[rng.gen_range(0..COLORS.len())];
        let m = rng.gen_range(1..=5);
        let b = rng.gen_range(1..=5);
        let ptype = format!(
            "{} {} {}",
            TYPE_S1[rng.gen_range(0..TYPE_S1.len())],
            TYPE_S2[rng.gen_range(0..TYPE_S2.len())],
            TYPE_S3[rng.gen_range(0..TYPE_S3.len())]
        );
        let container = format!(
            "{} {}",
            CONTAINER_S1[rng.gen_range(0..CONTAINER_S1.len())],
            CONTAINER_S2[rng.gen_range(0..CONTAINER_S2.len())]
        );
        part.push_row(vec![
            Value::Int(i as i64),
            Value::str(format!("{c1} {c2}")),
            Value::str(format!("Manufacturer#{m}")),
            Value::str(format!("Brand#{m}{b}")),
            Value::str(ptype),
            Value::Int(rng.gen_range(1..=50)),
            Value::str(container),
            Value::Float(900.0 + (i % 1000) as f64 / 10.0),
        ]);
    }
    cat.register(part.finish()).expect("register table");

    // partsupp: 4 suppliers per part.
    let mut partsupp = TableBuilder::new(
        "partsupp",
        Schema::from_pairs([
            ("ps_partkey", DataType::Int),
            ("ps_suppkey", DataType::Int),
            ("ps_availqty", DataType::Int),
            ("ps_supplycost", DataType::Float),
        ]),
        n_part * 4,
    );
    for p in 1..=n_part {
        for j in 0..4usize {
            let s = (p + j * (n_supp / 4 + 1)) % n_supp + 1;
            partsupp.push_row(vec![
                Value::Int(p as i64),
                Value::Int(s as i64),
                Value::Int(rng.gen_range(1..=9999)),
                Value::Float(rng.gen_range(1.0..1000.0)),
            ]);
        }
    }
    cat.register(partsupp.finish()).expect("register table");

    // customer
    let n_cust = config.count(150_000.0);
    let mut customer = TableBuilder::new(
        "customer",
        Schema::from_pairs([
            ("c_custkey", DataType::Int),
            ("c_name", DataType::Str),
            ("c_address", DataType::Str),
            ("c_nationkey", DataType::Int),
            ("c_phone", DataType::Str),
            ("c_acctbal", DataType::Float),
            ("c_mktsegment", DataType::Str),
        ]),
        n_cust,
    );
    for i in 1..=n_cust {
        let nk = rng.gen_range(0..25) as i64;
        customer.push_row(vec![
            Value::Int(i as i64),
            Value::str(format!("Customer#{i:09}")),
            Value::str(format!("addr-{}", rng.gen_range(0..100000))),
            Value::Int(nk),
            // Country code 10..34 = 10 + nationkey (Q22's substring).
            Value::str(format!("{}-{:07}", 10 + nk, rng.gen_range(0..10_000_000))),
            Value::Float(rng.gen_range(-999.99..9999.99)),
            Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
        ]);
    }
    cat.register(customer.finish()).expect("register table");

    // orders + lineitem
    let n_orders = config.count(1_500_000.0);
    let start = date_from_ymd(1992, 1, 1);
    let end = date_from_ymd(1998, 8, 2) - 151; // spec: last order date
    let cutoff = date_from_ymd(1995, 6, 17);
    let mut orders = TableBuilder::new(
        "orders",
        Schema::from_pairs([
            ("o_orderkey", DataType::Int),
            ("o_custkey", DataType::Int),
            ("o_orderstatus", DataType::Str),
            ("o_totalprice", DataType::Float),
            ("o_orderdate", DataType::Date),
            ("o_orderpriority", DataType::Str),
            ("o_shippriority", DataType::Int),
            ("o_comment", DataType::Str),
        ]),
        n_orders,
    );
    let mut lineitem = TableBuilder::new(
        "lineitem",
        Schema::from_pairs([
            ("l_orderkey", DataType::Int),
            ("l_partkey", DataType::Int),
            ("l_suppkey", DataType::Int),
            ("l_linenumber", DataType::Int),
            ("l_quantity", DataType::Float),
            ("l_extendedprice", DataType::Float),
            ("l_discount", DataType::Float),
            ("l_tax", DataType::Float),
            ("l_returnflag", DataType::Str),
            ("l_linestatus", DataType::Str),
            ("l_shipdate", DataType::Date),
            ("l_commitdate", DataType::Date),
            ("l_receiptdate", DataType::Date),
            ("l_shipinstruct", DataType::Str),
            ("l_shipmode", DataType::Str),
        ]),
        n_orders * 4,
    );
    for o in 1..=n_orders {
        let orderdate = rng.gen_range(start..=end);
        let lines = rng.gen_range(1..=7usize);
        let mut total = 0.0;
        for ln in 1..=lines {
            let partkey = rng.gen_range(1..=n_part) as i64;
            let suppkey = ((partkey as usize + ln * (n_supp / 4 + 1)) % n_supp + 1) as i64;
            let qty = rng.gen_range(1..=50) as f64;
            let price = qty * (900.0 + (partkey % 1000) as f64 / 10.0) / 10.0;
            let discount = rng.gen_range(0..=10) as f64 / 100.0;
            let tax = rng.gen_range(0..=8) as f64 / 100.0;
            let shipdate = orderdate + rng.gen_range(1..=121);
            let commitdate = orderdate + rng.gen_range(30..=90);
            let receiptdate = shipdate + rng.gen_range(1..=30);
            let returnflag = if receiptdate <= cutoff {
                if rng.gen_bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let linestatus = if shipdate > cutoff { "O" } else { "F" };
            total += price * (1.0 - discount) * (1.0 + tax);
            lineitem.push_row(vec![
                Value::Int(o as i64),
                Value::Int(partkey),
                Value::Int(suppkey),
                Value::Int(ln as i64),
                Value::Float(qty),
                Value::Float(price),
                Value::Float(discount),
                Value::Float(tax),
                Value::str(returnflag),
                Value::str(linestatus),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::str(SHIP_INSTRUCTS[rng.gen_range(0..SHIP_INSTRUCTS.len())]),
                Value::str(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())]),
            ]);
        }
        let status = if orderdate < cutoff { "F" } else { "O" };
        orders.push_row(vec![
            Value::Int(o as i64),
            Value::Int(rng.gen_range(1..=n_cust) as i64),
            Value::str(status),
            Value::Float(total),
            Value::Date(orderdate),
            Value::str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
            Value::Int(0),
            Value::str(comment(&mut rng, 6)),
        ]);
    }
    cat.register(orders.finish()).expect("register table");
    cat.register(lineitem.finish()).expect("register table");

    Arc::new(cat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_tables_at_scale() {
        let cat = generate(&TpchConfig {
            scale: 0.002,
            seed: 7,
        });
        for t in [
            "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
        ] {
            assert!(cat.get(t).is_some(), "missing table {t}");
        }
        assert_eq!(cat.get("region").unwrap().rows(), 5);
        assert_eq!(cat.get("nation").unwrap().rows(), 25);
        let orders = cat.get("orders").unwrap().rows();
        assert_eq!(orders, 3000);
        let li = cat.get("lineitem").unwrap().rows();
        assert!(li >= orders, "≥1 lineitem per order");
        assert_eq!(
            cat.get("partsupp").unwrap().rows(),
            cat.get("part").unwrap().rows() * 4
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&TpchConfig {
            scale: 0.001,
            seed: 9,
        });
        let b = generate(&TpchConfig {
            scale: 0.001,
            seed: 9,
        });
        let ta = a.get("lineitem").unwrap();
        let tb = b.get("lineitem").unwrap();
        assert_eq!(ta.rows(), tb.rows());
        assert_eq!(
            ta.column_by_name("l_quantity").unwrap().as_floats()[..50],
            tb.column_by_name("l_quantity").unwrap().as_floats()[..50]
        );
        let c = generate(&TpchConfig {
            scale: 0.001,
            seed: 10,
        });
        assert_ne!(
            ta.column_by_name("l_quantity").unwrap().as_floats()[..50],
            c.get("lineitem")
                .unwrap()
                .column_by_name("l_quantity")
                .unwrap()
                .as_floats()[..50]
        );
    }

    #[test]
    fn value_domains_respected() {
        let cat = generate(&TpchConfig {
            scale: 0.002,
            seed: 3,
        });
        let li = cat.get("lineitem").unwrap();
        let q = li.column_by_name("l_quantity").unwrap().as_floats();
        assert!(q.iter().all(|&x| (1.0..=50.0).contains(&x)));
        let d = li.column_by_name("l_discount").unwrap().as_floats();
        assert!(d.iter().all(|&x| (0.0..=0.1 + 1e-9).contains(&x)));
        let part = cat.get("part").unwrap();
        let sizes = part.column_by_name("p_size").unwrap().as_ints();
        assert!(sizes.iter().all(|&s| (1..=50).contains(&s)));
        // Ship < receipt always.
        let ship = li.column_by_name("l_shipdate").unwrap().as_dates();
        let rec = li.column_by_name("l_receiptdate").unwrap().as_dates();
        assert!(ship.iter().zip(rec).all(|(s, r)| s < r));
    }

    #[test]
    fn q13_comment_words_present_but_not_universal() {
        let cat = generate(&TpchConfig {
            scale: 0.01,
            seed: 3,
        });
        let orders = cat.get("orders").unwrap();
        let comments = orders.column_by_name("o_comment").unwrap().as_strs();
        let hits = comments
            .iter()
            .filter(|c| rdb_expr::like::like_match(c, "%special%requests%"))
            .count();
        assert!(hits > 0, "some orders must match the Q13 pattern");
        assert!(hits < comments.len() / 2, "but not most of them");
    }
}
