//! Prepared-statement templates for TPC-H patterns.
//!
//! The session API (`Session::prepare` + `Prepared::execute`) is built for
//! exactly the workload shape QGEN produces: a fixed plan per pattern with
//! fresh substitution parameters per invocation. This module expresses
//! patterns whose substitution parameters are plain literal values as
//! reusable templates with [`Expr::Param`] slots plus a QGEN-style
//! parameter generator.
//!
//! Patterns whose "parameters" are structural — `LIKE` pattern strings,
//! `IN` lists whose arity varies, or substring arguments — cannot be
//! expressed as value slots and keep their concrete per-invocation builders
//! in [`crate::queries`]; the stream runner executes those as degenerate
//! (parameter-free) prepared statements.

use rand::rngs::SmallRng;
use rdb_expr::{AggFunc, Expr, Params};
use rdb_plan::{scan, Plan, SortKeyExpr};
use rdb_vector::types::add_months;
use rdb_vector::Value;

use crate::params;

fn col(n: &str) -> Expr {
    Expr::name(n)
}

fn revenue() -> Expr {
    col("l_extendedprice").mul(Expr::lit(1.0).sub(col("l_discount")))
}

/// Q1 template — pricing summary report with a `:shipdate` bound.
pub fn q1_template() -> Plan {
    scan(
        "lineitem",
        &[
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_returnflag",
            "l_linestatus",
            "l_shipdate",
        ],
    )
    .select(col("l_shipdate").le(Expr::param("shipdate")))
    .aggregate(
        vec![
            (col("l_returnflag"), "l_returnflag"),
            (col("l_linestatus"), "l_linestatus"),
        ],
        vec![
            (AggFunc::Sum(col("l_quantity")), "sum_qty"),
            (AggFunc::Sum(col("l_extendedprice")), "sum_base_price"),
            (AggFunc::Sum(revenue()), "sum_disc_price"),
            (
                AggFunc::Sum(revenue().mul(Expr::lit(1.0).add(col("l_tax")))),
                "sum_charge",
            ),
            (AggFunc::Avg(col("l_quantity")), "avg_qty"),
            (AggFunc::Avg(col("l_extendedprice")), "avg_price"),
            (AggFunc::Avg(col("l_discount")), "avg_disc"),
            (AggFunc::CountStar, "count_order"),
        ],
    )
    .sort(vec![
        SortKeyExpr::asc(col("l_returnflag")),
        SortKeyExpr::asc(col("l_linestatus")),
    ])
}

/// QGEN parameters for [`q1_template`].
pub fn q1_params(rng: &mut SmallRng) -> Params {
    Params::new().set("shipdate", Value::Date(params::q1_date(rng)))
}

/// Q6 template — forecasting revenue change over a date window, discount
/// band, and quantity cap.
pub fn q6_template() -> Plan {
    scan(
        "lineitem",
        &["l_quantity", "l_extendedprice", "l_discount", "l_shipdate"],
    )
    .select(Expr::and_all([
        col("l_shipdate").ge(Expr::param("date_lo")),
        col("l_shipdate").lt(Expr::param("date_hi")),
        col("l_discount").ge(Expr::param("disc_lo")),
        col("l_discount").le(Expr::param("disc_hi")),
        col("l_quantity").lt(Expr::param("qty")),
    ]))
    .aggregate(
        vec![],
        vec![(
            AggFunc::Sum(col("l_extendedprice").mul(col("l_discount"))),
            "revenue",
        )],
    )
}

/// QGEN parameters for [`q6_template`].
pub fn q6_params(rng: &mut SmallRng) -> Params {
    let d = params::year_start(rng);
    let disc = params::discount(rng);
    let qty = params::q6_quantity(rng);
    Params::new()
        .set("date_lo", Value::Date(d))
        .set("date_hi", Value::Date(add_months(d, 12)))
        .set("disc_lo", disc - 0.01001)
        .set("disc_hi", disc + 0.01001)
        .set("qty", qty as f64)
}

/// Q14 template — promotion effect over a `:date_lo`/`:date_hi` month.
pub fn q14_template() -> Plan {
    scan(
        "lineitem",
        &["l_partkey", "l_extendedprice", "l_discount", "l_shipdate"],
    )
    .select(
        col("l_shipdate")
            .ge(Expr::param("date_lo"))
            .and(col("l_shipdate").lt(Expr::param("date_hi"))),
    )
    .inner_join(
        scan("part", &["p_partkey", "p_type"]),
        vec![col("l_partkey")],
        vec![col("p_partkey")],
    )
    .aggregate(
        vec![],
        vec![
            (
                AggFunc::Sum(Expr::case(
                    vec![(col("p_type").like("PROMO%"), revenue())],
                    Expr::lit(0.0),
                )),
                "promo",
            ),
            (AggFunc::Sum(revenue()), "total"),
        ],
    )
    .project(vec![(
        Expr::lit(100.0).mul(col("promo")).div(col("total")),
        "promo_revenue",
    )])
}

/// QGEN parameters for [`q14_template`].
pub fn q14_params(rng: &mut SmallRng) -> Params {
    let d = params::month_in_93_97(rng);
    Params::new()
        .set("date_lo", Value::Date(d))
        .set("date_hi", Value::Date(add_months(d, 1)))
}

/// A QGEN-style parameter generator for one template.
pub type ParamGen = fn(&mut SmallRng) -> Params;

/// The template and parameter generator for pattern `n`, where the
/// pattern's substitution parameters are expressible as value slots.
pub fn template(n: usize) -> Option<(Plan, ParamGen)> {
    match n {
        1 => Some((q1_template(), q1_params)),
        6 => Some((q6_template(), q6_params)),
        14 => Some((q14_template(), q14_params)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TpchConfig};
    use rand::SeedableRng;
    use rdb_engine::Engine;

    #[test]
    fn templates_match_concrete_builders() {
        // Substituting QGEN parameters into a template must produce exactly
        // the plan the concrete per-invocation builder constructs with the
        // same rng draws.
        for n in [1usize, 6, 14] {
            let (tpl, gen_params) = template(n).unwrap();
            let params = gen_params(&mut SmallRng::seed_from_u64(42));
            let concrete =
                crate::queries::build_query(n, &mut SmallRng::seed_from_u64(42), 1.0, false);
            assert_eq!(
                tpl.substitute_params(&params).unwrap(),
                concrete,
                "Q{n} template diverges from its builder"
            );
        }
    }

    #[test]
    fn prepared_template_reuses_across_identical_params() {
        let catalog = generate(&TpchConfig {
            scale: 0.002,
            seed: 3,
        });
        let engine = Engine::builder(catalog).build();
        let session = engine.session();
        let (tpl, gen_params) = template(6).unwrap();
        let prepared = session.prepare(&tpl).unwrap();
        assert_eq!(prepared.param_names().len(), 5);
        let params = gen_params(&mut SmallRng::seed_from_u64(7));
        let first = prepared.execute(&params).unwrap().into_outcome();
        let second = prepared.execute(&params).unwrap().into_outcome();
        assert!(second.reused(), "same template + params must hit the cache");
        assert_eq!(first.batch.to_rows(), second.batch.to_rows());
        // A different parameter draw computes fresh.
        let other = gen_params(&mut SmallRng::seed_from_u64(8));
        assert_ne!(params, other);
        let third = prepared.execute(&other).unwrap();
        assert!(!third.reused());
    }
}
