//! Throughput-run stream generation (paper §V, TPC-H throughput test).
//!
//! Each stream consists of the 22 query patterns in a permuted order with
//! per-stream random parameters, "according to the benchmark
//! specification". In PA mode the plans of Q1, Q16 and Q19 are replaced by
//! their proactive variants (cube caching with binning for Q1, cube caching
//! with selections for Q16/Q19), mirroring the paper's manual rewrites.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rdb_engine::WorkloadQuery;
use rdb_plan::Plan;
use rdb_recycler::proactive::{cube_with_binning, cube_with_selections};
use rdb_storage::Catalog;

use crate::queries::build_query;

/// Options for stream generation.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Number of streams.
    pub streams: usize,
    /// Scale factor of the database the streams run against (parameterizes
    /// Q11's FRACTION).
    pub scale: f64,
    /// Base RNG seed; stream `i` uses `seed + i`.
    pub seed: u64,
    /// Apply the proactive rewrites to Q1/Q16/Q19 (the paper's PA mode).
    pub proactive: bool,
    /// Restrict streams to these patterns (1-based); `None` = all 22.
    /// Fig. 9's detailed trace uses {1, 8, 13, 18, 19, 21}.
    pub patterns: Option<Vec<usize>>,
}

impl StreamOptions {
    /// Standard options for `n` streams at the given scale.
    pub fn new(streams: usize, scale: f64) -> Self {
        StreamOptions {
            streams,
            scale,
            seed: 7001,
            proactive: false,
            patterns: None,
        }
    }

    /// Enable the proactive plan variants.
    pub fn proactive(mut self) -> Self {
        self.proactive = true;
        self
    }

    /// Use only the given patterns.
    pub fn with_patterns(mut self, patterns: Vec<usize>) -> Self {
        self.patterns = Some(patterns);
        self
    }
}

/// Apply `rewrite` at the topmost plan node where it succeeds.
fn apply_topdown(plan: &Plan, rewrite: &dyn Fn(&Plan) -> Option<Plan>) -> Option<Plan> {
    if let Some(p) = rewrite(plan) {
        return Some(p);
    }
    let children = plan.children();
    for (i, c) in children.iter().enumerate() {
        if let Some(newc) = apply_topdown(c, rewrite) {
            let mut new_children: Vec<Plan> = children.iter().map(|x| (*x).clone()).collect();
            new_children[i] = newc;
            return Some(plan.with_children(new_children));
        }
    }
    None
}

/// Build one stream's worth of bound, labelled queries.
pub fn make_stream(
    catalog: &Catalog,
    options: &StreamOptions,
    stream_id: usize,
) -> Vec<WorkloadQuery> {
    let mut rng = SmallRng::seed_from_u64(options.seed + stream_id as u64);
    let mut patterns: Vec<usize> = options
        .patterns
        .clone()
        .unwrap_or_else(|| (1..=22).collect());
    patterns.shuffle(&mut rng);
    patterns
        .iter()
        .map(|&n| {
            let pa = options.proactive && matches!(n, 16 | 19);
            let plan = build_query(n, &mut rng, options.scale, pa);
            let mut bound = plan
                .bind(catalog)
                .unwrap_or_else(|e| panic!("Q{n} bind failed: {e}"));
            if options.proactive {
                let rewritten = match n {
                    1 => apply_topdown(&bound, &|p| cube_with_binning(p)),
                    16 | 19 => apply_topdown(&bound, &|p| cube_with_selections(p)),
                    _ => None,
                };
                if let Some(p) = rewritten {
                    bound = p;
                }
            }
            WorkloadQuery::new(format!("Q{n}"), bound)
        })
        .collect()
}

/// Build all streams for a throughput run.
pub fn make_streams(catalog: &Catalog, options: &StreamOptions) -> Vec<Vec<WorkloadQuery>> {
    (0..options.streams)
        .map(|i| make_stream(catalog, options, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TpchConfig};

    #[test]
    fn streams_have_all_patterns_permuted() {
        let cat = generate(&TpchConfig {
            scale: 0.002,
            seed: 1,
        });
        let opts = StreamOptions::new(3, 0.002);
        let streams = make_streams(&cat, &opts);
        assert_eq!(streams.len(), 3);
        for s in &streams {
            assert_eq!(s.len(), 22);
            let mut labels: Vec<&str> = s.iter().map(|q| q.label.as_str()).collect();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), 22, "each pattern exactly once");
        }
        // Orders differ between streams (permutation).
        let order0: Vec<&str> = streams[0].iter().map(|q| q.label.as_str()).collect();
        let order1: Vec<&str> = streams[1].iter().map(|q| q.label.as_str()).collect();
        assert_ne!(order0, order1);
        // All plans are bound.
        assert!(streams.iter().flatten().all(|q| !q.plan.has_named()));
    }

    #[test]
    fn restricted_patterns() {
        let cat = generate(&TpchConfig {
            scale: 0.002,
            seed: 1,
        });
        let opts = StreamOptions::new(2, 0.002).with_patterns(vec![1, 8, 13, 18, 19, 21]);
        let streams = make_streams(&cat, &opts);
        for s in &streams {
            assert_eq!(s.len(), 6);
        }
    }

    #[test]
    fn proactive_mode_rewrites_q1_q16_q19() {
        let cat = generate(&TpchConfig {
            scale: 0.002,
            seed: 1,
        });
        let opts = StreamOptions::new(1, 0.002).proactive();
        let stream = make_stream(&cat, &opts, 0);
        let q1 = stream.iter().find(|q| q.label == "Q1").unwrap();
        assert!(
            q1.plan.to_string().contains("union_all"),
            "Q1 PA uses the binning rewrite:\n{}",
            q1.plan
        );
        let q19 = stream.iter().find(|q| q.label == "Q19").unwrap();
        // The cube rewrite produces ≥2 aggregates (inner cube + outer).
        assert!(
            q19.plan.to_string().matches("aggregate").count() >= 2,
            "Q19 PA uses the cube rewrite:\n{}",
            q19.plan
        );
        let q16 = stream.iter().find(|q| q.label == "Q16").unwrap();
        // Q16's cube rewrite pulls the selection above the aggregate.
        let txt = q16.plan.to_string();
        let sel_pos = txt
            .find("select ((p_brand")
            .or_else(|| txt.find("select (($"));
        assert!(sel_pos.is_some() || txt.contains("select"), "{txt}");
    }

    #[test]
    fn determinism_per_seed() {
        let cat = generate(&TpchConfig {
            scale: 0.002,
            seed: 1,
        });
        let opts = StreamOptions::new(1, 0.002);
        let a = make_stream(&cat, &opts, 0);
        let b = make_stream(&cat, &opts, 0);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.plan, y.plan);
        }
    }
}
