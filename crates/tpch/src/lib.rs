//! TPC-H workload substrate for the recycling experiments (paper §V).
//!
//! * [`gen`] — a dbgen-like deterministic data generator for the eight
//!   TPC-H tables at a configurable scale factor;
//! * [`queries`] — all 22 TPC-H query patterns as plan builders over the
//!   recycler-db engine, parameterized exactly like QGEN (each substitution
//!   parameter drawn from the spec's limited domain — this is what creates
//!   the cross-stream sharing potential the paper exploits);
//! * [`streams`] — throughput-run stream generation (permuted pattern
//!   order, per-stream random parameters) plus the proactive (PA) plan
//!   variants of Q1, Q16 and Q19 (paper §V: "we simulate their benefit by
//!   manually altering query plans").

pub mod gen;
pub mod params;
pub mod queries;
pub mod sql;
pub mod streams;
pub mod templates;

pub use gen::{generate, TpchConfig};
pub use queries::build_query;
pub use sql::sql_template;
pub use streams::{make_streams, StreamOptions};
pub use templates::template;
