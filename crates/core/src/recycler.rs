//! The recycler: rewriting, store injection, speculation, and annotation.
//!
//! Per query (paper Fig. 1):
//!
//! 1. [`Recycler::prepare`] — matches the optimized query tree against the
//!    recycler graph (inserting unmatched nodes), bumps reference counts,
//!    substitutes cached results (exact matches first, then subsumption),
//!    injects `store` operators where materialization is (or might be)
//!    beneficial, and returns the rewritten plan.
//! 2. The engine executes the rewritten plan; store operators call back
//!    into the recycler through the [`ResultStore`] trait (speculation
//!    verdicts, publication of produced results).
//! 3. [`Recycler::complete`] — annotates the recycler graph with measured
//!    costs/cardinalities/sizes from the run and releases this query's
//!    cache leases.
//!
//! Concurrency: all state sits behind one mutex; queries that need a result
//! currently being materialized by another query **stall** on a condition
//! variable until it is published or abandoned (paper §V: "the recycler
//! stalls all but one").

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rdb_delta::Delta;
use rdb_exec::{
    ArtifactKind, FnRegistry, MaterializedResult, MetricsNode, OperatorState, ResultStore,
    SpeculationEstimate, StateCost, StoreVerdict,
};
use rdb_plan::{Plan, StoreMode};
use rdb_storage::{Catalog, CatalogSnapshot};
use rdb_vector::Schema;

use crate::cache::{ArtifactId, CacheArtifact, RecyclerCache};
use crate::config::{CostModel, RecyclerConfig, RecyclerMode};
use crate::graph::{Derivation, MatchTree, NodeId, RecyclerGraph};

/// Events a query generates while interacting with the recycler; the engine
/// timestamps and aggregates them (Fig. 9's trace).
#[derive(Debug, Clone, PartialEq)]
pub enum RecyclerEvent {
    /// A cached result was substituted for an exact-matching subtree.
    Reused {
        /// The reused node.
        node: NodeId,
        /// Size of the reused result.
        bytes: u64,
    },
    /// A cached subsuming result was substituted (paper §IV-A).
    SubsumptionReused {
        /// The query's node.
        node: NodeId,
        /// The cached subsumer actually read.
        via: NodeId,
    },
    /// A store operator was injected over this node's subtree.
    StoreInjected {
        /// Target node.
        node: NodeId,
        /// True for speculation-mode stores.
        speculative: bool,
    },
    /// The query waited for a concurrent materialization of `node`.
    Stalled {
        /// Node being produced elsewhere.
        node: NodeId,
        /// How long the query waited.
        waited: Duration,
        /// Whether the wait ended with a usable result.
        satisfied: bool,
    },
    /// A store operator finished and published this result.
    Materialized {
        /// Produced node.
        node: NodeId,
        /// Result size.
        bytes: u64,
        /// Whether the cache admitted it.
        admitted: bool,
    },
    /// A speculative store cancelled (or never completed) materialization.
    Abandoned {
        /// Target node.
        node: NodeId,
    },
    /// A cached entry was **repaired in place** from a committed DML
    /// delta instead of being evicted (`rdb_delta`): the entry now holds
    /// the post-commit bytes under the new epoch vector.
    Repaired {
        /// The repaired node.
        node: NodeId,
        /// Which artifact kind was patched (an aggregate's result and its
        /// agg-table artifact are both repaired by one delta evaluation).
        kind: ArtifactKind,
        /// Size of the repaired artifact.
        bytes: u64,
        /// The updated table whose delta was applied.
        table: String,
        /// Row count of the repaired result.
        rows: u64,
    },
    /// A cached entry was evicted because a base table it depends on was
    /// updated (PAPER.md §V: cached intermediates are invalidated when
    /// their base tables change).
    Invalidated {
        /// The evicted node.
        node: NodeId,
        /// Which artifact kind was evicted (the walk covers results *and*
        /// cached operator state — a hash build over a changed table is as
        /// stale as a result over it).
        kind: ArtifactKind,
        /// Size of the evicted artifact.
        bytes: u64,
        /// The updated table that made it stale.
        table: String,
    },
}

/// The rewritten query, ready for execution, plus bookkeeping for
/// [`Recycler::complete`].
#[derive(Debug)]
pub struct PreparedQuery {
    /// Rewritten, bound plan (with `Cached`/`Store` nodes).
    pub plan: Plan,
    /// Query identifier (the graph tick at preparation).
    pub qid: u64,
    /// Tags issued to this query (leases and store targets).
    pub tags: Vec<u64>,
    /// `(path into rewritten plan, graph node)` pairs to annotate after
    /// execution.
    pub annotations: Vec<(Vec<usize>, NodeId)>,
    /// Rewrite-time events.
    pub events: Vec<RecyclerEvent>,
    /// Matching + insertion time (Fig. 10's measured quantity).
    pub match_ns: u64,
    /// Nodes newly inserted into the recycler graph by this query.
    pub nodes_inserted: usize,
    /// Total nodes in this query's tree.
    pub nodes_total: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoreOutcome {
    Published { admitted: bool, bytes: u64 },
    Abandoned,
}

#[derive(Debug)]
enum TagEntry {
    /// A pinned cached result this query reads.
    Lease(Arc<MaterializedResult>),
    /// A store target this query may produce.
    StoreTarget {
        node: NodeId,
        /// The owning query (in-flight bookkeeping is released only by
        /// its owner — a superseded producer must not clear a fresh
        /// producer's marker).
        qid: u64,
        speculative: bool,
        /// `(table, epoch)` of the node's base tables as pinned by the
        /// producing query's snapshot. Publishing checks these against the
        /// recycler's current epochs so a result computed from an
        /// already-superseded snapshot is never admitted.
        base_epochs: Vec<(String, u64)>,
        last_est: Option<SpeculationEstimate>,
        resolved: Option<StoreOutcome>,
    },
}

#[derive(Debug)]
struct State {
    graph: RecyclerGraph,
    cache: RecyclerCache,
    tags: HashMap<u64, TagEntry>,
    /// Node → qid of the query currently materializing it. When a fresh
    /// query supersedes a stale-epoch producer (see
    /// `RewriteRun::store_decision`), the marker moves to the fresh qid;
    /// owner-checked release keeps the superseded producer from clearing
    /// it on resolve.
    in_flight: HashMap<NodeId, u64>,
    /// Latest committed epoch per base table, as reported by
    /// [`Recycler::invalidate`]. Tables never updated are absent (their
    /// epoch is whatever it was at load).
    table_epochs: HashMap<String, u64>,
    next_tag: u64,
}

impl State {
    /// Release a node's in-flight marker, but only if `qid` still owns it.
    fn release_in_flight(&mut self, node: NodeId, qid: u64) {
        if self.in_flight.get(&node) == Some(&qid) {
            self.in_flight.remove(&node);
        }
    }
}

/// Aggregate counters (exposed for tests, examples, and benches).
#[derive(Debug, Default)]
pub struct RecyclerStats {
    /// Queries prepared.
    pub queries: AtomicU64,
    /// Exact-match reuses.
    pub reuses: AtomicU64,
    /// Subsumption-based reuses.
    pub subsumption_reuses: AtomicU64,
    /// Results published and admitted to the cache.
    pub materializations: AtomicU64,
    /// Store operators whose materialization was abandoned/cancelled.
    pub abandoned: AtomicU64,
    /// Times a query stalled on a concurrent materialization.
    pub stalls: AtomicU64,
    /// Cache entries evicted because a base table changed.
    pub invalidations: AtomicU64,
    /// Cache entries repaired in place from a DML delta.
    pub repaired: AtomicU64,
    /// Repair candidates that fell back to eviction (kernel refused, a
    /// race intervened, or the repaired payload no longer fit).
    pub repair_fallbacks: AtomicU64,
    /// Non-empty DML deltas routed through [`Recycler::repair`].
    pub deltas_applied: AtomicU64,
    /// Publishes rejected because the producing query's snapshot was
    /// superseded before its store completed.
    pub stale_rejections: AtomicU64,
    /// Warm hash-join build sides served from the cache.
    pub hash_build_hits: AtomicU64,
    /// Warm aggregation tables served from the cache.
    pub agg_table_hits: AtomicU64,
    /// Operator-state artifacts published and admitted to the cache.
    pub state_publishes: AtomicU64,
    /// Total matching/insertion time.
    pub match_ns_total: AtomicU64,
    /// Nodes inserted into the recycler graph.
    pub nodes_inserted: AtomicU64,
}

macro_rules! bump {
    ($stats:expr, $field:ident) => {
        $stats.$field.fetch_add(1, Ordering::Relaxed)
    };
}

/// The recycler. Share it between the engine and the executor via `Arc`;
/// it implements [`ResultStore`] so store/cached operators talk to it
/// directly.
pub struct Recycler {
    config: RecyclerConfig,
    state: Mutex<State>,
    resolved_cond: Condvar,
    /// Aggregate counters.
    pub stats: RecyclerStats,
}

impl Recycler {
    /// New recycler with the given configuration.
    pub fn new(config: RecyclerConfig) -> Arc<Recycler> {
        Arc::new(Recycler {
            state: Mutex::new(State {
                graph: RecyclerGraph::new(),
                cache: RecyclerCache::new(config.cache_bytes),
                tags: HashMap::new(),
                in_flight: HashMap::new(),
                table_epochs: HashMap::new(),
                next_tag: 1,
            }),
            resolved_cond: Condvar::new(),
            config,
            stats: RecyclerStats::default(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &RecyclerConfig {
        &self.config
    }

    /// Number of nodes in the recycler graph.
    pub fn graph_len(&self) -> usize {
        self.state.lock().graph.len()
    }

    /// Bytes currently in the recycler cache.
    pub fn cache_used(&self) -> u64 {
        self.state.lock().cache.used()
    }

    /// Number of cached results.
    pub fn cache_len(&self) -> usize {
        self.state.lock().cache.len()
    }

    /// Flush the cache (Fig. 6's simulated refresh): evict everything and
    /// restore reference counts per Eq. 4.
    pub fn flush_cache(&self) {
        let mut st = self.state.lock();
        let alpha = self.config.aging_alpha;
        for id in st.cache.flush() {
            if id.kind == ArtifactKind::Result {
                st.graph.on_evicted(id.node, alpha);
            }
        }
    }

    /// A base table committed `new_epoch`: walk the operator graph upward
    /// from the changed leaf and evict exactly the cache entries whose
    /// results depend on it (PAPER.md §V), leaving entries over other
    /// tables untouched. In-flight materializations over the old version
    /// are not interrupted, but their eventual publish is rejected by the
    /// epoch gate in [`ResultStore::publish`]. Returns one
    /// [`RecyclerEvent::Invalidated`] per evicted entry.
    ///
    /// Must be called *after* the table's new version is committed (the
    /// engine's DML path does this); callers mutating storage behind the
    /// engine's back get stale reuse until they do.
    pub fn invalidate(&self, table: &str, new_epoch: u64) -> Vec<RecyclerEvent> {
        let mut st = self.state.lock();
        let cur = st.table_epochs.entry(table.to_string()).or_insert(0);
        *cur = (*cur).max(new_epoch);
        let alpha = self.config.aging_alpha;
        let mut events = Vec::new();
        for id in st.graph.dependents_of_table(table) {
            // Every artifact kind of the dependent node is a candidate: a
            // cached hash build or agg table over a changed base table is
            // exactly as stale as a cached result over it.
            for aid in st.cache.artifacts_of(id) {
                // An entry already computed at (or past) the committing
                // epoch is fresh — a producer that pinned the new version
                // published before this invalidate call caught up. Evicting
                // it would throw away valid work.
                if st.cache.get_artifact(aid).is_some_and(|entry| {
                    entry
                        .epochs
                        .iter()
                        .any(|(t, e)| t == table && *e >= new_epoch)
                }) {
                    continue;
                }
                if let Some(entry) = st.cache.remove_artifact(aid) {
                    if aid.kind == ArtifactKind::Result {
                        st.graph.on_evicted(id, alpha);
                    }
                    self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
                    events.push(RecyclerEvent::Invalidated {
                        node: id,
                        kind: aid.kind,
                        bytes: entry.size,
                        table: table.to_string(),
                    });
                }
            }
        }
        events
    }

    /// A base table committed a typed [`Delta`]: repair dependent cache
    /// entries in place where the insert-time classification allows it,
    /// and evict the rest (exactly what [`Recycler::invalidate`] would
    /// have done to them). Repaired entries are byte-identical to
    /// recomputation at the post-commit snapshot and adopt the new epoch
    /// vector, so subsequent queries reuse them directly — this is what
    /// keeps the hit rate up under a write-mixed workload.
    ///
    /// `snapshot` must be the post-commit snapshot: repair requires
    /// `snapshot.epoch_of(delta.table) == delta.epoch` (the engine's DML
    /// path guarantees it; anything else routes to `invalidate`).
    ///
    /// Structure: candidates are collected under the recycler lock, the
    /// repair kernels run **unlocked** (they evaluate subplans), and
    /// patches re-validate epochs under the lock — a raced entry falls
    /// back to eviction, never to a stale patch. One kernel evaluation per
    /// node patches both its result and its agg-table artifact (an
    /// aggregate's agg-table artifact holds the same sorted rows as its
    /// result). Hash-build artifacts always evict: their probe index is
    /// positional and cheap to rebuild relative to re-verifying it.
    pub fn repair(
        &self,
        delta: &Delta,
        snapshot: &CatalogSnapshot,
        functions: &Arc<FnRegistry>,
    ) -> RepairOutcome {
        let table = delta.table.as_str();
        let new_epoch = delta.epoch;
        let mut out = RepairOutcome::default();
        // No-op fast path: an empty delta repairs nothing and must not
        // walk the graph (the engine never commits one, but be safe).
        if delta.is_empty() {
            return out;
        }
        if !self.config.repair || snapshot.epoch_of(table) != Some(new_epoch) {
            out.events = self.invalidate(table, new_epoch);
            return out;
        }
        bump!(self.stats, deltas_applied);
        out.deltas_applied = 1;
        let alpha = self.config.aging_alpha;
        let model = self.config.cost_model;

        struct Candidate {
            aid: ArtifactId,
            plan: Plan,
            cached: Arc<MaterializedResult>,
            epochs: Vec<(String, u64)>,
        }

        // Phase 1 (locked): bump the table's epoch, split stale dependents
        // into repair candidates and immediate evictions.
        let mut candidates: Vec<Candidate> = Vec::new();
        {
            let mut st = self.state.lock();
            let cur = st.table_epochs.entry(table.to_string()).or_insert(0);
            *cur = (*cur).max(new_epoch);
            for id in st.graph.dependents_of_table(table) {
                let repairable = st.graph.node(id).repairability_for(table).repairable();
                // Cost gate: when the delta carries more rows than the
                // node's own true cost (in work units this is rows
                // processed), recomputing on demand is no worse than
                // repairing eagerly. Unmeasured nodes always repair.
                let worth_it = {
                    let measured = st.graph.node(id).stats.measured;
                    !measured || (delta.rows() as f64) <= st.graph.true_cost(id, model)
                };
                for aid in st.cache.artifacts_of(id) {
                    let Some(entry) = st.cache.get_artifact(aid) else {
                        continue;
                    };
                    // Already fresh: a producer pinned at the new version
                    // published before this call; its work is valid.
                    if entry
                        .epochs
                        .iter()
                        .any(|(t, e)| t == table && *e >= new_epoch)
                    {
                        continue;
                    }
                    // Repair applies one epoch step exactly: the entry must
                    // sit at the immediately preceding version of the
                    // changed table and at the snapshot's version of every
                    // other table it reads.
                    let one_step = entry
                        .epochs
                        .iter()
                        .any(|(t, e)| t == table && e + 1 == new_epoch);
                    let others_current = entry
                        .epochs
                        .iter()
                        .all(|(t, e)| t == table || snapshot.epoch_of(t) == Some(*e));
                    let cached = match &entry.artifact {
                        CacheArtifact::Result(r) | CacheArtifact::AggTable(r) => Some(r.clone()),
                        CacheArtifact::HashBuild(_) => None,
                    };
                    match cached {
                        Some(cached) if repairable && worth_it && one_step && others_current => {
                            candidates.push(Candidate {
                                aid,
                                plan: st.graph.node(id).subtree.clone(),
                                cached,
                                epochs: entry.epochs.clone(),
                            });
                        }
                        _ => {
                            if let Some(entry) = st.cache.remove_artifact(aid) {
                                if aid.kind == ArtifactKind::Result {
                                    st.graph.on_evicted(id, alpha);
                                }
                                bump!(self.stats, invalidations);
                                out.events.push(RecyclerEvent::Invalidated {
                                    node: id,
                                    kind: aid.kind,
                                    bytes: entry.size,
                                    table: table.to_string(),
                                });
                            }
                        }
                    }
                }
            }
        }

        // Phase 2 (unlocked): evaluate repair kernels, memoized per node.
        let mut repaired_by_node: HashMap<NodeId, Option<MaterializedResult>> = HashMap::new();
        for c in &candidates {
            repaired_by_node.entry(c.aid.node).or_insert_with(|| {
                rdb_delta::repair(&c.plan, &c.cached, delta, snapshot, functions)
            });
        }

        // Phase 3 (locked): re-validate each candidate and patch in place,
        // falling back to eviction when the kernel refused, the entry
        // changed underneath us, or the repaired payload no longer fits.
        let mut st = self.state.lock();
        for c in candidates {
            let id = c.aid.node;
            let Some(entry) = st.cache.get_artifact(c.aid) else {
                continue; // already gone (raced invalidate/flush)
            };
            if entry.epochs != c.epochs {
                continue; // raced publish at other epochs: leave it alone
            }
            let old_bytes = entry.size;
            let entry_cost = entry.cost;
            let mut patched = false;
            if let Some(r) = repaired_by_node.get(&id).and_then(|r| r.as_ref()) {
                let new_epochs: Vec<(String, u64)> = c
                    .epochs
                    .iter()
                    .map(|(t, e)| (t.clone(), if t == table { new_epoch } else { *e }))
                    .collect();
                let bytes = r.size_bytes as u64;
                let rows = r.rows() as u64;
                let benefit = match c.aid.kind {
                    ArtifactKind::Result => st.graph.benefit(id, model, alpha),
                    _ => entry_cost * st.graph.decayed_h(id, alpha) / bytes.max(1) as f64,
                };
                let artifact = match c.aid.kind {
                    ArtifactKind::Result => CacheArtifact::Result(Arc::new(r.clone())),
                    ArtifactKind::AggTable => CacheArtifact::AggTable(Arc::new(r.clone())),
                    ArtifactKind::HashBuild => unreachable!("hash builds never repair"),
                };
                if let Some(evicted) = st
                    .cache
                    .patch_artifact(c.aid, artifact, benefit, new_epochs)
                {
                    for e in evicted {
                        if e.kind == ArtifactKind::Result {
                            st.graph.on_evicted(e.node, alpha);
                        }
                    }
                    out.repaired += 1;
                    bump!(self.stats, repaired);
                    out.events.push(RecyclerEvent::Repaired {
                        node: id,
                        kind: c.aid.kind,
                        bytes,
                        table: table.to_string(),
                        rows,
                    });
                    patched = true;
                }
            }
            if !patched {
                // `patch_artifact` removes the entry when the payload no
                // longer fits; cover both that path and the kernel-refusal
                // path where the stale entry is still cached.
                st.cache.remove_artifact(c.aid);
                if c.aid.kind == ArtifactKind::Result {
                    st.graph.on_evicted(id, alpha);
                }
                out.fallbacks += 1;
                bump!(self.stats, repair_fallbacks);
                bump!(self.stats, invalidations);
                out.events.push(RecyclerEvent::Invalidated {
                    node: id,
                    kind: c.aid.kind,
                    bytes: old_bytes,
                    table: table.to_string(),
                });
            }
        }
        out
    }

    /// Rewrite a bound query plan for execution against the catalog's
    /// *current* table versions, sampled live per table.
    ///
    /// Prefer [`Recycler::prepare_at`] with a pinned
    /// [`rdb_storage::CatalogSnapshot`] (as the engine's session path
    /// does): without a snapshot, a table updated between this call and
    /// the scan build can make the executed data diverge from the epochs
    /// recorded here, and the race-closing guarantees of the epoch gates
    /// then don't apply. This variant is only safe when no DML runs
    /// concurrently (tests, micro-benches).
    pub fn prepare(&self, plan: &Plan, catalog: &Catalog) -> PreparedQuery {
        self.prepare_at(plan, catalog, &|t| catalog.epoch_of(t).unwrap_or(0))
    }

    /// Rewrite a bound query plan for execution (paper Fig. 1's rewriter
    /// rules). `catalog` supplies schemas for newly inserted graph nodes;
    /// `epoch_of` reports the epoch at which the query's snapshot pins
    /// each base table — cached results are substituted only when their
    /// recorded epochs match, and store targets record these epochs so a
    /// publish that outlives its snapshot is rejected.
    pub fn prepare_at(
        &self,
        plan: &Plan,
        catalog: &Catalog,
        epoch_of: &dyn Fn(&str) -> u64,
    ) -> PreparedQuery {
        assert!(!plan.has_named(), "prepare() requires a bound plan");
        bump!(self.stats, queries);
        let schema_of =
            |p: &Plan| -> Schema { p.schema(catalog).expect("bound plan must have a schema") };

        let mut st = self.state.lock();
        let qid = st.graph.advance_tick();

        // --- matching + insertion (Algorithm 1) ---
        let match_start = Instant::now();
        let mtree = st.graph.match_or_insert(plan, &schema_of);
        let inserted = mtree.inserted_count();
        // Reference bookkeeping: every pre-existing node whose result could
        // have answered this query (no materialized ancestor inside the
        // matched region) gains a reference.
        bump_references(&mut st.graph, &mtree, false, self.config.aging_alpha);
        let match_ns = match_start.elapsed().as_nanos() as u64;
        self.stats
            .match_ns_total
            .fetch_add(match_ns, Ordering::Relaxed);
        self.stats
            .nodes_inserted
            .fetch_add(inserted as u64, Ordering::Relaxed);

        // --- rewriting: reuse substitution + store injection ---
        let mut events = Vec::new();
        let mut ignore_stall: Vec<NodeId> = Vec::new();
        let outcome = loop {
            let mut rw = RewriteRun {
                cfg: &self.config,
                qid,
                epoch_of,
                tags: Vec::new(),
                annots: Vec::new(),
                events: Vec::new(),
                ignore_stall: &ignore_stall,
            };
            match rw.rewrite(&mut st, plan, &mtree, true) {
                Ok(new_plan) => break (new_plan, rw.tags, rw.annots, rw.events),
                Err(stall_on) => {
                    // Roll back anything this attempt created.
                    for t in rw.tags {
                        if let Some(TagEntry::StoreTarget { node, qid, .. }) = st.tags.remove(&t) {
                            st.release_in_flight(node, qid);
                        }
                    }
                    bump!(self.stats, stalls);
                    let waited = Instant::now();
                    let deadline = waited + self.config.stall_timeout;
                    let mut timed_out = false;
                    while st.in_flight.contains_key(&stall_on) {
                        if self.resolved_cond.wait_until(&mut st, deadline).timed_out() {
                            timed_out = true;
                            break;
                        }
                    }
                    let satisfied = !timed_out && st.cache.contains(stall_on);
                    events.push(RecyclerEvent::Stalled {
                        node: stall_on,
                        waited: waited.elapsed(),
                        satisfied,
                    });
                    if timed_out {
                        // Give up waiting: compute it ourselves this time.
                        ignore_stall.push(stall_on);
                    }
                }
            }
        };
        let (new_plan, tags, annots, mut rw_events) = outcome;
        events.append(&mut rw_events);
        for e in &events {
            match e {
                RecyclerEvent::Reused { .. } => {
                    bump!(self.stats, reuses);
                }
                RecyclerEvent::SubsumptionReused { .. } => {
                    bump!(self.stats, subsumption_reuses);
                }
                _ => {}
            }
        }
        PreparedQuery {
            plan: new_plan,
            qid,
            tags,
            annotations: annots,
            events,
            match_ns,
            nodes_inserted: inserted,
            nodes_total: plan.node_count(),
        }
    }

    /// Post-execution hook for a fully drained query: annotate measured
    /// statistics onto the graph, resolve dangling store targets, release
    /// leases, and report completion events.
    pub fn complete(&self, prepared: &PreparedQuery, metrics: &MetricsNode) -> Vec<RecyclerEvent> {
        self.finish(prepared, Some(metrics))
    }

    /// Completion hook for a query whose result stream was dropped before
    /// being drained: store targets that never published are abandoned and
    /// leases released, but the graph is *not* annotated — partial
    /// measurements would corrupt the benefit statistics.
    pub fn abort(&self, prepared: &PreparedQuery) -> Vec<RecyclerEvent> {
        self.finish(prepared, None)
    }

    fn finish(
        &self,
        prepared: &PreparedQuery,
        metrics: Option<&MetricsNode>,
    ) -> Vec<RecyclerEvent> {
        let mut st = self.state.lock();
        // Annotate each computed node with its measured statistics (only
        // when the query ran to completion).
        if let Some(metrics) = metrics {
            for (path, node) in &prepared.annotations {
                let Some(m) = metrics_at(metrics, path) else {
                    continue;
                };
                if m.metrics.calls() == 0 {
                    // The operator never ran — its subtree was skipped by
                    // a warm operator-state hit (cached hash build or agg
                    // table). Annotating its zeroed counters would wipe
                    // the cold-run cost statistics the artifact's benefit
                    // is derived from.
                    continue;
                }
                let Some(sub) = plan_at(&prepared.plan, path) else {
                    continue;
                };
                let from_base = !contains_cached(sub);
                st.graph.annotate(
                    *node,
                    m.inclusive_time_ns() as f64,
                    m.inclusive_work() as f64,
                    m.cardinality(),
                    m.metrics.bytes_out(),
                    from_base,
                );
            }
        }
        // Resolve store targets that never finished (e.g. a LIMIT above the
        // store stopped pulling) and collect completion events.
        let mut events = Vec::new();
        let mut notify = false;
        for t in &prepared.tags {
            let Some(entry) = st.tags.get(t) else {
                continue;
            };
            if let TagEntry::StoreTarget {
                node,
                qid,
                resolved,
                ..
            } = entry
            {
                let (node, qid) = (*node, *qid);
                match resolved {
                    Some(StoreOutcome::Published { admitted, bytes }) => {
                        events.push(RecyclerEvent::Materialized {
                            node,
                            bytes: *bytes,
                            admitted: *admitted,
                        });
                    }
                    Some(StoreOutcome::Abandoned) => {
                        events.push(RecyclerEvent::Abandoned { node });
                    }
                    None => {
                        events.push(RecyclerEvent::Abandoned { node });
                        bump!(self.stats, abandoned);
                        st.release_in_flight(node, qid);
                        notify = true;
                    }
                }
            }
        }
        // Release this query's tags (leases drop their pins).
        for t in &prepared.tags {
            st.tags.remove(t);
        }
        // Benefits depend on the just-annotated statistics; refresh cached
        // entries' ordering.
        let model = self.config.cost_model;
        let alpha = self.config.aging_alpha;
        let State { graph, cache, .. } = &mut *st;
        cache.rebenefit(|id, entry| match id.kind {
            // Results re-derive benefit from the graph (Eq. 1 over the
            // node's measured statistics).
            ArtifactKind::Result => graph.benefit(id.node, model, alpha),
            // Operator state re-derives it from its own measured
            // construction cost and the node's decayed heat: the saving of
            // a warm hit is the build cost, amortized per byte held.
            ArtifactKind::HashBuild | ArtifactKind::AggTable => {
                entry.cost * graph.decayed_h(id.node, alpha) / entry.size.max(1) as f64
            }
        });
        drop(st);
        if notify {
            self.resolved_cond.notify_all();
        }
        events
    }

    /// Run a read-only closure over the recycler graph (tests/inspection).
    pub fn with_graph<R>(&self, f: impl FnOnce(&RecyclerGraph) -> R) -> R {
        f(&self.state.lock().graph)
    }

    /// Read-only probe of one subplan's recycler state (for `EXPLAIN`):
    /// does the graph know this exact subtree, and if so, is its result
    /// cached right now, being materialized by a live query, or neither?
    /// Inserts nothing and bumps no reference statistics.
    pub fn probe(&self, plan: &Plan) -> CacheState {
        let st = self.state.lock();
        match st.graph.find_exact(plan) {
            None => CacheState::Unknown,
            Some(id) => {
                if st.cache.contains(id) {
                    CacheState::Cached
                } else if let Some(kind) = st
                    .cache
                    .artifacts_of(id)
                    .iter()
                    .map(|a| a.kind)
                    .find(|k| *k != ArtifactKind::Result)
                {
                    CacheState::CachedState(kind)
                } else if st.in_flight.contains_key(&id) {
                    CacheState::InFlight
                } else {
                    CacheState::Cold
                }
            }
        }
    }

    // ---- lineage persistence (write-ahead lineage, PAPERS.md) ------------

    /// The `k` highest-benefit cache entries as persistable
    /// [`LineageEntry`] lineage — plan subtree, epoch vector, and the
    /// statistics a restarted recycler needs to value the entry the way
    /// the live one did. Checkpointed alongside base tables so recovery
    /// can rebuild the cache by re-executing subplans instead of waiting
    /// for the workload to rediscover them ("Revisiting Reuse": the
    /// top-benefit entries are exactly the ones worth warming first).
    ///
    /// Only *result* artifacts are persisted: operator-state artifacts
    /// (hash builds, agg tables) are deliberately skipped — recovery
    /// re-executes lineage plans through the normal pipeline, and the
    /// first post-restart join/aggregate rebuilds and republishes its
    /// state at the recovered epochs anyway, so persisting it would buy
    /// nothing and complicate the checkpoint format.
    pub fn lineage_top(&self, k: usize) -> Vec<LineageEntry> {
        let st = self.state.lock();
        let alpha = self.config.aging_alpha;
        let mut out: Vec<LineageEntry> = st
            .cache
            .ids()
            .into_iter()
            .filter_map(|id| {
                let entry = st.cache.get(id)?;
                let node = st.graph.node(id);
                Some(LineageEntry {
                    plan: node.subtree.clone(),
                    epochs: entry.epochs.clone(),
                    benefit: entry.benefit,
                    heat: st.graph.decayed_h(id, alpha),
                    cost_ns: node.stats.bcost_ns,
                    cost_work: node.stats.bcost_work,
                    rows: node.stats.rows,
                    bytes: node.stats.bytes,
                })
            })
            .collect();
        // `total_cmp`, descending. Cached benefits are NaN-normalized at
        // the cache boundary (NaN-lowest policy), but rank defensively
        // anyway: a NaN smuggled in through checkpoint round-tripping must
        // sort *last*, never panic or float to the top.
        out.sort_by(|a, b| {
            let key = |x: f64| if x.is_nan() { f64::NEG_INFINITY } else { x };
            key(b.benefit).total_cmp(&key(a.benefit))
        });
        out.truncate(k);
        out
    }

    /// Recovery warm-up: install `result` — a fresh execution of
    /// `entry.plan` against the recovered `catalog` — as a cached entry,
    /// seeding the graph node with the checkpointed cost/heat statistics
    /// so benefit ranking survives the restart. Returns whether the entry
    /// is cached afterwards (the admission policy may still reject it).
    pub fn warm(
        &self,
        entry: &LineageEntry,
        catalog: &Catalog,
        result: Arc<MaterializedResult>,
    ) -> bool {
        assert!(!entry.plan.has_named(), "lineage plans are bound");
        let alpha = self.config.aging_alpha;
        let mut st = self.state.lock();
        let schema_of =
            |p: &Plan| -> Schema { p.schema(catalog).expect("lineage plan must have a schema") };
        let id = st.graph.match_or_insert(&entry.plan, &schema_of).id;
        st.graph.annotate(
            id,
            entry.cost_ns,
            entry.cost_work,
            entry.rows,
            entry.bytes,
            true,
        );
        st.graph.seed_heat(id, entry.heat, alpha);
        // The entry is keyed by the epochs of the *fresh* execution, not
        // the checkpointed vector: the caller re-ran the subplan against
        // the recovered catalog, so that is what the result reflects.
        let epochs: Vec<(String, u64)> = st
            .graph
            .node(id)
            .tables
            .iter()
            .map(|t| (t.clone(), catalog.epoch_of(t).unwrap_or(0)))
            .collect();
        for (t, e) in &epochs {
            let cur = st.table_epochs.entry(t.clone()).or_insert(0);
            *cur = (*cur).max(*e);
        }
        if st.cache.contains(id) {
            return true;
        }
        match st.cache.insert(id, result, entry.benefit, epochs) {
            Some(evicted) => {
                for e in evicted {
                    if e.kind == ArtifactKind::Result {
                        st.graph.on_evicted(e.node, alpha);
                    }
                }
                if !st.graph.node(id).materialized {
                    st.graph.on_materialized(id, alpha);
                }
                true
            }
            None => false,
        }
    }
}

/// Result of one [`Recycler::repair`] call.
#[derive(Debug, Default)]
pub struct RepairOutcome {
    /// Per-entry events: [`RecyclerEvent::Repaired`] for patched entries,
    /// [`RecyclerEvent::Invalidated`] for everything evicted (whether it
    /// was never repairable or fell back).
    pub events: Vec<RecyclerEvent>,
    /// Entries repaired in place.
    pub repaired: u64,
    /// Repair candidates that fell back to eviction.
    pub fallbacks: u64,
    /// 1 when the delta was routed through the repair walk (non-empty,
    /// repair enabled, snapshot current), else 0.
    pub deltas_applied: u64,
}

/// One cache entry's persistable lineage: the plan that produced it, the
/// base-table epochs it was computed under, and the statistics that rank
/// it. Everything needed to re-create the entry on a restarted engine by
/// re-executing the plan — the "write-ahead lineage" alternative to
/// persisting result bytes, which stay valid only as long as their
/// epochs anyway.
#[derive(Debug, Clone)]
pub struct LineageEntry {
    /// Bound canonical plan of the cached subtree.
    pub plan: Plan,
    /// `(table, epoch)` vector the result was computed under.
    pub epochs: Vec<(String, u64)>,
    /// Benefit at checkpoint time (Eq. 1).
    pub benefit: f64,
    /// Decayed reference heat `hR` at checkpoint time.
    pub heat: f64,
    /// Measured base cost, wall nanoseconds.
    pub cost_ns: f64,
    /// Measured base cost, abstract work units.
    pub cost_work: f64,
    /// Result cardinality.
    pub rows: u64,
    /// Result size in bytes.
    pub bytes: u64,
}

/// Result of [`Recycler::probe`]: the recycler-side status of one subplan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheState {
    /// A materialized result is in the cache; an execution would reuse it.
    Cached,
    /// No cached result, but cached operator state of this kind (a hash
    /// build or agg table) exists; a matching join/aggregate would skip
    /// its build phase.
    CachedState(ArtifactKind),
    /// A concurrent query is materializing this result right now; an
    /// execution would stall on it.
    InFlight,
    /// The graph knows the subtree but holds no result for it.
    Cold,
    /// The subtree has never been seen by the recycler.
    Unknown,
}

impl CacheState {
    /// Short label for plan annotations.
    pub fn label(self) -> &'static str {
        match self {
            CacheState::Cached => "cached",
            CacheState::CachedState(ArtifactKind::HashBuild) => "cached-build",
            CacheState::CachedState(ArtifactKind::AggTable) => "cached-agg",
            CacheState::CachedState(ArtifactKind::Result) => "cached",
            CacheState::InFlight => "in-flight",
            CacheState::Cold => "cold",
            CacheState::Unknown => "cold",
        }
    }
}

/// Walk the (query plan, match tree) pair and bump references on
/// pre-existing nodes with no materialized ancestor in the matched region.
fn bump_references(graph: &mut RecyclerGraph, mt: &MatchTree, mat_above: bool, alpha: f64) {
    if !mt.inserted && !mat_above {
        graph.bump_h(mt.id, alpha);
    }
    let mat_here = mat_above || graph.node(mt.id).materialized;
    for c in &mt.children {
        bump_references(graph, c, mat_here, alpha);
    }
}

/// One rewrite attempt (may be retried after a stall).
struct RewriteRun<'a> {
    cfg: &'a RecyclerConfig,
    qid: u64,
    /// Epoch at which the query's snapshot pins each base table.
    epoch_of: &'a dyn Fn(&str) -> u64,
    tags: Vec<u64>,
    annots: Vec<(Vec<usize>, NodeId)>,
    events: Vec<RecyclerEvent>,
    ignore_stall: &'a [NodeId],
}

impl<'a> RewriteRun<'a> {
    /// Whether a cached entry's recorded base-table epochs match the
    /// query's snapshot — the freshness condition for substituting it.
    /// A mismatch in either direction (entry older after a racing update,
    /// or entry newer than a query holding an older snapshot) disqualifies
    /// the entry; this query must compute from its own pinned versions.
    fn entry_fresh(&self, entry: &crate::cache::CacheEntry) -> bool {
        entry.epochs.iter().all(|(t, e)| (self.epoch_of)(t) == *e)
    }
    /// Returns the rewritten plan, or `Err(node)` if the query must stall
    /// on a concurrent materialization of `node`.
    fn rewrite(
        &mut self,
        st: &mut State,
        plan: &Plan,
        mt: &MatchTree,
        is_root: bool,
    ) -> Result<Plan, NodeId> {
        let id = mt.id;

        // Rule 1: substitute an exactly-matching cached result — but only
        // when it was computed from the same table versions this query's
        // snapshot pins (update-awareness: a stale entry is dead weight
        // here even if invalidation hasn't caught up with it yet).
        if let Some(entry) = st.cache.get(id) {
            if self.entry_fresh(entry) {
                let result = entry.result().clone();
                let bytes = entry.size;
                let schema = st.graph.node(id).schema.clone();
                let tag = new_lease(st, result);
                self.tags.push(tag);
                self.events.push(RecyclerEvent::Reused { node: id, bytes });
                return Ok(Plan::Cached { tag, schema });
            }
        }

        // Rule 2: another query is currently producing this result — stall
        // (paper §V) unless we already waited too long for it, or the
        // producer pinned different table versions (its result can never
        // satisfy this snapshot, so waiting would be pure loss).
        if let Some(&owner) = st.in_flight.get(&id) {
            if owner != self.qid
                && !self.ignore_stall.contains(&id)
                && self.producer_epochs_match(st, id)
            {
                return Err(id);
            }
        }

        // Rule 3: subsumption (only when no exact cached result exists).
        if self.cfg.enable_subsumption {
            if let Some(derived) = self.try_subsumption(st, plan, id) {
                return Ok(derived);
            }
        }

        // Recurse into children.
        let mut new_children = Vec::with_capacity(mt.children.len());
        let mut child_annots: Vec<(Vec<usize>, NodeId)> = Vec::new();
        for (i, (c_plan, c_mt)) in plan.children().iter().zip(&mt.children).enumerate() {
            let saved = std::mem::take(&mut self.annots);
            let child = self.rewrite(st, c_plan, c_mt, false)?;
            let produced = std::mem::replace(&mut self.annots, saved);
            for (mut p, n) in produced {
                p.insert(0, i);
                child_annots.push((p, n));
            }
            new_children.push(child);
        }
        let rebuilt = plan.with_children(new_children);
        self.annots.append(&mut child_annots);
        // This node is computed by this query: annotate it afterwards.
        self.annots.push((Vec::new(), id));

        // Rule 4: store injection.
        if let Some(speculative) = self.store_decision(st, plan, id, is_root) {
            let tag = st.next_tag;
            st.next_tag += 1;
            let base_epochs = st
                .graph
                .node(id)
                .tables
                .iter()
                .map(|t| (t.clone(), (self.epoch_of)(t)))
                .collect();
            st.tags.insert(
                tag,
                TagEntry::StoreTarget {
                    node: id,
                    qid: self.qid,
                    speculative,
                    base_epochs,
                    last_est: None,
                    resolved: None,
                },
            );
            // May overwrite a stale-epoch producer's marker (that is the
            // supersession store_decision allowed); owner-checked release
            // keeps the superseded producer from clearing ours.
            st.in_flight.insert(id, self.qid);
            self.tags.push(tag);
            self.events.push(RecyclerEvent::StoreInjected {
                node: id,
                speculative,
            });
            // The store wrapper adds one plan level above this node.
            for (p, _) in self.annots.iter_mut() {
                p.insert(0, 0);
            }
            return Ok(Plan::Store {
                child: Box::new(rebuilt),
                tag,
                mode: if speculative {
                    StoreMode::Speculate
                } else {
                    StoreMode::Materialize
                },
            });
        }
        Ok(rebuilt)
    }

    /// Whether the query currently materializing `id` pinned the same
    /// base-table epochs as this query (stalling on a producer from
    /// another snapshot can never pay off).
    fn producer_epochs_match(&self, st: &State, id: NodeId) -> bool {
        st.tags.values().any(|t| {
            matches!(
                t,
                TagEntry::StoreTarget { node, base_epochs, resolved: None, .. }
                    if *node == id
                        && base_epochs.iter().all(|(t, e)| (self.epoch_of)(t) == *e)
            )
        })
    }

    /// Substitute a materialized subsuming result if one exists and is
    /// fresh for this query's snapshot.
    fn try_subsumption(&mut self, st: &mut State, plan: &Plan, id: NodeId) -> Option<Plan> {
        let edge = st
            .graph
            .materialized_subsumers(id)
            .first()
            .map(|e| (*e).clone())?;
        let entry = st.cache.get(edge.subsumer)?;
        if !self.entry_fresh(entry) {
            return None;
        }
        let result = entry.result().clone();
        let schema = st.graph.node(edge.subsumer).schema.clone();
        let tag = new_lease(st, result);
        self.tags.push(tag);
        let cached = Plan::Cached { tag, schema };
        let derived = match &edge.derivation {
            Derivation::Reselect => match plan {
                Plan::Select { predicate, .. } => cached.select(predicate.clone()),
                _ => return None,
            },
            Derivation::ProjectCols(cols) => {
                let sup_schema = &st.graph.node(edge.subsumer).schema;
                let items: Vec<(rdb_expr::Expr, &str)> = cols
                    .iter()
                    .map(|&c| (rdb_expr::Expr::col(c), sup_schema.field(c).name.as_str()))
                    .collect();
                cached.project(items)
            }
            Derivation::Reaggregate {
                group_cols,
                agg_cols,
            } => match plan {
                Plan::Aggregate {
                    group_names,
                    aggs,
                    agg_names,
                    ..
                } => {
                    let groups: Vec<(rdb_expr::Expr, &str)> = group_cols
                        .iter()
                        .zip(group_names)
                        .map(|(&c, n)| (rdb_expr::Expr::col(c), n.as_str()))
                        .collect();
                    let new_aggs: Vec<(rdb_expr::AggFunc, &str)> = aggs
                        .iter()
                        .zip(agg_cols)
                        .zip(agg_names)
                        .map(|((a, &c), n)| {
                            (a.reaggregate(c).expect("checked decomposable"), n.as_str())
                        })
                        .collect();
                    cached.aggregate(groups, new_aggs)
                }
                _ => return None,
            },
            Derivation::Retopn => match plan {
                Plan::TopN { keys, n, .. } => cached.top_n(keys.clone(), *n),
                _ => return None,
            },
        };
        self.events.push(RecyclerEvent::SubsumptionReused {
            node: id,
            via: edge.subsumer,
        });
        Some(derived)
    }

    /// Decide whether to put a store operator above this node. Returns
    /// `Some(speculative)` to inject.
    fn store_decision(&self, st: &State, plan: &Plan, id: NodeId, is_root: bool) -> Option<bool> {
        // Never re-materialize a base-table copy, and never store what is
        // already cached or being produced *at our epochs*. A producer
        // pinned at superseded epochs does not block us: its publish will
        // be rejected by the epoch gate, and without our own store the
        // first fresh result after a write would never repopulate the
        // cache.
        if matches!(plan, Plan::Scan { .. }) {
            return None;
        }
        let node = st.graph.node(id);
        if node.materialized
            || (st.in_flight.contains_key(&id) && self.producer_epochs_match(st, id))
        {
            return None;
        }
        if node.stats.measured {
            // History rule: results seen before, with enough references and
            // an admissible benefit, are materialized outright.
            let h = st.graph.decayed_h(id, self.cfg.aging_alpha);
            if h < self.cfg.min_refs_to_store {
                return None;
            }
            let bytes = node.stats.bytes.max(1);
            if bytes > self.cfg.max_result_bytes() {
                return None;
            }
            let benefit = st
                .graph
                .benefit(id, self.cfg.cost_model, self.cfg.aging_alpha);
            if benefit <= self.cfg.benefit_floor {
                return None;
            }
            st.cache.would_admit(bytes, benefit).then_some(false)
        } else {
            // Speculation rule (§III-D): first-time results behind
            // designated operators (expensive, expected-small results).
            if self.cfg.mode != RecyclerMode::Speculative {
                return None;
            }
            let designated = is_root
                || matches!(
                    plan,
                    Plan::Aggregate { .. } | Plan::TopN { .. } | Plan::FnScan { .. }
                );
            designated.then_some(true)
        }
    }
}

fn new_lease(st: &mut State, result: Arc<MaterializedResult>) -> u64 {
    let tag = st.next_tag;
    st.next_tag += 1;
    st.tags.insert(tag, TagEntry::Lease(result));
    tag
}

fn metrics_at<'a>(root: &'a MetricsNode, path: &[usize]) -> Option<&'a MetricsNode> {
    let mut cur = root;
    for &i in path {
        cur = cur.children.get(i)?;
    }
    Some(cur)
}

fn plan_at<'a>(root: &'a Plan, path: &[usize]) -> Option<&'a Plan> {
    let mut cur = root;
    for &i in path {
        let children = cur.children();
        cur = children.get(i).copied()?;
    }
    Some(cur)
}

fn contains_cached(plan: &Plan) -> bool {
    matches!(plan, Plan::Cached { .. }) || plan.children().iter().any(|c| contains_cached(c))
}

impl ResultStore for Recycler {
    fn fetch(&self, tag: u64) -> Option<Arc<MaterializedResult>> {
        match self.state.lock().tags.get(&tag) {
            Some(TagEntry::Lease(r)) => Some(r.clone()),
            _ => None,
        }
    }

    fn publish(&self, tag: u64, result: MaterializedResult) {
        let mut st = self.state.lock();
        let Some(TagEntry::StoreTarget {
            node,
            qid,
            speculative,
            base_epochs,
            last_est,
            resolved,
        }) = st.tags.get(&tag)
        else {
            return;
        };
        let (node, qid, speculative, last_est) = (*node, *qid, *speculative, last_est.clone());
        let base_epochs = base_epochs.clone();
        if resolved.is_some() {
            return;
        }
        // Freshness gate: if any base table committed a *newer* epoch than
        // the one this query pinned, the produced result is a snapshot of
        // the past — discard it instead of poisoning the cache (this
        // closes the publish-after-invalidate race). A producer pinned
        // *ahead* of the last invalidation (`e > cur`: it read a version
        // whose invalidate call hasn't run yet) is fresh, not stale —
        // `invalidate` spares such entries when it catches up.
        let stale = base_epochs
            .iter()
            .any(|(t, e)| st.table_epochs.get(t).is_some_and(|cur| cur > e));
        if stale {
            self.stats.stale_rejections.fetch_add(1, Ordering::Relaxed);
            self.stats.abandoned.fetch_add(1, Ordering::Relaxed);
            if let Some(TagEntry::StoreTarget { resolved, .. }) = st.tags.get_mut(&tag) {
                *resolved = Some(StoreOutcome::Abandoned);
            }
            st.release_in_flight(node, qid);
            drop(st);
            self.resolved_cond.notify_all();
            return;
        }
        let bytes = result.size_bytes as u64;
        let model = self.config.cost_model;
        let alpha = self.config.aging_alpha;
        // Benefit: measured statistics if the node has history, else the
        // speculative estimate with the paper's constant h.
        let benefit = if st.graph.node(node).stats.measured {
            st.graph.benefit(node, model, alpha)
        } else {
            let cost = last_est.as_ref().map(|e| e.est_cost_ns).unwrap_or(0.0);
            cost * self.config.spec_h / bytes.max(1) as f64
        };
        let admitted = match st
            .cache
            .insert(node, Arc::new(result), benefit, base_epochs)
        {
            Some(evicted) => {
                for e in evicted {
                    if e.kind == ArtifactKind::Result {
                        st.graph.on_evicted(e.node, alpha);
                    }
                }
                // Guard against a concurrent duplicate publish (two fresh
                // producers racing): Eq. 3's hR propagation must run once.
                if !st.graph.node(node).materialized {
                    st.graph.on_materialized(node, alpha);
                }
                true
            }
            None => false,
        };
        if admitted {
            self.stats.materializations.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.abandoned.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(TagEntry::StoreTarget { resolved, .. }) = st.tags.get_mut(&tag) {
            *resolved = Some(StoreOutcome::Published { admitted, bytes });
        }
        st.release_in_flight(node, qid);
        let _ = speculative;
        drop(st);
        self.resolved_cond.notify_all();
    }

    fn abandon(&self, tag: u64) {
        let mut st = self.state.lock();
        if let Some(TagEntry::StoreTarget {
            node,
            qid,
            resolved,
            ..
        }) = st.tags.get_mut(&tag)
        {
            let (node, qid) = (*node, *qid);
            if resolved.is_none() {
                *resolved = Some(StoreOutcome::Abandoned);
                self.stats.abandoned.fetch_add(1, Ordering::Relaxed);
            }
            st.release_in_flight(node, qid);
        }
        drop(st);
        self.resolved_cond.notify_all();
    }

    /// Serve a cached operator-state artifact (hash build / agg table) for
    /// the exact subplan, keyed by the querying snapshot's epochs. A hit
    /// counts as a reference on the node (the warm state saved this query
    /// the node's build cost), keeping its heat honest.
    fn fetch_state(
        &self,
        plan: &Plan,
        kind: ArtifactKind,
        variant: u64,
        epochs: &[(String, u64)],
    ) -> Option<OperatorState> {
        let mut st = self.state.lock();
        let id = st.graph.find_exact(plan)?;
        let aid = ArtifactId {
            node: id,
            kind,
            variant,
        };
        let entry = st.cache.get_artifact(aid)?;
        // Freshness: the artifact was built under exactly the table
        // versions this query's snapshot pins — in either direction, a
        // mismatch disqualifies it (never probe a build across epochs).
        let fresh = entry
            .epochs
            .iter()
            .all(|(t, e)| epochs.iter().any(|(qt, qe)| qt == t && qe == e));
        if !fresh {
            return None;
        }
        let state = entry.artifact.as_state()?;
        match kind {
            ArtifactKind::HashBuild => bump!(self.stats, hash_build_hits),
            ArtifactKind::AggTable => bump!(self.stats, agg_table_hits),
            ArtifactKind::Result => 0,
        };
        st.graph.bump_h(id, self.config.aging_alpha);
        Some(state)
    }

    /// Offer a freshly built operator-state artifact to the cache. Subject
    /// to the same staleness gate as result publication and to the normal
    /// admission/replacement policy — a hash build competes for bytes
    /// against every other artifact on benefit alone.
    fn publish_state(
        &self,
        plan: &Plan,
        variant: u64,
        state: OperatorState,
        cost: StateCost,
        epochs: &[(String, u64)],
    ) {
        let mut st = self.state.lock();
        let Some(id) = st.graph.find_exact(plan) else {
            // Subplan unknown to the graph (e.g. a recycler-off path):
            // nothing to key the artifact by.
            return;
        };
        let kind = state.kind();
        let aid = ArtifactId {
            node: id,
            kind,
            variant,
        };
        if st.cache.get_artifact(aid).is_some() {
            return;
        }
        // Staleness gate (same as `publish`): state built from a
        // superseded snapshot must not enter the cache.
        let stale = epochs
            .iter()
            .any(|(t, e)| st.table_epochs.get(t).is_some_and(|cur| cur > e));
        if stale {
            self.stats.stale_rejections.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let size = state.size_bytes() as u64;
        if size > self.config.max_result_bytes() {
            return;
        }
        let model_cost = match self.config.cost_model {
            CostModel::Time => cost.cost_ns,
            CostModel::WorkUnits => cost.cost_work,
        };
        // Benefit mirrors Eq. 1 with the artifact's own construction cost:
        // a warm hit saves the build, not the whole subtree. First-seen
        // nodes fall back to the speculation constant h.
        let alpha = self.config.aging_alpha;
        let h = st.graph.decayed_h(id, alpha).max(self.config.spec_h);
        let benefit = model_cost * h / size.max(1) as f64;
        let artifact = match state {
            OperatorState::HashBuild(b) => CacheArtifact::HashBuild(b),
            OperatorState::AggTable(r) => CacheArtifact::AggTable(r),
        };
        if let Some(evicted) =
            st.cache
                .insert_artifact(aid, artifact, benefit, model_cost, epochs.to_vec())
        {
            for e in evicted {
                if e.kind == ArtifactKind::Result {
                    st.graph.on_evicted(e.node, alpha);
                }
            }
            bump!(self.stats, state_publishes);
        }
    }

    fn speculate(&self, tag: u64, est: &SpeculationEstimate) -> StoreVerdict {
        let mut st = self.state.lock();
        let Some(TagEntry::StoreTarget { last_est, .. }) = st.tags.get_mut(&tag) else {
            return StoreVerdict::Cancel;
        };
        *last_est = Some(est.clone());
        // Too large for the cache no matter what: cancel immediately.
        if est.buffered_bytes as u64 > self.config.max_result_bytes() {
            return StoreVerdict::Cancel;
        }
        if est.progress < self.config.spec_min_progress {
            return StoreVerdict::Undecided;
        }
        if est.est_bytes as u64 > self.config.max_result_bytes() {
            return StoreVerdict::Cancel;
        }
        // Paper §III-D: plug the estimates and a small constant h into the
        // benefit metric and let the admission policy decide.
        let benefit = est.est_cost_ns * self.config.spec_h / est.est_bytes.max(1.0);
        if st.cache.would_admit(est.est_bytes as u64, benefit) {
            StoreVerdict::Commit
        } else if est.progress >= 1.0 {
            StoreVerdict::Cancel
        } else {
            StoreVerdict::Undecided
        }
    }
}
