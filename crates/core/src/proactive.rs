//! Proactive recycling strategies (paper §IV-B).
//!
//! These rewrites deliberately make a single query *more* expensive in order
//! to create a reusable intermediate with high recycling potential. The
//! paper evaluates them by manually rewriting the plans of TPC-H Q1, Q16
//! and Q19 ("since proactive rules are not implemented in the recycler, we
//! simulate their benefit by manually altering query plans"); we implement
//! the rewrites as real plan-to-plan transformations and the TPC-H layer
//! applies them to the same three queries in PA mode.
//!
//! * [`widen_top_n`] — run `topN(Q, N_wide)` instead of `topN(Q, n)`; the
//!   widened result subsumes any smaller top-N with the same ordering.
//! * [`cube_with_selections`] — pull a selection above an aggregation by
//!   extending the GROUP BY with the selection columns; the unselected
//!   "cube" is the shared, cacheable intermediate (Fig. 5 left).
//! * [`cube_with_binning`] — for range predicates over high-cardinality
//!   (date) columns: bin by year, answer the contained bins from the cube
//!   and the residual range directly, then union and re-aggregate (Fig. 5
//!   right).

use rdb_expr::{AggFunc, CmpOp, Expr};
use rdb_plan::Plan;
use rdb_vector::types::{date_from_ymd, year_of_date};
use rdb_vector::Value;

/// How each original aggregate is reconstructed from the re-aggregated
/// partials.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FinalSpec {
    /// Original aggregate corresponds 1:1 to partial `i`.
    Direct(usize),
    /// `avg = sum(partial sums) / sum(partial counts)`.
    Ratio {
        /// Partial-sum index.
        sum: usize,
        /// Partial-count index.
        count: usize,
    },
}

/// Decompose aggregates into re-aggregable partials (`avg → sum + count`;
/// `count → sum`-able counts). Returns `None` if any aggregate is not
/// decomposable (`count distinct`).
fn decompose(aggs: &[AggFunc]) -> Option<(Vec<AggFunc>, Vec<FinalSpec>)> {
    let mut partials: Vec<AggFunc> = Vec::new();
    let mut specs = Vec::with_capacity(aggs.len());
    let push = |partials: &mut Vec<AggFunc>, f: AggFunc| -> usize {
        if let Some(i) = partials.iter().position(|x| *x == f) {
            i
        } else {
            partials.push(f);
            partials.len() - 1
        }
    };
    for a in aggs {
        match a {
            AggFunc::CountDistinct(_) => return None,
            AggFunc::Avg(e) => {
                let s = push(&mut partials, AggFunc::Sum(e.clone()));
                let c = push(&mut partials, AggFunc::Count(e.clone()));
                specs.push(FinalSpec::Ratio { sum: s, count: c });
            }
            other => {
                let i = push(&mut partials, other.clone());
                specs.push(FinalSpec::Direct(i));
            }
        }
    }
    Some((partials, specs))
}

/// Re-aggregation of the partials sitting at `offset..offset+partials.len()`
/// of the input.
fn reaggregate(partials: &[AggFunc], offset: usize) -> Vec<AggFunc> {
    partials
        .iter()
        .enumerate()
        .map(|(i, p)| {
            p.reaggregate(offset + i)
                .expect("decompose() only emits re-aggregable partials")
        })
        .collect()
}

/// Final projection restoring the original output (group columns followed
/// by one expression per original aggregate).
fn final_project(
    input: Plan,
    group_names: &[String],
    agg_names: &[String],
    specs: &[FinalSpec],
) -> Plan {
    let g = group_names.len();
    let mut items: Vec<(Expr, &str)> = group_names
        .iter()
        .enumerate()
        .map(|(i, n)| (Expr::col(i), n.as_str()))
        .collect();
    for (spec, name) in specs.iter().zip(agg_names) {
        let e = match spec {
            FinalSpec::Direct(i) => Expr::col(g + i),
            FinalSpec::Ratio { sum, count } => Expr::col(g + sum).div(Expr::col(g + count)),
        };
        items.push((e, name.as_str()));
    }
    input.project(items)
}

/// Top-N widening: rewrite `topN(Q, n)` into `topN(topN(Q, wide_n), n)`.
///
/// The inner, widened top-N is "practically as cheap" as the original
/// (§IV-B) yet subsumes every smaller top-N with the same ordering, so the
/// recycler can cache it once and answer all subsequent pagings from it.
/// Returns `None` when the root is not a top-N or is already wide enough.
pub fn widen_top_n(plan: &Plan, wide_n: usize) -> Option<Plan> {
    match plan {
        Plan::TopN { child, keys, n } if *n < wide_n => {
            let inner = Plan::TopN {
                child: child.clone(),
                keys: keys.clone(),
                n: wide_n,
            };
            Some(Plan::TopN {
                child: Box::new(inner),
                keys: keys.clone(),
                n: *n,
            })
        }
        _ => None,
    }
}

/// Cube caching with selections (Fig. 5 left): rewrite
/// `γ Fα (σ_p(R))` into `γ Fα'' ( σ_p' ( γ∪c Fα' (R) ) )`.
///
/// Applies when the root is an aggregation directly over a selection, the
/// predicate only references input columns (canonical `Col` refs), and all
/// aggregates are decomposable. The caller enforces the distinct-count
/// heuristic on the added grouping columns (paper: "apply the proactive
/// rule only if the number of distinct values ... is smaller than a
/// threshold").
pub fn cube_with_selections(plan: &Plan) -> Option<Plan> {
    let Plan::Aggregate {
        child,
        group_by,
        group_names,
        aggs,
        agg_names,
    } = plan
    else {
        return None;
    };
    let Plan::Select {
        child: base,
        predicate,
    } = child.as_ref()
    else {
        return None;
    };
    // The selection columns to add to the grouping.
    let mut pred_cols: Vec<usize> = Vec::new();
    predicate.columns_used(&mut pred_cols);
    if pred_cols.is_empty() {
        return None;
    }
    pred_cols.sort_unstable();

    // Special case (Q16's shape): every selection column is already a
    // grouping column. Selecting on group keys partitions the groups
    // exactly, so the selection can simply be pulled above the unselected
    // aggregate — no re-aggregation, which also makes non-decomposable
    // aggregates like `count(distinct ...)` eligible.
    if pred_cols
        .iter()
        .all(|&c| group_by.iter().any(|g| *g == Expr::col(c)))
    {
        let inner = Plan::Aggregate {
            child: base.clone(),
            group_by: group_by.clone(),
            group_names: group_names.clone(),
            aggs: aggs.clone(),
            agg_names: agg_names.clone(),
        };
        let mut remap: Vec<usize> = (0..base_arity_upper_bound(predicate, group_by)).collect();
        for &c in &pred_cols {
            let pos = group_by
                .iter()
                .position(|g| *g == Expr::col(c))
                .expect("checked above");
            if c >= remap.len() {
                remap.resize(c + 1, 0);
            }
            remap[c] = pos;
        }
        return Some(inner.select(predicate.remap_cols(&remap)));
    }

    let (partials, specs) = decompose(aggs)?;
    // Inner cube: group by (γ ∪ c) over the *unselected* input.
    let mut inner_groups: Vec<(Expr, String)> = group_by
        .iter()
        .zip(group_names)
        .map(|(e, n)| (e.clone(), n.clone()))
        .collect();
    // Positions of each predicate column in the inner output; reuse an
    // existing group expression when the column is already grouped on.
    let mut pred_pos = Vec::with_capacity(pred_cols.len());
    for &c in &pred_cols {
        match inner_groups.iter().position(|(e, _)| *e == Expr::col(c)) {
            Some(i) => pred_pos.push(i),
            None => {
                inner_groups.push((Expr::col(c), format!("selcol_{c}")));
                pred_pos.push(inner_groups.len() - 1);
            }
        }
    }
    let inner_group_arity = inner_groups.len();
    let inner = Plan::Aggregate {
        child: base.clone(),
        group_by: inner_groups.iter().map(|(e, _)| e.clone()).collect(),
        group_names: inner_groups.iter().map(|(_, n)| n.clone()).collect(),
        aggs: partials.clone(),
        agg_names: (0..partials.len()).map(|i| format!("p{i}")).collect(),
    };
    // Pull the selection above the cube: remap predicate columns to their
    // inner-output positions.
    let mut remap: Vec<usize> = (0..base_arity_upper_bound(predicate, group_by)).collect();
    for (k, &c) in pred_cols.iter().enumerate() {
        if c >= remap.len() {
            remap.resize(c + 1, 0);
        }
        remap[c] = pred_pos[k];
    }
    let lifted_pred = predicate.remap_cols(&remap);
    let selected = inner.select(lifted_pred);
    // Outer re-aggregation back to γ.
    let outer = Plan::Aggregate {
        child: Box::new(selected),
        group_by: (0..group_by.len()).map(Expr::col).collect(),
        group_names: group_names.clone(),
        aggs: reaggregate(&partials, inner_group_arity),
        agg_names: (0..partials.len()).map(|i| format!("r{i}")).collect(),
    };
    Some(final_project(outer, group_names, agg_names, &specs))
}

fn base_arity_upper_bound(predicate: &Expr, group_by: &[Expr]) -> usize {
    let mut cols = Vec::new();
    predicate.columns_used(&mut cols);
    for g in group_by {
        g.columns_used(&mut cols);
    }
    cols.into_iter().max().map_or(0, |m| m + 1)
}

/// Cube caching with binning (Fig. 5 right): rewrite
/// `γ Fα (σ_{d ≤ D}(R))` into
/// `γ Fα'' ( (σ_{year(d) < year(D)} cube) ∪ (γ Fα' σ_{jan1(D) ≤ d ≤ D}(R)) )`
/// where `cube = γ∪year(d) Fα'(R)`.
///
/// Applies when the root is an aggregation over a selection whose predicate
/// is a single upper bound on a date column. The year-binned cube is the
/// shared intermediate.
pub fn cube_with_binning(plan: &Plan) -> Option<Plan> {
    let Plan::Aggregate {
        child,
        group_by,
        group_names,
        aggs,
        agg_names,
    } = plan
    else {
        return None;
    };
    let Plan::Select {
        child: base,
        predicate,
    } = child.as_ref()
    else {
        return None;
    };
    // Match `Col(c) <= Date(D)`.
    let (col, bound) = match predicate {
        Expr::Cmp(CmpOp::Le, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Col(c), Expr::Lit(Value::Date(d))) => (*c, *d),
            _ => return None,
        },
        _ => return None,
    };
    let (partials, specs) = decompose(aggs)?;
    let bound_year = year_of_date(bound);
    let year_start = date_from_ymd(bound_year, 1, 1);
    let g = group_by.len();
    let partial_names: Vec<String> = (0..partials.len()).map(|i| format!("p{i}")).collect();

    // Shared intermediate: the year cube over the unselected input.
    let mut cube_groups = group_by.clone();
    let mut cube_group_names = group_names.clone();
    cube_groups.push(Expr::col(col).year());
    cube_group_names.push(format!("year_{col}"));
    let cube = Plan::Aggregate {
        child: base.clone(),
        group_by: cube_groups,
        group_names: cube_group_names,
        aggs: partials.clone(),
        agg_names: partial_names.clone(),
    };
    // Left branch: contained bins, re-aggregated down to γ so the two
    // union branches have identical schemas.
    let left = Plan::Aggregate {
        child: Box::new(cube.select(Expr::col(g).lt(Expr::lit(bound_year as i64)))),
        group_by: (0..g).map(Expr::col).collect(),
        group_names: group_names.clone(),
        aggs: reaggregate(&partials, g + 1),
        agg_names: partial_names.clone(),
    };
    // Right branch: the residual range, computed directly.
    let residual = Expr::col(col)
        .ge(Expr::lit(Value::Date(year_start)))
        .and(Expr::col(col).le(Expr::lit(Value::Date(bound))));
    let right = Plan::Aggregate {
        child: Box::new(base.as_ref().clone().select(residual)),
        group_by: group_by.clone(),
        group_names: group_names.clone(),
        aggs: partials.clone(),
        agg_names: partial_names.clone(),
    };
    // Union and final re-aggregation.
    let unioned = Plan::UnionAll {
        children: vec![left, right],
    };
    let outer = Plan::Aggregate {
        child: Box::new(unioned),
        group_by: (0..g).map(Expr::col).collect(),
        group_names: group_names.clone(),
        aggs: reaggregate(&partials, g),
        agg_names: (0..partials.len()).map(|i| format!("r{i}")).collect(),
    };
    Some(final_project(outer, group_names, agg_names, &specs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_exec::{build, run_to_batch, ExecContext};
    use rdb_plan::{scan, SortKeyExpr};
    use rdb_storage::{Catalog, TableBuilder};
    use rdb_vector::{Batch, DataType, Schema};
    use std::sync::Arc;

    fn ctx() -> ExecContext {
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs([
            ("flag", DataType::Str),
            ("qty", DataType::Int),
            ("price", DataType::Float),
            ("ship", DataType::Date),
            ("mode", DataType::Str),
        ]);
        let mut b = TableBuilder::new("items", schema, 500);
        for i in 0..500i64 {
            b.push_row(vec![
                Value::str(if i % 3 == 0 { "A" } else { "B" }),
                Value::Int(i % 7),
                Value::Float((i % 13) as f64 * 1.5),
                Value::Date(date_from_ymd(
                    1993 + (i % 5) as i32,
                    1 + (i % 12) as u32,
                    10,
                )),
                Value::str(["AIR", "RAIL", "SHIP"][(i % 3) as usize]),
            ]);
        }
        cat.register(b.finish()).expect("register table");
        ExecContext::new(Arc::new(cat))
    }

    fn run(ctx: &ExecContext, plan: &Plan) -> Batch {
        let bound = plan.bind(&ctx.catalog).unwrap();
        let mut tree = build(&bound, ctx).unwrap();
        run_to_batch(tree.root.as_mut())
    }

    fn sorted_rows(b: &Batch) -> Vec<Vec<Value>> {
        let mut rows = b.to_rows();
        rows.sort_by(|a, b| {
            a.iter()
                .zip(b)
                .map(|(x, y)| x.cmp(y))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }

    /// Compare float-bearing rows with tolerance.
    fn assert_rows_close(a: &Batch, b: &Batch) {
        let (ra, rb) = (sorted_rows(a), sorted_rows(b));
        assert_eq!(ra.len(), rb.len(), "row count mismatch");
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.len(), y.len());
            for (vx, vy) in x.iter().zip(y) {
                match (vx, vy) {
                    (Value::Float(fx), Value::Float(fy)) => {
                        assert!((fx - fy).abs() < 1e-9, "{fx} vs {fy}")
                    }
                    (Value::Float(fx), Value::Int(iy)) | (Value::Int(iy), Value::Float(fx)) => {
                        assert!((fx - *iy as f64).abs() < 1e-9)
                    }
                    _ => assert_eq!(vx, vy),
                }
            }
        }
    }

    /// The paper's Fig. 5 (left) query shape: aggregate over a selection.
    fn q_select_agg() -> Plan {
        scan("items", &["flag", "qty", "price", "ship", "mode"])
            .select(Expr::name("mode").eq(Expr::lit("AIR")))
            .aggregate(
                vec![(Expr::name("flag"), "flag")],
                vec![
                    (AggFunc::Sum(Expr::name("qty")), "sum_qty"),
                    (AggFunc::CountStar, "n"),
                    (AggFunc::Avg(Expr::name("price")), "avg_price"),
                ],
            )
    }

    #[test]
    fn cube_with_selections_is_equivalent() {
        let ctx = ctx();
        let original = q_select_agg();
        let bound = original.bind(&ctx.catalog).unwrap();
        let rewritten = cube_with_selections(&bound).expect("pattern applies");
        assert_rows_close(&run(&ctx, &bound), &run(&ctx, &rewritten));
        // The rewrite contains the shared unselected cube.
        let txt = rewritten.to_string();
        assert!(!txt.contains("union"), "no union in plain cube");
        assert!(
            txt.matches("aggregate").count() >= 2,
            "inner + outer aggregate"
        );
    }

    #[test]
    fn cube_with_selections_group_key_predicate() {
        // Q16's shape: the selection references only grouping columns, so
        // the rewrite is a plain pull-up — valid even for count distinct.
        let ctx = ctx();
        let original = scan("items", &["flag", "qty", "mode"])
            .select(
                Expr::name("flag")
                    .eq(Expr::lit("A"))
                    .and(Expr::name("qty").in_list([Value::Int(1), Value::Int(2)])),
            )
            .aggregate(
                vec![(Expr::name("flag"), "flag"), (Expr::name("qty"), "qty")],
                vec![(AggFunc::CountDistinct(Expr::name("mode")), "modes")],
            );
        let bound = original.bind(&ctx.catalog).unwrap();
        let rewritten = cube_with_selections(&bound).expect("group-key predicate applies");
        // The rewrite is a selection over the unselected aggregate.
        assert!(matches!(&rewritten, Plan::Select { child, .. }
            if matches!(child.as_ref(), Plan::Aggregate { .. })));
        assert_rows_close(&run(&ctx, &bound), &run(&ctx, &rewritten));
    }

    #[test]
    fn cube_with_selections_rejects_non_matching() {
        let plain = scan("items", &["qty"]);
        assert!(cube_with_selections(&plain).is_none());
        // Count-distinct blocks decomposition.
        let cd = scan("items", &["qty", "mode"])
            .select(Expr::col(1).eq(Expr::lit("AIR")))
            .aggregate(vec![], vec![(AggFunc::CountDistinct(Expr::col(0)), "d")]);
        assert!(cube_with_selections(&cd).is_none());
    }

    #[test]
    fn cube_with_binning_is_equivalent() {
        let ctx = ctx();
        // Q1 shape: upper-bound date predicate under an aggregation.
        let d = date_from_ymd(1995, 3, 1);
        let original = scan("items", &["flag", "qty", "price", "ship"])
            .select(Expr::name("ship").le(Expr::lit(Value::Date(d))))
            .aggregate(
                vec![(Expr::name("flag"), "flag")],
                vec![
                    (AggFunc::Sum(Expr::name("qty")), "sum_qty"),
                    (AggFunc::Avg(Expr::name("qty")), "avg_qty"),
                    (AggFunc::CountStar, "n"),
                ],
            );
        let bound = original.bind(&ctx.catalog).unwrap();
        let rewritten = cube_with_binning(&bound).expect("pattern applies");
        assert!(rewritten.to_string().contains("union_all"));
        assert_rows_close(&run(&ctx, &bound), &run(&ctx, &rewritten));
    }

    #[test]
    fn cube_with_binning_boundary_years() {
        let ctx = ctx();
        // Bound inside the earliest data year: left branch is empty.
        let d = date_from_ymd(1993, 6, 15);
        let original = scan("items", &["flag", "qty", "ship"])
            .select(Expr::name("ship").le(Expr::lit(Value::Date(d))))
            .aggregate(
                vec![(Expr::name("flag"), "flag")],
                vec![(AggFunc::Sum(Expr::name("qty")), "s")],
            );
        let bound = original.bind(&ctx.catalog).unwrap();
        let rewritten = cube_with_binning(&bound).unwrap();
        assert_rows_close(&run(&ctx, &bound), &run(&ctx, &rewritten));
    }

    #[test]
    fn cube_with_binning_rejects_other_predicates() {
        let p = scan("items", &["flag", "qty", "ship"])
            .select(Expr::col(2).gt(Expr::lit(Value::Date(0))))
            .aggregate(vec![(Expr::col(0), "f")], vec![(AggFunc::CountStar, "n")]);
        assert!(cube_with_binning(&p).is_none());
    }

    #[test]
    fn widen_top_n_wraps_and_preserves_semantics() {
        let ctx = ctx();
        let original =
            scan("items", &["qty", "price"]).top_n(vec![SortKeyExpr::desc(Expr::name("price"))], 5);
        let bound = original.bind(&ctx.catalog).unwrap();
        let widened = widen_top_n(&bound, 100).unwrap();
        match &widened {
            Plan::TopN { child, n, .. } => {
                assert_eq!(*n, 5);
                assert!(matches!(child.as_ref(), Plan::TopN { n: 100, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let a = run(&ctx, &bound);
        let b = run(&ctx, &widened);
        assert_eq!(a.column(1).as_floats(), b.column(1).as_floats());
        // Already wide enough → no rewrite.
        assert!(widen_top_n(&bound, 5).is_none());
        assert!(widen_top_n(&bound, 3).is_none());
    }

    #[test]
    fn decompose_handles_avg_and_dedup() {
        let aggs = vec![
            AggFunc::Avg(Expr::col(1)),
            AggFunc::Sum(Expr::col(1)),
            AggFunc::CountStar,
        ];
        let (partials, specs) = decompose(&aggs).unwrap();
        // Avg shares its Sum partial with the explicit Sum.
        assert_eq!(
            partials,
            vec![
                AggFunc::Sum(Expr::col(1)),
                AggFunc::Count(Expr::col(1)),
                AggFunc::CountStar
            ]
        );
        assert_eq!(
            specs,
            vec![
                FinalSpec::Ratio { sum: 0, count: 1 },
                FinalSpec::Direct(0),
                FinalSpec::Direct(2)
            ]
        );
    }
}
