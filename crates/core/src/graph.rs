//! The recycler graph (paper §II, §III-A/B/C).
//!
//! An AND-DAG unifying every optimized query tree the system has seen. Each
//! node is one relational operator with its parameters; identical subtrees
//! are merged and stored once, so finding an exact match for a query subtree
//! costs one bottom-up pass with hash-indexed candidate lookups
//! (Algorithm 1). Nodes are annotated with reference statistics (`hR`),
//! measured base cost, cardinality and size, which feed the benefit metric.
//!
//! Leaf candidates are found through a global hash table keyed by the leaf's
//! hash-key; non-leaf candidates are the *parents* of the already-matched
//! child, indexed per node by a small hash table (hash-key → parent ids) and
//! pruned by the column-bitmask signature, exactly as §III-A describes.

use std::collections::HashMap;

use rdb_expr::implies;
use rdb_plan::{local_eq, local_hash, signature, Plan};
use rdb_vector::Schema;

use crate::config::CostModel;

/// Identifier of a node in the recycler graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Run-time statistics annotated on a graph node (paper Fig. 3).
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Importance factor `hR` (paper §III-C), stored at `last_tick`.
    pub h_r: f64,
    /// Tick at which `h_r` was last touched (lazy aging).
    pub last_tick: u64,
    /// Measured base cost in nanoseconds (cost from base tables).
    pub bcost_ns: f64,
    /// Measured base cost in deterministic work units.
    pub bcost_work: f64,
    /// Times this node's result has been computed.
    pub executions: u64,
    /// Measured result cardinality.
    pub rows: u64,
    /// Measured result size in bytes.
    pub bytes: u64,
    /// Whether cost/size have been measured at least once.
    pub measured: bool,
}

/// How a subsuming node's cached result can be turned into this node's
/// result (paper §IV-A).
#[derive(Debug, Clone, PartialEq)]
pub enum Derivation {
    /// Tuple subsumption for selections: re-apply this node's predicate
    /// over the subsumer's rows.
    Reselect,
    /// Column subsumption: project the given positions of the subsumer.
    ProjectCols(Vec<usize>),
    /// Tuple subsumption for aggregations: re-aggregate the subsumer.
    /// `group_cols[i]` is the subsumer output position of this node's i-th
    /// group key; `agg_cols[j]` the position of the partial aggregate that
    /// this node's j-th aggregate re-aggregates.
    Reaggregate {
        /// Positions of this node's group keys in the subsumer output.
        group_cols: Vec<usize>,
        /// Positions of the partial aggregates in the subsumer output.
        agg_cols: Vec<usize>,
    },
    /// Top-N subsumption: the subsumer kept at least as many rows under the
    /// same ordering; re-apply top-N over it.
    Retopn,
}

/// A subsumption edge: this node's result is derivable from `subsumer`.
#[derive(Debug, Clone)]
pub struct SubsumptionEdge {
    /// The node whose result subsumes ours.
    pub subsumer: NodeId,
    /// How to derive our result from it.
    pub derivation: Derivation,
}

/// One operator node in the recycler graph.
#[derive(Debug)]
pub struct GraphNode {
    /// Canonical (bound) plan of the whole subtree rooted here.
    pub subtree: Plan,
    /// Output schema (graph-canonical names: those of the inserting query).
    pub schema: Schema,
    /// Base tables the subtree reads (deduplicated): the node's
    /// invalidation footprint — an update to any of them makes this node's
    /// cached result stale.
    pub tables: Vec<String>,
    /// Per-table repairability, parallel to `tables`: how this node's
    /// cached result can react to a committed delta of each base table
    /// (classified once at insertion — the subtree never changes).
    pub repair: Vec<rdb_delta::Repairability>,
    /// Children in plan order.
    pub children: Vec<NodeId>,
    /// Hash-key of the local operator (type + parameters).
    pub hash_key: u64,
    /// Column-bitmask signature of the subtree.
    pub signature: u64,
    /// Parent index: local hash-key → parent node ids.
    pub parents: HashMap<u64, Vec<NodeId>>,
    /// Annotated statistics.
    pub stats: NodeStats,
    /// Whether the result currently sits in the recycler cache.
    pub materialized: bool,
    /// Subsumption OR-edges (consulted only after exact matching fails).
    pub subsumed_by: Vec<SubsumptionEdge>,
}

impl GraphNode {
    /// How this node's cached result reacts to a committed delta of
    /// `table` (evict-only for tables outside its footprint).
    pub fn repairability_for(&self, table: &str) -> rdb_delta::Repairability {
        self.tables
            .iter()
            .position(|t| t == table)
            .map(|i| self.repair[i])
            .unwrap_or(rdb_delta::Repairability::EvictOnly)
    }
}

/// Result of matching one query-tree node.
#[derive(Debug, Clone)]
pub struct MatchTree {
    /// The graph node this query node unified with.
    pub id: NodeId,
    /// True if the node did not exist before this query (it was inserted).
    pub inserted: bool,
    /// Children in plan order.
    pub children: Vec<MatchTree>,
}

impl MatchTree {
    /// Count nodes that were newly inserted.
    pub fn inserted_count(&self) -> usize {
        (self.inserted as usize)
            + self
                .children
                .iter()
                .map(|c| c.inserted_count())
                .sum::<usize>()
    }
}

/// The recycler graph. Callers (the `Recycler`) guard it with a lock; the
/// methods themselves are single-threaded.
#[derive(Debug, Default)]
pub struct RecyclerGraph {
    nodes: Vec<GraphNode>,
    /// Global leaf hash table: leaf hash-key → leaf node ids.
    leaf_index: HashMap<u64, Vec<NodeId>>,
    /// Query counter driving lazy aging.
    tick: u64,
}

impl RecyclerGraph {
    /// Empty graph.
    pub fn new() -> Self {
        RecyclerGraph::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current query tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advance the aging clock by one query.
    pub fn advance_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &GraphNode {
        &self.nodes[id.0 as usize]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut GraphNode {
        &mut self.nodes[id.0 as usize]
    }

    // ---- matching + insertion (Algorithm 1) ------------------------------

    /// Match the canonical plan `plan` against the graph bottom-up,
    /// inserting nodes that have no exact match (§III-B). Returns the
    /// match/insert annotation tree.
    ///
    /// `schema_of` supplies the output schema for inserted nodes.
    pub fn match_or_insert(
        &mut self,
        plan: &Plan,
        schema_of: &dyn Fn(&Plan) -> Schema,
    ) -> MatchTree {
        // Store and Cached wrappers never enter the graph; the rewriter
        // guarantees plans arriving here contain neither.
        debug_assert!(!matches!(plan, Plan::Store { .. } | Plan::Cached { .. }));
        let children: Vec<MatchTree> = plan
            .children()
            .iter()
            .map(|c| self.match_or_insert(c, schema_of))
            .collect();
        let child_ids: Vec<NodeId> = children.iter().map(|c| c.id).collect();
        let key = local_hash(plan);
        let sig = signature(plan);

        let found = if child_ids.is_empty() {
            // Leaf: global hash table (paper: table scans matched through a
            // global hash table), pruned by signature.
            self.leaf_index.get(&key).and_then(|cands| {
                cands.iter().copied().find(|&c| {
                    let n = self.node(c);
                    n.signature == sig && local_eq(&n.subtree, plan)
                })
            })
        } else {
            // Non-leaf: candidates are parents of the matched first child
            // (paper lines 8-13); all children must match.
            let first = child_ids[0];
            self.node(first).parents.get(&key).and_then(|cands| {
                cands.iter().copied().find(|&p| {
                    let n = self.node(p);
                    n.signature == sig && n.children == child_ids && local_eq(&n.subtree, plan)
                })
            })
        };

        match found {
            Some(id) => MatchTree {
                id,
                inserted: false,
                children,
            },
            None => {
                let id = self.insert_node(plan, schema_of(plan), &child_ids, key, sig);
                MatchTree {
                    id,
                    inserted: true,
                    children,
                }
            }
        }
    }

    /// Read-only exact lookup: the graph node whose subtree structurally
    /// equals `plan`, if one exists. Same candidate walk as
    /// [`RecyclerGraph::match_or_insert`], but inserts nothing and bumps
    /// no statistics — used by diagnostics (`EXPLAIN`) to report recycler
    /// state without perturbing it.
    pub fn find_exact(&self, plan: &Plan) -> Option<NodeId> {
        if matches!(plan, Plan::Store { .. } | Plan::Cached { .. }) {
            return None;
        }
        let child_ids: Vec<NodeId> = plan
            .children()
            .iter()
            .map(|c| self.find_exact(c))
            .collect::<Option<_>>()?;
        let key = local_hash(plan);
        let sig = signature(plan);
        if child_ids.is_empty() {
            self.leaf_index.get(&key).and_then(|cands| {
                cands.iter().copied().find(|&c| {
                    let n = self.node(c);
                    n.signature == sig && local_eq(&n.subtree, plan)
                })
            })
        } else {
            let first = child_ids[0];
            self.node(first).parents.get(&key).and_then(|cands| {
                cands.iter().copied().find(|&p| {
                    let n = self.node(p);
                    n.signature == sig && n.children == child_ids && local_eq(&n.subtree, plan)
                })
            })
        }
    }

    fn insert_node(
        &mut self,
        plan: &Plan,
        schema: Schema,
        child_ids: &[NodeId],
        key: u64,
        sig: u64,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let tick = self.tick;
        let tables = plan.base_tables();
        let repair = tables
            .iter()
            .map(|t| rdb_delta::classify(plan, t))
            .collect();
        self.nodes.push(GraphNode {
            subtree: plan.clone(),
            schema,
            tables,
            repair,
            children: child_ids.to_vec(),
            hash_key: key,
            signature: sig,
            parents: HashMap::new(),
            stats: NodeStats {
                last_tick: tick,
                ..Default::default()
            },
            materialized: false,
            subsumed_by: Vec::new(),
        });
        if child_ids.is_empty() {
            self.leaf_index.entry(key).or_default().push(id);
        } else {
            for &c in child_ids {
                self.node_mut(c).parents.entry(key).or_default().push(id);
            }
        }
        self.compute_subsumption_edges(id);
        id
    }

    // ---- subsumption edges (§IV-A) ----------------------------------------

    /// On insertion, connect the new node to siblings (other parents of its
    /// first child, or other leaves of the same table) that subsume it.
    /// Also add reverse edges from siblings the new node subsumes.
    fn compute_subsumption_edges(&mut self, id: NodeId) {
        let siblings: Vec<NodeId> = {
            let n = self.node(id);
            match n.children.first() {
                Some(&c) => self
                    .node(c)
                    .parents
                    .values()
                    .flatten()
                    .copied()
                    .filter(|&p| p != id)
                    .collect(),
                None => match &n.subtree {
                    Plan::Scan { table, .. } => {
                        let t = table.clone();
                        self.leaf_candidates_for_table(&t, id)
                    }
                    _ => Vec::new(),
                },
            }
        };
        let mut forward = Vec::new();
        let mut reverse: Vec<(NodeId, SubsumptionEdge)> = Vec::new();
        for s in siblings {
            if let Some(d) = derive_subsumption(&self.node(id).subtree, &self.node(s).subtree) {
                forward.push(SubsumptionEdge {
                    subsumer: s,
                    derivation: d,
                });
            }
            if let Some(d) = derive_subsumption(&self.node(s).subtree, &self.node(id).subtree) {
                reverse.push((
                    s,
                    SubsumptionEdge {
                        subsumer: id,
                        derivation: d,
                    },
                ));
            }
        }
        self.node_mut(id).subsumed_by = forward;
        for (s, e) in reverse {
            self.node_mut(s).subsumed_by.push(e);
        }
    }

    fn leaf_candidates_for_table(&self, table: &str, excluding: NodeId) -> Vec<NodeId> {
        self.leaf_index
            .values()
            .flatten()
            .copied()
            .filter(|&l| {
                l != excluding
                    && matches!(&self.node(l).subtree, Plan::Scan { table: t, .. } if t == table)
            })
            .collect()
    }

    /// Materialized subsumers of `id`, best (cheapest derivation) first.
    pub fn materialized_subsumers(&self, id: NodeId) -> Vec<&SubsumptionEdge> {
        self.node(id)
            .subsumed_by
            .iter()
            .filter(|e| self.node(e.subsumer).materialized)
            .collect()
    }

    // ---- hR bookkeeping (§III-C) ------------------------------------------

    /// `hR` of `id` decayed to the current tick (read-only).
    pub fn decayed_h(&self, id: NodeId, alpha: f64) -> f64 {
        let s = &self.node(id).stats;
        let dt = self.tick.saturating_sub(s.last_tick);
        s.h_r * alpha.powi(dt as i32)
    }

    /// Apply lazy aging to `id`'s stored `hR` and bring it to the current
    /// tick (paper: "all aging is performed at once whenever a node is
    /// referenced").
    fn age_to_now(&mut self, id: NodeId, alpha: f64) {
        let tick = self.tick;
        let s = &mut self.node_mut(id).stats;
        let dt = tick.saturating_sub(s.last_tick);
        if dt > 0 {
            s.h_r *= alpha.powi(dt as i32);
            s.last_tick = tick;
        }
    }

    /// Increment `hR` after a query reference.
    pub fn bump_h(&mut self, id: NodeId, alpha: f64) {
        self.age_to_now(id, alpha);
        self.node_mut(id).stats.h_r += 1.0;
    }

    /// Install persisted reference heat on `id` (recovery warm-up): the
    /// node keeps the larger of its live and checkpointed `hR`, so
    /// replaying old lineage can never *reduce* heat accumulated since.
    pub fn seed_heat(&mut self, id: NodeId, h: f64, alpha: f64) {
        self.age_to_now(id, alpha);
        let s = &mut self.node_mut(id).stats;
        s.h_r = s.h_r.max(h);
    }

    /// Mark `id` materialized and propagate Eq. 3: descendants down to (and
    /// including) each DMD lose `h_id` (Algorithm 2).
    pub fn on_materialized(&mut self, id: NodeId, alpha: f64) {
        self.age_to_now(id, alpha);
        let h = self.node(id).stats.h_r;
        self.node_mut(id).materialized = true;
        let children = self.node(id).children.clone();
        for c in children {
            self.update_h_r(c, h, alpha);
        }
    }

    /// Unmark `id` and propagate Eq. 4 (the reverse of Eq. 3).
    pub fn on_evicted(&mut self, id: NodeId, alpha: f64) {
        self.age_to_now(id, alpha);
        let h = self.node(id).stats.h_r;
        self.node_mut(id).materialized = false;
        let children = self.node(id).children.clone();
        for c in children {
            self.update_h_r(c, -h, alpha);
        }
    }

    /// Algorithm 2: `h_m -= delta`; stop at materialized nodes, else recurse.
    fn update_h_r(&mut self, m: NodeId, delta: f64, alpha: f64) {
        self.age_to_now(m, alpha);
        let s = &mut self.node_mut(m).stats;
        s.h_r = (s.h_r - delta).max(0.0);
        if self.node(m).materialized {
            return;
        }
        let children = self.node(m).children.clone();
        for c in children {
            self.update_h_r(c, delta, alpha);
        }
    }

    // ---- cost + benefit (§III-C) ------------------------------------------

    /// Annotate measured run-time statistics on a node after a query
    /// computed its result. `from_base` is false when the computation used
    /// cached intermediates (then the measurement is not a *base* cost and
    /// only cardinality/size are updated).
    pub fn annotate(
        &mut self,
        id: NodeId,
        cost_ns: f64,
        cost_work: f64,
        rows: u64,
        bytes: u64,
        from_base: bool,
    ) {
        let s = &mut self.node_mut(id).stats;
        if from_base {
            // "updated with the current measurement each time the result is
            // recomputed to reflect the most up-to-date system load"
            s.bcost_ns = cost_ns;
            s.bcost_work = cost_work;
        }
        s.rows = rows;
        s.bytes = bytes;
        s.executions += 1;
        s.measured = true;
    }

    /// Direct materialized descendants of `id` (paper's DMDs).
    pub fn dmds(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for &c in &self.node(id).children {
            self.collect_dmds(c, &mut out);
        }
        out
    }

    fn collect_dmds(&self, id: NodeId, out: &mut Vec<NodeId>) {
        if self.node(id).materialized {
            out.push(id);
            return;
        }
        for &c in &self.node(id).children {
            self.collect_dmds(c, out);
        }
    }

    /// Base cost under the selected model.
    pub fn base_cost(&self, id: NodeId, model: CostModel) -> f64 {
        let s = &self.node(id).stats;
        match model {
            CostModel::Time => s.bcost_ns,
            CostModel::WorkUnits => s.bcost_work,
        }
    }

    /// True cost (Eq. 2): base cost minus the base costs of the DMDs.
    pub fn true_cost(&self, id: NodeId, model: CostModel) -> f64 {
        let base = self.base_cost(id, model);
        let saved: f64 = self
            .dmds(id)
            .iter()
            .map(|&d| self.base_cost(d, model))
            .sum();
        (base - saved).max(0.0)
    }

    /// Benefit metric (Eq. 1): `cost(R) · hR / size(R)`.
    pub fn benefit(&self, id: NodeId, model: CostModel, alpha: f64) -> f64 {
        let size = self.node(id).stats.bytes.max(1) as f64;
        self.true_cost(id, model) * self.decayed_h(id, alpha) / size
    }

    // ---- invalidation (PAPER.md §V) ----------------------------------------

    /// Every node whose result depends on `table`, found by walking the
    /// operator graph upward from the changed leaf: collect the scan
    /// leaves over `table`, then follow parent edges transitively. This is
    /// exactly the set an update to `table` makes stale — nodes over other
    /// tables are never visited, which is what makes invalidation precise.
    pub fn dependents_of_table(&self, table: &str) -> Vec<NodeId> {
        let mut queue: Vec<NodeId> = self
            .leaf_index
            .values()
            .flatten()
            .copied()
            .filter(|&l| matches!(&self.node(l).subtree, Plan::Scan { table: t, .. } if t == table))
            .collect();
        let mut seen: Vec<bool> = vec![false; self.nodes.len()];
        for &id in &queue {
            seen[id.0 as usize] = true;
        }
        let mut out = Vec::new();
        while let Some(id) = queue.pop() {
            out.push(id);
            for &p in self.node(id).parents.values().flatten() {
                if !seen[p.0 as usize] {
                    seen[p.0 as usize] = true;
                    queue.push(p);
                }
            }
        }
        out.sort();
        out
    }

    /// All currently materialized node ids (test/inspection helper).
    pub fn materialized_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&id| self.node(id).materialized)
            .collect()
    }
}

/// Can `sub`'s result be derived from `sup`'s result (both canonical plans
/// with identical children)? Implements the paper's column and tuple
/// subsumption plus top-N widening.
pub fn derive_subsumption(sub: &Plan, sup: &Plan) -> Option<Derivation> {
    // Children must be structurally identical for all rules below.
    let sub_children = sub.children();
    let sup_children = sup.children();
    if sub_children.len() != sup_children.len()
        || sub_children
            .iter()
            .zip(&sup_children)
            .any(|(a, b)| !rdb_plan::structural_eq(a, b))
    {
        return None;
    }
    match (sub, sup) {
        // Tuple subsumption for selections: σ_p ⊂ σ_q when p ⇒ q.
        (Plan::Select { predicate: p, .. }, Plan::Select { predicate: q, .. }) => {
            if p != q && implies(p, q) {
                Some(Derivation::Reselect)
            } else {
                None
            }
        }
        // Column subsumption for scans: a narrower projection of the same
        // table.
        (
            Plan::Scan {
                table: t1,
                cols: c1,
            },
            Plan::Scan {
                table: t2,
                cols: c2,
            },
        ) => {
            if t1 == t2 && c1 != c2 {
                let positions: Option<Vec<usize>> =
                    c1.iter().map(|c| c2.iter().position(|x| x == c)).collect();
                positions.map(Derivation::ProjectCols)
            } else {
                None
            }
        }
        (
            Plan::Aggregate {
                group_by: g1,
                aggs: a1,
                ..
            },
            Plan::Aggregate {
                group_by: g2,
                aggs: a2,
                ..
            },
        ) => {
            if g1 == g2 {
                // Column subsumption: same groups, aggregates a subset.
                if a1 == a2 {
                    return None; // exact matching handles this
                }
                let mut positions: Vec<usize> = (0..g1.len()).collect();
                for a in a1 {
                    let p = a2.iter().position(|x| x == a)?;
                    positions.push(g2.len() + p);
                }
                Some(Derivation::ProjectCols(positions))
            } else {
                // Tuple subsumption: sup groups strictly finer (superset of
                // keys); re-aggregate.
                let group_cols: Option<Vec<usize>> =
                    g1.iter().map(|g| g2.iter().position(|x| x == g)).collect();
                let group_cols = group_cols?;
                let mut agg_cols = Vec::with_capacity(a1.len());
                for a in a1 {
                    // The partial aggregate must exist in sup and be
                    // re-aggregable (sum of sums, etc.).
                    let p = a2.iter().position(|x| x == a)?;
                    a.reaggregate(0)?; // decomposability check
                    agg_cols.push(g2.len() + p);
                }
                Some(Derivation::Reaggregate {
                    group_cols,
                    agg_cols,
                })
            }
        }
        // Top-N widening: same ordering, sup kept at least as many rows.
        (
            Plan::TopN {
                keys: k1, n: n1, ..
            },
            Plan::TopN {
                keys: k2, n: n2, ..
            },
        ) => {
            if k1 == k2 && n2 >= n1 && n1 != n2 {
                Some(Derivation::Retopn)
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_expr::{AggFunc, Expr};
    use rdb_plan::scan;
    use rdb_vector::{DataType, Schema};

    fn sch(_p: &Plan) -> Schema {
        Schema::from_pairs([("x", DataType::Int)])
    }

    fn q1() -> Plan {
        scan("t", &["a", "b"])
            .select(Expr::col(0).gt(Expr::lit(5)))
            .aggregate(vec![(Expr::col(1), "g")], vec![(AggFunc::CountStar, "n")])
    }

    #[test]
    fn identical_queries_unify() {
        let mut g = RecyclerGraph::new();
        let m1 = g.match_or_insert(&q1(), &sch);
        assert_eq!(m1.inserted_count(), 3);
        assert_eq!(g.len(), 3);
        let m2 = g.match_or_insert(&q1(), &sch);
        assert_eq!(m2.inserted_count(), 0);
        assert_eq!(g.len(), 3);
        assert_eq!(m1.id, m2.id);
    }

    #[test]
    fn shared_prefix_is_merged() {
        let mut g = RecyclerGraph::new();
        g.match_or_insert(&q1(), &sch);
        // Same scan+select, different aggregate.
        let q2 = scan("t", &["a", "b"])
            .select(Expr::col(0).gt(Expr::lit(5)))
            .aggregate(vec![(Expr::col(0), "g")], vec![(AggFunc::CountStar, "n")]);
        let m = g.match_or_insert(&q2, &sch);
        assert_eq!(m.inserted_count(), 1, "only the aggregate is new");
        assert_eq!(g.len(), 4);
        // Different select parameter forks earlier.
        let q3 = scan("t", &["a", "b"]).select(Expr::col(0).gt(Expr::lit(6)));
        let m = g.match_or_insert(&q3, &sch);
        assert_eq!(m.inserted_count(), 1);
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn renamed_outputs_still_unify() {
        let mut g = RecyclerGraph::new();
        let a = scan("t", &["a"]).project(vec![(Expr::col(0).add(Expr::lit(1)), "x")]);
        let b = scan("t", &["a"]).project(vec![(Expr::col(0).add(Expr::lit(1)), "y")]);
        g.match_or_insert(&a, &sch);
        let m = g.match_or_insert(&b, &sch);
        assert_eq!(m.inserted_count(), 0, "names are handled by mappings");
    }

    #[test]
    fn bump_and_decay() {
        let mut g = RecyclerGraph::new();
        let m = g.match_or_insert(&q1(), &sch);
        g.bump_h(m.id, 0.5);
        assert_eq!(g.decayed_h(m.id, 0.5), 1.0);
        g.advance_tick();
        g.advance_tick();
        assert_eq!(g.decayed_h(m.id, 0.5), 0.25);
        g.bump_h(m.id, 0.5);
        assert_eq!(g.decayed_h(m.id, 0.5), 1.25);
    }

    #[test]
    fn materialize_updates_descendant_h() {
        // Fig. 3-style scenario: materializing a node subtracts its h from
        // descendants down to the first materialized node.
        let mut g = RecyclerGraph::new();
        let m = g.match_or_insert(&q1(), &sch);
        let agg = m.id;
        let sel = m.children[0].id;
        let sc = m.children[0].children[0].id;
        // Give everyone some references.
        for _ in 0..5 {
            g.bump_h(sel, 1.0);
            g.bump_h(sc, 1.0);
        }
        for _ in 0..2 {
            g.bump_h(agg, 1.0);
        }
        g.on_materialized(agg, 1.0);
        assert_eq!(g.decayed_h(sel, 1.0), 3.0); // 5 - 2
        assert_eq!(g.decayed_h(sc, 1.0), 3.0);
        // Evicting restores.
        g.on_evicted(agg, 1.0);
        assert_eq!(g.decayed_h(sel, 1.0), 5.0);
        assert_eq!(g.decayed_h(sc, 1.0), 5.0);
    }

    #[test]
    fn update_stops_at_materialized_boundary() {
        let mut g = RecyclerGraph::new();
        let m = g.match_or_insert(&q1(), &sch);
        let agg = m.id;
        let sel = m.children[0].id;
        let sc = m.children[0].children[0].id;
        for _ in 0..4 {
            g.bump_h(sc, 1.0);
        }
        g.bump_h(sel, 1.0);
        g.bump_h(agg, 1.0);
        // Materialize the selection first: scan loses h_sel.
        g.on_materialized(sel, 1.0);
        assert_eq!(g.decayed_h(sc, 1.0), 3.0);
        // Now materialize the aggregate: propagation stops at the
        // materialized selection; the scan is unaffected (paper: nodes
        // below a DMD are not modified).
        g.on_materialized(agg, 1.0);
        assert_eq!(g.decayed_h(sel, 1.0), 0.0);
        assert_eq!(g.decayed_h(sc, 1.0), 3.0);
    }

    #[test]
    fn true_cost_subtracts_dmds() {
        let mut g = RecyclerGraph::new();
        let m = g.match_or_insert(&q1(), &sch);
        let agg = m.id;
        let sel = m.children[0].id;
        let sc = m.children[0].children[0].id;
        g.annotate(sc, 100.0, 100.0, 1000, 8000, true);
        g.annotate(sel, 400.0, 400.0, 10, 80, true);
        g.annotate(agg, 500.0, 500.0, 2, 16, true);
        assert_eq!(g.true_cost(agg, CostModel::WorkUnits), 500.0);
        g.on_materialized(sel, 1.0);
        assert_eq!(g.dmds(agg), vec![sel]);
        assert_eq!(g.true_cost(agg, CostModel::WorkUnits), 100.0);
        // Benefit = cost*h/size.
        g.bump_h(agg, 1.0);
        g.bump_h(agg, 1.0);
        assert!((g.benefit(agg, CostModel::WorkUnits, 1.0) - 100.0 * 2.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn select_subsumption_edges() {
        let mut g = RecyclerGraph::new();
        let wide = scan("t", &["a"]).select(Expr::col(0).ge(Expr::lit(0)));
        let narrow = scan("t", &["a"]).select(
            Expr::col(0)
                .ge(Expr::lit(5))
                .and(Expr::col(0).le(Expr::lit(9))),
        );
        let mw = g.match_or_insert(&wide, &sch);
        let mn = g.match_or_insert(&narrow, &sch);
        let edges = &g.node(mn.id).subsumed_by;
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].subsumer, mw.id);
        assert_eq!(edges[0].derivation, Derivation::Reselect);
        // No materialized subsumers yet.
        assert!(g.materialized_subsumers(mn.id).is_empty());
        g.on_materialized(mw.id, 1.0);
        assert_eq!(g.materialized_subsumers(mn.id).len(), 1);
    }

    #[test]
    fn reverse_subsumption_edge_on_insert() {
        // Insert the narrow select first, then the wide one: the wide
        // insertion must add an edge narrow ⊂ wide.
        let mut g = RecyclerGraph::new();
        let narrow = scan("t", &["a"]).select(
            Expr::col(0)
                .ge(Expr::lit(5))
                .and(Expr::col(0).le(Expr::lit(9))),
        );
        let wide = scan("t", &["a"]).select(Expr::col(0).ge(Expr::lit(0)));
        let mn = g.match_or_insert(&narrow, &sch);
        let mw = g.match_or_insert(&wide, &sch);
        let edges = &g.node(mn.id).subsumed_by;
        assert!(edges.iter().any(|e| e.subsumer == mw.id));
    }

    #[test]
    fn aggregate_subsumption_variants() {
        let base = || scan("t", &["a", "b", "c"]);
        // Finer grouping subsumes coarser (tuple subsumption).
        let fine = base().aggregate(
            vec![(Expr::col(0), "g0"), (Expr::col(1), "g1")],
            vec![(AggFunc::Sum(Expr::col(2)), "s")],
        );
        let coarse = base().aggregate(
            vec![(Expr::col(0), "g0")],
            vec![(AggFunc::Sum(Expr::col(2)), "s")],
        );
        match derive_subsumption(&coarse, &fine) {
            Some(Derivation::Reaggregate {
                group_cols,
                agg_cols,
            }) => {
                assert_eq!(group_cols, vec![0]);
                assert_eq!(agg_cols, vec![2]);
            }
            other => panic!("expected reaggregate, got {other:?}"),
        }
        assert!(derive_subsumption(&fine, &coarse).is_none());
        // Same groups, extra aggregates: column subsumption.
        let more = base().aggregate(
            vec![(Expr::col(0), "g0")],
            vec![
                (AggFunc::Sum(Expr::col(2)), "s"),
                (AggFunc::Min(Expr::col(2)), "m"),
            ],
        );
        match derive_subsumption(&coarse, &more) {
            Some(Derivation::ProjectCols(pos)) => assert_eq!(pos, vec![0, 1]),
            other => panic!("expected project, got {other:?}"),
        }
        // Avg is not decomposable → no tuple subsumption.
        let coarse_avg = base().aggregate(
            vec![(Expr::col(0), "g0")],
            vec![(AggFunc::Avg(Expr::col(2)), "a")],
        );
        let fine_avg = base().aggregate(
            vec![(Expr::col(0), "g0"), (Expr::col(1), "g1")],
            vec![(AggFunc::Avg(Expr::col(2)), "a")],
        );
        assert!(derive_subsumption(&coarse_avg, &fine_avg).is_none());
    }

    #[test]
    fn scan_column_subsumption() {
        let narrow = scan("t", &["b"]);
        let wide = scan("t", &["a", "b"]);
        match derive_subsumption(&narrow, &wide) {
            Some(Derivation::ProjectCols(pos)) => assert_eq!(pos, vec![1]),
            other => panic!("expected project, got {other:?}"),
        }
        assert!(derive_subsumption(&wide, &narrow).is_none());
    }

    #[test]
    fn topn_subsumption() {
        use rdb_plan::SortKeyExpr;
        let keys = || vec![SortKeyExpr::desc(Expr::col(0))];
        let small = scan("t", &["a"]).top_n(keys(), 10);
        let big = scan("t", &["a"]).top_n(keys(), 10_000);
        assert_eq!(derive_subsumption(&small, &big), Some(Derivation::Retopn));
        assert!(derive_subsumption(&big, &small).is_none());
        let other_keys = scan("t", &["a"]).top_n(vec![SortKeyExpr::asc(Expr::col(0))], 10_000);
        assert!(derive_subsumption(&small, &other_keys).is_none());
    }

    #[test]
    fn dependents_walk_covers_exactly_the_table_subgraph() {
        let mut g = RecyclerGraph::new();
        // q1 over t: scan(t) → select → aggregate.
        let m_t = g.match_or_insert(&q1(), &sch);
        // A two-table join query over t and u.
        let join = scan("t", &["a", "b"])
            .select(Expr::col(0).gt(Expr::lit(5)))
            .inner_join(scan("u", &["a"]), vec![Expr::col(0)], vec![Expr::col(0)]);
        let m_join = g.match_or_insert(&join, &sch);
        // A u-only query.
        let m_u = g.match_or_insert(&scan("u", &["a"]).limit(3), &sch);

        let deps_t = g.dependents_of_table("t");
        // Everything reachable from scan(t): the 3 q1 nodes + the join
        // (which shares the scan+select prefix).
        assert!(deps_t.contains(&m_t.id));
        assert!(deps_t.contains(&m_join.id));
        assert!(!deps_t.contains(&m_u.id), "u-only nodes untouched");
        for &id in &deps_t {
            assert!(
                g.node(id).tables.iter().any(|t| t == "t"),
                "every dependent reads t"
            );
        }
        let deps_u = g.dependents_of_table("u");
        assert!(deps_u.contains(&m_join.id), "join depends on both tables");
        assert!(deps_u.contains(&m_u.id));
        assert!(!deps_u.contains(&m_t.id));
        assert!(g.dependents_of_table("nope").is_empty());
    }

    #[test]
    fn different_children_block_subsumption() {
        let a = scan("t", &["a"]).select(Expr::col(0).gt(Expr::lit(5)));
        let b = scan("u", &["a"]).select(Expr::col(0).gt(Expr::lit(0)));
        assert!(derive_subsumption(&a, &b).is_none());
    }
}
