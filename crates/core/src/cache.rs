//! The recycler cache (paper §II, §III-E), generalized to *artifacts*.
//!
//! A finite in-memory cache managed as a knapsack along the lines of
//! Dantzig's greedy algorithm: entries are classified into groups by the
//! logarithm of their size; within a group they are kept in increasing
//! benefit order. A new entry replaces a set of same-group entries only if
//! that set has lower average benefit and frees enough space.
//!
//! The cache no longer holds only materialized result sets: a cache entry
//! is a [`CacheArtifact`] — a result, a hash-join build side, or an
//! aggregation table — each charged by its own byte footprint and ranked
//! by its own benefit. The evictor is artifact-blind: a cached hash table
//! competes against a cached result (even for the same graph node) purely
//! on benefit-per-byte, which is exactly the knapsack's currency.
//!
//! Benefit ordering is NaN-safe with a *NaN-lowest* policy: a benefit that
//! arrives as NaN (e.g. a zero-cost/zero-heat division) is normalized to
//! `0.0` at the boundary, so it sorts at the bottom of its group, is the
//! first eviction victim, and can never poison a `total_cmp` sort or an
//! average-benefit sum.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use rdb_exec::{ArtifactKind, BuildSide, MaterializedResult, OperatorState};

use crate::graph::NodeId;

/// Identity of one cache entry: the graph node that produced it, which
/// kind of artifact it is, and a `variant` discriminator for kinds where
/// one subplan can yield several distinct artifacts (a build side is
/// keyed by its join keys too — two joins sharing a right subplan but
/// joining on different columns must not collide). `variant` is 0 for
/// results and aggregation tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactId {
    /// Graph node of the producing subplan.
    pub node: NodeId,
    /// Artifact kind.
    pub kind: ArtifactKind,
    /// Kind-specific discriminator (hash of the build keys for
    /// [`ArtifactKind::HashBuild`], 0 otherwise).
    pub variant: u64,
}

impl ArtifactId {
    /// The result artifact of `node`.
    pub fn result(node: NodeId) -> ArtifactId {
        ArtifactId {
            node,
            kind: ArtifactKind::Result,
            variant: 0,
        }
    }
}

/// The payload of one cache entry.
#[derive(Debug, Clone)]
pub enum CacheArtifact {
    /// A materialized result set.
    Result(Arc<MaterializedResult>),
    /// A hash-join build side (batch + key index).
    HashBuild(Arc<BuildSide>),
    /// An aggregation table, stored as its sorted group rows.
    AggTable(Arc<MaterializedResult>),
}

impl CacheArtifact {
    /// Which artifact kind this is.
    pub fn kind(&self) -> ArtifactKind {
        match self {
            CacheArtifact::Result(_) => ArtifactKind::Result,
            CacheArtifact::HashBuild(_) => ArtifactKind::HashBuild,
            CacheArtifact::AggTable(_) => ArtifactKind::AggTable,
        }
    }

    /// Memory footprint charged against the cache budget.
    pub fn size_bytes(&self) -> usize {
        match self {
            CacheArtifact::Result(r) | CacheArtifact::AggTable(r) => r.size_bytes,
            CacheArtifact::HashBuild(b) => b.size_bytes(),
        }
    }

    /// The materialized result, if this artifact is one.
    pub fn as_result(&self) -> Option<&Arc<MaterializedResult>> {
        match self {
            CacheArtifact::Result(r) => Some(r),
            _ => None,
        }
    }

    /// The executor-facing operator state, for non-result artifacts.
    pub fn as_state(&self) -> Option<OperatorState> {
        match self {
            CacheArtifact::Result(_) => None,
            CacheArtifact::HashBuild(b) => Some(OperatorState::HashBuild(b.clone())),
            CacheArtifact::AggTable(r) => Some(OperatorState::AggTable(r.clone())),
        }
    }
}

/// One cached artifact.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The cached payload.
    pub artifact: CacheArtifact,
    /// Size charged against the cache budget.
    pub size: u64,
    /// Benefit at last recomputation (B(R) of Eq. 1), NaN-normalized.
    pub benefit: f64,
    /// Measured construction cost under the active cost model. Results
    /// re-derive their benefit from the graph; operator-state artifacts
    /// re-derive it from this cost (`cost · h / size`).
    pub cost: f64,
    /// `(table, epoch)` of every base table the artifact was computed
    /// from: the versions under which this entry is valid. A query whose
    /// snapshot pins any of these tables at a different epoch must not
    /// reuse the entry.
    pub epochs: Vec<(String, u64)>,
}

impl CacheEntry {
    /// The materialized result (panics on operator-state artifacts; used
    /// by result-only paths that looked the entry up via a result id).
    pub fn result(&self) -> &Arc<MaterializedResult> {
        self.artifact
            .as_result()
            .expect("cache entry is not a result artifact")
    }
}

/// The finite artifact cache.
#[derive(Debug, Default)]
pub struct RecyclerCache {
    capacity: u64,
    used: u64,
    entries: HashMap<ArtifactId, CacheEntry>,
    /// log2(size) → artifact ids, each list sorted by increasing benefit.
    groups: BTreeMap<u32, Vec<ArtifactId>>,
    /// Counters for reporting.
    pub admissions: u64,
    /// Evictions performed by the replacement policy.
    pub evictions: u64,
    /// Artifacts rejected by the admission/replacement policy.
    pub rejections: u64,
}

fn group_of(size: u64) -> u32 {
    64 - size.max(1).leading_zeros()
}

/// The NaN-lowest policy: a NaN benefit normalizes to `0.0` — the floor —
/// before it is stored or compared, so ordering stays total and benefit
/// sums stay finite.
fn sane_benefit(b: f64) -> f64 {
    if b.is_nan() {
        0.0
    } else {
        b
    }
}

impl RecyclerCache {
    /// Cache with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        RecyclerCache {
            capacity,
            ..Default::default()
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently used.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up the cached *result* of a node.
    pub fn get(&self, id: NodeId) -> Option<&CacheEntry> {
        self.entries.get(&ArtifactId::result(id))
    }

    /// Look up any cached artifact.
    pub fn get_artifact(&self, id: ArtifactId) -> Option<&CacheEntry> {
        self.entries.get(&id)
    }

    /// Whether `id`'s result is cached.
    pub fn contains(&self, id: NodeId) -> bool {
        self.entries.contains_key(&ArtifactId::result(id))
    }

    /// The cached artifacts of `node`, any kind.
    pub fn artifacts_of(&self, node: NodeId) -> Vec<ArtifactId> {
        self.entries
            .keys()
            .filter(|a| a.node == node)
            .copied()
            .collect()
    }

    /// Would the admission/replacement policy accept an artifact of this
    /// size and benefit right now? (Non-mutating preview used by the
    /// rewriter to decide store injection.)
    pub fn would_admit(&self, size: u64, benefit: f64) -> bool {
        let benefit = sane_benefit(benefit);
        if size > self.capacity {
            return false;
        }
        if self.used + size <= self.capacity {
            return true;
        }
        self.find_victims(size, benefit).is_some()
    }

    /// Victim search (paper §III-E): scan candidates in increasing benefit
    /// order, tracking accumulated size and average benefit; succeed when
    /// enough space frees up while the set's average benefit stays below the
    /// candidate's. The same-size group is scanned first (Dantzig locality);
    /// if it cannot free enough space the scan widens to all entries, so a
    /// high-benefit newcomer is never starved just because the incumbents
    /// happen to sit in other size groups.
    fn find_victims(&self, size: u64, benefit: f64) -> Option<Vec<ArtifactId>> {
        if let Some(group) = self.groups.get(&group_of(size)) {
            if let Some(victims) = self.scan_victims(group.iter().copied(), size, benefit) {
                return Some(victims);
            }
        }
        // Cross-group fallback. Early bail without allocating: each group
        // list is in increasing benefit order, so the global minimum
        // benefit is the cheapest group head — if even that entry matches
        // or beats the candidate, the very first merge pick would fail the
        // average-benefit test anyway. This keeps the per-batch speculation
        // path (would_admit under the recycler lock, full cache,
        // low-benefit candidate) at O(groups) instead of O(entries).
        // Stored benefits are NaN-normalized, so `f64::min` (which skips
        // NaN) is a genuine minimum here.
        let global_min = self
            .groups
            .values()
            .filter_map(|g| g.first())
            .map(|id| self.entries[id].benefit)
            .fold(f64::INFINITY, f64::min);
        if global_min >= benefit {
            return None;
        }
        // Merge the per-group lists (each already in increasing benefit
        // order) instead of collecting and sorting every entry. Benefits
        // are resolved once per group list up front (one hash lookup per
        // entry total, not per merge step).
        let groups: Vec<Vec<(ArtifactId, f64)>> = self
            .groups
            .values()
            .filter(|g| !g.is_empty())
            .map(|g| {
                g.iter()
                    .map(|&id| (id, self.entries[&id].benefit))
                    .collect()
            })
            .collect();
        let mut pos = vec![0usize; groups.len()];
        let merged = std::iter::from_fn(move || {
            let mut best: Option<(usize, f64)> = None;
            for (i, g) in groups.iter().enumerate() {
                if let Some(&(_, b)) = g.get(pos[i]) {
                    if best.is_none_or(|(_, bb)| b.total_cmp(&bb).is_lt()) {
                        best = Some((i, b));
                    }
                }
            }
            let (i, _) = best?;
            let id = groups[i][pos[i]].0;
            pos[i] += 1;
            Some(id)
        });
        self.scan_victims(merged, size, benefit)
    }

    fn scan_victims(
        &self,
        candidates: impl Iterator<Item = ArtifactId>,
        size: u64,
        benefit: f64,
    ) -> Option<Vec<ArtifactId>> {
        let mut victims = Vec::new();
        let mut freed = 0u64;
        let mut benefit_sum = 0.0;
        for id in candidates {
            let e = &self.entries[&id];
            // (a) average benefit must stay below the new entry's.
            let avg = (benefit_sum + e.benefit) / (victims.len() + 1) as f64;
            if avg >= benefit {
                return None;
            }
            victims.push(id);
            freed += e.size;
            benefit_sum += e.benefit;
            // (b) enough space including globally free bytes.
            if self.used - freed + size <= self.capacity {
                return Some(victims);
            }
        }
        None
    }

    /// Try to insert a node's *result*, valid at the given base-table
    /// `epochs`. Returns `Some(evicted)` on success (possibly empty),
    /// `None` if the policy rejected it. The caller is responsible for
    /// graph-side bookkeeping (Eq. 3/4) on the returned evictions.
    pub fn insert(
        &mut self,
        id: NodeId,
        result: Arc<MaterializedResult>,
        benefit: f64,
        epochs: Vec<(String, u64)>,
    ) -> Option<Vec<ArtifactId>> {
        self.insert_artifact(
            ArtifactId::result(id),
            CacheArtifact::Result(result),
            benefit,
            0.0,
            epochs,
        )
    }

    /// Try to insert any artifact. Same contract as
    /// [`RecyclerCache::insert`]; `cost` is the artifact's measured
    /// construction cost (used to re-derive operator-state benefits).
    pub fn insert_artifact(
        &mut self,
        id: ArtifactId,
        artifact: CacheArtifact,
        benefit: f64,
        cost: f64,
        epochs: Vec<(String, u64)>,
    ) -> Option<Vec<ArtifactId>> {
        debug_assert_eq!(artifact.kind(), id.kind);
        let benefit = sane_benefit(benefit);
        let size = (artifact.size_bytes() as u64).max(1);
        if self.entries.contains_key(&id) {
            return Some(Vec::new()); // already cached (concurrent publish)
        }
        if size > self.capacity {
            self.rejections += 1;
            return None;
        }
        let mut evicted = Vec::new();
        if self.used + size > self.capacity {
            match self.find_victims(size, benefit) {
                Some(victims) => {
                    for v in victims {
                        self.remove_artifact(v);
                        self.evictions += 1;
                        evicted.push(v);
                    }
                }
                None => {
                    self.rejections += 1;
                    return None;
                }
            }
        }
        self.used += size;
        self.entries.insert(
            id,
            CacheEntry {
                artifact,
                size,
                benefit,
                cost,
                epochs,
            },
        );
        let group = self.groups.entry(group_of(size)).or_default();
        let pos = group
            .binary_search_by(|x| self.entries[x].benefit.total_cmp(&benefit))
            .unwrap_or_else(|p| p);
        group.insert(pos, id);
        self.admissions += 1;
        Some(evicted)
    }

    /// Replace a cached artifact's payload in place (incremental repair):
    /// the entry keeps its identity and construction cost but adopts the
    /// repaired payload's size, a recomputed benefit, and the post-commit
    /// epoch vector. Deliberately *not* counted as an admission — repair
    /// updates an entry the policy already accepted.
    ///
    /// Returns `Some(evicted)` on success (victims displaced when the
    /// repaired payload grew past free space). Returns `None` when the
    /// cache cannot hold the repaired payload — **the entry is removed**
    /// in that case, since its pre-repair bytes are stale either way; the
    /// caller records the eviction.
    pub fn patch_artifact(
        &mut self,
        id: ArtifactId,
        artifact: CacheArtifact,
        benefit: f64,
        epochs: Vec<(String, u64)>,
    ) -> Option<Vec<ArtifactId>> {
        debug_assert_eq!(artifact.kind(), id.kind);
        let benefit = sane_benefit(benefit);
        let new_size = (artifact.size_bytes() as u64).max(1);
        let mut entry = self.remove_artifact(id)?;
        if new_size > self.capacity {
            return None;
        }
        let mut evicted = Vec::new();
        if self.used + new_size > self.capacity {
            match self.find_victims(new_size, benefit) {
                Some(victims) => {
                    for v in victims {
                        self.remove_artifact(v);
                        self.evictions += 1;
                        evicted.push(v);
                    }
                }
                None => return None,
            }
        }
        self.used += new_size;
        entry.artifact = artifact;
        entry.size = new_size;
        entry.benefit = benefit;
        entry.epochs = epochs;
        self.entries.insert(id, entry);
        let group = self.groups.entry(group_of(new_size)).or_default();
        let pos = group
            .binary_search_by(|x| self.entries[x].benefit.total_cmp(&benefit))
            .unwrap_or_else(|p| p);
        group.insert(pos, id);
        Some(evicted)
    }

    /// Remove a node's result entry (eviction or invalidation).
    pub fn remove(&mut self, id: NodeId) -> Option<CacheEntry> {
        self.remove_artifact(ArtifactId::result(id))
    }

    /// Remove one artifact.
    pub fn remove_artifact(&mut self, id: ArtifactId) -> Option<CacheEntry> {
        let e = self.entries.remove(&id)?;
        self.used -= e.size;
        if let Some(group) = self.groups.get_mut(&group_of(e.size)) {
            group.retain(|&x| x != id);
        }
        Some(e)
    }

    /// Remove every artifact of `node` (invalidation covers all kinds).
    pub fn remove_node(&mut self, node: NodeId) -> Vec<(ArtifactId, CacheEntry)> {
        self.artifacts_of(node)
            .into_iter()
            .filter_map(|a| self.remove_artifact(a).map(|e| (a, e)))
            .collect()
    }

    /// Drop everything (the Fig. 6 "refresh" scenario). Returns the evicted
    /// ids for graph-side bookkeeping.
    pub fn flush(&mut self) -> Vec<ArtifactId> {
        let ids: Vec<ArtifactId> = self.entries.keys().copied().collect();
        for &id in &ids {
            self.remove_artifact(id);
        }
        ids
    }

    /// Recompute benefits with `f` and restore group ordering (paper:
    /// "whenever the benefit of a result changes ... the result is moved to
    /// a different position in the group"). `f` sees the artifact id and
    /// its entry (for the stored construction cost of state artifacts).
    pub fn rebenefit(&mut self, f: impl Fn(ArtifactId, &CacheEntry) -> f64) {
        for (id, e) in self.entries.iter_mut() {
            e.benefit = sane_benefit(f(*id, e));
        }
        for group in self.groups.values_mut() {
            group.sort_by(|a, b| self.entries[a].benefit.total_cmp(&self.entries[b].benefit));
        }
    }

    /// Cached *result* node ids (unordered).
    pub fn ids(&self) -> Vec<NodeId> {
        self.entries
            .keys()
            .filter(|a| a.kind == ArtifactKind::Result)
            .map(|a| a.node)
            .collect()
    }

    /// All cached artifact ids (unordered).
    pub fn artifact_ids(&self) -> Vec<ArtifactId> {
        self.entries.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_vector::{Batch, Column, DataType, Schema};

    fn result(ints: usize) -> Arc<MaterializedResult> {
        let col = Column::from_ints(vec![7; ints]);
        Arc::new(MaterializedResult::from_batches(
            Schema::from_pairs([("x", DataType::Int)]),
            &[Batch::new(vec![col])],
        ))
    }

    #[test]
    fn group_classification() {
        assert_eq!(group_of(1), 1);
        assert_eq!(group_of(2), 2);
        assert_eq!(group_of(1024), 11);
        assert_eq!(group_of(1500), 11);
        assert_eq!(group_of(2048), 12);
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = RecyclerCache::new(10_000);
        let r = result(10); // 80 bytes
        assert_eq!(c.insert(NodeId(1), r.clone(), 5.0, vec![]), Some(vec![]));
        assert!(c.contains(NodeId(1)));
        assert_eq!(c.used(), 80);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(NodeId(1)).unwrap().benefit, 5.0);
    }

    #[test]
    fn oversized_result_rejected() {
        let mut c = RecyclerCache::new(50);
        assert_eq!(c.insert(NodeId(1), result(100), 100.0, vec![]), None);
        assert_eq!(c.rejections, 1);
    }

    #[test]
    fn replacement_evicts_lower_benefit_same_group() {
        // Capacity fits exactly two 80-byte results.
        let mut c = RecyclerCache::new(160);
        c.insert(NodeId(1), result(10), 1.0, vec![]);
        c.insert(NodeId(2), result(10), 2.0, vec![]);
        assert_eq!(c.used(), 160);
        // Higher-benefit newcomer evicts the lowest-benefit same-group
        // entry.
        let evicted = c.insert(NodeId(3), result(10), 3.0, vec![]).unwrap();
        assert_eq!(evicted, vec![ArtifactId::result(NodeId(1))]);
        assert!(c.contains(NodeId(2)));
        assert!(c.contains(NodeId(3)));
        assert_eq!(c.evictions, 1);
    }

    #[test]
    fn replacement_refuses_when_average_benefit_higher() {
        let mut c = RecyclerCache::new(160);
        c.insert(NodeId(1), result(10), 5.0, vec![]);
        c.insert(NodeId(2), result(10), 6.0, vec![]);
        assert_eq!(c.insert(NodeId(3), result(10), 4.0, vec![]), None);
        assert!(c.contains(NodeId(1)));
        assert!(c.contains(NodeId(2)));
        assert_eq!(c.rejections, 1);
    }

    #[test]
    fn replacement_can_evict_multiple() {
        // Two 40-byte entries must both go to fit one 80-byte result...
        // but different sizes land in different groups, so build same-group
        // sizes: 10 ints = 80 bytes → group 7; 5 ints = 40 bytes → group 6.
        // Use three 80-byte entries and capacity 240.
        let mut c = RecyclerCache::new(240);
        c.insert(NodeId(1), result(10), 1.0, vec![]);
        c.insert(NodeId(2), result(10), 2.0, vec![]);
        c.insert(NodeId(3), result(10), 9.0, vec![]);
        // Need 80 free; nothing free → evict 1 (benefit 1): enough.
        let evicted = c.insert(NodeId(4), result(10), 5.0, vec![]).unwrap();
        assert_eq!(evicted, vec![ArtifactId::result(NodeId(1))]);
        // Now insert something that needs two evictions: fill up again.
        let evicted = c.insert(NodeId(5), result(10), 10.0, vec![]).unwrap();
        assert_eq!(evicted, vec![ArtifactId::result(NodeId(2))]);
    }

    #[test]
    fn would_admit_previews_without_mutation() {
        let mut c = RecyclerCache::new(160);
        c.insert(NodeId(1), result(10), 5.0, vec![]);
        c.insert(NodeId(2), result(10), 6.0, vec![]);
        assert!(!c.would_admit(80, 4.0));
        assert!(c.would_admit(80, 7.0));
        assert_eq!(c.len(), 2, "preview must not mutate");
    }

    #[test]
    fn flush_empties_and_reports() {
        let mut c = RecyclerCache::new(1000);
        c.insert(NodeId(1), result(5), 1.0, vec![]);
        c.insert(NodeId(2), result(5), 2.0, vec![]);
        let mut flushed = c.flush();
        flushed.sort();
        assert_eq!(
            flushed,
            vec![ArtifactId::result(NodeId(1)), ArtifactId::result(NodeId(2))]
        );
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn rebenefit_reorders_groups() {
        let mut c = RecyclerCache::new(1000);
        c.insert(NodeId(1), result(10), 1.0, vec![]);
        c.insert(NodeId(2), result(10), 2.0, vec![]);
        // Invert benefits; victim search should now pick NodeId(2) first.
        c.rebenefit(|id, _| if id.node == NodeId(1) { 9.0 } else { 0.5 });
        let mut c2 = c;
        c2.capacity = 160;
        c2.used = 160;
        let evicted = c2.insert(NodeId(3), result(10), 5.0, vec![]).unwrap();
        assert_eq!(evicted, vec![ArtifactId::result(NodeId(2))]);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut c = RecyclerCache::new(1000);
        c.insert(NodeId(1), result(5), 1.0, vec![]);
        assert_eq!(c.insert(NodeId(1), result(5), 1.0, vec![]), Some(vec![]));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn nan_benefit_sorts_lowest_and_evicts_first() {
        // A zero-cost/zero-heat entry arrives with a NaN benefit: it must
        // not panic the group sort, and it must be the first victim.
        let mut c = RecyclerCache::new(160);
        assert!(c.insert(NodeId(1), result(10), f64::NAN, vec![]).is_some());
        assert_eq!(c.get(NodeId(1)).unwrap().benefit, 0.0, "NaN-lowest");
        c.insert(NodeId(2), result(10), 2.0, vec![]);
        // Re-benefit with a NaN-producing function: still total ordering.
        c.rebenefit(|id, _| if id.node == NodeId(1) { f64::NAN } else { 2.0 });
        let evicted = c.insert(NodeId(3), result(10), 1.0, vec![]).unwrap();
        assert_eq!(evicted, vec![ArtifactId::result(NodeId(1))]);
        // A NaN candidate is floored to 0 benefit: it cannot displace a
        // positive-benefit incumbent.
        assert!(!c.would_admit(80, f64::NAN));
    }

    #[test]
    fn artifacts_share_budget_across_kinds() {
        // A result and an agg-table artifact for the *same node* coexist,
        // and the evictor trades one against the other on benefit alone.
        let mut c = RecyclerCache::new(160);
        c.insert(NodeId(1), result(10), 1.0, vec![]);
        let agg = ArtifactId {
            node: NodeId(1),
            kind: ArtifactKind::AggTable,
            variant: 0,
        };
        assert!(c
            .insert_artifact(agg, CacheArtifact::AggTable(result(10)), 5.0, 100.0, vec![])
            .is_some());
        assert_eq!(c.len(), 2);
        assert_eq!(c.artifacts_of(NodeId(1)).len(), 2);
        // A newcomer beats the result but not the agg table.
        let evicted = c.insert(NodeId(2), result(10), 3.0, vec![]).unwrap();
        assert_eq!(evicted, vec![ArtifactId::result(NodeId(1))]);
        assert!(c.get_artifact(agg).is_some(), "agg table survived");
        // remove_node sweeps every kind.
        let removed = c.remove_node(NodeId(1));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].0, agg);
    }
}
