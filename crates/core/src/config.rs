//! Recycler configuration.

use std::time::Duration;

/// Which cost measurement feeds the benefit metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModel {
    /// Measured wall-clock nanoseconds (the paper's setting).
    Time,
    /// Deterministic work units (rows processed); used by unit tests so
    /// benefit and eviction decisions are exactly repeatable.
    WorkUnits,
}

/// Execution mode of the recycler (paper §V evaluates these three plus OFF).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecyclerMode {
    /// History mode (HIST): only materialize results whose plans occurred
    /// before; all decisions are made in the rewriting phase.
    History,
    /// Speculation mode (SPEC): history plus speculative materialization of
    /// small expensive first-time results, decided at run time (§III-D).
    Speculative,
}

/// Tunables for the recycler. Defaults follow the paper where it names
/// values (`h = 0.001` for speculation) and otherwise use conservative
/// settings exercised by the test suite.
#[derive(Debug, Clone)]
pub struct RecyclerConfig {
    /// Recycler cache capacity in bytes.
    pub cache_bytes: u64,
    /// HIST vs SPEC.
    pub mode: RecyclerMode,
    /// Cost source for the benefit metric.
    pub cost_model: CostModel,
    /// Aging factor α < 1 (paper Eq. 5); applied lazily per query tick.
    pub aging_alpha: f64,
    /// Minimum (decayed) reference count before a seen-before result is
    /// considered for materialization in the rewriting phase.
    pub min_refs_to_store: f64,
    /// The paper's small constant h used for speculative benefit (§III-D).
    pub spec_h: f64,
    /// Benefit floor for admitting results into an un-full cache.
    pub benefit_floor: f64,
    /// A single result may use at most this fraction of the cache.
    pub max_result_fraction: f64,
    /// Speculation makes no commit/cancel decision before this progress.
    pub spec_min_progress: f64,
    /// How long a query stalls waiting for a concurrent materialization of
    /// the same result before giving up and recomputing.
    pub stall_timeout: Duration,
    /// Consult subsumption edges when exact matching fails (§IV-A).
    pub enable_subsumption: bool,
    /// Repair dependent cache entries in place from DML deltas instead of
    /// evicting them, where the classification allows it (`rdb_delta`).
    /// Off reproduces the pure evict-on-write behaviour of the paper's
    /// baseline invalidation.
    pub repair: bool,
}

impl Default for RecyclerConfig {
    fn default() -> Self {
        RecyclerConfig {
            cache_bytes: 256 * 1024 * 1024,
            mode: RecyclerMode::Speculative,
            cost_model: CostModel::Time,
            aging_alpha: 0.995,
            min_refs_to_store: 0.5,
            spec_h: 0.001,
            benefit_floor: 0.0,
            max_result_fraction: 0.5,
            spec_min_progress: 0.05,
            stall_timeout: Duration::from_secs(10),
            enable_subsumption: true,
            repair: true,
        }
    }
}

impl RecyclerConfig {
    /// History-mode config with the given cache size.
    pub fn history(cache_bytes: u64) -> Self {
        RecyclerConfig {
            cache_bytes,
            mode: RecyclerMode::History,
            ..Default::default()
        }
    }

    /// Speculative-mode config with the given cache size.
    pub fn speculative(cache_bytes: u64) -> Self {
        RecyclerConfig {
            cache_bytes,
            mode: RecyclerMode::Speculative,
            ..Default::default()
        }
    }

    /// Deterministic variant for unit tests: work-unit costs, no aging.
    pub fn deterministic(cache_bytes: u64) -> Self {
        RecyclerConfig {
            cache_bytes,
            cost_model: CostModel::WorkUnits,
            aging_alpha: 1.0,
            ..Default::default()
        }
    }

    /// Largest admissible single result.
    pub fn max_result_bytes(&self) -> u64 {
        (self.cache_bytes as f64 * self.max_result_fraction) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = RecyclerConfig::default();
        assert!(c.aging_alpha < 1.0);
        assert_eq!(c.spec_h, 0.001);
        assert!(c.max_result_bytes() < c.cache_bytes);
    }

    #[test]
    fn presets() {
        assert_eq!(RecyclerConfig::history(1).mode, RecyclerMode::History);
        assert_eq!(
            RecyclerConfig::speculative(1).mode,
            RecyclerMode::Speculative
        );
        let d = RecyclerConfig::deterministic(1);
        assert_eq!(d.cost_model, CostModel::WorkUnits);
        assert_eq!(d.aging_alpha, 1.0);
    }
}
