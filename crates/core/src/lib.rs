//! # rdb-recycler — recycling for pipelined query evaluation
//!
//! A from-scratch implementation of the recycler of *"Recycling in
//! Pipelined Query Evaluation"* (Nagel, Boncz, Viglas; ICDE 2013): an
//! online, autonomous mechanism that caches selected intermediate and final
//! query results in a pipelined (vector-at-a-time) engine and reuses them
//! across queries.
//!
//! Components (paper section in parentheses):
//!
//! * [`graph::RecyclerGraph`] — the AND-DAG of past optimized query trees
//!   with hash-key/signature matching, reference statistics, DMD-based true
//!   cost, and lazy aging (§II, §III-A/B/C);
//! * [`cache::RecyclerCache`] — the finite result cache with size-grouped
//!   Dantzig-greedy admission and replacement (§III-E);
//! * [`recycler::Recycler`] — the rewriter (reuse substitution, store
//!   injection, stalling on concurrent materializations) and the
//!   executor-facing [`rdb_exec::ResultStore`] implementation including the
//!   speculation policy (§II, §III-D);
//! * [`proactive`] — top-N widening and cube caching with selections /
//!   binning (§IV-B);
//! * subsumption edges and derivations live in [`graph`] (§IV-A).
//!
//! ## Updates & invalidation (PAPER.md §V)
//!
//! The paper notes that under updates "the results in the recycler graph
//! that are affected... have to be invalidated" but leaves the mechanism
//! out of scope. This crate implements it, keyed on **table epochs**:
//! every committed append/delete bumps the base table's epoch
//! (`rdb_storage::VersionedTable`), queries pin an epoch vector via a
//! catalog snapshot, and freshness is enforced at three points:
//!
//! 1. **Eager eviction** — [`Recycler::invalidate`]`(table, epoch)` walks
//!    the operator graph upward from the changed table's scan leaves
//!    (every [`graph::GraphNode`] records its base-table footprint) and
//!    evicts exactly the dependent cache entries, emitting
//!    [`RecyclerEvent::Invalidated`] per entry and counting
//!    `stats.invalidations`. Entries over untouched tables survive, which
//!    is what makes invalidation *fine-grained*: updating `lineitem`
//!    leaves a cached `orders` aggregate hot.
//! 2. **Reuse gate** — every [`cache::CacheEntry`] records the
//!    `(table, epoch)` pairs it was computed from; the rewriter
//!    substitutes an entry (exact or subsumption) only when those match
//!    the querying snapshot's epochs, so a racing update between commit
//!    and invalidation can never cause a stale read.
//! 3. **Publish gate** — store targets record their producing snapshot's
//!    epochs at rewrite time; a materialization that completes after a
//!    newer epoch committed is discarded (`stats.stale_rejections`)
//!    instead of poisoning the cache.
//!
//! Graph nodes (and their reference statistics `hR`) survive
//! invalidation — only materialized results die. History therefore keeps
//! steering store decisions across updates, which is why the recycler
//! retains most of its benefit under a write-mixed workload (see
//! `BENCH_update.json`).
//!
//! ## Operator-state artifacts & the artifact cost model
//!
//! Beyond the paper's materialized results, the cache holds **operator
//! state**: hash-join build sides and aggregation tables
//! ([`rdb_exec::OperatorState`]), keyed by the *subplan that produced
//! them* plus an [`rdb_exec::ArtifactKind`] and a variant discriminator
//! (the join-key expressions). Every entry — result or state — is a
//! [`cache::CacheArtifact`] charged against the same byte budget, with a
//! uniform benefit currency:
//!
//! * **results** re-derive benefit from the graph each completion (Eq. 1:
//!   true cost × decayed `hR` / bytes);
//! * **state artifacts** use their *measured construction cost* (reported
//!   at publish time via [`rdb_exec::StateCost`], in the configured
//!   [`config::CostModel`]'s units) times the producing node's decayed
//!   `hR`, divided by the artifact's bytes.
//!
//! Because both kinds price reuse in saved-cost-per-byte, the evictor can
//! trade a cached hash table against a cached result for the same node —
//! whichever saves less per byte goes first. State artifacts ride the
//! same epoch machinery as results (recorded epochs, the three freshness
//! points above) but are *epoch-exact both directions*: a build produced
//! under different epochs is never adopted. They are deliberately absent
//! from checkpoint lineage — recovery re-executes the producing subplan
//! and re-publishes through the normal path.

pub mod cache;
pub mod config;
pub mod graph;
pub mod proactive;
pub mod recycler;

pub use cache::{ArtifactId, CacheArtifact, CacheEntry, RecyclerCache};
pub use config::{CostModel, RecyclerConfig, RecyclerMode};
pub use graph::{Derivation, MatchTree, NodeId, RecyclerGraph, SubsumptionEdge};
pub use rdb_delta::Repairability;
pub use recycler::{
    CacheState, LineageEntry, PreparedQuery, Recycler, RecyclerEvent, RecyclerStats, RepairOutcome,
};
