//! # rdb-recycler — recycling for pipelined query evaluation
//!
//! A from-scratch implementation of the recycler of *"Recycling in
//! Pipelined Query Evaluation"* (Nagel, Boncz, Viglas; ICDE 2013): an
//! online, autonomous mechanism that caches selected intermediate and final
//! query results in a pipelined (vector-at-a-time) engine and reuses them
//! across queries.
//!
//! Components (paper section in parentheses):
//!
//! * [`graph::RecyclerGraph`] — the AND-DAG of past optimized query trees
//!   with hash-key/signature matching, reference statistics, DMD-based true
//!   cost, and lazy aging (§II, §III-A/B/C);
//! * [`cache::RecyclerCache`] — the finite result cache with size-grouped
//!   Dantzig-greedy admission and replacement (§III-E);
//! * [`recycler::Recycler`] — the rewriter (reuse substitution, store
//!   injection, stalling on concurrent materializations) and the
//!   executor-facing [`rdb_exec::ResultStore`] implementation including the
//!   speculation policy (§II, §III-D);
//! * [`proactive`] — top-N widening and cube caching with selections /
//!   binning (§IV-B);
//! * subsumption edges and derivations live in [`graph`] (§IV-A).

pub mod cache;
pub mod config;
pub mod graph;
pub mod proactive;
pub mod recycler;

pub use cache::{CacheEntry, RecyclerCache};
pub use config::{CostModel, RecyclerConfig, RecyclerMode};
pub use graph::{Derivation, MatchTree, NodeId, RecyclerGraph, SubsumptionEdge};
pub use recycler::{PreparedQuery, Recycler, RecyclerEvent, RecyclerStats};
