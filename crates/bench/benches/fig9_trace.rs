//! Figure 9 — detailed timeline of concurrent stream execution.
//!
//! Paper setup: 8 streams (one per core) × 6 queries (Q1, Q8, Q13, Q18,
//! Q19, Q21; Q1 and Q19 in their proactive variants), speculation on. The
//! figure annotates each query with whether it materialized a result,
//! reused one, or both, and shows stalls where a stream waits for a
//! concurrent materialization.

use rdb_bench::{banner, scale_factor};
use rdb_engine::Engine;
use rdb_recycler::RecyclerConfig;
use rdb_tpch::{generate, make_streams, StreamOptions, TpchConfig};

fn main() {
    banner("Figure 9: detailed trace, 8 streams x {Q1,Q8,Q13,Q18,Q19,Q21}");
    let sf = scale_factor();
    let catalog = generate(&TpchConfig {
        scale: sf,
        seed: 2013,
    });
    let opts = StreamOptions::new(8, sf)
        .proactive()
        .with_patterns(vec![1, 8, 13, 18, 19, 21]);
    let streams = make_streams(&catalog, &opts);
    let mut config = RecyclerConfig::speculative(512 * 1024 * 1024);
    config.spec_min_progress = 0.0;
    let engine = Engine::builder(catalog).recycler(config).build();
    let report = engine.run_streams(&streams);

    println!("\nlegend: M = materialized result, R = reused result, W = stalled\n");
    for s in 0..streams.len() {
        print!("stream {s}: ");
        for r in report.records.iter().filter(|r| r.stream == s) {
            let mut flags = String::new();
            if r.materialized {
                flags.push('M');
            }
            if r.reused {
                flags.push('R');
            }
            if r.stalled {
                flags.push('W');
            }
            if flags.is_empty() {
                flags.push('-');
            }
            print!(
                "{}[{:.0}-{:.0}ms,{}] ",
                r.label,
                r.start.as_secs_f64() * 1e3,
                r.end.as_secs_f64() * 1e3,
                flags
            );
        }
        println!();
    }
    let mats = report.records.iter().filter(|r| r.materialized).count();
    let reuses = report.records.iter().filter(|r| r.reused).count();
    let stalls = report.records.iter().filter(|r| r.stalled).count();
    println!(
        "\ntotals: {} queries, {mats} materialized, {reuses} reused, {stalls} stalled",
        report.records.len()
    );
    println!(
        "\nPaper shape: the first instance of each pattern materializes its\n\
         (proactive) intermediates and final result; later instances reuse\n\
         them; concurrent instances of the same pattern stall until the\n\
         producer publishes."
    );
}
