//! Fig-style experiment: recycler benefit under an update-mixed workload.
//!
//! The paper's experiments are read-only; this bench measures what
//! update-aware invalidation preserves. A stream of TPC-H Q1/Q6/Q14
//! executions (drawn from a small parameter pool, so repeats occur) is
//! interleaved with DML: every `1/WRITE_FRACTION`-th operation appends a
//! few lineitem rows, bumping the epoch and invalidating the dependent
//! cache entries. Three configurations:
//!
//! * `recycler`  — recycling on, 10% write mix (the measured system);
//! * `naive`     — recycling off, same mix (the floor);
//! * `read_only` — recycling on, no writes (the ceiling).
//!
//! The recycler keeps a hit-rate well above zero between epoch bumps —
//! history survives invalidation, so re-materialization restarts
//! immediately — and lands between floor and ceiling on wall time.
//!
//! Emits `BENCH_update.json` at the workspace root (override with
//! `RDB_BENCH_OUT`).

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rdb_engine::Engine;
use rdb_expr::Params;
use rdb_plan::Plan;
use rdb_recycler::RecyclerConfig;
use rdb_tpch::{generate, templates, TpchConfig};
use rdb_vector::Value;

const QUERIES: usize = 240;
const WRITE_EVERY: usize = 10; // 10% write mix
const PARAM_POOL: usize = 2; // per template → repeats within the stream

fn lineitem_row(rng: &mut SmallRng, orderkey: i64) -> Vec<Value> {
    vec![
        Value::Int(orderkey),
        Value::Int(rng.gen_range(1..200)),
        Value::Int(1),
        Value::Int(1),
        Value::Float(rng.gen_range(1..50) as f64),
        Value::Float(rng.gen_range(900.0..5000.0)),
        Value::Float(rng.gen_range(0..10) as f64 / 100.0),
        Value::Float(0.04),
        Value::str("N"),
        Value::str("O"),
        Value::Date(rng.gen_range(8700..10000)),
        Value::Date(9500),
        Value::Date(9510),
        Value::str("NONE"),
        Value::str("RAIL"),
    ]
}

/// The query pool: Q1/Q6/Q14 from a pooled parameter domain (all read
/// lineitem, so lineitem appends invalidate them), plus part- and
/// orders-side aggregates that a lineitem write must leave hot — the mix
/// that makes invalidation precision visible in the hit rate.
fn plan_pool() -> Vec<Plan> {
    use rdb_expr::{AggFunc, Expr};
    use rdb_plan::scan;
    let mut rng = SmallRng::seed_from_u64(4242);
    let mut pool = Vec::new();
    for _ in 0..PARAM_POOL {
        let p: Vec<(Plan, Params)> = vec![
            (templates::q1_template(), templates::q1_params(&mut rng)),
            (templates::q6_template(), templates::q6_params(&mut rng)),
            (templates::q14_template(), templates::q14_params(&mut rng)),
        ];
        for (t, params) in p {
            pool.push(t.substitute_params(&params).expect("substitute"));
        }
    }
    // Cross-table pool members (untouched by lineitem DML).
    for size in [15i64, 30] {
        pool.push(
            scan("part", &["p_size", "p_retailprice"])
                .select(Expr::name("p_size").lt(Expr::lit(size)))
                .aggregate(
                    vec![(Expr::name("p_size"), "p_size")],
                    vec![(AggFunc::Avg(Expr::name("p_retailprice")), "avg_price")],
                ),
        );
        pool.push(
            scan("orders", &["o_orderpriority", "o_totalprice"])
                .select(Expr::name("o_totalprice").gt(Expr::lit(size as f64 * 2_000.0)))
                .aggregate(
                    vec![(Expr::name("o_orderpriority"), "o_orderpriority")],
                    vec![(AggFunc::Sum(Expr::name("o_totalprice")), "total")],
                ),
        );
    }
    pool
}

struct RunResult {
    total_ms: f64,
    reuses: u64,
    invalidations: u64,
    stale_rejections: u64,
    writes: usize,
}

fn run(with_recycler: bool, with_writes: bool) -> RunResult {
    let cat = generate(&TpchConfig {
        scale: 0.01,
        seed: 77,
    });
    let mut builder = Engine::builder(cat);
    builder = if with_recycler {
        let mut c = RecyclerConfig::deterministic(256 << 20);
        c.spec_min_progress = 0.0;
        builder.recycler(c)
    } else {
        builder.no_recycler()
    };
    let engine = builder.build();
    let session = engine.session();
    let pool = plan_pool();
    let mut rng = SmallRng::seed_from_u64(99);
    let mut writes = 0usize;
    let mut reuses = 0u64;
    let t0 = Instant::now();
    for i in 0..QUERIES {
        if with_writes && i % WRITE_EVERY == WRITE_EVERY - 1 {
            // Alternate the updated table: lineitem bumps hit Q1/Q6/Q14,
            // orders bumps hit only the orders aggregates — the untouched
            // side of the pool must keep its cache either way.
            if (i / WRITE_EVERY).is_multiple_of(2) {
                let rows: Vec<Vec<Value>> = (0..2)
                    .map(|_| lineitem_row(&mut rng, 5_000_000 + i as i64))
                    .collect();
                session.append("lineitem", &rows).expect("append lineitem");
            } else {
                session
                    .append(
                        "orders",
                        &[vec![
                            Value::Int(5_000_000 + i as i64),
                            Value::Int(1),
                            Value::str("O"),
                            Value::Float(rng.gen_range(1_000.0..200_000.0)),
                            Value::Date(9500),
                            Value::str("1-URGENT"),
                            Value::Int(0),
                            Value::str("bench append"),
                        ]],
                    )
                    .expect("append orders");
            }
            writes += 1;
            continue;
        }
        let plan = &pool[rng.gen_range(0..pool.len())];
        let out = session.query(plan).expect("query").into_outcome();
        if out.reused() {
            reuses += 1;
        }
    }
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (invalidations, stale_rejections) = match engine.recycler() {
        Some(r) => {
            let load =
                |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
            (
                load(&r.stats.invalidations),
                load(&r.stats.stale_rejections),
            )
        }
        None => (0, 0),
    };
    RunResult {
        total_ms,
        reuses,
        invalidations,
        stale_rejections,
        writes,
    }
}

fn main() {
    rdb_bench::banner("update_mix — recycler benefit under a 10% write mix");
    let recycler = run(true, true);
    let naive = run(false, true);
    let read_only = run(true, false);

    let queries_mixed = QUERIES - recycler.writes;
    let hit_rate = recycler.reuses as f64 / queries_mixed as f64;
    let hit_rate_ro = read_only.reuses as f64 / QUERIES as f64;
    println!(
        "{:>12} {:>12} {:>10} {:>14} {:>8}",
        "config", "total (ms)", "queries", "reuses", "inval"
    );
    for (name, r, q) in [
        ("recycler", &recycler, queries_mixed),
        ("naive", &naive, queries_mixed),
        ("read_only", &read_only, QUERIES),
    ] {
        println!(
            "{:>12} {:>12.1} {:>10} {:>14} {:>8}",
            name, r.total_ms, q, r.reuses, r.invalidations
        );
    }
    println!(
        "\nhit-rate under 10% writes: {:.1}% (read-only ceiling {:.1}%), \
         {} invalidations, {} stale publishes rejected",
        hit_rate * 100.0,
        hit_rate_ro * 100.0,
        recycler.invalidations,
        recycler.stale_rejections
    );
    assert!(
        recycler.reuses > 0,
        "recycler must retain hits under the write mix"
    );
    assert!(
        recycler.invalidations > 0,
        "writes must invalidate dependent entries"
    );

    let out_path = std::env::var("RDB_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_update.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        "{{\n\"bench\": \"update_mix\",\n\"queries\": {},\n\"write_every\": {},\n\
         \"writes\": {},\n\"recycler_ms\": {:.1},\n\"naive_ms\": {:.1},\n\
         \"read_only_ms\": {:.1},\n\"reuses\": {},\n\"read_only_reuses\": {},\n\
         \"hit_rate\": {:.4},\n\"read_only_hit_rate\": {:.4},\n\
         \"invalidations\": {},\n\"stale_rejections\": {}\n}}\n",
        queries_mixed,
        WRITE_EVERY,
        recycler.writes,
        recycler.total_ms,
        naive.total_ms,
        read_only.total_ms,
        recycler.reuses,
        read_only.reuses,
        hit_rate,
        hit_rate_ro,
        recycler.invalidations,
        recycler.stale_rejections
    );
    std::fs::write(&out_path, json).expect("write BENCH_update.json");
    println!("snapshot written to {out_path}");
}
