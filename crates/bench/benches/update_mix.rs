//! Fig-style experiment: recycler benefit under an update-mixed workload.
//!
//! The paper's experiments are read-only; this bench measures what
//! update-aware caching preserves. A stream of TPC-H Q1/Q6/Q14 executions
//! (drawn from a small parameter pool, so repeats occur) is interleaved
//! with DML: every `1/WRITE_FRACTION`-th operation appends a few lineitem
//! rows, bumping the epoch. Four configurations:
//!
//! * `repair` — recycling on, deltas repair cached entries in place (the
//!   measured system, `rdb_delta`);
//! * `evict_baseline` — recycling on, repair disabled: every write evicts
//!   the dependent entries (PR 3's behavior);
//! * `naive` — recycling off, same mix (the floor);
//! * `read_only` — recycling on, no writes (the ceiling).
//!
//! With repair, appends patch the cached selections and aggregates under
//! the new epoch vector instead of evicting them, so the hit rate stays
//! near the read-only ceiling. A verification pass replays the measured
//! stream comparing every answer against a materializing run over the
//! snapshot it read — zero tolerance for stale reads.
//!
//! Emits `BENCH_update.json` at the workspace root (override with
//! `RDB_BENCH_OUT`).

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rdb_engine::{Engine, MaterializingEngine};
use rdb_expr::Params;
use rdb_plan::Plan;
use rdb_recycler::RecyclerConfig;
use rdb_tpch::{generate, templates, TpchConfig};
use rdb_vector::{Batch, Value};

const QUERIES: usize = 240;
const WRITE_EVERY: usize = 10; // 10% write mix
const PARAM_POOL: usize = 2; // per template → repeats within the stream

fn lineitem_row(rng: &mut SmallRng, orderkey: i64) -> Vec<Value> {
    vec![
        Value::Int(orderkey),
        Value::Int(rng.gen_range(1..200)),
        Value::Int(1),
        Value::Int(1),
        Value::Float(rng.gen_range(1..50) as f64),
        Value::Float(rng.gen_range(900.0..5000.0)),
        Value::Float(rng.gen_range(0..10) as f64 / 100.0),
        Value::Float(0.04),
        Value::str("N"),
        Value::str("O"),
        Value::Date(rng.gen_range(8700..10000)),
        Value::Date(9500),
        Value::Date(9510),
        Value::str("NONE"),
        Value::str("RAIL"),
    ]
}

/// The query pool: Q1/Q6/Q14 from a pooled parameter domain (all read
/// lineitem, so lineitem appends hit them), plus part- and orders-side
/// aggregates that a lineitem write must leave hot — the mix that makes
/// write handling visible in the hit rate.
fn plan_pool() -> Vec<Plan> {
    use rdb_expr::{AggFunc, Expr};
    use rdb_plan::scan;
    let mut rng = SmallRng::seed_from_u64(4242);
    let mut pool = Vec::new();
    for _ in 0..PARAM_POOL {
        let p: Vec<(Plan, Params)> = vec![
            (templates::q1_template(), templates::q1_params(&mut rng)),
            (templates::q6_template(), templates::q6_params(&mut rng)),
            (templates::q14_template(), templates::q14_params(&mut rng)),
        ];
        for (t, params) in p {
            pool.push(t.substitute_params(&params).expect("substitute"));
        }
    }
    // Cross-table pool members (untouched by lineitem DML).
    for size in [15i64, 30] {
        pool.push(
            scan("part", &["p_size", "p_retailprice"])
                .select(Expr::name("p_size").lt(Expr::lit(size)))
                .aggregate(
                    vec![(Expr::name("p_size"), "p_size")],
                    vec![(AggFunc::Avg(Expr::name("p_retailprice")), "avg_price")],
                ),
        );
        pool.push(
            scan("orders", &["o_orderpriority", "o_totalprice"])
                .select(Expr::name("o_totalprice").gt(Expr::lit(size as f64 * 2_000.0)))
                .aggregate(
                    vec![(Expr::name("o_orderpriority"), "o_orderpriority")],
                    vec![(AggFunc::Sum(Expr::name("o_totalprice")), "total")],
                ),
        );
    }
    pool
}

struct RunResult {
    total_ms: f64,
    reuses: u64,
    repaired: u64,
    invalidations: u64,
    stale_rejections: u64,
    writes: usize,
}

fn sorted_rows(b: &Batch) -> Vec<Vec<Value>> {
    let mut rows = b.to_rows();
    rows.sort();
    rows
}

fn run(with_recycler: bool, with_writes: bool, repair: bool, verify: bool) -> RunResult {
    let cat = generate(&TpchConfig {
        scale: 0.01,
        seed: 77,
    });
    let mut builder = Engine::builder(cat);
    builder = if with_recycler {
        let mut c = RecyclerConfig::deterministic(256 << 20);
        c.spec_min_progress = 0.0;
        c.repair = repair;
        builder.recycler(c)
    } else {
        builder.no_recycler()
    };
    let engine = builder.build();
    let session = engine.session();
    let pool = plan_pool();
    let mut rng = SmallRng::seed_from_u64(99);
    let mut writes = 0usize;
    let mut reuses = 0u64;
    let mut stale_reads = 0usize;
    let t0 = Instant::now();
    let mut engine_ms = 0.0f64;
    for i in 0..QUERIES {
        if with_writes && i % WRITE_EVERY == WRITE_EVERY - 1 {
            // Alternate the updated table: lineitem bumps hit Q1/Q6/Q14,
            // orders bumps hit only the orders aggregates — the untouched
            // side of the pool must keep its cache either way.
            let w0 = Instant::now();
            if (i / WRITE_EVERY).is_multiple_of(2) {
                let rows: Vec<Vec<Value>> = (0..2)
                    .map(|_| lineitem_row(&mut rng, 5_000_000 + i as i64))
                    .collect();
                session.append("lineitem", &rows).expect("append lineitem");
            } else {
                session
                    .append(
                        "orders",
                        &[vec![
                            Value::Int(5_000_000 + i as i64),
                            Value::Int(1),
                            Value::str("O"),
                            Value::Float(rng.gen_range(1_000.0..200_000.0)),
                            Value::Date(9500),
                            Value::str("1-URGENT"),
                            Value::Int(0),
                            Value::str("bench append"),
                        ]],
                    )
                    .expect("append orders");
            }
            engine_ms += w0.elapsed().as_secs_f64() * 1e3;
            writes += 1;
            continue;
        }
        let plan = &pool[rng.gen_range(0..pool.len())];
        let q0 = Instant::now();
        let handle = session.query(plan).expect("query");
        let snapshot = verify.then(|| handle.snapshot().clone());
        let out = handle.into_outcome();
        engine_ms += q0.elapsed().as_secs_f64() * 1e3;
        if out.reused() {
            reuses += 1;
        }
        if let Some(snapshot) = snapshot {
            // Zero-stale-read check: every answer — repaired, reused, or
            // computed — must match a materializing run over the snapshot
            // the query read. Oracle time is excluded from `engine_ms`.
            let oracle = MaterializingEngine::naive(Arc::new(snapshot.to_catalog()))
                .run(plan)
                .expect("oracle");
            if sorted_rows(&out.batch) != sorted_rows(&oracle.batch) {
                stale_reads += 1;
            }
        }
    }
    let total_ms = if verify {
        engine_ms
    } else {
        t0.elapsed().as_secs_f64() * 1e3
    };
    assert_eq!(stale_reads, 0, "stale reads under the write mix");
    let (repaired, invalidations, stale_rejections) = match engine.recycler() {
        Some(r) => {
            let load =
                |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
            (
                load(&r.stats.repaired),
                load(&r.stats.invalidations),
                load(&r.stats.stale_rejections),
            )
        }
        None => (0, 0, 0),
    };
    RunResult {
        total_ms,
        reuses,
        repaired,
        invalidations,
        stale_rejections,
        writes,
    }
}

fn main() {
    rdb_bench::banner("update_mix — repair vs evict under a 10% write mix");
    // The measured run is also the verified run: every answer is compared
    // against a materializing oracle over its snapshot (oracle time is
    // kept out of the reported engine time).
    let repair = run(true, true, true, true);
    let evict = run(true, true, false, false);
    let naive = run(false, true, false, false);
    let read_only = run(true, false, true, false);

    let queries_mixed = QUERIES - repair.writes;
    let hit = |r: &RunResult, q: usize| r.reuses as f64 / q as f64;
    let hit_rate = hit(&repair, queries_mixed);
    let hit_rate_evict = hit(&evict, queries_mixed);
    let hit_rate_ro = hit(&read_only, QUERIES);
    println!(
        "{:>16} {:>12} {:>10} {:>8} {:>10} {:>8}",
        "config", "total (ms)", "queries", "reuses", "repaired", "inval"
    );
    for (name, r, q) in [
        ("repair", &repair, queries_mixed),
        ("evict_baseline", &evict, queries_mixed),
        ("naive", &naive, queries_mixed),
        ("read_only", &read_only, QUERIES),
    ] {
        println!(
            "{:>16} {:>12.1} {:>10} {:>8} {:>10} {:>8}",
            name, r.total_ms, q, r.reuses, r.repaired, r.invalidations
        );
    }
    println!(
        "\nhit-rate under 10% writes: repair {:.1}% vs evict {:.1}% \
         (read-only ceiling {:.1}%), {} entries repaired, 0 stale reads, \
         {} stale publishes rejected",
        hit_rate * 100.0,
        hit_rate_evict * 100.0,
        hit_rate_ro * 100.0,
        repair.repaired,
        repair.stale_rejections
    );
    assert!(
        repair.repaired > 0,
        "appends must repair cached entries in place"
    );
    assert!(
        hit_rate >= hit_rate_evict,
        "repair must not lose hits vs evict-on-write"
    );
    assert!(
        hit_rate >= 0.85,
        "repair must hold the 10%-write hit rate at >= 85%, got {:.1}%",
        hit_rate * 100.0
    );

    let out_path = std::env::var("RDB_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_update.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        "{{\n\"bench\": \"update_mix\",\n\"queries\": {},\n\"write_every\": {},\n\
         \"writes\": {},\n\"repair_ms\": {:.1},\n\"naive_ms\": {:.1},\n\
         \"read_only_ms\": {:.1},\n\"reuses\": {},\n\"repaired\": {},\n\
         \"read_only_reuses\": {},\n\"hit_rate\": {:.4},\n\
         \"read_only_hit_rate\": {:.4},\n\"invalidations\": {},\n\
         \"stale_rejections\": {},\n\"stale_reads\": 0,\n\
         \"evict_baseline\": {{\n  \"hit_rate\": {:.4},\n  \"total_ms\": {:.1},\n \
         \"reuses\": {},\n  \"invalidations\": {}\n}}\n}}\n",
        queries_mixed,
        WRITE_EVERY,
        repair.writes,
        repair.total_ms,
        naive.total_ms,
        read_only.total_ms,
        repair.reuses,
        repair.repaired,
        read_only.reuses,
        hit_rate,
        hit_rate_ro,
        repair.invalidations,
        repair.stale_rejections,
        hit_rate_evict,
        evict.total_ms,
        evict.reuses,
        evict.invalidations
    );
    std::fs::write(&out_path, json).expect("write BENCH_update.json");
    println!("snapshot written to {out_path}");
}
