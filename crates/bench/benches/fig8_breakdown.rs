//! Figure 8 — per-query-pattern breakdown of the largest throughput run.
//!
//! Paper setup: the 256-stream run broken down into the 22 patterns; for
//! each mode the average *pure execution* time (excluding queue wait) of
//! each pattern relative to naive. Paper observations: in HIST every query
//! but Q9 improves (Q9's COLOR parameter has ~92 values, so repeats are too
//! rare for history); SPEC improves every pattern; PA further improves
//! exactly Q1, Q16, Q19.

use std::collections::HashMap;
use std::time::Duration;

use rdb_bench::{banner, max_streams, scale_factor};
use rdb_engine::{Engine, EngineConfig};
use rdb_recycler::{RecyclerConfig, RecyclerMode};
use rdb_tpch::{generate, make_streams, StreamOptions, TpchConfig};

fn avg_by_label(report: &rdb_engine::StreamsReport) -> HashMap<String, Duration> {
    report.avg_exec_by_label().into_iter().collect()
}

fn main() {
    banner("Figure 8: per-pattern avg execution time relative to OFF");
    let sf = scale_factor();
    let n = 256usize.min(max_streams());
    println!("scale factor {sf}, {n} streams");
    let catalog = generate(&TpchConfig {
        scale: sf,
        seed: 2013,
    });
    let cache: u64 = 512 * 1024 * 1024;

    let mut results: Vec<(String, HashMap<String, Duration>)> = Vec::new();
    for mode in ["OFF", "HIST", "SPEC", "PA"] {
        let opts = if mode == "PA" {
            StreamOptions::new(n, sf).proactive()
        } else {
            StreamOptions::new(n, sf)
        };
        let streams = make_streams(&catalog, &opts);
        let config = match mode {
            "OFF" => EngineConfig::off(),
            "HIST" => {
                let mut c = RecyclerConfig::history(cache);
                c.mode = RecyclerMode::History;
                EngineConfig::with_recycler(c)
            }
            _ => {
                let mut c = RecyclerConfig::speculative(cache);
                c.spec_min_progress = 0.0;
                EngineConfig::with_recycler(c)
            }
        };
        let engine = Engine::builder(catalog.clone()).config(config).build();
        let report = engine.run_streams(&streams);
        results.push((mode.to_string(), avg_by_label(&report)));
    }

    let off = results[0].1.clone();
    println!(
        "\n{:>5} {:>10} {:>10} {:>10}",
        "query", "HIST/OFF", "SPEC/OFF", "PA/OFF"
    );
    for q in 1..=22 {
        let label = format!("Q{q}");
        let base = off.get(&label).map(|d| d.as_secs_f64()).unwrap_or(0.0);
        let rel = |mode_idx: usize| -> String {
            match results[mode_idx].1.get(&label) {
                Some(d) if base > 0.0 => format!("{:.2}", d.as_secs_f64() / base),
                _ => "-".into(),
            }
        };
        println!("{:>5} {:>10} {:>10} {:>10}", label, rel(1), rel(2), rel(3));
    }
    println!(
        "\nPaper shape: HIST < 1.0 for all patterns except Q9 (~1.0);\n\
         SPEC ≤ HIST everywhere; PA further lowers only Q1, Q16, Q19."
    );
}
