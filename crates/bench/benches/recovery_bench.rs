//! Recovery bench: restart-with-lineage vs cold start.
//!
//! A durable engine reaches a steady state over a rotation of distinct
//! queries, checkpoints (tables + top-K lineage), and is dropped. The
//! bench then measures:
//!
//! * **recovery time** — building a durable engine over the data
//!   directory (checkpoint restore + WAL tail replay + lineage warming)
//!   vs building the same engine cold;
//! * **first-N-query hit rate** — each distinct query's *first*
//!   post-restart execution against the warmed cache, vs a cold engine
//!   (which by construction scores 0%: every query is new to it).
//!
//! Emits `BENCH_recovery.json` at the workspace root (override with
//! `RDB_BENCH_OUT`).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use rdb_bench::{banner, ms, pct};
use rdb_engine::{DurabilityConfig, Engine, FsyncPolicy};
use rdb_expr::{AggFunc, Expr};
use rdb_plan::{scan, Plan};
use rdb_recycler::RecyclerConfig;
use rdb_storage::{Catalog, TableBuilder};
use rdb_vector::{DataType, Schema, Value};

const ROWS: i64 = 200_000;
const DISTINCT: usize = 100;

fn seed_catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([("k", DataType::Int), ("v", DataType::Float)]);
    let mut b = TableBuilder::new("t", schema, ROWS as usize);
    for i in 0..ROWS {
        b.push_row(vec![Value::Int(i % 1000), Value::Float(i as f64)]);
    }
    cat.register(b.finish()).expect("register t");
    Arc::new(cat)
}

/// The query rotation: `DISTINCT` structurally different aggregations
/// (distinct constants → distinct fingerprints → distinct cache entries).
fn queries() -> Vec<Plan> {
    (0..DISTINCT as i64)
        .map(|i| {
            scan("t", &["k", "v"])
                .select(Expr::name("k").lt(Expr::lit(10 + i * 9)))
                .aggregate(vec![], vec![(AggFunc::Sum(Expr::name("v")), "sv")])
        })
        .collect()
}

fn recycler() -> RecyclerConfig {
    let mut c = RecyclerConfig::deterministic(256 << 20);
    c.spec_min_progress = 0.0;
    c
}

fn durability() -> DurabilityConfig {
    DurabilityConfig {
        fsync: FsyncPolicy::Off, // bench I/O, not the device
        auto_checkpoint: false,
        warm_top_k: DISTINCT + 28,
        ..DurabilityConfig::default()
    }
}

/// Run every query once, returning the fraction that reused a cached
/// result on that first execution.
fn first_round_hit_rate(engine: &Arc<Engine>, qs: &[Plan]) -> f64 {
    let session = engine.session();
    let mut hits = 0usize;
    for q in qs {
        if session.query(q).unwrap().into_outcome().reused() {
            hits += 1;
        }
    }
    hits as f64 / qs.len() as f64
}

fn main() {
    banner("Recovery: lineage-warmed restart vs cold start");
    let dir: PathBuf =
        std::env::temp_dir().join(format!("rdb-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let qs = queries();

    // Phase 1: reach steady state durably, then checkpoint and "crash".
    let steady_rate;
    {
        let engine = Engine::builder(seed_catalog())
            .data_dir(&dir)
            .durability(durability())
            .recycler(recycler())
            .try_build()
            .expect("build durable engine");
        let populate = Instant::now();
        first_round_hit_rate(&engine, &qs); // round 1: populate
        let populate = populate.elapsed();
        steady_rate = first_round_hit_rate(&engine, &qs); // round 2: steady
        println!(
            "steady state: {} queries populated in {}, hit rate {}",
            qs.len(),
            ms(populate),
            pct(steady_rate)
        );
        engine.checkpoint().expect("checkpoint");
    }

    // Phase 2: cold start — same seed, no data dir, empty cache.
    let t0 = Instant::now();
    let cold = Engine::builder(seed_catalog()).recycler(recycler()).build();
    let cold_start = t0.elapsed();
    let t0 = Instant::now();
    let cold_rate = first_round_hit_rate(&cold, &qs);
    let cold_first_n = t0.elapsed();
    drop(cold);

    // Phase 3: recovery — checkpoint restore + lineage warming.
    let t0 = Instant::now();
    let warm = Engine::builder(seed_catalog())
        .data_dir(&dir)
        .durability(durability())
        .recycler(recycler())
        .try_build()
        .expect("recover engine");
    let recovery = t0.elapsed();
    let warm_hits = warm.durability_stats().recovery_warm_hits;
    let t0 = Instant::now();
    let warm_rate = first_round_hit_rate(&warm, &qs);
    let warm_first_n = t0.elapsed();

    println!(
        "\n{:<28} {:>12} {:>16} {:>14}",
        "", "startup", "first-N queries", "hit rate"
    );
    println!(
        "{:<28} {:>12} {:>16} {:>14}",
        "cold start",
        ms(cold_start),
        ms(cold_first_n),
        pct(cold_rate)
    );
    println!(
        "{:<28} {:>12} {:>16} {:>14}",
        format!("recovery ({warm_hits} warmed)"),
        ms(recovery),
        ms(warm_first_n),
        pct(warm_rate)
    );

    // Claims gate: cold scores ~0% on its first pass over distinct
    // queries; a lineage-warmed restart stays within 20 points of the
    // pre-crash steady state.
    assert!(
        cold_rate < 0.05,
        "cold start should have no warm hits on distinct queries, got {}",
        pct(cold_rate)
    );
    assert!(
        warm_rate >= steady_rate - 0.20,
        "warmed restart hit rate {} not within 20 points of steady {}",
        pct(warm_rate),
        pct(steady_rate)
    );

    let out_path = std::env::var("RDB_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_recovery.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        "{{\n\"bench\": \"recovery\",\n\"rows\": {ROWS},\n\"distinct_queries\": {DISTINCT},\n\
         \"steady_hit_rate\": {steady_rate:.4},\n\
         \"cold_start_ms\": {:.3},\n\"cold_first_n_ms\": {:.3},\n\"cold_hit_rate\": {cold_rate:.4},\n\
         \"recovery_ms\": {:.3},\n\"warm_first_n_ms\": {:.3},\n\"warm_hit_rate\": {warm_rate:.4},\n\
         \"recovery_warm_hits\": {warm_hits}\n}}\n",
        cold_start.as_secs_f64() * 1e3,
        cold_first_n.as_secs_f64() * 1e3,
        recovery.as_secs_f64() * 1e3,
        warm_first_n.as_secs_f64() * 1e3,
    );
    std::fs::write(&out_path, json).expect("write BENCH_recovery.json");
    println!("\nsnapshot written to {out_path}");
    let _ = std::fs::remove_dir_all(&dir);
}
