//! Figure 10 — matching cost over a 256-stream throughput run.
//!
//! Paper setup: the cost of matching each incoming query tree against the
//! recycler graph (plus inserting non-matching nodes) across all 5632
//! query invocations of the 256-stream run, in total and per pattern. The
//! paper's observation: cost grows moderately with graph size and the
//! worst case (~2 ms) stays orders of magnitude below query execution
//! times (0.3–11.3 s there).

use rdb_bench::{banner, max_streams, scale_factor};
use rdb_engine::Engine;
use rdb_recycler::RecyclerConfig;
use rdb_tpch::{generate, make_streams, StreamOptions, TpchConfig};

fn main() {
    banner("Figure 10: matching cost vs. query number");
    let sf = scale_factor();
    let n = 256usize.min(max_streams());
    let catalog = generate(&TpchConfig {
        scale: sf,
        seed: 2013,
    });
    let streams = make_streams(&catalog, &StreamOptions::new(n, sf));
    let mut config = RecyclerConfig::speculative(512 * 1024 * 1024);
    config.spec_min_progress = 0.0;
    let engine = Engine::builder(catalog).recycler(config).build();
    let report = engine.run_streams(&streams);

    // Records in global submission order approximate the paper's x-axis.
    let mut by_time: Vec<_> = report.records.iter().collect();
    by_time.sort_by_key(|r| r.start);
    let total = by_time.len();
    println!("\n{total} query invocations, recycler graph grows online");
    println!("\nmatching cost by query-number window (µs):");
    println!("{:>16} {:>10} {:>10}", "window", "avg", "max");
    let window = (total / 8).max(1);
    for (w, chunk) in by_time.chunks(window).enumerate() {
        let avg = chunk.iter().map(|r| r.match_ns).sum::<u64>() as f64 / chunk.len() as f64 / 1e3;
        let max = chunk.iter().map(|r| r.match_ns).max().unwrap_or(0) as f64 / 1e3;
        println!(
            "{:>16} {:>10.1} {:>10.1}",
            format!("{}-{}", w * window + 1, (w * window + chunk.len())),
            avg,
            max
        );
    }

    println!("\nper-pattern average matching cost (µs) vs avg execution (µs):");
    println!(
        "{:>5} {:>12} {:>14} {:>8}",
        "query", "match", "exec", "ratio"
    );
    for q in 1..=22 {
        let label = format!("Q{q}");
        let recs: Vec<_> = report.records.iter().filter(|r| r.label == label).collect();
        if recs.is_empty() {
            continue;
        }
        let m = recs.iter().map(|r| r.match_ns).sum::<u64>() as f64 / recs.len() as f64 / 1e3;
        let e = recs.iter().map(|r| r.exec.as_nanos() as u64).sum::<u64>() as f64
            / recs.len() as f64
            / 1e3;
        println!(
            "{:>5} {:>12.1} {:>14.1} {:>8.5}",
            label,
            m,
            e,
            m / e.max(1.0)
        );
    }
    let worst = report.records.iter().map(|r| r.match_ns).max().unwrap_or(0);
    println!(
        "\nworst-case matching cost: {:.2} ms (paper: ~2 ms; must stay orders\n\
         of magnitude below execution times)",
        worst as f64 / 1e6
    );
}
