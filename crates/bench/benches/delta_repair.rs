//! Microbench for `rdb_delta`: what does repairing a cached result cost
//! versus recomputing it, and how does the hit rate degrade as the write
//! mix grows?
//!
//! Part 1 — repair vs recompute latency, as the write→read round trip.
//! A pure-SUM aggregate (TPC-H Q6) over lineitem is cached, then hit
//! with small appends. With repair on, the commit patches the cached
//! entries in place and the follow-up query is a cache hit; with repair
//! off, the commit evicts and the follow-up query recomputes from
//! scratch. Repair work is proportional to the delta, recompute to the
//! table — the gap is the point of the subsystem.
//!
//! Part 2 — hit-rate curve. The `update_mix` workload is swept across
//! write fractions 0%–30%, once with repair on and once with repair off
//! (evict-on-write). Repair holds the curve near the read-only ceiling
//! while eviction decays with every point of write mix.
//!
//! Emits `BENCH_repair.json` at the workspace root (override with
//! `RDB_BENCH_OUT`).

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rdb_engine::Engine;
use rdb_recycler::RecyclerConfig;
use rdb_tpch::{generate, templates, TpchConfig};
use rdb_vector::Value;

fn lineitem_row(rng: &mut SmallRng, orderkey: i64) -> Vec<Value> {
    vec![
        Value::Int(orderkey),
        Value::Int(rng.gen_range(1..200)),
        Value::Int(1),
        Value::Int(1),
        Value::Float(rng.gen_range(1..50) as f64),
        Value::Float(rng.gen_range(900.0..5000.0)),
        Value::Float(rng.gen_range(0..10) as f64 / 100.0),
        Value::Float(0.04),
        Value::str("N"),
        Value::str("O"),
        Value::Date(rng.gen_range(8700..10000)),
        Value::Date(9500),
        Value::Date(9510),
        Value::str("NONE"),
        Value::str("RAIL"),
    ]
}

fn engine(repair: bool) -> std::sync::Arc<Engine> {
    let cat = generate(&TpchConfig {
        scale: 0.01,
        seed: 77,
    });
    let mut c = RecyclerConfig::deterministic(256 << 20);
    c.spec_min_progress = 0.0;
    c.repair = repair;
    Engine::builder(cat).recycler(c).build()
}

/// Median of per-iteration latencies, in microseconds.
fn median_us(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

struct Latency {
    commit_us: f64,
    after_write_us: f64,
    repaired: u64,
}

/// Part 1: the write→read round trip with repair vs evict. In both
/// configurations an append commits against a warm Q6 (a pure-SUM
/// aggregate — the repairable class; Q1 carries AVGs, which are
/// float-order-sensitive and deliberately evict-only). With repair the
/// commit patches the cached entries in place and the follow-up query is
/// a cache hit; with evict the follow-up query recomputes the aggregate
/// from scratch.
fn latency(repair: bool) -> Latency {
    const APPENDS: usize = 40;
    let engine = engine(repair);
    let session = engine.session();
    let mut rng = SmallRng::seed_from_u64(31);
    let q6 = templates::q6_template()
        .substitute_params(&templates::q6_params(&mut rng))
        .expect("substitute");
    // Warm the cache: the aggregate (and its pipeline prefixes) land in
    // the recycler store.
    session.query(&q6).expect("warm").into_outcome();

    let mut commit_us = Vec::with_capacity(APPENDS);
    let mut after_us = Vec::with_capacity(APPENDS);
    for i in 0..APPENDS {
        let rows: Vec<Vec<Value>> = (0..4)
            .map(|_| lineitem_row(&mut rng, 6_000_000 + i as i64))
            .collect();
        let t0 = Instant::now();
        let out = session.append("lineitem", &rows).expect("append");
        commit_us.push(t0.elapsed().as_secs_f64() * 1e6);
        let t1 = Instant::now();
        let hit = session.query(&q6).expect("after-write").into_outcome();
        after_us.push(t1.elapsed().as_secs_f64() * 1e6);
        if repair {
            assert!(out.repaired >= 1, "append {i} must repair the cached Q6");
            assert!(hit.reused(), "the repaired entry keeps serving");
        } else {
            assert!(!hit.reused(), "evict-on-write must force a recompute");
        }
    }
    let repaired = engine
        .recycler()
        .map(|r| r.stats.repaired.load(std::sync::atomic::Ordering::Relaxed))
        .unwrap_or(0);
    Latency {
        commit_us: median_us(commit_us),
        after_write_us: median_us(after_us),
        repaired,
    }
}

/// Part 2: hit rate as a function of write fraction, repair vs evict.
fn hit_rate(repair: bool, write_every: Option<usize>) -> f64 {
    const OPS: usize = 240;
    let engine = engine(repair);
    let session = engine.session();
    let mut rng = SmallRng::seed_from_u64(99);
    let pool: Vec<_> = {
        let mut prng = SmallRng::seed_from_u64(4242);
        (0..2)
            .flat_map(|_| {
                vec![
                    (templates::q1_template(), templates::q1_params(&mut prng)),
                    (templates::q6_template(), templates::q6_params(&mut prng)),
                    (templates::q14_template(), templates::q14_params(&mut prng)),
                ]
            })
            .map(|(t, p)| t.substitute_params(&p).expect("substitute"))
            .collect()
    };
    let mut queries = 0usize;
    let mut reuses = 0usize;
    for i in 0..OPS {
        if let Some(every) = write_every {
            if i % every == every - 1 {
                let rows: Vec<Vec<Value>> = (0..2)
                    .map(|_| lineitem_row(&mut rng, 7_000_000 + i as i64))
                    .collect();
                session.append("lineitem", &rows).expect("append");
                continue;
            }
        }
        let plan = &pool[rng.gen_range(0..pool.len())];
        if session.query(plan).expect("query").into_outcome().reused() {
            reuses += 1;
        }
        queries += 1;
    }
    reuses as f64 / queries as f64
}

fn main() {
    rdb_bench::banner("delta_repair — repair cost and hit-rate curve");

    let rep = latency(true);
    let evi = latency(false);
    let speedup = evi.after_write_us / rep.after_write_us;
    println!(
        "write→read round trip (median): repair {:.0} us commit + {:.0} us \
         hit  vs  evict {:.0} us commit + {:.0} us recompute \
         ({} entries repaired; {speedup:.1}x faster after-write read)",
        rep.commit_us, rep.after_write_us, evi.commit_us, evi.after_write_us, rep.repaired
    );
    assert!(rep.repaired >= 40, "every append must repair the cached Q6");
    assert!(
        speedup > 1.0,
        "the post-write hit must beat the post-evict recompute"
    );

    // Write fractions 0%..30%: `write_every = ceil(1/f)`.
    let mixes: [(f64, Option<usize>); 5] = [
        (0.0, None),
        (0.05, Some(20)),
        (0.10, Some(10)),
        (0.20, Some(5)),
        (0.30, Some(3)),
    ];
    println!(
        "\n{:>10} {:>14} {:>14}",
        "write mix", "repair hit%", "evict hit%"
    );
    let mut curve = String::new();
    for (frac, every) in mixes {
        let with_repair = hit_rate(true, every);
        let with_evict = hit_rate(false, every);
        println!(
            "{:>9.0}% {:>13.1}% {:>13.1}%",
            frac * 100.0,
            with_repair * 100.0,
            with_evict * 100.0
        );
        assert!(
            with_repair >= with_evict,
            "repair must dominate evict at every write mix"
        );
        if !curve.is_empty() {
            curve.push_str(",\n");
        }
        curve.push_str(&format!(
            "  {{\"write_mix\": {frac:.2}, \"repair_hit_rate\": {with_repair:.4}, \
             \"evict_hit_rate\": {with_evict:.4}}}"
        ));
    }

    let out_path = std::env::var("RDB_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_repair.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        "{{\n\"bench\": \"delta_repair\",\n\
         \"repair_commit_us_median\": {:.1},\n\
         \"hit_after_repair_us_median\": {:.1},\n\
         \"evict_commit_us_median\": {:.1},\n\
         \"recompute_after_evict_us_median\": {:.1},\n\
         \"after_write_speedup\": {speedup:.2},\n\
         \"entries_repaired\": {},\n\
         \"hit_rate_curve\": [\n{curve}\n]\n}}\n",
        rep.commit_us, rep.after_write_us, evi.commit_us, evi.after_write_us, rep.repaired
    );
    std::fs::write(&out_path, json).expect("write BENCH_repair.json");
    println!("\nsnapshot written to {out_path}");
}
