//! Operator throughput: fused push-style chains vs the unfused pull
//! operators, serial (DOP=1).
//!
//! Measures rows/sec through three scan-rooted pipelines — scan-filter,
//! scan-filter-project, and scan-filter-join-probe — built directly at
//! the exec layer (`rdb_exec::build`) twice per plan: once with fusion
//! enabled (the default) and once with `ExecContext::with_fusion(false)`.
//! The delta isolates exactly what fusion removes: per-operator virtual
//! pull hops, selection re-materialization, and batch re-wrapping between
//! chain stages.
//!
//! The exec layer is the right place to measure: the engine's plan
//! normalization collapses stacked selects into a single conjunction, so
//! engine-level chains are one stage deep and fusion has (by design)
//! nothing to fuse. Exec plans keep one operator per node, which is the
//! shape fusion targets — and the shape engine plans have after joins,
//! projections, and recycler tee insertion produce real multi-stage spans.
//!
//! Asserts the headline claim (scan-filter ≥ 1.3× fused over unfused)
//! in-bench, and emits `BENCH_fusion.json` at the workspace root
//! (override with `RDB_BENCH_OUT`).

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

use rdb_exec::{build, ExecContext};
use rdb_expr::Expr;
use rdb_plan::{scan, Plan};
use rdb_storage::{Catalog, TableBuilder};
use rdb_vector::{DataType, Schema, Value};

const ROWS: usize = 2_000_000;
const DIM_ROWS: i64 = 1_000;
const RUNS: usize = 9;

fn catalog() -> Arc<Catalog> {
    let schema = Schema::from_pairs([
        ("k", DataType::Int),
        ("v", DataType::Int),
        ("f", DataType::Float),
    ]);
    let mut b = TableBuilder::new("fact", schema, ROWS);
    for i in 0..ROWS as i64 {
        b.push_row(vec![
            Value::Int(i % DIM_ROWS),
            Value::Int(i % 97),
            Value::Float((i % 10_000) as f64 * 0.25),
        ]);
    }
    let dim_schema = Schema::from_pairs([("dk", DataType::Int), ("w", DataType::Int)]);
    let mut d = TableBuilder::new("dim", dim_schema, DIM_ROWS as usize);
    for i in 0..DIM_ROWS {
        d.push_row(vec![Value::Int(i), Value::Int(i * 7)]);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish()).expect("register fact");
    cat.register(d.finish()).expect("register dim");
    Arc::new(cat)
}

/// The measured chains. Each is a maximal fusable span (no breaker on
/// top), so the fused build runs it as one push loop per morsel while
/// the unfused build stacks one pull operator per plan node.
///
/// The chains are *selective* (small result sets) on purpose: result
/// materialization at the stream edge costs the same fused or not, so a
/// low-selectivity chain would measure mostly that shared cost. A
/// selective multi-stage chain keeps the numerator on what fusion
/// actually changes — per-operator, per-batch overhead.
fn pipelines() -> Vec<(&'static str, Plan)> {
    vec![
        (
            "scan_filter",
            scan("fact", &["k", "v", "f"])
                .select(Expr::name("v").lt(Expr::lit(2)))
                .select(Expr::name("k").lt(Expr::lit(990)))
                .select(Expr::name("k").ge(Expr::lit(5)))
                .select(Expr::name("k").ne(Expr::lit(13)))
                .select(Expr::name("f").gt(Expr::lit(10.0)))
                .select(Expr::name("f").lt(Expr::lit(2400.0)))
                .select(Expr::name("f").ge(Expr::lit(0.0)))
                .select(Expr::name("v").ge(Expr::lit(0))),
        ),
        (
            "project",
            scan("fact", &["k", "v", "f"])
                .select(Expr::name("v").lt(Expr::lit(2)))
                .project(vec![
                    (Expr::name("k").add(Expr::name("v")), "kv"),
                    (Expr::name("f"), "f"),
                ]),
        ),
        (
            "join_probe",
            scan("fact", &["k", "v"])
                .select(Expr::name("v").lt(Expr::lit(2)))
                .inner_join(
                    scan("dim", &["dk", "w"]),
                    vec![Expr::name("k")],
                    vec![Expr::name("dk")],
                ),
        ),
    ]
}

/// Best wall time (ms) of `RUNS` full serial executions, fused or not.
/// Minimum, not median: on a shared host the interesting number is the
/// least-interrupted run, and both builds get the same treatment.
fn measure(cat: &Arc<Catalog>, plan: &Plan, fusion: bool) -> (f64, usize) {
    let mut best = f64::MAX;
    let mut result_rows = usize::MAX;
    for _ in 0..RUNS {
        let ctx = ExecContext::new(cat.clone())
            .with_fusion(fusion)
            .with_snapshot(Arc::new(cat.snapshot()))
            .with_parallelism(1)
            .with_cancel(Some(Arc::new(AtomicBool::new(false))));
        let bound = plan.bind(&ctx.catalog).expect("bind");
        let t0 = Instant::now();
        let mut stream = build(&bound, &ctx).expect("build").into_stream();
        let mut rows = 0usize;
        for b in &mut stream {
            rows += b.rows();
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if result_rows == usize::MAX {
            result_rows = rows;
        } else {
            assert_eq!(rows, result_rows, "row count stable across runs");
        }
        if ms < best {
            best = ms;
        }
    }
    (best, result_rows)
}

fn main() {
    rdb_bench::banner("operator_rates — fused vs unfused chains, serial");
    let cat = catalog();

    struct Row {
        name: &'static str,
        unfused_ms: f64,
        fused_ms: f64,
        result_rows: usize,
    }
    let mut table: Vec<Row> = Vec::new();
    println!(
        "{:>12} {:>13} {:>11} {:>10} {:>14} {:>10}",
        "pipeline", "unfused (ms)", "fused (ms)", "ratio", "fused Mrows/s", "rows"
    );
    for (name, plan) in pipelines() {
        let (unfused_ms, rows_u) = measure(&cat, &plan, false);
        let (fused_ms, rows_f) = measure(&cat, &plan, true);
        assert_eq!(rows_u, rows_f, "{name}: fused result diverges from unfused");
        println!(
            "{:>12} {:>13.2} {:>11.2} {:>9.2}x {:>14.1} {:>10}",
            name,
            unfused_ms,
            fused_ms,
            unfused_ms / fused_ms,
            ROWS as f64 / (fused_ms * 1e-3) / 1e6,
            rows_u
        );
        table.push(Row {
            name,
            unfused_ms,
            fused_ms,
            result_rows: rows_u,
        });
    }

    // The headline claim: fusing the scan-filter chain removes enough
    // per-batch overhead to clear 1.3x serial throughput.
    let sf = &table[0];
    let ratio = sf.unfused_ms / sf.fused_ms;
    assert!(
        ratio >= 1.3,
        "scan_filter: expected fused >= 1.3x unfused rows/sec, got {ratio:.2}x"
    );

    let out_path = std::env::var("RDB_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_fusion.json", env!("CARGO_MANIFEST_DIR")));
    let mut json = String::from("{\n\"bench\": \"operator_rates\",\n");
    json.push_str(&format!("\"rows\": {ROWS},\n"));
    for (i, r) in table.iter().enumerate() {
        json.push_str(&format!(
            "\"{}\": {{\"unfused_ms\": {:.3}, \"fused_ms\": {:.3}, \"ratio\": {:.3}, \
             \"fused_mrows_per_s\": {:.1}, \"result_rows\": {}}}{}\n",
            r.name,
            r.unfused_ms,
            r.fused_ms,
            r.unfused_ms / r.fused_ms,
            ROWS as f64 / (r.fused_ms * 1e-3) / 1e6,
            r.result_rows,
            if i + 1 == table.len() { "" } else { "," }
        ));
    }
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_fusion.json");
    println!("\nsnapshot written to {out_path}");
}
