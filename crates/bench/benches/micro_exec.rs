//! Criterion microbench: vectorized operator throughput.
//!
//! Sanity numbers for the substrate (selection, aggregation, hash join) —
//! the absolute costs that the recycler's benefit metric trades against
//! cache space.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rdb_exec::{build, run_to_batch, ExecContext};
use rdb_expr::{AggFunc, Expr};
use rdb_plan::scan;
use rdb_storage::{Catalog, TableBuilder};
use rdb_vector::{DataType, Schema, Value};
use std::sync::Arc;

const ROWS: usize = 200_000;

fn ctx() -> ExecContext {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([
        ("k", DataType::Int),
        ("v", DataType::Float),
        ("d", DataType::Date),
    ]);
    let mut b = TableBuilder::new("t", schema, ROWS);
    for i in 0..ROWS as i64 {
        b.push_row(vec![
            Value::Int(i % 1000),
            Value::Float((i % 97) as f64),
            Value::Date((i % 2500) as i32 + 8000),
        ]);
    }
    cat.register(b.finish()).expect("register table");
    let schema = Schema::from_pairs([("rk", DataType::Int), ("tag", DataType::Str)]);
    let mut b = TableBuilder::new("dim", schema, 1000);
    for i in 0..1000i64 {
        b.push_row(vec![Value::Int(i), Value::str(format!("tag{}", i % 7))]);
    }
    cat.register(b.finish()).expect("register table");
    ExecContext::new(Arc::new(cat))
}

fn bench_exec(c: &mut Criterion) {
    let ctx = ctx();
    let mut group = c.benchmark_group("operators");
    group.throughput(Throughput::Elements(ROWS as u64));

    let filter_plan = scan("t", &["k", "v"])
        .select(Expr::name("k").lt(Expr::lit(100)))
        .bind(&ctx.catalog)
        .unwrap();
    group.bench_function("filter_10pct", |b| {
        b.iter(|| {
            let mut t = build(&filter_plan, &ctx).unwrap();
            run_to_batch(t.root.as_mut()).rows()
        })
    });

    let agg_plan = scan("t", &["k", "v"])
        .aggregate(
            vec![(Expr::name("k"), "k")],
            vec![
                (AggFunc::Sum(Expr::name("v")), "s"),
                (AggFunc::CountStar, "n"),
            ],
        )
        .bind(&ctx.catalog)
        .unwrap();
    group.bench_function("hash_agg_1000_groups", |b| {
        b.iter(|| {
            let mut t = build(&agg_plan, &ctx).unwrap();
            run_to_batch(t.root.as_mut()).rows()
        })
    });

    let join_plan = scan("t", &["k", "v"])
        .inner_join(
            scan("dim", &["rk", "tag"]),
            vec![Expr::name("k")],
            vec![Expr::name("rk")],
        )
        .bind(&ctx.catalog)
        .unwrap();
    group.bench_function("hash_join_dim1000", |b| {
        b.iter(|| {
            let mut t = build(&join_plan, &ctx).unwrap();
            run_to_batch(t.root.as_mut()).rows()
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_exec
}
criterion_main!(benches);
